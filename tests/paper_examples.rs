//! The worked examples of the paper, end to end.
//!
//! * Figure 3 — the provenance of three sublink queries over the example
//!   relations R(a, b) and S(c, d).
//! * Section 2.5 — the ambiguity of Definition 1 for multiple sublinks and
//!   the uniqueness restored by Definition 2.
//! * Section 3.1 — the provenance schema/representation of `qex`.

// This suite deliberately exercises the deprecated pre-`Session` helpers:
// they must keep compiling and agreeing with the paper's examples until they
// are removed (the Session-era equivalents are covered by
// `sql_end_to_end.rs` and `session_api.rs`).
#![allow(deprecated)]

use perm::prelude::*;
use perm::provenance_of_sql;
use perm_core::tracer::Tracer;

/// R = {(1,1), (2,1), (3,2)} and S = {(1,3), (2,4), (4,5)} from Figure 3.
fn figure3_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "r",
        Relation::from_rows(
            Schema::from_names(&["a", "b"]).with_qualifier("r"),
            vec![
                vec![Value::Int(1), Value::Int(1)],
                vec![Value::Int(2), Value::Int(1)],
                vec![Value::Int(3), Value::Int(2)],
            ],
        ),
    )
    .unwrap();
    db.create_table(
        "s",
        Relation::from_rows(
            Schema::from_names(&["c", "d"]).with_qualifier("s"),
            vec![
                vec![Value::Int(1), Value::Int(3)],
                vec![Value::Int(2), Value::Int(4)],
                vec![Value::Int(4), Value::Int(5)],
            ],
        ),
    )
    .unwrap();
    db
}

fn rows(rel: &Relation) -> Vec<Vec<Value>> {
    rel.sorted_tuples()
        .into_iter()
        .map(Tuple::into_values)
        .collect()
}

#[test]
fn figure3_q1_provenance() {
    // q1 = σ_{a = ANY(Π_c(S))}(R):
    //   (1,1) → R* = {(1,1)}, S* = {(1,3)}
    //   (2,1) → R* = {(2,1)}, S* = {(2,4)}
    let db = figure3_db();
    let sql = "SELECT * FROM r WHERE a = ANY (SELECT c FROM s)";
    let result = provenance_of_sql(&db, sql, Strategy::Gen).unwrap();
    assert_eq!(
        result.schema().names(),
        vec!["a", "b", "prov_r_a", "prov_r_b", "prov_s_c", "prov_s_d"]
    );
    assert_eq!(
        rows(&result),
        vec![
            vec![1, 1, 1, 1, 1, 3]
                .into_iter()
                .map(Value::Int)
                .collect::<Vec<_>>(),
            vec![2, 1, 2, 1, 2, 4]
                .into_iter()
                .map(Value::Int)
                .collect::<Vec<_>>(),
        ]
    );
}

#[test]
fn figure3_q2_provenance() {
    // q2 = σ_{c > ALL(Π_a(R))}(S): the single result tuple (4,5) has all of R
    // in its provenance.
    let db = figure3_db();
    let sql = "SELECT * FROM s WHERE c > ALL (SELECT a FROM r)";
    let result = provenance_of_sql(&db, sql, Strategy::Left).unwrap();
    assert_eq!(result.len(), 3, "one row per contributing R tuple");
    let schema = result.schema();
    let c = schema.resolve(None, "c").unwrap();
    let prov_a = schema.resolve(None, "prov_r_a").unwrap();
    let mut r_values: Vec<i64> = result
        .tuples()
        .iter()
        .map(|t| t.get(prov_a).as_i64().unwrap())
        .collect();
    r_values.sort_unstable();
    assert_eq!(r_values, vec![1, 2, 3]);
    assert!(result.tuples().iter().all(|t| t.get(c) == &Value::Int(4)));
}

#[test]
fn figure3_q3_provenance_for_the_reqfalse_tuple() {
    // q3 = σ_{(a=3) ∨ ¬(a < ALL(σ_{c≠1}(Π_c(S))))}(R). For the tuple (2,1)
    // the sublink is required to be false and its provenance is Tsub_false =
    // {(2,4)}, exactly as Figure 3 lists.
    let db = figure3_db();
    let sql = "SELECT * FROM r \
               WHERE a = 3 OR NOT (a < ALL (SELECT c FROM s WHERE c <> 1))";
    let result = provenance_of_sql(&db, sql, Strategy::Gen).unwrap();
    let schema = result.schema();
    let a = schema.resolve(None, "a").unwrap();
    let prov_c = schema.resolve(None, "prov_s_c").unwrap();
    let originals: Vec<i64> = result
        .tuples()
        .iter()
        .map(|t| t.get(a).as_i64().unwrap())
        .collect();
    assert!(originals.contains(&2));
    assert!(originals.contains(&3));
    assert!(!originals.contains(&1));
    let s_prov_for_2: Vec<i64> = result
        .tuples()
        .iter()
        .filter(|t| t.get(a) == &Value::Int(2))
        .map(|t| t.get(prov_c).as_i64().unwrap())
        .collect();
    assert_eq!(s_prov_for_2, vec![2]);
}

#[test]
fn section_2_5_multi_sublink_query_has_unique_definition2_provenance() {
    // σ_{(a = ANY R) ∨ (a > ALL S)}(U) with R = {1…100}, S = {1, 5},
    // U = {5}: under Definition 2 the provenance of (5) according to R is
    // {(5)} (the only tuple reproducing C1 = true) and according to S is
    // {(5)} (the only tuple reproducing C2 = false).
    let mut db = Database::new();
    db.create_table(
        "rnum",
        Relation::from_rows(
            Schema::from_names(&["b"]).with_qualifier("rnum"),
            (1..=100).map(|i| vec![Value::Int(i)]).collect(),
        ),
    )
    .unwrap();
    db.create_table(
        "snum",
        Relation::from_rows(
            Schema::from_names(&["c"]).with_qualifier("snum"),
            vec![vec![Value::Int(1)], vec![Value::Int(5)]],
        ),
    )
    .unwrap();
    db.create_table(
        "u",
        Relation::from_rows(
            Schema::from_names(&["a"]).with_qualifier("u"),
            vec![vec![Value::Int(5)]],
        ),
    )
    .unwrap();
    let sql = "SELECT * FROM u \
               WHERE a = ANY (SELECT b FROM rnum) OR a > ALL (SELECT c FROM snum)";
    let result = provenance_of_sql(&db, sql, Strategy::Gen).unwrap();
    // A unique provenance combination: (U*, R*, S*) = ({5}, {5}, {5}).
    assert_eq!(result.len(), 1);
    let row = &result.tuples()[0];
    let schema = result.schema();
    assert_eq!(
        row.get(schema.resolve(None, "prov_u_a").unwrap()),
        &Value::Int(5)
    );
    assert_eq!(
        row.get(schema.resolve(None, "prov_rnum_b").unwrap()),
        &Value::Int(5)
    );
    assert_eq!(
        row.get(schema.resolve(None, "prov_snum_c").unwrap()),
        &Value::Int(5)
    );

    // The Left and Move strategies (the sublinks are uncorrelated) and the
    // tracer agree.
    let left = provenance_of_sql(&db, sql, Strategy::Left).unwrap();
    let move_ = provenance_of_sql(&db, sql, Strategy::Move).unwrap();
    assert!(left.set_eq(&result));
    assert!(move_.set_eq(&result));
}

#[test]
fn section_3_1_example_qex_provenance_representation() {
    // qex = Π_{a,c}(σ_{a<c}(R × S)) over R = {(1,2),(3,4)}, S = {(2),(5)}:
    // the provenance relation of Section 3.1 with schema
    // (a, c, pa, pb, pc) and three tuples.
    let mut db = Database::new();
    db.create_table(
        "rx",
        Relation::from_rows(
            Schema::from_names(&["a", "b"]).with_qualifier("rx"),
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(3), Value::Int(4)],
            ],
        ),
    )
    .unwrap();
    db.create_table(
        "sx",
        Relation::from_rows(
            Schema::from_names(&["c"]).with_qualifier("sx"),
            vec![vec![Value::Int(2)], vec![Value::Int(5)]],
        ),
    )
    .unwrap();
    let result =
        provenance_of_sql(&db, "SELECT a, c FROM rx, sx WHERE a < c", Strategy::Gen).unwrap();
    assert_eq!(
        result.schema().names(),
        vec!["a", "c", "prov_rx_a", "prov_rx_b", "prov_sx_c"]
    );
    let expected: Vec<Vec<i64>> = vec![
        vec![1, 2, 1, 2, 2],
        vec![1, 5, 1, 2, 5],
        vec![3, 5, 3, 4, 5],
    ];
    let got: Vec<Vec<i64>> = rows(&result)
        .into_iter()
        .map(|r| r.into_iter().map(|v| v.as_i64().unwrap()).collect())
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn tracer_and_rewrites_agree_on_every_figure3_query() {
    let db = figure3_db();
    for sql in [
        "SELECT * FROM r WHERE a = ANY (SELECT c FROM s)",
        "SELECT * FROM s WHERE c > ALL (SELECT a FROM r)",
        "SELECT * FROM r WHERE a = 3 OR NOT (a < ALL (SELECT c FROM s WHERE c <> 1))",
    ] {
        let (plan, _) = perm::sql::compile(&db, sql).unwrap();
        let mut tracer = Tracer::new(&db);
        let traced = tracer.trace(&plan).unwrap();
        for strategy in [Strategy::Gen, Strategy::Left, Strategy::Move] {
            let result = perm::provenance_of_plan(&db, &plan, strategy).unwrap();
            // Compare as sets of named rows (column order may differ).
            let names = traced.schema().names();
            let project = |rel: &Relation| -> Vec<Vec<Value>> {
                let positions: Vec<usize> = names
                    .iter()
                    .map(|n| rel.schema().resolve(None, n).unwrap())
                    .collect();
                let mut out: Vec<Vec<Value>> = rel
                    .tuples()
                    .iter()
                    .map(|t| positions.iter().map(|&i| t.get(i).clone()).collect())
                    .collect();
                out.sort_by(|x, y| Tuple::new(x.clone()).sort_key(&Tuple::new(y.clone())));
                out.dedup_by(|x, y| Tuple::new(x.clone()).null_safe_eq(&Tuple::new(y.clone())));
                out
            };
            assert_eq!(
                project(&result),
                project(&traced),
                "{strategy} vs tracer on {sql}"
            );
        }
    }
}
