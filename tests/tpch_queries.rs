//! Integration tests over the TPC-H workload: every sublink template
//! compiles, executes, and its provenance rewrite preserves the original
//! result; strategies agree with each other where more than one applies.

use perm::{ProvenanceQuery, Strategy};
use perm_exec::Executor;
use perm_storage::{Relation, Tuple, Value};
use perm_tpch::{generate, sublink_queries, SublinkClass, TpchScale};

fn tiny_db() -> perm_storage::Database {
    generate(TpchScale::new(0.0001), 1234)
}

/// Distinct rows of `rel` projected onto `names`, sorted (for set comparison
/// across relations whose column order differs).
fn named_rows(rel: &Relation, names: &[String]) -> Vec<Vec<Value>> {
    let positions: Vec<usize> = names
        .iter()
        .map(|n| rel.schema().resolve(None, n).unwrap())
        .collect();
    let mut out: Vec<Vec<Value>> = rel
        .tuples()
        .iter()
        .map(|t| positions.iter().map(|&i| t.get(i).clone()).collect())
        .collect();
    out.sort_by(|a, b| Tuple::new(a.clone()).sort_key(&Tuple::new(b.clone())));
    out.dedup_by(|a, b| Tuple::new(a.clone()).null_safe_eq(&Tuple::new(b.clone())));
    out
}

#[test]
fn every_template_preserves_the_original_result_under_rewriting() {
    let db = tiny_db();
    let executor = Executor::new(&db);
    for template in sublink_queries() {
        // Correlated templates exercise the Gen strategy (the only one that
        // applies to them); uncorrelated ones use Move here, with the
        // Left/Gen agreement covered by `uncorrelated_templates_agree…`.
        let strategy = match template.class {
            SublinkClass::Correlated => Strategy::Gen,
            SublinkClass::Uncorrelated => Strategy::Move,
        };
        if matches!(template.id, 2 | 17 | 20 | 21) {
            // The most expensive correlated Gen rewrites (sublinks over
            // partsupp/lineitem, evaluated per CrossBase tuple) are exercised
            // by the benchmark harness in release mode; in this (debug-mode
            // friendly) test their rewrites are checked structurally by
            // `expensive_correlated_rewrites_are_well_formed`, and Q4/Q22
            // below cover Gen execution end to end.
            continue;
        }
        let sql = template.instantiate(5);
        let (plan, _) = perm_sql::compile(&db, &sql)
            .unwrap_or_else(|e| panic!("Q{} does not compile: {e}", template.id));
        let original = executor
            .execute(&plan)
            .unwrap_or_else(|e| panic!("Q{} does not execute: {e}", template.id));
        let rewritten = ProvenanceQuery::new(&db, &plan)
            .strategy(strategy)
            .rewrite()
            .unwrap_or_else(|e| panic!("Q{} does not rewrite with {strategy}: {e}", template.id));
        let provenance = executor
            .execute(rewritten.plan())
            .unwrap_or_else(|e| panic!("Q{}+ does not execute: {e}", template.id));

        // Result preservation: distinct original tuples == distinct rewritten
        // tuples projected on the original attributes (Theorem 4).
        let names = original.schema().names();
        assert_eq!(
            named_rows(&original, &names),
            named_rows(&provenance, &names),
            "Q{} rewritten with {strategy} does not preserve the original result",
            template.id
        );
        // The rewritten schema appends one provenance attribute group per
        // base relation access of the query.
        assert!(rewritten.descriptor().attr_count() > 0);
        assert_eq!(
            provenance.schema().arity(),
            original.schema().arity() + rewritten.descriptor().attr_count()
        );
    }
}

#[test]
fn expensive_correlated_rewrites_are_well_formed() {
    let db = tiny_db();
    for id in [2u32, 17, 20, 21] {
        let template = sublink_queries().into_iter().find(|t| t.id == id).unwrap();
        let sql = template.instantiate(5);
        let (plan, _) = perm_sql::compile(&db, &sql).unwrap();
        let rewritten = ProvenanceQuery::new(&db, &plan)
            .strategy(Strategy::Gen)
            .rewrite()
            .unwrap();
        rewritten.plan().validate().unwrap();
        assert!(rewritten.descriptor().attr_count() > 0);
        // The provenance schema must mention every base relation the query
        // accesses, including the ones only reachable through sublinks.
        let tables: Vec<String> = rewritten
            .descriptor()
            .entries()
            .iter()
            .map(|e| e.table.clone())
            .collect();
        if matches!(id, 2 | 20) {
            assert!(tables.contains(&"partsupp".to_string()));
        }
        if matches!(id, 17 | 20 | 21) {
            assert!(tables.contains(&"lineitem".to_string()));
        }
    }
}

#[test]
fn uncorrelated_templates_agree_across_strategies() {
    let db = tiny_db();
    let executor = Executor::new(&db);
    for template in sublink_queries() {
        if template.class != SublinkClass::Uncorrelated {
            continue;
        }
        let sql = template.instantiate(9);
        let (plan, _) = perm_sql::compile(&db, &sql).unwrap();
        let reference = {
            let rewritten = ProvenanceQuery::new(&db, &plan)
                .strategy(Strategy::Left)
                .rewrite()
                .unwrap();
            executor.execute(rewritten.plan()).unwrap()
        };
        let names = reference.schema().names();
        // Move is compared on every uncorrelated template; the Gen comparison
        // is limited to Q16 (whose CrossBase is just the supplier relation)
        // to keep the debug-mode test suite fast — the harness compares Gen
        // on the remaining templates in release mode.
        let mut strategies = vec![Strategy::Move];
        if template.id == 16 {
            strategies.push(Strategy::Gen);
        }
        for strategy in strategies {
            let rewritten = ProvenanceQuery::new(&db, &plan)
                .strategy(strategy)
                .rewrite()
                .unwrap();
            let result = executor.execute(rewritten.plan()).unwrap();
            assert_eq!(
                named_rows(&result, &names),
                named_rows(&reference, &names),
                "Q{}: {strategy} disagrees with Left",
                template.id
            );
        }
    }
}

#[test]
fn q4_gen_provenance_links_orders_to_their_late_lineitems() {
    // Q4 counts orders with at least one lineitem whose commit date precedes
    // its receipt date. The provenance of each output row must contain such a
    // lineitem of a contributing order.
    let db = tiny_db();
    let template = sublink_queries().into_iter().find(|t| t.id == 4).unwrap();
    let sql = template.instantiate(13);
    let (plan, _) = perm_sql::compile(&db, &sql).unwrap();
    let rewritten = ProvenanceQuery::new(&db, &plan)
        .strategy(Strategy::Gen)
        .rewrite()
        .unwrap();
    let result = Executor::new(&db).execute(rewritten.plan()).unwrap();
    let schema = result.schema();
    let commit = schema.resolve(None, "prov_lineitem_l_commitdate").unwrap();
    let receipt = schema.resolve(None, "prov_lineitem_l_receiptdate").unwrap();
    let order_key = schema.resolve(None, "prov_orders_o_orderkey").unwrap();
    for row in result.tuples() {
        assert!(!row.get(order_key).is_null(), "an order always contributes");
        if !row.get(commit).is_null() {
            let commit_days = row.get(commit).as_i64().unwrap();
            let receipt_days = row.get(receipt).as_i64().unwrap();
            assert!(
                commit_days < receipt_days,
                "only late lineitems belong to the provenance of Q4"
            );
        }
    }
}
