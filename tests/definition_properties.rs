//! Randomized-property tests of the core invariants, over seeded randomly
//! generated small relations and sublink queries (the build environment has
//! no proptest, so the cases are driven by the deterministic `rand` shim):
//!
//! 1. **Result preservation** (Theorem 4): the rewritten query restricted to
//!    the original attributes produces exactly the original result tuples.
//! 2. **Strategy/tracer agreement**: every applicable rewrite strategy
//!    produces the same provenance (as a set of extended tuples) as the
//!    tracer, which implements the closed-form characterisation of Figure 2
//!    directly.
//! 3. **Definition 1 vs. Figure 2** on single-sublink selections: the
//!    brute-force maximal-witness enumeration of Definition 1 yields at
//!    least one witness per result tuple, and the rewrite's sublink
//!    provenance is contained in one of them (Definition 2 only shrinks the
//!    sets).

use perm_algebra::builder::{all_sublink, any_sublink, col, exists_sublink, not, PlanBuilder};
use perm_algebra::{CompareOp, Plan};
use perm_core::definition::BruteForce;
use perm_core::tracer::Tracer;
use perm_core::{ProvenanceQuery, Strategy as RewriteStrategy};
use perm_exec::Executor;
use perm_storage::{Database, Relation, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small relation over one integer attribute with values in 0..6 so that
/// sublink comparisons hit interesting overlaps.
fn small_relation(rng: &mut StdRng, name: &str, attr: &str, max_rows: usize) -> Relation {
    let rows = rng.gen_range(0..=max_rows);
    Relation::from_rows(
        Schema::from_names(&[attr]).with_qualifier(name),
        (0..rows)
            .map(|_| vec![Value::Int(rng.gen_range(0..6i64))])
            .collect(),
    )
}

/// The sublink shapes exercised by the property tests.
#[derive(Debug, Clone, Copy)]
enum Shape {
    Any(CompareOp),
    All(CompareOp),
    Exists,
    NotAny(CompareOp),
}

const SHAPES: [Shape; 7] = [
    Shape::Any(CompareOp::Eq),
    Shape::Any(CompareOp::Lt),
    Shape::Any(CompareOp::Ge),
    Shape::All(CompareOp::Lt),
    Shape::All(CompareOp::Neq),
    Shape::Exists,
    Shape::NotAny(CompareOp::Eq),
];

fn build_db(r: Relation, s: Relation) -> Database {
    let mut db = Database::new();
    db.create_or_replace_table("pr", r);
    db.create_or_replace_table("ps", s);
    db
}

fn build_query(db: &Database, shape: Shape) -> Plan {
    let sub = PlanBuilder::scan(db, "ps").unwrap().build();
    let condition = match shape {
        Shape::Any(op) => any_sublink(col("x"), op, sub),
        Shape::All(op) => all_sublink(col("x"), op, sub),
        Shape::Exists => exists_sublink(sub),
        Shape::NotAny(op) => not(any_sublink(col("x"), op, sub)),
    };
    PlanBuilder::scan(db, "pr")
        .unwrap()
        .select(condition)
        .build()
}

/// Distinct named rows of a relation, for order-insensitive comparison.
fn named_rows(rel: &Relation, names: &[String]) -> Vec<Vec<Value>> {
    let positions: Vec<usize> = names
        .iter()
        .map(|n| rel.schema().resolve(None, n).unwrap())
        .collect();
    let mut out: Vec<Vec<Value>> = rel
        .tuples()
        .iter()
        .map(|t| positions.iter().map(|&i| t.get(i).clone()).collect())
        .collect();
    out.sort_by(|a, b| Tuple::new(a.clone()).sort_key(&Tuple::new(b.clone())));
    out.dedup_by(|a, b| Tuple::new(a.clone()).null_safe_eq(&Tuple::new(b.clone())));
    out
}

#[test]
fn rewrites_preserve_results_and_agree_with_the_tracer() {
    let mut rng = StdRng::seed_from_u64(0x9e2d);
    for case in 0..48 {
        let r = small_relation(&mut rng, "pr", "x", 4);
        let s = small_relation(&mut rng, "ps", "y", 4);
        let shape = SHAPES[rng.gen_range(0..SHAPES.len())];
        let db = build_db(r, s);
        let plan = build_query(&db, shape);
        let executor = Executor::new(&db);
        let original = executor.execute(&plan).unwrap();

        let mut tracer = Tracer::new(&db);
        let traced = tracer.trace(&plan).unwrap();
        let prov_names = traced.schema().names();
        let reference = named_rows(&traced, &prov_names);

        for strategy in RewriteStrategy::ALL {
            let rewritten = match ProvenanceQuery::new(&db, &plan)
                .strategy(strategy)
                .rewrite()
            {
                Ok(rw) => rw,
                Err(perm_core::ProvenanceError::NotApplicable { .. }) => continue,
                Err(other) => panic!("case {case} ({shape:?}): {strategy}: {other}"),
            };
            let result = executor.execute(rewritten.plan()).unwrap();

            // (1) Result preservation.
            let original_names = original.schema().names();
            assert_eq!(
                named_rows(&result, &original_names),
                named_rows(&original, &original_names),
                "case {case} ({shape:?}): {strategy} does not preserve the result"
            );

            // (2) Agreement with the tracer.
            assert_eq!(
                named_rows(&result, &prov_names),
                reference,
                "case {case} ({shape:?}): {strategy} disagrees with the tracer"
            );
        }
    }
}

#[test]
fn definition1_witnesses_match_the_rewrite_provenance_for_single_sublinks() {
    let shapes = [
        Shape::Any(CompareOp::Eq),
        Shape::Any(CompareOp::Lt),
        Shape::All(CompareOp::Lt),
        Shape::Exists,
    ];
    let mut rng = StdRng::seed_from_u64(0x51ab);
    for case in 0..24 {
        // Keep the brute force tractable: at most 4 rows per relation.
        let r = small_relation(&mut rng, "pr", "x", 4);
        let s = small_relation(&mut rng, "ps", "y", 4);
        let shape = shapes[rng.gen_range(0..shapes.len())];
        let db = build_db(r.clone(), s.clone());
        let plan = build_query(&db, shape);
        let executor = Executor::new(&db);
        let original = executor.execute(&plan).unwrap();
        let checker = BruteForce::new(&db, &plan).input("pr").sublink_input("ps");

        // Provenance according to the rewrites, grouped per result tuple.
        let rewritten = ProvenanceQuery::new(&db, &plan)
            .strategy(RewriteStrategy::Gen)
            .rewrite()
            .unwrap();
        let prov = executor.execute(rewritten.plan()).unwrap();
        let prov_schema = prov.schema();
        let x = prov_schema.resolve(None, "x").unwrap();
        let prov_y = prov_schema.resolve(None, "prov_ps_y").unwrap();

        for tuple in original.distinct().tuples() {
            let witnesses = checker.definition1_witnesses(tuple).unwrap();
            // For single-sublink queries Definition 1 yields at least one
            // maximal witness; under reqtrue/reqfalse roles it is unique.
            assert!(
                !witnesses.is_empty(),
                "case {case} ({shape:?}): no Definition 1 witness"
            );

            // The rewrite's sublink provenance for this tuple.
            let mut from_rewrite: Vec<Value> = prov
                .tuples()
                .iter()
                .filter(|p| p.get(x).null_safe_eq(tuple.get(0)))
                .map(|p| p.get(prov_y).clone())
                .filter(|v| !v.is_null())
                .collect();
            from_rewrite.sort_by(|a, b| a.sort_key(b));
            from_rewrite.dedup_by(|a, b| a.null_safe_eq(b));

            // Under Definition 2 the sublink provenance is contained in some
            // Definition 1 maximal witness (Definition 2 only adds condition
            // 3, which shrinks or keeps the sets).
            let contained_somewhere = witnesses.iter().any(|witness| {
                from_rewrite
                    .iter()
                    .all(|v| witness[1].tuples().iter().any(|t| t.get(0).null_safe_eq(v)))
            });
            assert!(
                contained_somewhere,
                "case {case} ({shape:?}): rewrite provenance {from_rewrite:?} not contained in \
                 any Definition 1 witness"
            );
        }
    }
}

#[test]
fn brute_force_definition2_is_unique_where_definition1_is_not() {
    // Deterministic companion to the property tests: the Section 2.5 example
    // (scaled down) has several Definition 1 witnesses but exactly one under
    // Definition 2. This exercises the checker end-to-end from this crate.
    let mut db = Database::new();
    db.create_or_replace_table(
        "pr",
        Relation::from_rows(
            Schema::from_names(&["x"]).with_qualifier("pr"),
            (1..=4).map(|i| vec![Value::Int(i)]).collect(),
        ),
    );
    db.create_or_replace_table(
        "ps",
        Relation::from_rows(
            Schema::from_names(&["y"]).with_qualifier("ps"),
            vec![vec![Value::Int(1)], vec![Value::Int(4)]],
        ),
    );
    db.create_or_replace_table(
        "pu",
        Relation::from_rows(
            Schema::from_names(&["a"]).with_qualifier("pu"),
            vec![vec![Value::Int(4)]],
        ),
    );
    let c1 = any_sublink(
        col("a"),
        CompareOp::Eq,
        PlanBuilder::scan(&db, "pr").unwrap().build(),
    );
    let c2 = all_sublink(
        col("a"),
        CompareOp::Gt,
        PlanBuilder::scan(&db, "ps").unwrap().build(),
    );
    let plan = PlanBuilder::scan(&db, "pu")
        .unwrap()
        .select(perm_algebra::builder::or(c1.clone(), c2.clone()))
        .build();
    let checker = BruteForce::new(&db, &plan)
        .input("pu")
        .sublink_input("pr")
        .sublink_input("ps");
    let t = Tuple::new(vec![Value::Int(4)]);
    let def1 = checker.definition1_witnesses(&t).unwrap();
    assert!(def1.len() > 1, "Definition 1 must be ambiguous here");
    let input_schema = Schema::from_names(&["a"]).with_qualifier("pu");
    let def2 = checker
        .definition2_witnesses(&t, &[c1, c2], &input_schema)
        .unwrap();
    assert_eq!(def2.len(), 1, "Definition 2 must be unique");
}
