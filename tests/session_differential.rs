//! Differential testing of the `Session` API: the seeded nested-subquery
//! SQL corpus (shared with the concurrent differential test of
//! `perm-serve` via [`perm_synthetic::sqlgen`]) must produce bag-identical
//! results through `Session::prepare`/`execute`, the streaming cursor, the
//! compiled `Executor::execute` path and the reference interpreter
//! `Executor::execute_unoptimized`.

use perm::prelude::*;
use perm_synthetic::sqlgen::{corpus_case, corpus_database};

#[test]
fn session_agrees_with_both_executor_paths_on_random_queries() {
    let db = corpus_database();
    let engine = Engine::new(db);
    let session = engine.session();
    let mut checked = 0usize;
    for seed in 0..80u64 {
        let case = corpus_case(seed);
        let sql = &case.sql;
        let prepared = session
            .prepare(sql)
            .unwrap_or_else(|e| panic!("seed {seed}: failed to prepare `{sql}`: {e}"));
        let params = case.params(prepared.param_count());

        let via_session = session
            .execute(&prepared, &params)
            .unwrap_or_else(|e| panic!("seed {seed}: `{sql}` with {params:?} failed: {e}"));
        let via_cursor = session
            .rows(&prepared, &params)
            .unwrap()
            .into_relation()
            .unwrap_or_else(|e| panic!("seed {seed}: cursor over `{sql}` failed: {e}"));

        // The direct executor paths, on the same bound plan.
        let (plan, _) = perm::sql::compile(engine.database(), sql).unwrap();
        let compiled_ex = Executor::new(engine.database());
        compiled_ex.bind_params(params.clone());
        let via_compiled = compiled_ex.execute(&plan).unwrap();
        let interp_ex = Executor::new(engine.database());
        interp_ex.bind_params(params.clone());
        let via_interpreter = interp_ex.execute_unoptimized(&plan).unwrap();

        for (label, other) in [
            ("cursor", &via_cursor),
            ("compiled executor", &via_compiled),
            ("interpreter", &via_interpreter),
        ] {
            assert!(
                via_session.bag_eq(other),
                "seed {seed}: session disagrees with {label} on `{sql}` \
                 with {params:?}:\n{via_session}\nvs\n{other}"
            );
        }
        checked += 1;
    }
    assert_eq!(checked, 80);
}

#[test]
fn optimizer_preserves_results_and_witnesses_on_the_sql_corpus() {
    // Seventh differential mode, SQL half: the optimizer must be invisible in
    // both observables — plain result bags and provenance witness bags — on
    // the full 80-seed corpus.
    let db = corpus_database();
    let engine = Engine::new(db);
    let on = engine.session();
    let off = engine.session_with(SessionConfig {
        optimize: false,
        ..SessionConfig::default()
    });
    assert!(on.config().optimize, "optimizer should default on");
    let mut checked = 0usize;
    for seed in 0..80u64 {
        let case = corpus_case(seed);
        let sql = &case.sql;

        let p_on = on.prepare(sql).unwrap();
        let p_off = off.prepare(sql).unwrap();
        let params = case.params(p_on.param_count());
        let r_on = on
            .execute(&p_on, &params)
            .unwrap_or_else(|e| panic!("seed {seed}: optimized `{sql}` failed: {e}"));
        let r_off = off
            .execute(&p_off, &params)
            .unwrap_or_else(|e| panic!("seed {seed}: memo-only `{sql}` failed: {e}"));
        assert!(
            r_on.bag_eq(&r_off),
            "seed {seed}: optimizer changed the result bag of `{sql}` \
             with {params:?}:\n{r_on}\nvs\n{r_off}"
        );

        // Witness bags: the full provenance relation (result columns plus
        // witness columns) must also be bag-identical. The provenance rewrite
        // runs before the optimizer, so witnesses are ordinary columns here.
        if !sql.contains('$') {
            let pv_on = on.prepare_provenance(sql).unwrap();
            let pv_off = off.prepare_provenance(sql).unwrap();
            let w_on = on.execute(&pv_on, &[]).unwrap();
            let w_off = off.execute(&pv_off, &[]).unwrap();
            assert!(
                w_on.bag_eq(&w_off),
                "seed {seed}: optimizer changed the witness bag of `{sql}`:\n{w_on}\nvs\n{w_off}"
            );
        }
        checked += 1;
    }
    assert_eq!(checked, 80);
}

#[test]
fn session_provenance_agrees_with_the_deprecated_helper() {
    // The compatibility bar for the deprecated wrappers: same strategy, same
    // result, old path vs new path, on a seeded subset.
    let db = corpus_database();
    let engine = Engine::new(db);
    let mut checked = 0usize;
    // Parameter-free subset (the old helpers cannot bind parameters).
    for seed in (0..200u64).filter(|&s| !corpus_case(s).sql.contains('$')) {
        let sql = corpus_case(seed).sql;
        let session = engine.session();
        let prepared = session.prepare_provenance(&sql).unwrap();
        let new_path = session.execute(&prepared, &[]).unwrap();
        #[allow(deprecated)]
        let old_path = perm::provenance_of_sql(engine.database(), &sql, Strategy::Auto).unwrap();
        assert!(
            new_path.bag_eq(&old_path),
            "seed {seed}: session and deprecated helper disagree on `{sql}`"
        );
        checked += 1;
        if checked == 10 {
            break;
        }
    }
    assert_eq!(checked, 10);
}
