//! Differential testing of the `Session` API: a seeded subset of random
//! nested-subquery SQL (with `$n` parameters) must produce bag-identical
//! results through `Session::prepare`/`execute`, the streaming cursor, the
//! compiled `Executor::execute` path and the reference interpreter
//! `Executor::execute_unoptimized`.

use perm::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn test_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "r",
        Relation::from_rows(
            Schema::from_names(&["a", "b", "g"]).with_qualifier("r"),
            (0..20)
                .map(|i| vec![Value::Int(i), Value::Int((i * 7) % 13), Value::Int(i % 4)])
                .collect(),
        ),
    )
    .unwrap();
    db.create_table(
        "s",
        Relation::from_rows(
            Schema::from_names(&["c", "d", "g"]).with_qualifier("s"),
            (0..15)
                .map(|i| {
                    vec![
                        Value::Int(i * 2),
                        Value::Int((i * 5) % 11),
                        Value::Int(i % 4),
                    ]
                })
                .collect(),
        ),
    )
    .unwrap();
    db
}

/// A random scalar-vs-value operand: a literal, or `$1` (so parameters are
/// exercised throughout the grammar).
fn operand(rng: &mut StdRng) -> String {
    if rng.gen_range(0..4) == 0 {
        "$1".to_string()
    } else {
        format!("{}", rng.gen_range(-5..25))
    }
}

fn comparison(rng: &mut StdRng, column: &str) -> String {
    let op = ["<", "<=", ">", ">=", "=", "<>"][rng.gen_range(0..6usize)];
    format!("{column} {op} {}", operand(rng))
}

/// A random subquery over `s`, possibly correlated on `r.g` and possibly
/// nested one level deeper.
fn subquery(rng: &mut StdRng, depth: usize) -> String {
    let mut preds: Vec<String> = Vec::new();
    if rng.gen_bool(0.5) {
        preds.push(comparison(rng, "s.c"));
    }
    if rng.gen_bool(0.5) {
        preds.push("s.g = r.g".to_string());
    }
    if depth > 0 && rng.gen_bool(0.4) {
        preds.push(format!(
            "s.d IN (SELECT b FROM r r2 WHERE {})",
            comparison(rng, "r2.a")
        ));
    }
    let where_clause = if preds.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", preds.join(" AND "))
    };
    format!("SELECT c FROM s{where_clause}")
}

/// One random top-level query in the supported subset.
fn random_sql(rng: &mut StdRng) -> String {
    let mut preds: Vec<String> = Vec::new();
    if rng.gen_bool(0.6) {
        preds.push(comparison(rng, "a"));
    }
    match rng.gen_range(0..4) {
        0 => preds.push(format!("a IN ({})", subquery(rng, 1))),
        1 => preds.push(format!("a NOT IN ({})", subquery(rng, 1))),
        2 => preds.push(format!(
            "EXISTS (SELECT * FROM s WHERE s.g = r.g AND {})",
            comparison(rng, "s.c")
        )),
        _ => preds.push(format!(
            "b {} (SELECT min(d) FROM s WHERE {})",
            [">", "<"][rng.gen_range(0..2usize)],
            comparison(rng, "s.c")
        )),
    }
    let where_clause = format!(" WHERE {}", preds.join(" AND "));
    let tail = match rng.gen_range(0..3) {
        0 => " ORDER BY a",
        1 => " ORDER BY a LIMIT 7",
        _ => "",
    };
    format!("SELECT a, b FROM r{where_clause}{tail}")
}

#[test]
fn session_agrees_with_both_executor_paths_on_random_queries() {
    let db = test_db();
    let engine = Engine::new(db);
    let session = engine.session();
    let mut checked = 0usize;
    for seed in 0..80u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let sql = random_sql(&mut rng);
        let prepared = session
            .prepare(&sql)
            .unwrap_or_else(|e| panic!("seed {seed}: failed to prepare `{sql}`: {e}"));
        let params: Vec<Value> = (0..prepared.param_count())
            .map(|_| Value::Int(rng.gen_range(-5..25)))
            .collect();

        let via_session = session
            .execute(&prepared, &params)
            .unwrap_or_else(|e| panic!("seed {seed}: `{sql}` with {params:?} failed: {e}"));
        let via_cursor = session
            .rows(&prepared, &params)
            .unwrap()
            .into_relation()
            .unwrap_or_else(|e| panic!("seed {seed}: cursor over `{sql}` failed: {e}"));

        // The direct executor paths, on the same bound plan.
        let (plan, _) = perm::sql::compile(engine.database(), &sql).unwrap();
        let compiled_ex = Executor::new(engine.database());
        compiled_ex.bind_params(params.clone());
        let via_compiled = compiled_ex.execute(&plan).unwrap();
        let interp_ex = Executor::new(engine.database());
        interp_ex.bind_params(params.clone());
        let via_interpreter = interp_ex.execute_unoptimized(&plan).unwrap();

        for (label, other) in [
            ("cursor", &via_cursor),
            ("compiled executor", &via_compiled),
            ("interpreter", &via_interpreter),
        ] {
            assert!(
                via_session.bag_eq(other),
                "seed {seed}: session disagrees with {label} on `{sql}` \
                 with {params:?}:\n{via_session}\nvs\n{other}"
            );
        }
        checked += 1;
    }
    assert_eq!(checked, 80);
}

#[test]
fn session_provenance_agrees_with_the_deprecated_helper() {
    // The compatibility bar for the deprecated wrappers: same strategy, same
    // result, old path vs new path, on a seeded subset.
    let db = test_db();
    let engine = Engine::new(db);
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        // Parameter-free subset (the old helpers cannot bind parameters).
        let sql = loop {
            let candidate = random_sql(&mut rng);
            if !candidate.contains('$') {
                break candidate;
            }
        };
        let session = engine.session();
        let prepared = session.prepare_provenance(&sql).unwrap();
        let new_path = session.execute(&prepared, &[]).unwrap();
        #[allow(deprecated)]
        let old_path = perm::provenance_of_sql(engine.database(), &sql, Strategy::Auto).unwrap();
        assert!(
            new_path.bag_eq(&old_path),
            "seed {seed}: session and deprecated helper disagree on `{sql}`"
        );
    }
}
