//! End-to-end tests through the SQL front end: `SELECT PROVENANCE` queries
//! with nested subqueries, executed against the in-memory engine.

use perm::prelude::*;
use perm::SessionConfig;

/// Provenance of a SQL query through the Session API with an explicit
/// strategy (the Session-era spelling of the old `provenance_of_sql`).
fn provenance_of_sql(
    db: &Database,
    sql: &str,
    strategy: Strategy,
) -> Result<Relation, perm::PermError> {
    let session = Session::with_config(
        db,
        SessionConfig {
            strategy,
            ..SessionConfig::default()
        },
    );
    let prepared = session.prepare_provenance(sql)?;
    session.execute(&prepared, &[])
}

fn run(db: &Database, sql: &str) -> Result<Relation, perm::PermError> {
    Session::new(db).run(sql)
}

fn shop_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "items",
        Relation::from_rows(
            Schema::from_names(&["id", "name", "price"]).with_qualifier("items"),
            vec![
                vec![Value::Int(1), Value::str("keyboard"), Value::Int(30)],
                vec![Value::Int(2), Value::str("monitor"), Value::Int(220)],
                vec![Value::Int(3), Value::str("cable"), Value::Int(5)],
                vec![Value::Int(4), Value::str("laptop"), Value::Int(900)],
            ],
        ),
    )
    .unwrap();
    db.create_table(
        "orders",
        Relation::from_rows(
            Schema::from_names(&["order_id", "item_id", "qty"]).with_qualifier("orders"),
            vec![
                vec![Value::Int(100), Value::Int(1), Value::Int(2)],
                vec![Value::Int(101), Value::Int(2), Value::Int(1)],
                vec![Value::Int(102), Value::Int(2), Value::Int(3)],
                vec![Value::Int(103), Value::Int(3), Value::Int(10)],
            ],
        ),
    )
    .unwrap();
    db
}

#[test]
fn provenance_keyword_triggers_the_rewrite() {
    let db = shop_db();
    let plain = run(&db, "SELECT name FROM items WHERE price > 100").unwrap();
    assert_eq!(plain.schema().names(), vec!["name"]);
    let prov = run(&db, "SELECT PROVENANCE name FROM items WHERE price > 100").unwrap();
    assert_eq!(
        prov.schema().names(),
        vec![
            "name",
            "prov_items_id",
            "prov_items_name",
            "prov_items_price"
        ]
    );
    assert_eq!(plain.len(), prov.len());
}

#[test]
fn provenance_of_in_subquery_links_items_to_their_orders() {
    let db = shop_db();
    let sql = "SELECT PROVENANCE name FROM items \
               WHERE id IN (SELECT item_id FROM orders WHERE qty > 1)";
    let result = run(&db, sql).unwrap();
    // keyboard (order 100, qty 2), monitor (order 102, qty 3), cable (order
    // 103, qty 10) qualify; the monitor's qty-1 order must not appear.
    assert_eq!(result.len(), 3);
    let schema = result.schema();
    let prov_order = schema.resolve(None, "prov_orders_order_id").unwrap();
    let orders: Vec<i64> = result
        .tuples()
        .iter()
        .map(|t| t.get(prov_order).as_i64().unwrap())
        .collect();
    assert!(orders.contains(&100));
    assert!(orders.contains(&102));
    assert!(orders.contains(&103));
    assert!(!orders.contains(&101), "the qty-1 order did not contribute");
}

#[test]
fn not_exists_provenance_pads_missing_orders_with_null() {
    let db = shop_db();
    let sql = "SELECT PROVENANCE name FROM items \
               WHERE NOT EXISTS (SELECT * FROM orders WHERE orders.item_id = items.id)";
    let result = run(&db, sql).unwrap();
    // Only the laptop has no orders.
    assert_eq!(result.len(), 1);
    let schema = result.schema();
    let name = schema.resolve(None, "name").unwrap();
    let prov_order = schema.resolve(None, "prov_orders_order_id").unwrap();
    assert_eq!(result.tuples()[0].get(name), &Value::str("laptop"));
    assert!(result.tuples()[0].get(prov_order).is_null());
}

#[test]
fn strategies_agree_through_the_sql_interface() {
    let db = shop_db();
    let sql = "SELECT name FROM items WHERE id IN (SELECT item_id FROM orders WHERE qty > 1)";
    let reference = provenance_of_sql(&db, sql, Strategy::Gen).unwrap();
    for strategy in [
        Strategy::Left,
        Strategy::Move,
        Strategy::Unn,
        Strategy::Auto,
    ] {
        let result = provenance_of_sql(&db, sql, strategy).unwrap();
        assert!(
            result.set_eq(&reference),
            "{strategy} disagrees with Gen:\n{result}\nvs\n{reference}"
        );
    }
}

#[test]
fn aggregation_provenance_attributes_the_whole_group() {
    let db = shop_db();
    let sql = "SELECT PROVENANCE item_id, sum(qty) AS total \
               FROM orders GROUP BY item_id HAVING sum(qty) > 2";
    let result = run(&db, sql).unwrap();
    // Groups item 2 (qty 1+3=4) and item 3 (qty 10): item 2's group has two
    // contributing orders, item 3's group one — three provenance rows.
    assert_eq!(result.len(), 3);
    let schema = result.schema();
    let item = schema.resolve(None, "item_id").unwrap();
    let total = schema.resolve(None, "total").unwrap();
    for row in result.tuples() {
        match row.get(item).as_i64().unwrap() {
            2 => assert_eq!(row.get(total), &Value::Int(4)),
            3 => assert_eq!(row.get(total), &Value::Int(10)),
            other => panic!("unexpected group {other}"),
        }
    }
}

#[test]
fn scalar_subquery_provenance() {
    let db = shop_db();
    let sql = "SELECT PROVENANCE name FROM items \
               WHERE price = (SELECT max(price) FROM items)";
    let result = run(&db, sql).unwrap();
    assert_eq!(result.len(), 4, "all items feed the max() sublink");
    let schema = result.schema();
    let name = schema.resolve(None, "name").unwrap();
    for row in result.tuples() {
        assert_eq!(row.get(name), &Value::str("laptop"));
    }
}

#[test]
fn provenance_result_is_a_relation_usable_as_input() {
    // The single-relation representation can be registered as a table and
    // queried again — the property Section 3.1 emphasises.
    let db = shop_db();
    let prov = provenance_of_sql(
        &db,
        "SELECT name FROM items WHERE id IN (SELECT item_id FROM orders)",
        Strategy::Auto,
    )
    .unwrap();
    let mut db2 = shop_db();
    db2.create_table("item_provenance", prov).unwrap();
    let roundtrip = run(
        &db2,
        "SELECT DISTINCT prov_orders_order_id FROM item_provenance ORDER BY prov_orders_order_id",
    )
    .unwrap();
    assert_eq!(roundtrip.len(), 4);
}

#[test]
fn errors_are_reported_not_panicked() {
    let db = shop_db();
    assert!(run(&db, "SELECT nothing FROM missing_table").is_err());
    assert!(run(&db, "THIS IS NOT SQL").is_err());
    assert!(provenance_of_sql(&db, "SELECT * FROM items LIMIT abc", Strategy::Gen).is_err());
}
