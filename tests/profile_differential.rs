//! Differential testing of the per-operator profiles (`EXPLAIN ANALYZE`):
//! over a seeded slice of the shared nested-subquery SQL corpus
//! ([`perm_synthetic::sqlgen`], the same generator the session and
//! concurrent differential tests draw from), a profiled execution must
//! (a) reconcile exactly with the executor's `operators_evaluated`
//! counter, (b) leave the result bag unchanged against the unprofiled
//! session path, and (c) report layout-independent semantic counters
//! across the columnar, row-major-batched and per-tuple execution
//! layouts — timing, batch counts and fallback tallies may differ by
//! layout, but what ran and what it produced may not.

use perm::prelude::*;
use perm::ProfileNode;
use perm_synthetic::sqlgen::{corpus_case, corpus_database};

/// The layout-independent slice of one profile node, in preorder:
/// `(operator, detail, invocations, rows_out, is_sublink_root)`.
fn semantic_flatten(
    node: &ProfileNode,
    sublink: bool,
    out: &mut Vec<(String, String, u64, u64, bool)>,
) {
    out.push((
        node.operator.clone(),
        node.detail.clone(),
        node.invocations,
        node.rows_out,
        sublink,
    ));
    for child in &node.children {
        semantic_flatten(child, false, out);
    }
    for sub in &node.sublinks {
        semantic_flatten(sub, true, out);
    }
}

#[test]
fn profile_invocation_sums_reconcile_with_the_operator_counter() {
    let db = corpus_database();
    let engine = Engine::new(db);
    let session = engine.session();
    let mut nontrivial = 0usize;
    for seed in 0..60u64 {
        let case = corpus_case(seed);
        let sql = &case.sql;
        let prepared = session
            .prepare(sql)
            .unwrap_or_else(|e| panic!("seed {seed}: failed to prepare `{sql}`: {e}"));
        let params = case.params(prepared.param_count());
        let reference = session
            .execute(&prepared, &params)
            .unwrap_or_else(|e| panic!("seed {seed}: `{sql}` with {params:?} failed: {e}"));

        let (plan, _) = perm::sql::compile(engine.database(), sql).unwrap();
        let ex = Executor::new(engine.database());
        ex.bind_params(params.clone());
        let compiled = ex.prepare(&plan).unwrap();
        let before = ex.operators_evaluated();
        let (relation, profile) = ex
            .execute_profiled(&compiled)
            .unwrap_or_else(|e| panic!("seed {seed}: profiled `{sql}` failed: {e}"));
        let delta = ex.operators_evaluated() - before;

        assert_eq!(
            profile.total_invocations(),
            delta,
            "seed {seed}: per-node invocation sums diverge from operators_evaluated \
             on `{sql}`:\n{profile}"
        );
        assert!(
            relation.bag_eq(&reference),
            "seed {seed}: the profiled run changed the bag on `{sql}`"
        );
        if delta > 1 {
            nontrivial += 1;
        }
    }
    assert!(
        nontrivial > 30,
        "the corpus slice must mostly exercise multi-operator plans ({nontrivial} did)"
    );
}

#[test]
fn profiles_are_layout_independent_across_execution_modes() {
    let db = corpus_database();
    let engine = Engine::new(db);
    for seed in 0..40u64 {
        let case = corpus_case(seed);
        let sql = &case.sql;
        let (plan, _) = perm::sql::compile(engine.database(), sql).unwrap();
        let session = engine.session();
        let prepared = session.prepare(sql).unwrap();
        let params = case.params(prepared.param_count());

        // Columnar (the default), row-major batches, per-tuple dispatch.
        let mut flattened: Vec<(&str, Vec<_>)> = Vec::new();
        let mut relations = Vec::new();
        for (label, batching, columnar) in [
            ("columnar", true, true),
            ("row-major", true, false),
            ("per-tuple", false, false),
        ] {
            let ex = Executor::new(engine.database())
                .with_batching(batching)
                .with_columnar(columnar);
            ex.bind_params(params.clone());
            let compiled = ex.prepare(&plan).unwrap();
            let (relation, profile) = ex
                .execute_profiled(&compiled)
                .unwrap_or_else(|e| panic!("seed {seed}: {label} `{sql}` failed: {e}"));
            let mut semantic = Vec::new();
            semantic_flatten(&profile.root, false, &mut semantic);
            flattened.push((label, semantic));
            relations.push((label, relation));
        }
        let (ref_label, reference) = &flattened[0];
        for (label, semantic) in &flattened[1..] {
            assert_eq!(
                semantic, reference,
                "seed {seed}: {label} and {ref_label} profiles disagree on the \
                 layout-independent counters for `{sql}`"
            );
        }
        let (_, ref_relation) = &relations[0];
        for (label, relation) in &relations[1..] {
            assert!(
                relation.bag_eq(ref_relation),
                "seed {seed}: {label} changed the bag on `{sql}`"
            );
        }
    }
}
