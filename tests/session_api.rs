//! The serving-grade API end to end: prepared statements, `$n` parameters,
//! streaming cursors, structured provenance results, memo policy and error
//! chains — everything `ISSUE 3` promises of the `Engine`/`Session` facade.

use perm::prelude::*;
use perm::{PermError, SessionConfig};
use std::error::Error as _;

/// R(a, g) and S(c, g): a correlated workload with a low-cardinality group
/// attribute, mirroring the synthetic `q3` shape.
fn grouped_db() -> Database {
    let mut db = Database::new();
    db.create_table(
        "r",
        Relation::from_rows(
            Schema::from_names(&["a", "g"]).with_qualifier("r"),
            (0..12)
                .map(|i| vec![Value::Int(i), Value::Int(i % 3)])
                .collect(),
        ),
    )
    .unwrap();
    db.create_table(
        "s",
        Relation::from_rows(
            Schema::from_names(&["c", "g"]).with_qualifier("s"),
            (0..9)
                .map(|i| vec![Value::Int(10 * i), Value::Int(i % 3)])
                .collect(),
        ),
    )
    .unwrap();
    db
}

#[test]
fn prepared_reexecution_does_zero_frontend_work() {
    let db = grouped_db();
    let engine = Engine::new(db);
    let session = engine.session();
    let prepared = session
        .prepare("SELECT a FROM r WHERE a IN (SELECT c FROM s) OR a < $1")
        .unwrap();
    let after_prepare = session.stats();
    assert_eq!(after_prepare.parses, 1);
    assert_eq!(after_prepare.binds, 1);
    assert_eq!(after_prepare.rewrites, 0);
    assert_eq!(after_prepare.compiles, 1);
    assert_eq!(after_prepare.executions, 0);

    for bound in [3, 7, 11] {
        session.execute(&prepared, &[Value::Int(bound)]).unwrap();
    }
    let after = session.stats();
    // Re-execution is execution only: the front-end counters are frozen.
    assert_eq!(after.parses, 1);
    assert_eq!(after.binds, 1);
    assert_eq!(after.rewrites, 0);
    assert_eq!(after.compiles, 1, "counters must show one compile total");
    assert_eq!(after.executions, 3);
}

#[test]
fn parameters_change_results_without_recompiling() {
    let db = grouped_db();
    let engine = Engine::new(db);
    let session = engine.session();
    let prepared = session.prepare("SELECT a FROM r WHERE a < $1").unwrap();
    assert_eq!(prepared.param_count(), 1);
    assert_eq!(
        session.execute(&prepared, &[Value::Int(3)]).unwrap().len(),
        3
    );
    assert_eq!(
        session
            .execute(&prepared, &[Value::Int(100)])
            .unwrap()
            .len(),
        12
    );
    // Wrong arity is a statement error, not a silent NULL.
    assert!(matches!(
        session.execute(&prepared, &[]),
        Err(PermError::Param(_))
    ));
    assert!(matches!(
        session.execute(&prepared, &[Value::Int(1), Value::Int(2)]),
        Err(PermError::Param(_))
    ));
    assert_eq!(session.stats().compiles, 1);
}

#[test]
fn rows_cursor_streams_limit_without_full_materialisation() {
    // Row 0 divides cleanly; the last row would divide by zero. A LIMIT 1
    // must never evaluate it — on the streaming cursor *and* on the
    // materialising path, which routes a top-level LIMIT over a streamable
    // spine through the same batch-pull machinery. Without the limit the
    // poisoned row is reached and the statement fails.
    let mut db = Database::new();
    db.create_table(
        "t",
        Relation::from_rows(
            Schema::from_names(&["x"]).with_qualifier("t"),
            vec![vec![Value::Int(5)], vec![Value::Int(0)]],
        ),
    )
    .unwrap();
    let engine = Engine::new(db);
    let session = engine.session();
    let prepared = session
        .prepare("SELECT 10 / x AS y FROM t LIMIT 1")
        .unwrap();

    let materialised = session.execute(&prepared, &[]).unwrap();
    assert_eq!(
        materialised.len(),
        1,
        "execute must match Rows and never evaluate the tail"
    );
    assert_eq!(materialised.tuples()[0].get(0), &Value::Int(2));

    let unlimited = session.prepare("SELECT 10 / x AS y FROM t").unwrap();
    assert!(
        matches!(session.execute(&unlimited, &[]), Err(PermError::Exec(_))),
        "without the limit the poisoned row is reached"
    );

    let tuples: Vec<Tuple> = session
        .rows(&prepared, &[])
        .unwrap()
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(tuples.len(), 1);
    assert_eq!(tuples[0].get(0), &Value::Int(2));
}

#[test]
fn acceptance_correlated_provenance_with_parameter_three_bindings() {
    // The ISSUE 3 acceptance bar: a correlated `SELECT PROVENANCE` query
    // with a `$1` parameter, prepared once, executed with three different
    // bindings, returning correct per-binding witnesses via
    // `ProvenanceRows`, with one compile total.
    let db = grouped_db();
    let engine = Engine::new(db);
    let session = engine.session();
    let prepared = session
        .prepare(
            "SELECT PROVENANCE a FROM r \
             WHERE EXISTS (SELECT * FROM s WHERE s.g = r.g AND s.c > $1)",
        )
        .unwrap();
    assert!(prepared.descriptor().is_some());
    assert_eq!(prepared.param_count(), 1);

    for bound in [-1i64, 30, 75] {
        let rows = session
            .provenance_rows(&prepared, &[Value::Int(bound)])
            .unwrap();
        // Reference semantics, computed directly: r-rows whose group has an
        // s.c above the binding.
        let db = engine.database();
        let s = db.table("s").unwrap();
        let r = db.table("r").unwrap();
        let surviving: Vec<i64> = r
            .tuples()
            .iter()
            .filter(|rt| {
                s.tuples()
                    .iter()
                    .any(|st| st.get(1) == rt.get(1) && st.get(0).as_i64().unwrap() > bound)
            })
            .map(|rt| rt.get(0).as_i64().unwrap())
            .collect();
        let mut seen: Vec<i64> = rows
            .iter()
            .map(|row| row.output()[0].as_i64().unwrap())
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, surviving, "wrong output set for $1 = {bound}");

        // Witness structure: every row carries an `r` witness equal to its
        // own tuple and an `s` witness that satisfies the correlated,
        // parameterized predicate for THIS binding.
        for row in rows.iter() {
            let a = row.output()[0].as_i64().unwrap();
            let g = a % 3;
            let r_witness = row.witnesses().find(|w| w.table == "r").unwrap();
            assert_eq!(r_witness.tuple(), Some(&[Value::Int(a), Value::Int(g)][..]));
            let s_witness = row.witnesses().find(|w| w.table == "s").unwrap();
            let s_values = s_witness
                .tuple()
                .expect("a surviving row must have an s witness");
            assert_eq!(s_values[1], Value::Int(g), "witness from the right group");
            assert!(
                s_values[0].as_i64().unwrap() > bound,
                "witness must satisfy the $1 = {bound} binding, got {:?}",
                s_values
            );
        }
    }
    assert_eq!(session.stats().compiles, 1);
    assert_eq!(session.stats().rewrites, 1);
}

#[test]
fn prepared_memo_retention_is_policy_driven() {
    let db = grouped_db();
    let engine = Engine::new(db);

    // Default policy: memos are retained across executions of one prepared
    // statement, so the parameter-independent sublink runs once total.
    let session = engine.session();
    let prepared = session
        .prepare("SELECT a FROM r WHERE a IN (SELECT c FROM s)")
        .unwrap();
    session.execute(&prepared, &[]).unwrap();
    let first = session.executor().operators_evaluated();
    session.execute(&prepared, &[]).unwrap();
    let second = session.executor().operators_evaluated() - first;
    // First run: project + select + scan r + (project + scan s) = 5.
    // Second run: the sublink is a memo hit — the outer three only.
    assert_eq!(first, 5);
    assert_eq!(second, 3, "retained memo must skip the sublink re-run");

    // retain_memo = false keeps the ad-hoc clearing semantics.
    let session = engine.session_with(SessionConfig {
        retain_memo: false,
        ..SessionConfig::default()
    });
    let prepared = session
        .prepare("SELECT a FROM r WHERE a IN (SELECT c FROM s)")
        .unwrap();
    session.execute(&prepared, &[]).unwrap();
    let first = session.executor().operators_evaluated();
    session.execute(&prepared, &[]).unwrap();
    let second = session.executor().operators_evaluated() - first;
    assert_eq!(first, 5);
    assert_eq!(second, 5, "clearing policy must re-run the sublink");
}

#[test]
fn ad_hoc_run_clears_transient_memo_entries_even_under_retention() {
    // `Session::run` serves a transient statement whose sublink identities
    // are never reused; under the retention policy its memo entries would
    // leak forever, so run() clears the compiled memos afterwards. The
    // observable consequence asserted here: a previously warmed prepared
    // statement re-runs its sublink after an interleaved run().
    let db = grouped_db();
    let engine = Engine::new(db);
    let session = engine.session();
    let prepared = session
        .prepare("SELECT a FROM r WHERE a IN (SELECT c FROM s)")
        .unwrap();
    session.execute(&prepared, &[]).unwrap(); // warm: 5 ops
    session
        .run("SELECT a FROM r WHERE a IN (SELECT c FROM s)")
        .unwrap();
    let before = session.executor().operators_evaluated();
    session.execute(&prepared, &[]).unwrap();
    assert_eq!(
        session.executor().operators_evaluated() - before,
        5,
        "run() must have cleared the memos, forcing a full re-run"
    );
}

#[test]
fn parameter_values_participate_in_retained_memo_keys() {
    // A parameterized (but uncorrelated) sublink: retention may reuse the
    // result for a repeated binding but MUST recompute for a new one.
    let db = grouped_db();
    let engine = Engine::new(db);
    let session = engine.session();
    let prepared = session
        .prepare("SELECT a FROM r WHERE a IN (SELECT c / 10 FROM s WHERE c > $1)")
        .unwrap();

    let run = |bound: i64| {
        let before = session.executor().operators_evaluated();
        let rel = session.execute(&prepared, &[Value::Int(bound)]).unwrap();
        (session.executor().operators_evaluated() - before, rel)
    };
    let (ops_a, res_a) = run(30);
    let (ops_b, res_b) = run(30); // same binding: memo hit
    let (ops_c, res_c) = run(-1); // new binding: sublink must re-run
    assert_eq!(ops_a, 3 + 3, "outer three ops + 3-op sublink");
    assert_eq!(ops_b, 3, "repeated binding reuses the memo entry");
    assert_eq!(ops_c, 3 + 3, "new binding must not reuse the old result");
    assert!(res_a.bag_eq(&res_b));
    assert!(!res_a.bag_eq(&res_c), "different binding, different result");
}

#[test]
fn memo_capacity_bounds_are_configurable_and_correct() {
    // A capacity of 1 thrashes on a 3-group correlated query but must stay
    // correct; unbounded agrees with it.
    let db = grouped_db();
    let engine = Engine::new(db);
    let sql = "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.g = r.g)";

    // Memo-path test: keep the sublink a sublink (the optimizer would
    // decorrelate this shape into a semi join and never touch the memo).
    let bounded = engine.session_with(SessionConfig {
        memo_capacity: Some(1),
        optimize: false,
        ..SessionConfig::default()
    });
    let unbounded = engine.session_with(SessionConfig {
        optimize: false,
        ..SessionConfig::default()
    });
    let p_bounded = bounded.prepare(sql).unwrap();
    let p_unbounded = unbounded.prepare(sql).unwrap();
    let a = bounded.execute(&p_bounded, &[]).unwrap();
    let b = unbounded.execute(&p_unbounded, &[]).unwrap();
    assert!(a.bag_eq(&b));
    // The capacity-1 session had to re-execute evicted bindings.
    assert!(
        bounded.executor().operators_evaluated() > unbounded.executor().operators_evaluated(),
        "a thrashing LRU must do strictly more operator work"
    );
}

#[test]
fn tracer_config_subsumes_the_reference_path() {
    let db = grouped_db();
    let engine = Engine::new(db);
    let traced_session = engine.session_with(SessionConfig {
        tracer: true,
        ..SessionConfig::default()
    });
    let rewritten_session = engine.session();
    let sql = "SELECT PROVENANCE a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.g = r.g)";
    let traced = traced_session.prepare(sql).unwrap();
    let rewritten = rewritten_session.prepare(sql).unwrap();
    let t = traced_session.execute(&traced, &[]).unwrap();
    // The prepared schema must describe what execute() actually returns —
    // original attributes followed by the provenance attributes.
    assert_eq!(traced.schema().names(), t.schema().names());
    // The tracer interprets the plan directly: nothing was compiled.
    assert_eq!(traced_session.stats().compiles, 0);
    let r = rewritten_session.execute(&rewritten, &[]).unwrap();
    assert!(t.bag_eq(&r), "tracer and rewrite must agree:\n{t}\nvs\n{r}");
    // The structured view works on traced results too.
    let rows = traced_session.provenance_rows(&traced, &[]).unwrap();
    assert_eq!(rows.len(), t.len());
    // Tracer sessions reject parameters up front.
    assert!(matches!(
        traced_session.prepare("SELECT PROVENANCE a FROM r WHERE a < $1"),
        Err(PermError::Param(_))
    ));
}

#[test]
fn error_chains_surface_the_underlying_cause() {
    let db = grouped_db();
    let session = Session::new(&db);

    // Lexical error: the byte position must survive to the top-level
    // Display and the SqlError must be reachable via source().
    let err = session.prepare("SELECT 'oops").unwrap_err();
    let display = err.to_string();
    assert!(display.contains("sql error"), "{display}");
    assert!(display.contains("byte 7"), "{display}");
    let source = err.source().expect("PermError::Sql must have a source");
    assert!(source.to_string().contains("unterminated"));

    // Execution error: PermError -> ExecError -> StorageError, three levels.
    let prepared = session.prepare("SELECT missing_column FROM r").unwrap();
    let err = session.execute(&prepared, &[]).unwrap_err();
    assert!(err.to_string().contains("execution error"), "{err}");
    let exec = err.source().expect("PermError::Exec must have a source");
    let storage = exec
        .source()
        .expect("ExecError::Storage must chain to the StorageError");
    assert!(storage.to_string().contains("missing_column"));
}

#[test]
fn provenance_rows_split_output_and_witness_groups() {
    let db = grouped_db();
    let engine = Engine::new(db);
    let session = engine.session();
    let prepared = session
        .prepare("SELECT PROVENANCE a FROM r WHERE a IN (SELECT c FROM s)")
        .unwrap();
    let rows = session.provenance_rows(&prepared, &[]).unwrap();
    assert_eq!(rows.output_schema().names(), vec!["a"]);
    let descriptor = prepared.descriptor().unwrap();
    assert_eq!(descriptor.len(), 2, "two base-relation accesses: r and s");
    for row in rows.iter() {
        let tables: Vec<&str> = row.witnesses().map(|w| w.table).collect();
        assert_eq!(tables, vec!["r", "s"]);
        assert_eq!(row.witness(0).unwrap().tuple().unwrap().len(), 2);
    }
    // A plain statement refuses the provenance view.
    let plain = session.prepare("SELECT a FROM r").unwrap();
    assert!(matches!(
        session.provenance_rows(&plain, &[]),
        Err(PermError::Param(_))
    ));
}

#[test]
fn streaming_rows_work_with_parameters_and_provenance() {
    let db = grouped_db();
    let engine = Engine::new(db);
    let session = engine.session();
    let prepared = session
        .prepare("SELECT PROVENANCE a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.g = r.g AND s.c > $1)")
        .unwrap();
    let streamed: Vec<Tuple> = session
        .rows(&prepared, &[Value::Int(30)])
        .unwrap()
        .collect::<Result<_, _>>()
        .unwrap();
    let materialised = session.execute(&prepared, &[Value::Int(30)]).unwrap();
    assert_eq!(streamed.len(), materialised.len());
}

#[test]
fn plan_cache_amortizes_preparation_across_sessions() {
    let engine = Engine::new(grouped_db());
    let sql = "SELECT a FROM r WHERE a IN (SELECT c FROM s WHERE s.g = r.g)";
    let first = engine.session();
    let stmt_a = first.prepare(sql).unwrap();
    assert_eq!(first.stats().plan_cache_misses, 1);
    assert_eq!(first.stats().compiles, 1);

    // A *different* session gets the same statement back, compiling nothing.
    let second = engine.session();
    let stmt_b = second.prepare(sql).unwrap();
    assert!(std::sync::Arc::ptr_eq(&stmt_a, &stmt_b));
    let stats = second.stats();
    assert_eq!(stats.plan_cache_hits, 1);
    assert_eq!(stats.parses, 0);
    assert_eq!(stats.binds, 0);
    assert_eq!(stats.compiles, 0);
    assert_eq!(engine.plan_cache_stats().entries, 1);

    // Plain and forced-provenance preparations of one text are distinct
    // entries (they produce different plans).
    let forced = second.prepare_provenance(sql).unwrap();
    assert!(forced.descriptor().is_some());
    assert!(stmt_a.descriptor().is_none());
    assert_eq!(engine.plan_cache_stats().entries, 2);

    // Sessions opened directly over the database prepare privately.
    let detached = Session::new(engine.database());
    let stmt_c = detached.prepare(sql).unwrap();
    assert!(!std::sync::Arc::ptr_eq(&stmt_a, &stmt_c));
    assert_eq!(engine.plan_cache_stats().entries, 2);
}

#[test]
fn plan_cache_capacity_evicts_in_insertion_order() {
    let engine = Engine::new(grouped_db()).with_plan_cache_capacity(Some(2));
    let session = engine.session();
    let texts = [
        "SELECT a FROM r WHERE a < 1",
        "SELECT a FROM r WHERE a < 2",
        "SELECT a FROM r WHERE a < 3",
    ];
    for sql in texts {
        session.prepare(sql).unwrap();
    }
    let stats = engine.plan_cache_stats();
    assert_eq!(stats.entries, 2, "capacity bound holds: {stats:?}");
    // The oldest text was evicted: preparing it again is a miss (and
    // re-enters, evicting the then-oldest), the newest is still a hit.
    session.prepare(texts[0]).unwrap();
    session.prepare(texts[2]).unwrap();
    let stats = session.stats();
    assert_eq!(stats.plan_cache_misses, 4);
    assert_eq!(stats.plan_cache_hits, 1);
}

#[test]
fn database_mut_invalidates_plan_cache_and_session_attached_shared_memos() {
    use perm::SharedSublinkMemo;
    use std::sync::Arc;

    let mut engine = Engine::new(grouped_db());
    let memo = SharedSublinkMemo::new();
    // Memo-path test: disable the optimizer so the correlated EXISTS stays
    // a sublink and actually warms the shared memo.
    let config = SessionConfig {
        shared_sublink_memo: Some(Arc::clone(&memo)),
        optimize: false,
        ..SessionConfig::default()
    };
    // The memo is attached via `session_with` only — the engine's own
    // default config knows nothing about it. `database_mut` must still
    // invalidate it (the engine registers attached memos weakly).
    let sql = "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.g = r.g)";
    let prepared = {
        let session = engine.session_with(config.clone());
        let prepared = session.prepare(sql).unwrap();
        let before = session.execute(&prepared, &[]).unwrap();
        assert_eq!(before.len(), 12, "every r row has a matching s group");
        prepared
    };
    assert!(memo.entry_count() > 0, "execution warmed the shared memo");
    assert_eq!(engine.plan_cache_stats().entries, 1);

    // Empty `s`: now *no* row of `r` has a witness.
    engine.database_mut().create_or_replace_table(
        "s",
        Relation::from_rows(Schema::from_names(&["c", "g"]).with_qualifier("s"), vec![]),
    );
    assert_eq!(memo.entry_count(), 0, "attached memo was invalidated");
    assert_eq!(engine.plan_cache_stats().entries, 0);

    // Re-executing the *held* statement on a fresh memo-attached session
    // must see the new data, not stale cached sublink results.
    let session = engine.session_with(config);
    let after = session.execute(&prepared, &[]).unwrap();
    assert!(
        after.is_empty(),
        "stale shared-memo entries served: {after}"
    );
}

#[test]
fn an_expired_deadline_does_not_poison_later_executions() {
    use perm::ExecError;
    use std::time::Duration;

    let db = grouped_db();
    let engine = Engine::new(db);
    let session = engine.session();
    let prepared = session
        .prepare("SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.g = r.g)")
        .unwrap();

    // A zero deadline cancels at the first checkpoint, before any work.
    match session.execute_with_deadline(&prepared, &[], Duration::ZERO) {
        Err(PermError::Exec(ExecError::Cancelled { .. })) => {}
        other => panic!("expected a cancellation, got {other:?}"),
    }

    // The expired token must not leak into the next, deadline-less
    // execution of the same session — deadline tokens are minted (and
    // retired) per execution.
    let rows = session
        .execute(&prepared, &[])
        .expect("the session must keep serving after a deadline expiry");
    assert_eq!(rows.len(), 12);

    // And a fresh per-call deadline gets its full budget, not the stale
    // expired one.
    let rows = session
        .execute_with_deadline(&prepared, &[], Duration::from_secs(60))
        .expect("a generous fresh deadline must not cancel");
    assert_eq!(rows.len(), 12);
}

#[test]
fn columnar_stats_count_blocks_and_fallbacks() {
    let db = grouped_db();
    let engine = Engine::new(db);

    // A sublink-free integer filter runs entirely on typed column lanes:
    // blocks are materialised, nothing falls back.
    let session = engine.session();
    let prepared = session.prepare("SELECT a FROM r WHERE a < 6").unwrap();
    let typed_rows = session.execute(&prepared, &[]).unwrap();
    assert_eq!(typed_rows.len(), 6);
    let stats = session.stats();
    assert!(
        stats.columnar_blocks > 0,
        "the typed filter must materialise at least one column block"
    );
    assert_eq!(
        stats.columnar_fallback_rows, 0,
        "an all-Int comparison has a typed kernel — no row may fall back"
    );
    assert!(stats.vectorized_batches > 0);

    // A sublink-bearing predicate keeps the memo seam: its rows fall back
    // to the per-tuple evaluator and are counted on *both* fallback
    // counters (the columnar one also covers mixed-type lanes).
    let prepared = session
        .prepare("SELECT a FROM r WHERE a IN (SELECT c FROM s)")
        .unwrap();
    session.execute(&prepared, &[]).unwrap();
    let stats = session.stats();
    assert!(stats.sublink_fallback_rows > 0);
    assert!(
        stats.columnar_fallback_rows >= stats.sublink_fallback_rows,
        "sublink rows are a subset of the columnar fallback rows"
    );

    // Columnar off: the row-major vectorized path — same results, no
    // blocks, no columnar fallbacks.
    let row_major = engine.session_with(SessionConfig {
        columnar: false,
        ..SessionConfig::default()
    });
    let prepared = row_major.prepare("SELECT a FROM r WHERE a < 6").unwrap();
    let row_major_rows = row_major.execute(&prepared, &[]).unwrap();
    assert!(row_major_rows.bag_eq(&typed_rows));
    let stats = row_major.stats();
    assert_eq!(stats.columnar_blocks, 0);
    assert_eq!(stats.columnar_fallback_rows, 0);
    assert!(stats.vectorized_batches > 0, "batching itself stays on");
}

#[test]
fn stats_counters_accumulate_monotonically_over_the_session_life() {
    // The documented contract (`SessionStats` — *Counter semantics*):
    // nothing resets between executions. Totals accumulate over the
    // session's life, `peak_bytes` and `degradation` are high-water marks,
    // and `buffer_pool_capacity` is a configuration gauge — so every
    // numeric field must be non-decreasing across consecutive snapshots.
    use perm::SessionStats;
    type Counter = (&'static str, fn(&SessionStats) -> u64);
    let db = grouped_db();
    let engine = Engine::new(db);
    let session = engine.session();
    let counters: &[Counter] = &[
        ("parses", |s| s.parses),
        ("binds", |s| s.binds),
        ("rewrites", |s| s.rewrites),
        ("optimizer_rules_fired", |s| s.optimizer_rules_fired),
        ("sublinks_decorrelated", |s| s.sublinks_decorrelated),
        ("compiles", |s| s.compiles),
        ("executions", |s| s.executions),
        ("plan_cache_hits", |s| s.plan_cache_hits),
        ("plan_cache_misses", |s| s.plan_cache_misses),
        ("vectorized_batches", |s| s.vectorized_batches),
        ("sublink_fallback_rows", |s| s.sublink_fallback_rows),
        ("columnar_blocks", |s| s.columnar_blocks),
        ("columnar_fallback_rows", |s| s.columnar_fallback_rows),
        ("cancel_checks", |s| s.cancel_checks),
        ("peak_bytes", |s| s.peak_bytes),
        ("spilled_bytes", |s| s.spilled_bytes),
        ("spill_partitions", |s| s.spill_partitions),
        ("buffer_pool_hits", |s| s.buffer_pool_hits),
        ("buffer_pool_misses", |s| s.buffer_pool_misses),
        ("buffer_pool_evictions", |s| s.buffer_pool_evictions),
        ("buffer_pool_capacity", |s| s.buffer_pool_capacity),
    ];
    let mut previous = session.stats();
    for sql in [
        "SELECT a FROM r WHERE a IN (SELECT c FROM s)",
        "SELECT PROVENANCE a FROM r WHERE a < 9",
        "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.g = r.g)",
        "SELECT g FROM r",
    ] {
        let prepared = session.prepare(sql).unwrap();
        session.execute(&prepared, &[]).unwrap();
        let current = session.stats();
        for (name, get) in counters {
            assert!(
                get(&current) >= get(&previous),
                "{name} decreased between executions ({} -> {}) after `{sql}`",
                get(&previous),
                get(&current)
            );
        }
        assert!(
            current.degradation >= previous.degradation,
            "the degradation high-water mark moved back after `{sql}`"
        );
        assert_eq!(current.executions, previous.executions + 1);
        previous = current;
    }
    assert_eq!(previous.parses, 4);
    assert_eq!(previous.executions, 4);
    assert_eq!(previous.rewrites, 1, "one statement carried PROVENANCE");
}

#[test]
fn optimizer_counters_advance_on_prepare_and_freeze_like_compiles() {
    // `optimizer_rules_fired` / `sublinks_decorrelated` follow the same
    // contract as `compiles`: they advance when a statement is prepared
    // fresh, and neither execution nor a plan-cache hit moves them.
    let db = grouped_db();
    let engine = Engine::new(db);
    let session = engine.session();

    let correlated = "SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.g = r.g)";
    let prepared = session.prepare(correlated).unwrap();
    let after_prepare = session.stats();
    assert_eq!(
        after_prepare.sublinks_decorrelated, 1,
        "the correlated EXISTS must decorrelate into a semi join"
    );
    assert!(after_prepare.optimizer_rules_fired >= after_prepare.sublinks_decorrelated);

    for _ in 0..3 {
        session.execute(&prepared, &[]).unwrap();
    }
    // Re-preparing the same text is a plan-cache hit: no optimizer work.
    let _again = session.prepare(correlated).unwrap();
    let after = session.stats();
    assert_eq!(after.sublinks_decorrelated, 1);
    assert_eq!(
        after.optimizer_rules_fired,
        after_prepare.optimizer_rules_fired
    );
    assert!(after.plan_cache_hits > 0);

    // With the optimizer off, both counters stay at zero — and the results
    // still agree with the optimized session.
    let off = engine.session_with(SessionConfig {
        optimize: false,
        ..SessionConfig::default()
    });
    let p_off = off.prepare(correlated).unwrap();
    let r_off = off.execute(&p_off, &[]).unwrap();
    assert_eq!(off.stats().optimizer_rules_fired, 0);
    assert_eq!(off.stats().sublinks_decorrelated, 0);
    let r_on = session.execute(&prepared, &[]).unwrap();
    assert!(r_on.bag_eq(&r_off));
}

#[test]
fn explain_surfaces_the_bound_to_optimized_plan_diff() {
    // One `explain` call shows the pre-optimization bound shape, the
    // optimized logical plan and the rules that fired — so the
    // decorrelation diff is visible without a second session.
    let db = grouped_db();
    let engine = Engine::new(db);
    let session = engine.session();
    let profile = session
        .explain("SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.g = r.g)")
        .unwrap();
    let bound = profile.bound_plan.as_deref().expect("bound plan annotated");
    let optimized = profile
        .optimized_plan
        .as_deref()
        .expect("optimized plan annotated");
    let rules = profile
        .optimizer
        .as_deref()
        .expect("rule summary annotated");
    assert!(
        bound.contains("EXISTS") || bound.to_lowercase().contains("sublink"),
        "bound shape keeps the sublink:\n{bound}"
    );
    assert!(
        optimized.contains('⋉') || optimized.to_lowercase().contains("semi"),
        "optimized shape shows the semi join:\n{optimized}"
    );
    assert!(
        rules.contains("decorrelate"),
        "summary names the rule: {rules}"
    );
    let rendered = profile.render();
    for header in ["bound plan:", "optimized plan", "physical plan:"] {
        assert!(
            rendered.contains(header),
            "render misses `{header}`:\n{rendered}"
        );
    }

    // EXPLAIN ANALYZE carries the same annotations alongside actuals.
    let analyzed = session
        .explain_analyze("SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.g = r.g)")
        .unwrap();
    assert!(analyzed.bound_plan.is_some() && analyzed.optimizer.is_some());

    // With the optimizer off there is no diff to show.
    let off = engine.session_with(SessionConfig {
        optimize: false,
        ..SessionConfig::default()
    });
    let bare = off
        .explain("SELECT a FROM r WHERE EXISTS (SELECT * FROM s WHERE s.g = r.g)")
        .unwrap();
    assert!(bare.bound_plan.is_none() && bare.optimized_plan.is_none() && bare.optimizer.is_none());
}

#[test]
fn spill_sessions_report_buffer_pool_churn_and_capacity() {
    // The buffer-pool fields on `SessionStats`: a starvation budget with
    // spill enabled must surface the configured pool capacity (a gauge,
    // zero until a spill manager exists) and the pool traffic incurred
    // while reading runs back.
    let mut db = Database::new();
    db.create_table(
        "big",
        Relation::from_rows(
            Schema::from_names(&["k", "v"]).with_qualifier("big"),
            (0..3000)
                .map(|i| vec![Value::Int((i * 37) % 1000), Value::Int(i)])
                .collect(),
        ),
    )
    .unwrap();
    let engine = Engine::new(db);
    let session = engine.session_with(SessionConfig {
        memory_budget: Some(8 << 10),
        spill: true,
        ..SessionConfig::default()
    });
    let prepared = session.prepare("SELECT k, v FROM big ORDER BY k").unwrap();
    let rows = session.execute(&prepared, &[]).unwrap();
    assert_eq!(rows.len(), 3000);
    let stats = session.stats();
    assert!(
        stats.spilled_bytes > 0,
        "an 8KB budget must push the sort out of core"
    );
    assert!(
        stats.buffer_pool_capacity > 0,
        "a spill manager must bring a configured pool capacity"
    );
    assert!(
        stats.buffer_pool_hits + stats.buffer_pool_misses > 0,
        "reading spilled runs back must go through the buffer pool"
    );
}
