//! The serving-grade API: an [`Engine`] owning the data, [`Session`]s that
//! prepare and execute statements, [`Prepared`] statements that carry the
//! whole parse → bind → rewrite → compile pipeline exactly once, and
//! structured results ([`Rows`] cursors and [`ProvenanceRows`] witness
//! views).
//!
//! The Perm approach computes provenance *inside* the relational model
//! precisely so an unmodified engine can serve it like any other query.
//! This module is the serving side of that bargain: a query — provenance or
//! plain — is prepared once and executed many times with different `$1`-style
//! parameter bindings, paying per execution only for execution.
//!
//! ```
//! use perm::{Engine, Value};
//! use perm::{Database, Relation, Schema};
//!
//! let mut db = Database::new();
//! db.create_table("items", Relation::from_rows(
//!     Schema::from_names(&["id", "price"]).with_qualifier("items"),
//!     vec![vec![Value::Int(1), Value::Int(10)], vec![Value::Int(2), Value::Int(99)]],
//! )).unwrap();
//!
//! let engine = Engine::new(db);
//! let session = engine.session();
//! let expensive = session.prepare("SELECT id FROM items WHERE price > $1").unwrap();
//! assert_eq!(session.execute(&expensive, &[Value::Int(50)]).unwrap().len(), 1);
//! assert_eq!(session.execute(&expensive, &[Value::Int(5)]).unwrap().len(), 2);
//! // Two executions, one compilation.
//! assert_eq!(session.stats().compiles, 1);
//! ```

use crate::PermError;
use perm_algebra::Plan;
use perm_core::tracer::Tracer;
use perm_core::{ProvenanceDescriptor, ProvenanceQuery, Strategy};
use perm_core::{TraceEvent, TraceKind, TraceSink};
use perm_exec::{
    CancelToken, Degradation, Executor, FaultPlan, QueryProfile, SharedSublinkMemo, TraceSignal,
};
use perm_storage::{Database, Relation, Schema, Tuple, Value};
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

/// Re-export of the executor's streaming cursor: `Iterator<Item =
/// Result<Tuple, ExecError>>`. See [`Session::rows`].
pub use perm_exec::Rows;

/// The owning entry point: a database plus the default session
/// configuration and the **cross-session plan cache**. An engine is the
/// long-lived object of a serving process; each worker opens its own
/// (cheap) [`Session`] against it, and a statement prepared by any of them
/// is a cache hit for all of them.
pub struct Engine {
    db: Database,
    config: SessionConfig,
    plan_cache: PlanCache,
    /// Every shared sublink memo a session of this engine has attached
    /// (weakly, so the registry never keeps a memo alive): the set
    /// [`Engine::database_mut`] must invalidate, since cached sublink
    /// results are functions of the data. Deduplicated by pointer.
    attached_memos: Mutex<Vec<Weak<SharedSublinkMemo>>>,
}

impl Engine {
    /// Creates an engine over a database with the default
    /// [`SessionConfig`].
    pub fn new(db: Database) -> Engine {
        Engine {
            db,
            config: SessionConfig::default(),
            plan_cache: PlanCache::default(),
            attached_memos: Mutex::new(Vec::new()),
        }
    }

    /// Replaces the default configuration handed to [`Engine::session`].
    pub fn with_config(mut self, config: SessionConfig) -> Engine {
        self.config = config;
        self
    }

    /// Bounds the cross-session plan cache to at most `capacity` cached
    /// statements (insertion-order eviction; an evicted statement that is
    /// still hot simply re-enters on its next preparation). `None` — the
    /// default — keeps it unbounded, which is right when clients use `$n`
    /// parameters; bound it when serving ad-hoc texts with inlined
    /// literals, where every request is a new cache key.
    pub fn with_plan_cache_capacity(self, capacity: Option<usize>) -> Engine {
        self.plan_cache.set_capacity(capacity);
        self
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The default configuration handed to [`Engine::session`].
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Mutable access to the database (loading tables, etc.). Note that
    /// sessions borrow the engine, so data loading happens between
    /// sessions, not under them — exactly the exclusivity the borrow
    /// checker enforces.
    ///
    /// Taking this invalidates everything derived from the data: the
    /// cross-session plan cache (prepared statements bind against catalog
    /// schemas), the configured shared sublink memo, and every shared
    /// sublink memo any session of this engine has attached (cached
    /// sublink results are functions of the data; the engine remembers
    /// attached memos weakly for exactly this moment).
    pub fn database_mut(&mut self) -> &mut Database {
        self.plan_cache.clear();
        if let Some(memo) = &self.config.shared_sublink_memo {
            memo.clear();
        }
        let mut attached = self.attached_memos.lock().expect("memo registry poisoned");
        attached.retain(|weak| match weak.upgrade() {
            Some(memo) => {
                memo.clear();
                true
            }
            None => false,
        });
        &mut self.db
    }

    /// Opens a session with the engine's default configuration.
    pub fn session(&self) -> Session<'_> {
        self.session_with(self.config.clone())
    }

    /// Opens a session with an explicit configuration.
    pub fn session_with(&self, config: SessionConfig) -> Session<'_> {
        if let Some(memo) = &config.shared_sublink_memo {
            self.register_memo(memo);
        }
        let mut session = Session::with_config(&self.db, config);
        session.plan_cache = Some(&self.plan_cache);
        session
    }

    /// Remembers a session-attached shared memo (weakly, deduplicated) so
    /// [`Engine::database_mut`] can invalidate it.
    fn register_memo(&self, memo: &Arc<SharedSublinkMemo>) {
        let mut attached = self.attached_memos.lock().expect("memo registry poisoned");
        attached.retain(|weak| weak.strong_count() > 0);
        if !attached
            .iter()
            .any(|weak| weak.as_ptr() == Arc::as_ptr(memo))
        {
            attached.push(Arc::downgrade(memo));
        }
    }

    /// Hit/miss/entry counters of the cross-session plan cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Drops every cached prepared statement (counters keep running).
    /// Statements already handed out stay valid — the cache holds `Arc`s.
    pub fn clear_plan_cache(&self) {
        self.plan_cache.clear();
    }
}

/// The cache key of one prepared statement: the SQL text plus the parts of
/// the [`SessionConfig`] that shape the *prepared form* — the rewrite
/// strategy and the tracer toggle, and whether provenance was forced by
/// [`Session::prepare_provenance`] rather than the `SELECT PROVENANCE`
/// marker (which lives in the text itself). Execution-only knobs (memo
/// toggles, capacities, retention) are deliberately *not* part of the key:
/// sessions differing only in those share one compiled plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    sql: String,
    forced_provenance: bool,
    strategy: Strategy,
    tracer: bool,
    optimize: bool,
}

/// The engine's cross-session plan cache: SQL text (+ config fingerprint)
/// → shared [`Prepared`]. A plain mutex-guarded map — preparation is rare
/// and expensive next to execution, so one lock is not a bottleneck; the
/// hot path (execution) never touches it. An optional capacity bound
/// ([`Engine::with_plan_cache_capacity`]) evicts in insertion order.
#[derive(Default)]
struct PlanCache {
    inner: Mutex<PlanCacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Default)]
struct PlanCacheInner {
    map: HashMap<PlanKey, Arc<Prepared>>,
    /// Insertion order of the live keys, for capacity eviction. Only
    /// maintained while a capacity is set (empty otherwise).
    order: VecDeque<PlanKey>,
    capacity: Option<usize>,
}

impl PlanCacheInner {
    fn evict_over_capacity(&mut self) {
        let Some(capacity) = self.capacity else {
            return;
        };
        while self.map.len() > capacity.max(1) {
            match self.order.pop_front() {
                Some(oldest) => {
                    self.map.remove(&oldest);
                }
                None => {
                    // Entries inserted while unbounded have no order record;
                    // rebuild it (arbitrary order is a valid insertion
                    // history for them) and retry.
                    self.order = self.map.keys().cloned().collect();
                    if self.order.is_empty() {
                        break;
                    }
                }
            }
        }
    }
}

impl PlanCache {
    fn set_capacity(&self, capacity: Option<usize>) {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.capacity = capacity;
        if capacity.is_none() {
            inner.order.clear();
        }
        inner.evict_over_capacity();
    }

    fn get(&self, key: &PlanKey) -> Option<Arc<Prepared>> {
        let hit = self
            .inner
            .lock()
            .expect("plan cache poisoned")
            .map
            .get(key)
            .cloned();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Inserts a freshly prepared statement and returns the *canonical*
    /// one: two sessions racing to prepare the same statement both get
    /// here, the incumbent wins, and the loser's compilation is discarded
    /// — including by its own preparer, which adopts the returned
    /// incumbent so every holder shares one set of sublink ids (and hence
    /// one set of shared-memo keys).
    fn insert(&self, key: PlanKey, prepared: Arc<Prepared>) -> Arc<Prepared> {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        if let Some(incumbent) = inner.map.get(&key) {
            return Arc::clone(incumbent);
        }
        if inner.capacity.is_some() {
            inner.order.push_back(key.clone());
        }
        inner.map.insert(key, Arc::clone(&prepared));
        inner.evict_over_capacity();
        prepared
    }

    fn clear(&self) {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.map.clear();
        inner.order.clear();
    }

    fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.inner.lock().expect("plan cache poisoned").map.len(),
        }
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.stats().fmt(f)
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("tables", &self.db.table_names())
            .field("config", &self.config)
            .field("plan_cache", &self.plan_cache)
            .finish()
    }
}

/// Counters of the engine-wide plan cache ([`Engine::plan_cache_stats`]).
/// Per-session views of the same traffic are on [`SessionStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Preparations served from the cache (no parse/bind/rewrite/compile).
    pub hits: u64,
    /// Preparations that had to run the full pipeline.
    pub misses: u64,
    /// Statements currently cached.
    pub entries: usize,
}

/// Session configuration: every execution toggle that used to be scattered
/// across free functions and executor builder methods, in one place.
#[derive(Clone)]
pub struct SessionConfig {
    /// The provenance rewrite strategy (default [`Strategy::Auto`]).
    pub strategy: Strategy,
    /// Whether correlated sublinks are memoized per distinct binding
    /// (default `true`; the uncorrelated InitPlan caching stays on either
    /// way).
    pub sublink_memo: bool,
    /// Optional LRU bound on each sublink/verdict memo (default `None`,
    /// i.e. unbounded — the established behaviour). Bounding the memos
    /// trades repeated sublink work for bounded memory on
    /// high-cardinality correlations.
    pub memo_capacity: Option<usize>,
    /// Whether memo entries are retained across executions of the same
    /// [`Prepared`] statement (default `true` — parameter values are part
    /// of every memo key, so reuse is safe and is the point of preparing).
    /// Ad-hoc [`Session::run`] under `false` keeps the classic
    /// clear-per-execution semantics.
    pub retain_memo: bool,
    /// Whether compiled expressions are evaluated **vectorized** over tuple
    /// batches (default `true`): one dispatch per expression per batch of
    /// up to [`perm_exec::BATCH_ROWS`] rows instead of one per tuple.
    /// Results and errors are identical either way; `false` restores the
    /// per-tuple dispatch profile (the `harness batch` measurement
    /// baseline).
    pub batching: bool,
    /// Whether vectorized expressions run over **typed column lanes**
    /// (default `true`): each batch lazily transposes into a column block
    /// of typed vectors with validity bitmaps, and comparison/arithmetic
    /// dispatch to contiguous-slice kernels. Only meaningful while
    /// [`SessionConfig::batching`] is on; `false` keeps the row-major
    /// `Value`-at-a-time vectorized dispatch (the columnar measurement
    /// baseline of `harness batch`). Results and errors are identical
    /// either way.
    pub columnar: bool,
    /// Whether prepared plans run through the algebraic optimizer
    /// ([`perm_exec::optimize()`]) between the (provenance) rewrite and
    /// compilation (default `true`). The headline rule decorrelates
    /// `EXISTS` / `NOT EXISTS` / `IN` / `= ANY` sublinks into hash
    /// semi/anti joins; predicate pushdown, projection pruning and constant
    /// folding ride in the same fixpoint. Results, errors and provenance
    /// witnesses are identical either way (differentially tested); `false`
    /// keeps the memo-only plan shape — the measurement baseline of
    /// `harness opt`. Part of the plan-cache key: the prepared form
    /// differs.
    pub optimize: bool,
    /// Compute provenance with the reference tracer instead of the rewrite
    /// strategies (default `false`). The tracer is the paper's closed-form
    /// characterisation evaluated tuple by tuple — the test oracle — and
    /// does not support query parameters or streaming.
    pub tracer: bool,
    /// Optional cross-thread sublink memo (default `None`). When set, every
    /// session opened with this configuration attaches the memo to its
    /// executor ([`perm_exec::Executor::with_shared_memo`]), so compiled
    /// correlated-sublink results and `ANY`/`ALL` verdicts are shared
    /// between sessions — across worker threads. The concurrent serving
    /// subsystem (`perm-serve`) sets this for its worker sessions; combine
    /// with `retain_memo` (the default) so the warmed entries survive
    /// between executions.
    ///
    /// A shared memo is engine-lifecycle state: sessions never clear it
    /// (only [`Engine::database_mut`] or the owner does), so entries from
    /// statements that bypass the plan cache — [`Session::prepare_plan`],
    /// or any preparation repeated after a cache clear — are keyed by
    /// sublink ids that later preparations never reuse and sit there as
    /// dead weight. Serve plan-cached SQL statements through it (their ids
    /// are stable, so entries keep hitting), and bound it with
    /// [`SharedSublinkMemo::with_config`] when the workload also carries
    /// ad-hoc traffic.
    pub shared_sublink_memo: Option<Arc<SharedSublinkMemo>>,
    /// Optional per-execution deadline (default `None`). When set, every
    /// [`Session::execute`]/[`Session::rows`] call mints a fresh
    /// [`CancelToken`] with this time budget; an execution that overruns it
    /// is cancelled cooperatively at the next batch boundary and surfaces
    /// as [`perm_exec::ExecError::Cancelled`]. Per-call override:
    /// [`Session::execute_with_deadline`]. Not part of the plan-cache key —
    /// sessions differing only in deadline share compiled plans.
    pub deadline: Option<Duration>,
    /// Optional memory budget in bytes for the session's executor (default
    /// `None` = unbounded). Execution state (join build tables, aggregation
    /// groups, sort keys) and memo entries are accounted against it; under
    /// pressure the memos are reclaimed first (a speed loss, not an error),
    /// and only when an operator still cannot grow does execution fail with
    /// [`perm_exec::ExecError::ResourceExhausted`] naming the operator.
    /// Execution-only, like the memo knobs: not part of the plan-cache key.
    pub memory_budget: Option<u64>,
    /// Whether execution may **spill to disk** under memory pressure
    /// (default `false`). With a [`SessionConfig::memory_budget`] set and
    /// spilling on, the growing operators go out of core instead of
    /// failing — grace hash join, external merge sort, partitioned
    /// aggregation — and reclaimed sublink-memo entries are persisted for
    /// reload instead of dropped, demoting
    /// [`perm_exec::ExecError::ResourceExhausted`] to a last resort.
    /// Results are bag- and order-identical to in-memory execution; the
    /// spill counters on [`SessionStats`] and
    /// [`SessionStats::degradation`] record what happened. Execution-only:
    /// not part of the plan-cache key.
    pub spill: bool,
    /// Base directory for spill files (default `None` = the system temp
    /// dir). The session's executor creates a process-unique subdirectory
    /// inside it and removes that subdirectory when the session drops.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Deterministic fault injection for resilience testing (default
    /// `None`): the plan is installed on the session's executor and fires
    /// at the configured N-th checkpoint/memo/operator event. Serving
    /// tests use this to provoke cancellations, budget exhaustion and
    /// worker panics at exact, reproducible points.
    pub fault_plan: Option<FaultPlan>,
    /// Optional structured-trace sink (default `None`). When set, every
    /// session opened with this configuration records
    /// [`perm_core::TraceEvent`]s into it: one [`TraceKind::Phase`] span
    /// per completed pipeline phase (`parse`, `bind`, `rewrite`, `compile`,
    /// `execute`, each carrying its wall time in nanoseconds), plus the
    /// executor's resilience events — sublink-memo inserts and hits, spill
    /// writes, degradation-rung transitions, and cancellation checkpoints
    /// that actually fired. With no sink attached the executor's emission
    /// seam is a single `Option` check; nothing is allocated or recorded.
    /// The bundled [`perm_core::RingTraceSink`] keeps the most recent
    /// events in a bounded ring; the trait is `Send + Sync`, so one sink
    /// may observe many sessions (the serving worker pool does exactly
    /// that). Execution-only: not part of the plan-cache key.
    pub trace_sink: Option<Arc<dyn TraceSink>>,
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            strategy: Strategy::Auto,
            sublink_memo: true,
            memo_capacity: None,
            retain_memo: true,
            batching: true,
            columnar: true,
            optimize: true,
            tracer: false,
            shared_sublink_memo: None,
            deadline: None,
            memory_budget: None,
            spill: false,
            spill_dir: None,
            fault_plan: None,
            trace_sink: None,
        }
    }
}

impl std::fmt::Debug for SessionConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Manual only because `dyn TraceSink` has no `Debug`; every other
        // field is shown as the derive would.
        f.debug_struct("SessionConfig")
            .field("strategy", &self.strategy)
            .field("sublink_memo", &self.sublink_memo)
            .field("memo_capacity", &self.memo_capacity)
            .field("retain_memo", &self.retain_memo)
            .field("batching", &self.batching)
            .field("columnar", &self.columnar)
            .field("optimize", &self.optimize)
            .field("tracer", &self.tracer)
            .field("shared_sublink_memo", &self.shared_sublink_memo)
            .field("deadline", &self.deadline)
            .field("memory_budget", &self.memory_budget)
            .field("spill", &self.spill)
            .field("spill_dir", &self.spill_dir)
            .field("fault_plan", &self.fault_plan)
            .field("trace_sink", &self.trace_sink.as_ref().map(|_| ".."))
            .finish()
    }
}

/// Bridges the executor-side [`TraceSignal`] (emitted by the resilience
/// governor, which cannot depend on `perm-core`) into the sink-side
/// [`TraceEvent`]. Runs only when a sink is attached.
fn bridge_signal(signal: TraceSignal) -> TraceEvent {
    match signal {
        TraceSignal::MemoInsert { label, bytes } => {
            TraceEvent::new(TraceKind::MemoInsert, label, bytes)
        }
        TraceSignal::MemoHit { label } => TraceEvent::new(TraceKind::MemoHit, label, 0),
        TraceSignal::Spill { label, bytes } => TraceEvent::new(TraceKind::Spill, label, bytes),
        TraceSignal::Rung { rung } => TraceEvent::new(TraceKind::Rung, format!("{rung:?}"), 0),
        TraceSignal::CancelFired { operator } => {
            TraceEvent::new(TraceKind::CancelFired, operator, 0)
        }
    }
}

/// Pipeline counters of one session, for observability and for asserting
/// the prepared-statement contract (re-execution performs zero parse, bind,
/// rewrite or compile work).
///
/// # Counter semantics
///
/// Every counter **accumulates monotonically over the session's lifetime**.
/// Nothing resets between executions — not between two executions of one
/// [`Prepared`] statement, not across statements, not when
/// [`Session::run`] clears ad-hoc memo entries. Differencing two snapshots
/// therefore attributes work to exactly the executions in between, which
/// is how the prepared-statement contract is asserted: after a prepare,
/// re-executing must advance `executions` (and execution-side counters
/// like `vectorized_batches` and `cancel_checks`) while `parses`, `binds`,
/// `rewrites` and `compiles` stay put.
///
/// Three fields are not event counters but still move monotonically:
/// [`SessionStats::peak_bytes`] and [`SessionStats::degradation`] are
/// high-water marks (the worst value ever observed, under byte and rung
/// ordering respectively), and [`SessionStats::buffer_pool_capacity`] is a
/// configuration gauge — constant for the session's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// SQL texts parsed.
    pub parses: u64,
    /// Parsed queries bound against the catalog.
    pub binds: u64,
    /// Provenance rewrites performed.
    pub rewrites: u64,
    /// Optimizer rule applications across this session's fresh
    /// preparations (decorrelations + constant folds + predicate pushes +
    /// projection prunes). Like `compiles`, a plan-cache hit advances
    /// nothing — the cached statement was optimized by the session that
    /// prepared it.
    pub optimizer_rules_fired: u64,
    /// Sublinks this session's fresh preparations decorrelated into
    /// semi/anti joins (a subset of `optimizer_rules_fired`).
    pub sublinks_decorrelated: u64,
    /// Plans compiled to slot-resolved form.
    pub compiles: u64,
    /// Statement executions (materialised or streaming or traced).
    pub executions: u64,
    /// Preparations this session served from the engine's cross-session
    /// plan cache (each such prepare did zero parse/bind/rewrite/compile
    /// work anywhere — the statement was compiled by an earlier session).
    pub plan_cache_hits: u64,
    /// Preparations this session ran through the full pipeline and
    /// published to the engine's plan cache (or ran privately, for
    /// sessions opened without an engine).
    pub plan_cache_misses: u64,
    /// Expression-over-batch evaluations performed by the vectorized
    /// compiled evaluator (one per expression per batch of up to
    /// [`perm_exec::BATCH_ROWS`] rows; zero when
    /// [`SessionConfig::batching`] is off).
    pub vectorized_batches: u64,
    /// Rows a vectorized batch handed back to the per-tuple evaluator
    /// because their expression subtree carries a sublink — the fallback
    /// that keeps the parameterized sublink memo seam untouched.
    pub sublink_fallback_rows: u64,
    /// Column blocks whose typed lanes were actually materialised by the
    /// columnar evaluator (a block is counted on first lane access, not
    /// per batch; zero when [`SessionConfig::columnar`] is off).
    pub columnar_blocks: u64,
    /// Rows the columnar evaluator handed back to the row-major `Value`
    /// path — mixed-type or otherwise untyped lanes, string/date kernels
    /// without a typed fast path, and sublink-bearing subtrees (which also
    /// count into [`SessionStats::sublink_fallback_rows`]).
    pub columnar_fallback_rows: u64,
    /// Cancellation checkpoints polled by the executor (batch boundaries,
    /// cursor refills, sublink entries). Monotone over the session's life;
    /// the gap between two snapshots bounds how often a cancel or deadline
    /// could have been observed in between.
    pub cancel_checks: u64,
    /// High-water mark of accounted bytes (operator state + memo entries)
    /// seen by the executor's budget accountant. Tracked whether or not a
    /// [`SessionConfig::memory_budget`] is set whenever memo entries exist;
    /// transient operator state is only accounted under a budget.
    pub peak_bytes: u64,
    /// Total payload bytes written to spill files (grace-join partitions,
    /// sort runs, aggregate partitions, persisted memo entries). Zero
    /// unless [`SessionConfig::spill`] is on and pressure occurred.
    pub spilled_bytes: u64,
    /// Spill partition files and sort runs created.
    pub spill_partitions: u64,
    /// Buffer-pool hits while reading spill files back.
    pub buffer_pool_hits: u64,
    /// Buffer-pool misses (page loads from disk) while reading spill files.
    pub buffer_pool_misses: u64,
    /// Pages evicted from the spill-file buffer pool to admit new ones —
    /// the churn signal that, next to the hit/miss split, tells an
    /// undersized pool from a cold one.
    pub buffer_pool_evictions: u64,
    /// Configured frame capacity of the spill-file buffer pool (a gauge,
    /// not a counter; zero when the session has no spill manager).
    pub buffer_pool_capacity: u64,
    /// Worst [`Degradation`] rung the executor reached under memory
    /// pressure: `None` (never over budget), `SpilledToDisk` (state moved
    /// to disk, no work lost), `ReclaimedMemos` (cached sublink results
    /// dropped) or `Exhausted` (a query failed).
    pub degradation: Degradation,
}

/// A session: the unit of statement preparation and execution. Holds one
/// [`Executor`] so sublink memos persist across executions according to the
/// configured policy. Cheap to create; not `Sync` — one session per worker.
pub struct Session<'a> {
    db: &'a Database,
    config: SessionConfig,
    executor: Executor<'a>,
    /// The engine's cross-session plan cache; `None` for sessions opened
    /// directly over a database ([`Session::new`]), which prepare privately.
    plan_cache: Option<&'a PlanCache>,
    parses: Cell<u64>,
    binds: Cell<u64>,
    rewrites: Cell<u64>,
    optimizer_rules_fired: Cell<u64>,
    sublinks_decorrelated: Cell<u64>,
    executions: Cell<u64>,
    cache_hits: Cell<u64>,
    cache_misses: Cell<u64>,
    /// Whether the executor's current cancel token was minted for a
    /// deadline by [`Session::bind_checked`]. Such a token must not leak
    /// into a later deadline-less execution (an expired deadline would
    /// cancel it spuriously), while a token installed by the user via
    /// [`Session::cancel_handle`] is theirs and is left in place.
    deadline_token: Cell<bool>,
}

/// How a prepared statement produces its result.
#[derive(Debug)]
enum PreparedKind {
    /// An ordinary query.
    Plain,
    /// A provenance query rewritten by a strategy; the descriptor maps the
    /// appended provenance attributes back to base-relation accesses.
    Provenance { descriptor: ProvenanceDescriptor },
    /// A provenance query computed by the reference tracer at execution
    /// time (no rewrite; the logical plan is traced directly).
    Traced { descriptor: ProvenanceDescriptor },
}

/// A prepared statement: the result of running parse → bind → (optional)
/// provenance rewrite → compile exactly once. Executing it again costs only
/// execution. A `Prepared` owns its compiled form and can outlive the
/// session that prepared it (sublink identities are process-unique), but it
/// is only valid against the database it was prepared on.
#[derive(Debug)]
pub struct Prepared {
    sql: Option<String>,
    /// The bound (and, for provenance statements, rewritten) logical plan
    /// as it entered the optimizer — the reference shape.
    bound_plan: Plan,
    /// What the optimizer did to [`Prepared::bound_plan`]; all-zero when
    /// [`SessionConfig::optimize`] was off (then `plan == bound_plan`).
    optimizer: perm_exec::OptimizerReport,
    /// The logical plan that was compiled: the optimized form of
    /// [`Prepared::bound_plan`] (identical when the optimizer was off or
    /// fired no rule).
    plan: Plan,
    /// The slot-resolved physical form; `None` only for tracer statements,
    /// which interpret the logical plan directly.
    compiled: Option<perm_exec::CompiledPlan>,
    kind: PreparedKind,
    schema: Schema,
    param_count: usize,
}

impl Prepared {
    /// The SQL text this statement was prepared from, when it came from
    /// SQL.
    pub fn sql(&self) -> Option<&str> {
        self.sql.as_deref()
    }

    /// The output schema (for provenance statements: original attributes
    /// followed by the provenance attributes).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of `$n` parameter slots the statement expects.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// The provenance descriptor, when this is a provenance statement.
    pub fn descriptor(&self) -> Option<&ProvenanceDescriptor> {
        match &self.kind {
            PreparedKind::Plain => None,
            PreparedKind::Provenance { descriptor } | PreparedKind::Traced { descriptor } => {
                Some(descriptor)
            }
        }
    }

    /// The logical plan that was compiled: for sessions with
    /// [`SessionConfig::optimize`] on (the default), the *optimized* form
    /// of the bound plan. The pre-optimization shape is
    /// [`Prepared::bound_plan`].
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The bound (and, for provenance statements, rewritten) logical plan
    /// *before* the optimizer ran — the reference shape
    /// [`Session::explain`] diffs against.
    pub fn bound_plan(&self) -> &Plan {
        &self.bound_plan
    }

    /// What the optimizer did to this statement (all-zero when
    /// [`SessionConfig::optimize`] was off or no rule fired).
    pub fn optimizer_report(&self) -> perm_exec::OptimizerReport {
        self.optimizer
    }

    /// The compiled physical form; `None` only for tracer statements. The
    /// concurrent serving subsystem walks this to find correlated sublinks
    /// whose binding domains it can partition across worker threads.
    pub fn compiled_plan(&self) -> Option<&perm_exec::CompiledPlan> {
        self.compiled.as_ref()
    }
}

impl<'a> Session<'a> {
    /// Opens a session with the default configuration directly over a
    /// database — the escape hatch for callers that manage the database
    /// themselves (the deprecated free functions use this).
    pub fn new(db: &'a Database) -> Session<'a> {
        Session::with_config(db, SessionConfig::default())
    }

    /// Opens a session with an explicit configuration.
    pub fn with_config(db: &'a Database, config: SessionConfig) -> Session<'a> {
        let mut executor = Executor::new(db)
            .with_sublink_memo(config.sublink_memo)
            .with_memo_capacity(config.memo_capacity)
            .with_memo_retention(config.retain_memo)
            .with_batching(config.batching)
            .with_columnar(config.columnar)
            .with_memory_budget(config.memory_budget)
            .with_spill(config.spill)
            .with_spill_dir(config.spill_dir.clone());
        if let Some(memo) = &config.shared_sublink_memo {
            executor = executor.with_shared_memo(Arc::clone(memo));
        }
        if let Some(plan) = &config.fault_plan {
            executor = executor.with_fault_plan(plan.clone());
        }
        if let Some(sink) = &config.trace_sink {
            let sink = Arc::clone(sink);
            executor.set_trace_hook(Some(Rc::new(move |signal| {
                sink.record(bridge_signal(signal))
            })));
        }
        Session {
            db,
            config,
            executor,
            plan_cache: None,
            parses: Cell::new(0),
            binds: Cell::new(0),
            rewrites: Cell::new(0),
            optimizer_rules_fired: Cell::new(0),
            sublinks_decorrelated: Cell::new(0),
            executions: Cell::new(0),
            cache_hits: Cell::new(0),
            cache_misses: Cell::new(0),
            deadline_token: Cell::new(false),
        }
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The database this session reads.
    pub fn database(&self) -> &Database {
        self.db
    }

    /// The session's executor — diagnostic counters
    /// ([`Executor::operators_evaluated`],
    /// [`Executor::quantifier_comparisons`]) and low-level execution live
    /// here.
    pub fn executor(&self) -> &Executor<'a> {
        &self.executor
    }

    /// Records one completed pipeline phase into the configured trace sink
    /// (a no-op without one). Only *completed* phases are recorded: a phase
    /// that errors contributes no span.
    fn trace_phase(&self, phase: &'static str, start: Instant) {
        if let Some(sink) = &self.config.trace_sink {
            sink.record(TraceEvent::new(
                TraceKind::Phase,
                phase,
                start.elapsed().as_nanos() as u64,
            ));
        }
    }

    /// A snapshot of the session's pipeline counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            parses: self.parses.get(),
            binds: self.binds.get(),
            rewrites: self.rewrites.get(),
            optimizer_rules_fired: self.optimizer_rules_fired.get(),
            sublinks_decorrelated: self.sublinks_decorrelated.get(),
            compiles: self.executor.statements_compiled(),
            executions: self.executions.get(),
            plan_cache_hits: self.cache_hits.get(),
            plan_cache_misses: self.cache_misses.get(),
            vectorized_batches: self.executor.batches_vectorized(),
            sublink_fallback_rows: self.executor.batch_fallback_rows(),
            columnar_blocks: self.executor.columnar_blocks(),
            columnar_fallback_rows: self.executor.columnar_fallback_rows(),
            cancel_checks: self.executor.cancel_checks(),
            peak_bytes: self.executor.peak_bytes(),
            spilled_bytes: self.executor.spilled_bytes(),
            spill_partitions: self.executor.spill_partitions(),
            buffer_pool_hits: self.executor.buffer_pool_hits(),
            buffer_pool_misses: self.executor.buffer_pool_misses(),
            buffer_pool_evictions: self.executor.buffer_pool_evictions(),
            buffer_pool_capacity: self.executor.buffer_pool_capacity(),
            degradation: self.executor.degradation(),
        }
    }

    /// Prepares a SQL statement: parse → bind → provenance rewrite (if the
    /// query carries the `SELECT PROVENANCE` marker) → compile, once. The
    /// returned [`Prepared`] executes many times via [`Session::execute`],
    /// [`Session::rows`] or [`Session::provenance_rows`].
    ///
    /// Sessions opened from an [`Engine`] first consult the engine's
    /// cross-session plan cache: a statement any session of this engine
    /// already prepared (under the same strategy/tracer configuration) is
    /// returned as a shared handle with zero pipeline work — see
    /// [`SessionStats::plan_cache_hits`] and [`Engine::plan_cache_stats`].
    pub fn prepare(&self, sql: &str) -> Result<Arc<Prepared>, PermError> {
        self.prepare_sql(sql, false)
    }

    /// Prepares a SQL statement for provenance computation whether or not
    /// it carries the `PROVENANCE` keyword. Plan-cached like
    /// [`Session::prepare`] (under a distinct cache key, so the same text
    /// prepared plain and forced-provenance are two entries).
    pub fn prepare_provenance(&self, sql: &str) -> Result<Arc<Prepared>, PermError> {
        self.prepare_sql(sql, true)
    }

    fn prepare_sql(&self, sql: &str, forced_provenance: bool) -> Result<Arc<Prepared>, PermError> {
        let Some(cache) = self.plan_cache else {
            self.cache_misses.set(self.cache_misses.get() + 1);
            return Ok(Arc::new(self.prepare_fresh(sql, forced_provenance)?));
        };
        let key = PlanKey {
            sql: sql.to_owned(),
            forced_provenance,
            strategy: self.config.strategy,
            tracer: self.config.tracer,
            optimize: self.config.optimize,
        };
        if let Some(hit) = cache.get(&key) {
            self.cache_hits.set(self.cache_hits.get() + 1);
            return Ok(hit);
        }
        self.cache_misses.set(self.cache_misses.get() + 1);
        let prepared = Arc::new(self.prepare_fresh(sql, forced_provenance)?);
        // `insert` returns the canonical statement — ours, unless another
        // session won the race while we were compiling.
        Ok(cache.insert(key, prepared))
    }

    fn prepare_fresh(&self, sql: &str, forced_provenance: bool) -> Result<Prepared, PermError> {
        let (plan, wants_provenance) = self.parse_and_bind(sql)?;
        self.prepare_inner(Some(sql), plan, forced_provenance || wants_provenance)
    }

    /// Prepares an algebra plan directly (no SQL front end). Plan
    /// preparations bypass the plan cache — there is no text to key on —
    /// so each call mints fresh sublink identities: keep the returned
    /// statement and re-execute it rather than re-preparing in a loop,
    /// especially on sessions with a shared sublink memo (repeated
    /// preparation would fill it with entries no later statement can hit;
    /// see [`SessionConfig::shared_sublink_memo`]).
    pub fn prepare_plan(&self, plan: &Plan) -> Result<Arc<Prepared>, PermError> {
        Ok(Arc::new(self.prepare_inner(None, plan.clone(), false)?))
    }

    /// Prepares an algebra plan for provenance computation.
    pub fn prepare_provenance_plan(&self, plan: &Plan) -> Result<Arc<Prepared>, PermError> {
        Ok(Arc::new(self.prepare_inner(None, plan.clone(), true)?))
    }

    fn parse_and_bind(&self, sql: &str) -> Result<(Plan, bool), PermError> {
        let start = Instant::now();
        let parsed = perm_sql::parse_query(sql)?;
        self.parses.set(self.parses.get() + 1);
        self.trace_phase("parse", start);
        let provenance = parsed.provenance;
        let start = Instant::now();
        let bound = perm_sql::bind(self.db, &parsed)?;
        self.binds.set(self.binds.get() + 1);
        self.trace_phase("bind", start);
        Ok((bound.plan, provenance))
    }

    fn prepare_inner(
        &self,
        sql: Option<&str>,
        plan: Plan,
        provenance: bool,
    ) -> Result<Prepared, PermError> {
        let param_count = perm_algebra::visit::param_count(&plan);
        if provenance && self.config.tracer {
            if param_count > 0 {
                return Err(PermError::Param(
                    "tracer sessions do not support query parameters; \
                     disable `SessionConfig::tracer` to use `$n` bindings"
                        .into(),
                ));
            }
            // The tracer interprets the logical plan directly at execution
            // time: nothing to rewrite or compile here.
            let descriptor = Tracer::new(self.db).descriptor(&plan)?;
            let schema = plan.schema().concat(&descriptor.schema());
            // The tracer interprets the bound plan as-is; the optimizer
            // never runs for traced statements (it may introduce semi/anti
            // joins the tracer's closed-form characterisation does not
            // cover).
            return Ok(Prepared {
                sql: sql.map(str::to_owned),
                bound_plan: plan.clone(),
                optimizer: perm_exec::OptimizerReport::default(),
                plan,
                compiled: None,
                kind: PreparedKind::Traced { descriptor },
                schema,
                param_count,
            });
        }
        let (plan, kind) = if provenance {
            let start = Instant::now();
            let rewritten = ProvenanceQuery::new(self.db, &plan)
                .strategy(self.config.strategy)
                .rewrite()?;
            self.rewrites.set(self.rewrites.get() + 1);
            self.trace_phase("rewrite", start);
            let descriptor = rewritten.descriptor;
            (rewritten.plan, PreparedKind::Provenance { descriptor })
        } else {
            (plan, PreparedKind::Plain)
        };
        let bound_plan = plan.clone();
        let (plan, report) = if self.config.optimize {
            let start = Instant::now();
            let (optimized, report) = perm_exec::optimize::optimize(&plan);
            self.optimizer_rules_fired
                .set(self.optimizer_rules_fired.get() + report.rules_fired());
            self.sublinks_decorrelated
                .set(self.sublinks_decorrelated.get() + report.sublinks_decorrelated);
            self.trace_phase("optimize", start);
            (optimized, report)
        } else {
            (plan, perm_exec::OptimizerReport::default())
        };
        let start = Instant::now();
        let compiled = self.executor.prepare(&plan)?;
        self.trace_phase("compile", start);
        let schema = compiled.schema().clone();
        Ok(Prepared {
            sql: sql.map(str::to_owned),
            bound_plan,
            optimizer: report,
            plan,
            compiled: Some(compiled),
            kind,
            schema,
            param_count,
        })
    }

    /// Binds `params`, checks the arity against the statement, and arms the
    /// executor's governor for this execution: when a deadline applies (the
    /// per-call override, else [`SessionConfig::deadline`]) a *fresh*
    /// [`CancelToken`] is minted so each execution gets the full time
    /// budget; without one, a stale deadline token from a previous
    /// execution is removed while a token installed via
    /// [`Session::cancel_handle`] is left in place.
    fn bind_checked(
        &self,
        prepared: &Prepared,
        params: &[Value],
        deadline: Option<Duration>,
    ) -> Result<(), PermError> {
        if params.len() != prepared.param_count {
            return Err(PermError::Param(format!(
                "statement expects {} parameter{}, got {}",
                prepared.param_count,
                if prepared.param_count == 1 { "" } else { "s" },
                params.len()
            )));
        }
        match deadline.or(self.config.deadline) {
            Some(d) => {
                self.executor
                    .set_cancel_token(Some(CancelToken::with_deadline(d)));
                self.deadline_token.set(true);
            }
            // A deadline token from a previous execution must not survive
            // into this one — once expired it would cancel every later
            // request. User-installed tokens are left alone.
            None => {
                if self.deadline_token.replace(false) {
                    self.executor.set_cancel_token(None);
                }
            }
        }
        self.executor.bind_params(params.to_vec());
        if !self.config.retain_memo {
            self.executor.clear_compiled_memos();
        }
        Ok(())
    }

    fn count_execution(&self) {
        self.executions.set(self.executions.get() + 1);
    }

    /// Executes a prepared statement with the given parameter binding,
    /// materialising the full result. No parse/bind/rewrite/compile work
    /// happens here — only execution (assertable via [`Session::stats`]).
    pub fn execute(&self, prepared: &Prepared, params: &[Value]) -> Result<Relation, PermError> {
        self.execute_inner(prepared, params, None)
    }

    /// [`Session::execute`] with a per-call deadline that overrides
    /// [`SessionConfig::deadline`] for this execution only. The execution
    /// is cancelled cooperatively at the first batch boundary past the
    /// deadline and returns [`perm_exec::ExecError::Cancelled`] (wrapped in
    /// [`PermError::Exec`]); no partial result escapes.
    pub fn execute_with_deadline(
        &self,
        prepared: &Prepared,
        params: &[Value],
        deadline: Duration,
    ) -> Result<Relation, PermError> {
        self.execute_inner(prepared, params, Some(deadline))
    }

    fn execute_inner(
        &self,
        prepared: &Prepared,
        params: &[Value],
        deadline: Option<Duration>,
    ) -> Result<Relation, PermError> {
        self.bind_checked(prepared, params, deadline)?;
        let start = Instant::now();
        let result = match (&prepared.kind, &prepared.compiled) {
            (PreparedKind::Traced { .. }, _) => Tracer::new(self.db).trace(&prepared.plan)?,
            (_, Some(compiled)) => self.executor.execute_compiled(compiled, None)?,
            (_, None) => unreachable!("non-traced statements always carry a compiled plan"),
        };
        self.trace_phase("execute", start);
        self.count_execution();
        Ok(result)
    }

    /// A [`CancelToken`] wired to this session's executor, installing one
    /// if none is present: cancelling it — from any thread — stops the
    /// session's in-flight execution at its next batch boundary. When a
    /// deadline applies ([`SessionConfig::deadline`] or
    /// [`Session::execute_with_deadline`]), each execution mints a fresh
    /// token and a handle taken earlier no longer governs it; take the
    /// handle per execution in that case.
    pub fn cancel_handle(&self) -> CancelToken {
        self.executor.cancel_handle()
    }

    /// Opens a pull-based cursor over a prepared statement: tuples are
    /// produced on demand, so a `LIMIT`-style consumer stops paying for
    /// input it never looks at. The cursor captures this parameter binding;
    /// other statements may run on the session while it is open.
    pub fn rows<'s>(
        &'s self,
        prepared: &'s Prepared,
        params: &[Value],
    ) -> Result<Rows<'s, 'a>, PermError> {
        let Some(compiled) = &prepared.compiled else {
            return Err(PermError::Param(
                "tracer sessions cannot stream; use `Session::execute` or \
                 `Session::provenance_rows`"
                    .into(),
            ));
        };
        self.bind_checked(prepared, params, None)?;
        let rows = self.executor.open(compiled)?;
        self.count_execution();
        Ok(rows)
    }

    /// `EXPLAIN`: prepares `sql` (plan-cached like [`Session::prepare`])
    /// and returns the shape of its physical plan as a [`QueryProfile`]
    /// whose counters are all zero — **nothing is executed**. The same
    /// tree, annotated with actuals, comes back from
    /// [`Session::explain_analyze`]; render either with
    /// [`QueryProfile::render`] or encode it with
    /// [`QueryProfile::to_json`].
    pub fn explain(&self, sql: &str) -> Result<QueryProfile, PermError> {
        let prepared = self.prepare(sql)?;
        let compiled = Self::profilable(&prepared)?;
        let mut profile = perm_exec::profile::ProfileTree::for_plan(compiled).snapshot();
        self.annotate_optimizer(&mut profile, &prepared);
        Ok(profile)
    }

    /// Attaches the bound-vs-optimized logical plan diff and the rule
    /// summary to an `EXPLAIN` profile (sessions with
    /// [`SessionConfig::optimize`] off keep the bare physical tree).
    fn annotate_optimizer(&self, profile: &mut QueryProfile, prepared: &Prepared) {
        if !self.config.optimize {
            return;
        }
        profile.bound_plan = Some(perm_algebra::display::explain(prepared.bound_plan()));
        profile.optimized_plan = Some(perm_algebra::display::explain(prepared.plan()));
        profile.optimizer = Some(prepared.optimizer_report().summary());
    }

    /// `EXPLAIN ANALYZE`: prepares and executes a parameter-free `sql`
    /// statement and returns its [`QueryProfile`] — the physical plan tree
    /// annotated with per-operator actuals (invocations, rows in/out,
    /// batches, wall time, memo hits/misses, spill bytes/partitions,
    /// columnar-fallback rows). The result rows are discarded, as in SQL
    /// `EXPLAIN ANALYZE`; use [`Session::execute_profiled`] to keep them,
    /// or [`Session::rows_profiled`] to profile a streaming cursor.
    ///
    /// Like [`Session::run`], this is the ad-hoc path: the session's own
    /// memo entries are cleared afterwards under the retention policy so
    /// one-off analysis does not accumulate entries.
    pub fn explain_analyze(&self, sql: &str) -> Result<QueryProfile, PermError> {
        let prepared = self.prepare(sql)?;
        let result = self.execute_profiled(&prepared, &[]);
        if self.config.retain_memo {
            self.executor.clear_compiled_memos();
        }
        result.map(|(_, mut profile)| {
            self.annotate_optimizer(&mut profile, &prepared);
            profile
        })
    }

    /// Executes a prepared statement with profiling armed, returning both
    /// the result and the [`QueryProfile`] of this execution. Semantically
    /// identical to [`Session::execute`] — same rows, same errors, same
    /// memo/deadline behaviour — plus per-operator actuals. Profiling cost
    /// is a strided clock probe per operator invocation (see the
    /// `perm_exec::profile` docs); the `harness obs --check` gate pins it.
    pub fn execute_profiled(
        &self,
        prepared: &Prepared,
        params: &[Value],
    ) -> Result<(Relation, QueryProfile), PermError> {
        let compiled = Self::profilable(prepared)?;
        self.bind_checked(prepared, params, None)?;
        let start = Instant::now();
        let (relation, profile) = self.executor.execute_profiled(compiled)?;
        self.trace_phase("execute", start);
        self.count_execution();
        Ok((relation, profile))
    }

    /// [`Session::rows`] with profiling armed: the returned cursor records
    /// per-operator actuals as it is pulled, and [`Rows::profile`] snapshots
    /// them at any point — typically after exhaustion, but a mid-stream
    /// snapshot of a `LIMIT`-style consumer is exactly how much the
    /// early-out actually saved.
    pub fn rows_profiled<'s>(
        &'s self,
        prepared: &'s Prepared,
        params: &[Value],
    ) -> Result<Rows<'s, 'a>, PermError> {
        let compiled = Self::profilable(prepared)?;
        self.bind_checked(prepared, params, None)?;
        let rows = self.executor.open_profiled(compiled)?;
        self.count_execution();
        Ok(rows)
    }

    /// The compiled form of a statement, or the uniform error for tracer
    /// statements (which interpret the logical plan and have no physical
    /// operators to profile).
    fn profilable(prepared: &Prepared) -> Result<&perm_exec::CompiledPlan, PermError> {
        prepared.compiled.as_ref().ok_or_else(|| {
            PermError::Param(
                "tracer statements have no physical plan to profile; \
                 disable `SessionConfig::tracer` to use EXPLAIN/EXPLAIN ANALYZE"
                    .into(),
            )
        })
    }

    /// Executes a provenance statement and returns the structured witness
    /// view: each output tuple with its witness tuples grouped per
    /// base-relation access, instead of a flat relation whose `prov_r_a`
    /// column names the caller would have to string-match.
    pub fn provenance_rows(
        &self,
        prepared: &Prepared,
        params: &[Value],
    ) -> Result<ProvenanceRows, PermError> {
        let descriptor = match &prepared.kind {
            PreparedKind::Provenance { descriptor } | PreparedKind::Traced { descriptor } => {
                descriptor.clone()
            }
            PreparedKind::Plain => {
                return Err(PermError::Param(
                    "statement was not prepared for provenance; use \
                     `Session::prepare_provenance` (or the `SELECT PROVENANCE` marker)"
                        .into(),
                ))
            }
        };
        let relation = self.execute(prepared, params)?;
        Ok(ProvenanceRows::new(relation, &descriptor))
    }

    /// Ad-hoc convenience: prepares and executes a parameter-free SQL
    /// statement once, honouring the `SELECT PROVENANCE` marker. For
    /// repeated or parameterized execution, [`Session::prepare`] and keep
    /// the [`Prepared`] around. (On engine-attached sessions the transient
    /// statement still lands in the cross-session plan cache, so repeated
    /// ad-hoc texts at least stop paying for compilation.)
    ///
    /// The session's own memo entries are cleared afterwards even under the
    /// retention policy — ad-hoc traffic should not accumulate entries. As
    /// the clearing is whole-memo, a session interleaving `run` with
    /// prepared statements loses those statements' warm memo entries too;
    /// keep ad-hoc traffic on its own session when that matters. An
    /// attached shared sublink memo is *not* cleared (its lifecycle belongs
    /// to the engine/serving layer).
    pub fn run(&self, sql: &str) -> Result<Relation, PermError> {
        let prepared = self.prepare(sql)?;
        let result = self.execute(&prepared, &[]);
        if self.config.retain_memo {
            self.executor.clear_compiled_memos();
        }
        result
    }
}

/// A group of provenance attributes inside the flat rewritten tuple: which
/// base-relation access it witnesses and where its values sit.
#[derive(Debug, Clone)]
struct WitnessGroup {
    table: String,
    occurrence: usize,
    start: usize,
    arity: usize,
}

/// The structured view of a provenance result: every output tuple paired
/// with its witness tuples, grouped per base-relation access of the query
/// (in [`ProvenanceDescriptor`] order). Built by
/// [`Session::provenance_rows`].
#[derive(Debug, Clone)]
pub struct ProvenanceRows {
    schema: Schema,
    original_arity: usize,
    groups: Vec<WitnessGroup>,
    tuples: Vec<Tuple>,
}

impl ProvenanceRows {
    fn new(relation: Relation, descriptor: &ProvenanceDescriptor) -> ProvenanceRows {
        let schema = relation.schema().clone();
        let original_arity = schema.arity() - descriptor.attr_count();
        let mut groups = Vec::with_capacity(descriptor.len());
        let mut start = original_arity;
        for entry in descriptor.entries() {
            let arity = entry.prov_schema.arity();
            groups.push(WitnessGroup {
                table: entry.table.clone(),
                occurrence: entry.occurrence,
                start,
                arity,
            });
            start += arity;
        }
        ProvenanceRows {
            schema,
            original_arity,
            groups,
            tuples: relation.into_tuples(),
        }
    }

    /// The full (flat) schema: original attributes then provenance
    /// attributes.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The schema of the original query (provenance attributes stripped).
    pub fn output_schema(&self) -> Schema {
        Schema::new(self.schema.attributes()[..self.original_arity].to_vec())
    }

    /// Number of result rows (one per witness *combination*, as in the
    /// paper's single-relation representation).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over the structured rows.
    pub fn iter(&self) -> impl Iterator<Item = ProvenanceRow<'_>> {
        self.tuples
            .iter()
            .map(move |tuple| ProvenanceRow { rows: self, tuple })
    }
}

/// One row of a [`ProvenanceRows`] result: the original output tuple plus
/// one witness slice per base-relation access.
#[derive(Clone, Copy)]
pub struct ProvenanceRow<'r> {
    rows: &'r ProvenanceRows,
    tuple: &'r Tuple,
}

impl<'r> ProvenanceRow<'r> {
    /// The original output tuple (provenance attributes stripped).
    pub fn output(&self) -> &'r [Value] {
        &self.tuple.values()[..self.rows.original_arity]
    }

    /// The witnesses of this row, one per base-relation access, in
    /// descriptor order.
    pub fn witnesses(&self) -> impl Iterator<Item = Witness<'r>> + '_ {
        let tuple = self.tuple;
        self.rows.groups.iter().map(move |group| Witness {
            table: &group.table,
            occurrence: group.occurrence,
            values: &tuple.values()[group.start..group.start + group.arity],
        })
    }

    /// The witness for the `i`-th base-relation access of the descriptor.
    pub fn witness(&self, i: usize) -> Option<Witness<'r>> {
        let group = self.rows.groups.get(i)?;
        Some(Witness {
            table: &group.table,
            occurrence: group.occurrence,
            values: &self.tuple.values()[group.start..group.start + group.arity],
        })
    }
}

/// The contribution of one base-relation access to one output tuple: either
/// a witness tuple of that relation, or no contribution (the rewrite's
/// NULL-padded outer-join side).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Witness<'r> {
    /// Catalog name of the base relation.
    pub table: &'r str,
    /// Occurrence index of this access within the query (multiple accesses
    /// of one relation are distinct provenance sources).
    pub occurrence: usize,
    values: &'r [Value],
}

impl<'r> Witness<'r> {
    /// The witness tuple, or `None` when this base-relation access did not
    /// contribute to the output row (every provenance attribute is NULL —
    /// the representation the rewrites share with the paper).
    pub fn tuple(&self) -> Option<&'r [Value]> {
        if self.values.iter().all(|v| v.is_null()) {
            None
        } else {
            Some(self.values)
        }
    }

    /// The raw provenance attribute values, NULL-padded or not.
    pub fn values(&self) -> &'r [Value] {
        self.values
    }
}
