//! # perm — Why-provenance for SQL queries with nested subqueries
//!
//! A Rust implementation of *Provenance for Nested Subqueries* (Glavic &
//! Alonso, EDBT 2009): the Perm approach of computing the Why-provenance of a
//! query by rewriting it — entirely inside the relational model — into a
//! query that returns every original result tuple together with the input
//! tuples that contributed to it, including through `ANY`, `ALL`, `EXISTS`
//! and scalar subqueries (correlated, nested, or several per operator).
//!
//! The workspace is organised as a stack:
//!
//! * [`perm_storage`] — values, tuples, schemas, relations, catalog;
//! * [`perm_algebra`] — the relational algebra with sublinks (Figure 1);
//! * [`perm_exec`] — a bag-semantics executor with correlated-sublink
//!   support;
//! * [`perm_sql`] — a SQL front end with the `SELECT PROVENANCE` extension;
//! * [`perm_core`] — the paper's contribution: contribution definitions,
//!   influence roles, the provenance tracer, and the Gen / Left / Move / Unn
//!   rewrite strategies;
//! * [`perm_tpch`] / [`perm_synthetic`] — the evaluation workloads.
//!
//! This facade crate re-exports the pieces a typical user needs and hosts the
//! runnable examples and cross-crate integration tests.
//!
//! ```
//! use perm::prelude::*;
//!
//! let mut db = Database::new();
//! db.create_table("items", Relation::from_rows(
//!     Schema::from_names(&["id", "price"]).with_qualifier("items"),
//!     vec![vec![Value::Int(1), Value::Int(10)], vec![Value::Int(2), Value::Int(99)]],
//! )).unwrap();
//! db.create_table("flagged", Relation::from_rows(
//!     Schema::from_names(&["item_id"]).with_qualifier("flagged"),
//!     vec![vec![Value::Int(2)]],
//! )).unwrap();
//!
//! // Which `flagged` rows made an item appear in this result?
//! let provenance = provenance_of_sql(
//!     &db,
//!     "SELECT PROVENANCE id FROM items WHERE id IN (SELECT item_id FROM flagged)",
//!     Strategy::Auto,
//! ).unwrap();
//! assert_eq!(provenance.schema().names(),
//!            vec!["id", "prov_items_id", "prov_items_price", "prov_flagged_item_id"]);
//! assert_eq!(provenance.len(), 1);
//! ```

pub use perm_algebra as algebra;
pub use perm_core as core;
pub use perm_exec as exec;
pub use perm_sql as sql;
pub use perm_storage as storage;
pub use perm_synthetic as synthetic;
pub use perm_tpch as tpch;

pub use perm_core::{ProvenanceError, ProvenanceQuery, RewriteResult, Strategy};
pub use perm_exec::Executor;
pub use perm_storage::{Database, Relation, Schema, Tuple, Value};

/// The most commonly used items in one import.
pub mod prelude {
    pub use crate::{
        provenance_of_plan, provenance_of_sql, run_sql, Database, Executor, ProvenanceQuery,
        Relation, Schema, Strategy, Tuple, Value,
    };
    pub use perm_algebra::{col, lit, qcol, PlanBuilder};
}

/// Errors surfaced by the high-level helpers.
#[derive(Debug)]
pub enum PermError {
    /// SQL parsing or binding failed.
    Sql(perm_sql::SqlError),
    /// Provenance rewriting failed.
    Provenance(perm_core::ProvenanceError),
    /// Query execution failed.
    Exec(perm_exec::ExecError),
}

impl std::fmt::Display for PermError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PermError::Sql(e) => write!(f, "{e}"),
            PermError::Provenance(e) => write!(f, "{e}"),
            PermError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PermError {}

impl From<perm_sql::SqlError> for PermError {
    fn from(e: perm_sql::SqlError) -> Self {
        PermError::Sql(e)
    }
}
impl From<perm_core::ProvenanceError> for PermError {
    fn from(e: perm_core::ProvenanceError) -> Self {
        PermError::Provenance(e)
    }
}
impl From<perm_exec::ExecError> for PermError {
    fn from(e: perm_exec::ExecError) -> Self {
        PermError::Exec(e)
    }
}

/// Runs an ordinary SQL query and returns its result. If the query carries
/// the `SELECT PROVENANCE` marker it is rewritten with [`Strategy::Auto`]
/// before execution, mirroring the behaviour of the Perm system.
pub fn run_sql(db: &Database, sql: &str) -> Result<Relation, PermError> {
    let (plan, wants_provenance) = perm_sql::compile(db, sql)?;
    let plan = if wants_provenance {
        ProvenanceQuery::new(db, &plan)
            .strategy(Strategy::Auto)
            .rewrite()?
            .plan
    } else {
        plan
    };
    Ok(Executor::new(db).execute(&plan)?)
}

/// Computes the provenance of a SQL query with an explicit rewrite strategy.
/// The `PROVENANCE` keyword is optional — provenance is computed either way.
pub fn provenance_of_sql(
    db: &Database,
    sql: &str,
    strategy: Strategy,
) -> Result<Relation, PermError> {
    let (plan, _) = perm_sql::compile(db, sql)?;
    provenance_of_plan(db, &plan, strategy)
}

/// Computes the provenance of an algebra plan with an explicit strategy.
pub fn provenance_of_plan(
    db: &Database,
    plan: &perm_algebra::Plan,
    strategy: Strategy,
) -> Result<Relation, PermError> {
    let rewritten = ProvenanceQuery::new(db, plan)
        .strategy(strategy)
        .rewrite()?;
    Ok(Executor::new(db).execute(rewritten.plan())?)
}
