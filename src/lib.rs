//! # perm — Why-provenance for SQL queries with nested subqueries
//!
//! A Rust implementation of *Provenance for Nested Subqueries* (Glavic &
//! Alonso, EDBT 2009): the Perm approach of computing the Why-provenance of a
//! query by rewriting it — entirely inside the relational model — into a
//! query that returns every original result tuple together with the input
//! tuples that contributed to it, including through `ANY`, `ALL`, `EXISTS`
//! and scalar subqueries (correlated, nested, or several per operator).
//!
//! ## The serving API: [`Engine`] and [`Session`]
//!
//! Because the rewrites stay inside the relational model, a provenance query
//! is served like any other query: prepare once, execute many times.
//! [`Session::prepare`] runs parse → bind → (optional) provenance rewrite →
//! optimize → compile exactly once and returns a [`Prepared`] statement.
//! The optimize phase ([`mod@perm_exec::optimize`]) is a fixpoint of cost-free
//! logical rewrites — correlated `EXISTS`/`NOT EXISTS`/`IN` sublinks become
//! hash semi/anti joins, predicates push toward scans, dead projection
//! columns drop, constants fold — and because the provenance rewrite runs
//! *before* it, witness columns are ordinary columns the optimizer
//! preserves like any other. [`SessionConfig::optimize`] turns the phase
//! off (the memo-only baseline); [`Session::explain`] shows the bound plan,
//! the optimized plan and which rules fired, side by side. Executions
//! bind `$1`-style parameters, stream through a [`Rows`] cursor, or return
//! witnesses structured per base relation via [`ProvenanceRows`]:
//!
//! ```
//! use perm::{Engine, Value, Database, Relation, Schema};
//!
//! let mut db = Database::new();
//! db.create_table("items", Relation::from_rows(
//!     Schema::from_names(&["id", "price"]).with_qualifier("items"),
//!     vec![vec![Value::Int(1), Value::Int(10)], vec![Value::Int(2), Value::Int(99)]],
//! )).unwrap();
//! db.create_table("flagged", Relation::from_rows(
//!     Schema::from_names(&["item_id"]).with_qualifier("flagged"),
//!     vec![vec![Value::Int(2)]],
//! )).unwrap();
//!
//! let engine = Engine::new(db);
//! let session = engine.session();
//!
//! // Which `flagged` rows made an item costlier than $1 appear here?
//! let audit = session.prepare(
//!     "SELECT PROVENANCE id FROM items \
//!      WHERE price > $1 AND id IN (SELECT item_id FROM flagged)",
//! ).unwrap();
//!
//! let witnesses = session.provenance_rows(&audit, &[Value::Int(50)]).unwrap();
//! assert_eq!(witnesses.len(), 1);
//! let row = witnesses.iter().next().unwrap();
//! assert_eq!(row.output(), &[Value::Int(2)]);
//! let flagged_witness = row.witnesses().find(|w| w.table == "flagged").unwrap();
//! assert_eq!(flagged_witness.tuple(), Some(&[Value::Int(2)][..]));
//!
//! // Re-executing with a different binding costs only execution:
//! assert!(session.provenance_rows(&audit, &[Value::Int(500)]).unwrap().is_empty());
//! assert_eq!(session.stats().compiles, 1);
//! ```
//!
//! ## Observability
//!
//! Every layer of the stack reports on itself without external
//! dependencies:
//!
//! * **Per-operator profiles** — [`Session::explain`] returns the physical
//!   plan shape of a statement as a [`QueryProfile`] tree (no execution);
//!   [`Session::explain_analyze`] executes it and annotates every node
//!   with actuals: invocations, rows in/out, batches, wall time, sublink
//!   memo hits/misses, spill bytes and partitions, columnar-fallback rows.
//!   [`Session::execute_profiled`] keeps the result rows alongside the
//!   profile, and [`Session::rows_profiled`] arms a streaming cursor whose
//!   [`Rows::profile`](perm_exec::Rows::profile) can be snapshotted
//!   mid-stream. Profiles render as text ([`QueryProfile::render`]) or
//!   JSON ([`QueryProfile::to_json`]), and the sum of per-node invocation
//!   counts equals the executor's `operators_evaluated` counter by
//!   construction.
//! * **Structured traces** — attach any [`TraceSink`] (the bundled
//!   [`RingTraceSink`] is a bounded ring buffer) via
//!   [`SessionConfig::trace_sink`] to receive [`TraceEvent`]s: pipeline
//!   phase spans (parse, bind, rewrite, compile, execute with wall times),
//!   sublink-memo inserts and hits, spill writes, degradation-rung
//!   transitions, and cancellation checkpoints that fired.
//! * **Session counters** — [`Session::stats`] snapshots the monotone
//!   [`SessionStats`] counters (see its *Counter semantics* section).
//! * **Serving metrics** — the `perm-serve` crate aggregates per-worker
//!   counters and latency histograms into a registry snapshot exportable
//!   in Prometheus text format.
//!
//! The `examples/observability.rs` example walks all four tiers.
//!
//! The workspace is organised as a stack:
//!
//! * [`perm_storage`] — values, tuples, schemas, relations, catalog;
//! * [`perm_algebra`] — the relational algebra with sublinks (Figure 1);
//! * [`perm_exec`] — a bag-semantics executor with correlated-sublink
//!   support, compiled expressions, a parameterized sublink memo, an
//!   optimizer layer (sublink decorrelation, predicate pushdown, projection
//!   pruning, constant folding) and a streaming cursor;
//! * [`perm_sql`] — a SQL front end with the `SELECT PROVENANCE` extension
//!   and `$n` query parameters;
//! * [`perm_core`] — the paper's contribution: contribution definitions,
//!   influence roles, the provenance tracer, and the Gen / Left / Move / Unn
//!   rewrite strategies;
//! * [`perm_tpch`] / [`perm_synthetic`] — the evaluation workloads.
//!
//! This facade crate hosts the [`Engine`]/[`Session`] serving layer, the
//! runnable examples and the cross-crate integration tests. The pre-session
//! free functions ([`run_sql`], [`provenance_of_sql`],
//! [`provenance_of_plan`]) remain as deprecated thin wrappers over a
//! transient [`Session`].

mod session;

pub use perm_algebra as algebra;
pub use perm_core as core;
pub use perm_exec as exec;
pub use perm_sql as sql;
pub use perm_storage as storage;
pub use perm_synthetic as synthetic;
pub use perm_tpch as tpch;

pub use perm_core::{
    ProvenanceDescriptor, ProvenanceError, ProvenanceQuery, RewriteResult, Strategy,
};
pub use perm_core::{RingTraceSink, TraceEvent, TraceKind, TraceSink};
pub use perm_exec::Executor;
pub use perm_exec::SharedSublinkMemo;
pub use perm_exec::{CancelToken, Degradation, ExecError, FaultKind, FaultPlan, FaultSite};
pub use perm_exec::{ProfileNode, QueryProfile};
pub use perm_storage::{Database, Relation, Schema, Tuple, Value};
pub use session::{
    Engine, PlanCacheStats, Prepared, ProvenanceRow, ProvenanceRows, Rows, Session, SessionConfig,
    SessionStats, Witness,
};

/// The most commonly used items in one import.
pub mod prelude {
    #[allow(deprecated)]
    pub use crate::{provenance_of_plan, provenance_of_sql, run_sql};
    pub use crate::{
        Database, Engine, Executor, Prepared, ProvenanceQuery, ProvenanceRows, QueryProfile,
        Relation, Rows, Schema, Session, SessionConfig, Strategy, Tuple, Value, Witness,
    };
    pub use perm_algebra::{col, lit, qcol, PlanBuilder};
}

/// Errors surfaced by the high-level API. Every variant wraps the error of
/// the pipeline stage that failed and exposes it via
/// [`std::error::Error::source`]; `Display` names the stage and includes the
/// cause, so e.g. SQL byte positions survive to the top level.
#[derive(Debug)]
pub enum PermError {
    /// SQL parsing or binding failed.
    Sql(perm_sql::SqlError),
    /// Provenance rewriting failed.
    Provenance(perm_core::ProvenanceError),
    /// Query execution failed.
    Exec(perm_exec::ExecError),
    /// A parameter-binding or statement-usage error at the session layer.
    Param(String),
    /// A worker panicked while serving the request; the panic was isolated
    /// (caught at the request boundary) and the rest of the batch kept
    /// going. The payload is the panic message when one was carried.
    Internal(String),
    /// The serving layer refused to admit the request because its in-flight
    /// limit was reached — shed load explicitly rather than queueing
    /// without bound.
    Rejected {
        /// The admission limit that was hit (requests in flight).
        limit: usize,
    },
}

impl std::fmt::Display for PermError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PermError::Sql(e) => write!(f, "sql error: {e}"),
            PermError::Provenance(e) => write!(f, "provenance error: {e}"),
            PermError::Exec(e) => write!(f, "execution error: {e}"),
            PermError::Param(msg) => write!(f, "statement error: {msg}"),
            PermError::Internal(msg) => write!(f, "internal error: worker panicked: {msg}"),
            PermError::Rejected { limit } => {
                write!(
                    f,
                    "request rejected: admission limit of {limit} in-flight requests"
                )
            }
        }
    }
}

impl std::error::Error for PermError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PermError::Sql(e) => Some(e),
            PermError::Provenance(e) => Some(e),
            PermError::Exec(e) => Some(e),
            PermError::Param(_) | PermError::Internal(_) | PermError::Rejected { .. } => None,
        }
    }
}

impl From<perm_sql::SqlError> for PermError {
    fn from(e: perm_sql::SqlError) -> Self {
        PermError::Sql(e)
    }
}
impl From<perm_core::ProvenanceError> for PermError {
    fn from(e: perm_core::ProvenanceError) -> Self {
        PermError::Provenance(e)
    }
}
impl From<perm_exec::ExecError> for PermError {
    fn from(e: perm_exec::ExecError) -> Self {
        PermError::Exec(e)
    }
}

/// Runs an ordinary SQL query and returns its result. If the query carries
/// the `SELECT PROVENANCE` marker it is rewritten with [`Strategy::Auto`]
/// before execution, mirroring the behaviour of the Perm system.
#[deprecated(
    since = "0.2.0",
    note = "use the `Engine`/`Session` API: `Session::new(db).run(sql)` — \
            or `Session::prepare` for repeated execution"
)]
pub fn run_sql(db: &Database, sql: &str) -> Result<Relation, PermError> {
    Session::new(db).run(sql)
}

/// Computes the provenance of a SQL query with an explicit rewrite strategy.
/// The `PROVENANCE` keyword is optional — provenance is computed either way.
#[deprecated(
    since = "0.2.0",
    note = "use the `Engine`/`Session` API: `Session::prepare_provenance` + \
            `Session::execute` (configure the strategy via `SessionConfig`)"
)]
pub fn provenance_of_sql(
    db: &Database,
    sql: &str,
    strategy: Strategy,
) -> Result<Relation, PermError> {
    let session = Session::with_config(
        db,
        SessionConfig {
            strategy,
            ..SessionConfig::default()
        },
    );
    let prepared = session.prepare_provenance(sql)?;
    session.execute(&prepared, &[])
}

/// Computes the provenance of an algebra plan with an explicit strategy.
#[deprecated(
    since = "0.2.0",
    note = "use the `Engine`/`Session` API: `Session::prepare_provenance_plan` + \
            `Session::execute`"
)]
pub fn provenance_of_plan(
    db: &Database,
    plan: &perm_algebra::Plan,
    strategy: Strategy,
) -> Result<Relation, PermError> {
    let session = Session::with_config(
        db,
        SessionConfig {
            strategy,
            ..SessionConfig::default()
        },
    );
    let prepared = session.prepare_provenance_plan(plan)?;
    session.execute(&prepared, &[])
}
