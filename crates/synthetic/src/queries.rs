//! The two parameterised synthetic queries of Section 4.2.2.

use crate::generator::{generate_table, SyntheticConfig};
use perm_algebra::builder::{
    all_sublink, and, any_sublink, between, col, eq, exists_sublink, lit, qcol, PlanBuilder,
};
use perm_algebra::{CompareOp, Plan};
use perm_storage::Database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which of the synthetic query shapes to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// `q1`: equality `ANY` sublink.
    Q1EqualityAny,
    /// `q2`: inequality `ALL` sublink.
    Q2InequalityAll,
    /// `q3`: correlated `EXISTS` sublink binding on the low-cardinality
    /// group attribute `g` — the workload that shows the effect of the
    /// executor's parameterized sublink memo on a Fig. 7-style sweep.
    Q3CorrelatedExists,
}

/// The random range predicates applied to both tables (`range` on `R1.b`,
/// `range2` on `R2.b`), each selecting a window of fixed width.
#[derive(Debug, Clone, Copy)]
pub struct RangeParams {
    /// Lower bound of the `R1` window.
    pub r1_low: i64,
    /// Upper bound of the `R1` window.
    pub r1_high: i64,
    /// Lower bound of the `R2` window.
    pub r2_low: i64,
    /// Upper bound of the `R2` window.
    pub r2_high: i64,
}

/// Draws a random range parameterisation for tables of the given sizes: each
/// window has a fixed relative width so the selected fraction of each table
/// stays roughly constant as table sizes grow (as in the paper's setup).
pub fn random_range(r1_rows: usize, r2_rows: usize, seed: u64) -> RangeParams {
    let mut rng = StdRng::seed_from_u64(seed);
    let window = |rows: usize, rng: &mut StdRng| {
        let std_dev = 100.0 * rows as f64;
        // A window of one quarter standard deviation keeps selectivity
        // roughly constant across sizes.
        let width = (0.25 * std_dev) as i64;
        let low = (rng.gen_range(-1.0..1.0) * std_dev) as i64;
        (low, low + width)
    };
    let (r1_low, r1_high) = window(r1_rows, &mut rng);
    let (r2_low, r2_high) = window(r2_rows, &mut rng);
    RangeParams {
        r1_low,
        r1_high,
        r2_low,
        r2_high,
    }
}

/// Builds a database with the two synthetic tables `r1` and `r2`.
pub fn build_database(r1_rows: usize, r2_rows: usize, seed: u64) -> Database {
    let mut db = Database::new();
    db.create_or_replace_table(
        "r1",
        generate_table("r1", SyntheticConfig::new(r1_rows, seed)),
    );
    db.create_or_replace_table(
        "r2",
        generate_table("r2", SyntheticConfig::new(r2_rows, seed.wrapping_add(1))),
    );
    db
}

/// `q1 = σ_{range ∧ a = ANY (Π_a(σ_{range2}(R2)))}(R1)`.
pub fn query_q1(db: &Database, params: RangeParams) -> Plan {
    build_query(db, params, QueryKind::Q1EqualityAny)
}

/// `q2 = σ_{range ∧ a < ALL (Π_a(σ_{range2}(R2)))}(R1)`.
pub fn query_q2(db: &Database, params: RangeParams) -> Plan {
    build_query(db, params, QueryKind::Q2InequalityAll)
}

/// `q3 = σ_{EXISTS(σ_{range2 ∧ g = R1.g}(R2))}(R1)`.
///
/// Unlike `q1`/`q2` there is no range predicate on the outer relation: the
/// point of `q3` is that a naive executor evaluates the correlated sublink
/// once per outer tuple (cost ∝ |R1|), while a memoizing executor evaluates
/// it once per distinct `g` binding (cost ∝ min(|R1|,
/// [`crate::generator::CORRELATION_GROUPS`])).
pub fn query_q3(db: &Database, params: RangeParams) -> Plan {
    build_query(db, params, QueryKind::Q3CorrelatedExists)
}

/// Builds one of the synthetic queries.
pub fn build_query(db: &Database, params: RangeParams, kind: QueryKind) -> Plan {
    if kind == QueryKind::Q3CorrelatedExists {
        // The sublink is *correlated*: it binds R1's group attribute, so
        // only Gen (and the memoizing executor) can exploit it.
        let sublink_query = PlanBuilder::scan(db, "r2")
            .expect("r2 must exist")
            .select(and(
                between(qcol("r2", "b"), lit(params.r2_low), lit(params.r2_high)),
                eq(qcol("r2", "g"), qcol("r1", "g")),
            ))
            .build();
        return PlanBuilder::scan(db, "r1")
            .expect("r1 must exist")
            .select(exists_sublink(sublink_query))
            .build();
    }
    let sublink_query = PlanBuilder::scan(db, "r2")
        .expect("r2 must exist")
        .select(between(
            qcol("r2", "b"),
            lit(params.r2_low),
            lit(params.r2_high),
        ))
        .project_columns(&["a"])
        .build();
    let sublink = match kind {
        QueryKind::Q1EqualityAny => any_sublink(qcol("r1", "a"), CompareOp::Eq, sublink_query),
        QueryKind::Q2InequalityAll => all_sublink(qcol("r1", "a"), CompareOp::Lt, sublink_query),
        QueryKind::Q3CorrelatedExists => unreachable!("handled above"),
    };
    let range = between(qcol("r1", "b"), lit(params.r1_low), lit(params.r1_high));
    // The range predicate and the sublink are applied as two stacked
    // selections (σ_sublink(σ_range(R1))), which is equivalent to the single
    // conjunctive selection of the paper and lets the Unn rule U2 (whose
    // pattern is a selection containing *only* the sublink) fire for q1, as
    // in the paper's experiments.
    PlanBuilder::scan(db, "r1")
        .expect("r1 must exist")
        .select(range)
        .select(sublink)
        .build()
}

/// Convenience re-export used by examples: an unqualified column of `r1`.
pub fn r1_col(name: &str) -> perm_algebra::Expr {
    col(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_core::{ProvenanceQuery, Strategy};
    use perm_exec::Executor;

    #[test]
    fn queries_execute_and_all_strategies_apply_where_expected() {
        let db = build_database(200, 100, 9);
        let params = random_range(200, 100, 5);
        let q1 = query_q1(&db, params);
        let q2 = query_q2(&db, params);
        let q3 = query_q3(&db, params);
        let executor = Executor::new(&db);
        executor.execute(&q1).unwrap();
        executor.execute(&q2).unwrap();
        executor.execute(&q3).unwrap();

        let q1_strategies = ProvenanceQuery::new(&db, &q1).applicable_strategies();
        assert_eq!(
            q1_strategies,
            vec![Strategy::Gen, Strategy::Left, Strategy::Move, Strategy::Unn]
        );
        let q2_strategies = ProvenanceQuery::new(&db, &q2).applicable_strategies();
        assert_eq!(
            q2_strategies,
            vec![Strategy::Gen, Strategy::Left, Strategy::Move]
        );
        // q3's sublink is correlated, so only Gen applies.
        let q3_strategies = ProvenanceQuery::new(&db, &q3).applicable_strategies();
        assert_eq!(q3_strategies, vec![Strategy::Gen]);
    }

    #[test]
    fn q3_memoization_bends_the_operator_count() {
        let db = build_database(400, 200, 9);
        let params = random_range(400, 200, 5);
        let q3 = query_q3(&db, params);

        let memoized = Executor::new(&db);
        let with_memo = memoized.execute(&q3).unwrap();
        let ops_on = memoized.operators_evaluated();

        let unmemoized = Executor::new(&db).with_sublink_memo(false);
        let without_memo = unmemoized.execute(&q3).unwrap();
        let ops_off = unmemoized.operators_evaluated();

        assert!(with_memo.bag_eq(&without_memo));
        // 400 outer tuples bind at most CORRELATION_GROUPS distinct values.
        assert!(
            ops_off >= 5 * ops_on,
            "expected ≥5× fewer operator evaluations with the memo: {ops_on} on vs {ops_off} off"
        );
    }

    #[test]
    fn q1_admits_the_unn_rewrite() {
        // The Unn rule U2 requires the selection condition to be exactly the
        // equality ANY sublink; the builder therefore stacks the range
        // predicate as a separate selection below it.
        let db = build_database(50, 30, 2);
        let params = random_range(50, 30, 3);
        let q1 = query_q1(&db, params);
        let strategies = ProvenanceQuery::new(&db, &q1).applicable_strategies();
        assert!(strategies.contains(&Strategy::Unn));
    }

    #[test]
    fn provenance_of_q1_points_back_to_matching_r2_tuples() {
        let db = build_database(80, 60, 21);
        let params = random_range(80, 60, 22);
        let q1 = query_q1(&db, params);
        let rewritten = ProvenanceQuery::new(&db, &q1)
            .strategy(Strategy::Move)
            .rewrite()
            .unwrap();
        let result = Executor::new(&db).execute(rewritten.plan()).unwrap();
        let schema = result.schema();
        let a = schema.resolve(None, "a").unwrap();
        let prov_a = schema.resolve(None, "prov_r2_a").unwrap();
        for tuple in result.tuples() {
            if !tuple.get(prov_a).is_null() {
                // The contributing R2 tuple must satisfy the equality that
                // made the ANY sublink true.
                assert!(tuple.get(a).null_safe_eq(tuple.get(prov_a)));
            }
        }
    }
}
