//! # perm-synthetic
//!
//! The synthetic workload of Section 4.2.2: tables with two integer
//! attributes (`a` and `b`) whose values are drawn from a Gaussian
//! distribution with a fixed mean and a standard deviation of 100 × the table
//! size, and two parameterised queries
//!
//! * `q1 = σ_{range ∧ a = ANY (σ_{range2}(R2))}(R1)` — an equality `ANY`
//!   sublink (all four strategies apply), and
//! * `q2 = σ_{range ∧ a < ALL (σ_{range2}(R2))}(R1)` — an inequality `ALL`
//!   sublink (Unn does not apply).
//!
//! The `range` / `range2` predicates restrict each table to a random range of
//! fixed width over attribute `b`, exactly as in the paper's experiments
//! (Figures 7–9).

pub mod generator;
pub mod queries;
pub mod sqlgen;

pub use generator::{generate_table, SyntheticConfig, CORRELATION_GROUPS};
pub use queries::{
    build_database, build_query, query_q1, query_q2, random_range, QueryKind, RangeParams,
};
pub use sqlgen::{corpus_case, corpus_database, CorpusCase};
