//! A seeded random SQL corpus over two small tables — the shared workload
//! of the differential tests.
//!
//! The single-threaded session differential test (the facade's
//! `tests/session_differential.rs`) and the concurrent differential test of
//! the serving subsystem (`perm-serve`) must exercise the *same* query
//! population: the concurrency bar is "N worker threads produce bag-identical
//! results and witnesses to single-threaded execution", which only means
//! something if both sides draw from one generator. This module is that
//! generator: nested-subquery SQL (`IN` / `NOT IN` / correlated `EXISTS` /
//! scalar aggregates, one extra nesting level, `ORDER BY` / `LIMIT` tails)
//! with `$1`-style parameters, over the fixed [`corpus_database`].

use perm_storage::{Database, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The two-table database every corpus query runs against: `r(a, b, g)` and
/// `s(c, d, g)` with a low-cardinality correlation attribute `g`.
pub fn corpus_database() -> Database {
    let mut db = Database::new();
    db.create_table(
        "r",
        Relation::from_rows(
            Schema::from_names(&["a", "b", "g"]).with_qualifier("r"),
            (0..20)
                .map(|i| vec![Value::Int(i), Value::Int((i * 7) % 13), Value::Int(i % 4)])
                .collect(),
        ),
    )
    .expect("fresh database");
    db.create_table(
        "s",
        Relation::from_rows(
            Schema::from_names(&["c", "d", "g"]).with_qualifier("s"),
            (0..15)
                .map(|i| {
                    vec![
                        Value::Int(i * 2),
                        Value::Int((i * 5) % 11),
                        Value::Int(i % 4),
                    ]
                })
                .collect(),
        ),
    )
    .expect("fresh database");
    db
}

/// One corpus entry: a SQL text plus a deterministic pool of parameter
/// values to bind (take the first `param_count`-many, as reported by the
/// facade's prepared statement).
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// The generated SQL (may reference `$1`).
    pub sql: String,
    param_pool: Vec<Value>,
}

impl CorpusCase {
    /// The first `count` parameter values of this case's deterministic pool.
    ///
    /// # Panics
    /// If `count` exceeds the pool (4 values — the corpus grammar uses at
    /// most one distinct parameter).
    pub fn params(&self, count: usize) -> Vec<Value> {
        self.param_pool[..count].to_vec()
    }
}

/// Generates the corpus case for one seed. Same seed, same case — on every
/// thread, which is what lets the concurrent differential test compare
/// workers against a single-threaded reference case by case.
pub fn corpus_case(seed: u64) -> CorpusCase {
    let mut rng = StdRng::seed_from_u64(seed);
    let sql = random_sql(&mut rng);
    let param_pool = (0..4).map(|_| Value::Int(rng.gen_range(-5..25))).collect();
    CorpusCase { sql, param_pool }
}

/// A random scalar-vs-value operand: a literal, or `$1` (so parameters are
/// exercised throughout the grammar).
fn operand(rng: &mut StdRng) -> String {
    if rng.gen_range(0..4) == 0 {
        "$1".to_string()
    } else {
        format!("{}", rng.gen_range(-5..25))
    }
}

fn comparison(rng: &mut StdRng, column: &str) -> String {
    let op = ["<", "<=", ">", ">=", "=", "<>"][rng.gen_range(0..6usize)];
    format!("{column} {op} {}", operand(rng))
}

/// A random subquery over `s`, possibly correlated on `r.g` and possibly
/// nested one level deeper.
fn subquery(rng: &mut StdRng, depth: usize) -> String {
    let mut preds: Vec<String> = Vec::new();
    if rng.gen_bool(0.5) {
        preds.push(comparison(rng, "s.c"));
    }
    if rng.gen_bool(0.5) {
        preds.push("s.g = r.g".to_string());
    }
    if depth > 0 && rng.gen_bool(0.4) {
        preds.push(format!(
            "s.d IN (SELECT b FROM r r2 WHERE {})",
            comparison(rng, "r2.a")
        ));
    }
    let where_clause = if preds.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", preds.join(" AND "))
    };
    format!("SELECT c FROM s{where_clause}")
}

/// One random top-level query in the supported subset.
fn random_sql(rng: &mut StdRng) -> String {
    let mut preds: Vec<String> = Vec::new();
    if rng.gen_bool(0.6) {
        preds.push(comparison(rng, "a"));
    }
    match rng.gen_range(0..4) {
        0 => preds.push(format!("a IN ({})", subquery(rng, 1))),
        1 => preds.push(format!("a NOT IN ({})", subquery(rng, 1))),
        2 => preds.push(format!(
            "EXISTS (SELECT * FROM s WHERE s.g = r.g AND {})",
            comparison(rng, "s.c")
        )),
        _ => preds.push(format!(
            "b {} (SELECT min(d) FROM s WHERE {})",
            [">", "<"][rng.gen_range(0..2usize)],
            comparison(rng, "s.c")
        )),
    }
    let where_clause = format!(" WHERE {}", preds.join(" AND "));
    let tail = match rng.gen_range(0..3) {
        0 => " ORDER BY a",
        1 => " ORDER BY a LIMIT 7",
        _ => "",
    };
    format!("SELECT a, b FROM r{where_clause}{tail}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_per_seed() {
        for seed in 0..20u64 {
            let a = corpus_case(seed);
            let b = corpus_case(seed);
            assert_eq!(a.sql, b.sql);
            assert_eq!(a.params(4), b.params(4));
        }
        // And seeds actually vary the grammar.
        let distinct: std::collections::HashSet<String> =
            (0..20u64).map(|s| corpus_case(s).sql).collect();
        assert!(distinct.len() > 5);
    }

    #[test]
    fn corpus_database_has_the_expected_shape() {
        let db = corpus_database();
        assert_eq!(db.table("r").unwrap().len(), 20);
        assert_eq!(db.table("s").unwrap().len(), 15);
    }
}
