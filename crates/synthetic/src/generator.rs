//! Generator for the synthetic Gaussian tables.

use perm_storage::{Attribute, DataType, Relation, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one synthetic table.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticConfig {
    /// Number of tuples.
    pub rows: usize,
    /// Mean of the Gaussian distribution the attribute values are drawn from.
    pub mean: f64,
    /// Random seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// Creates a configuration with the paper's parameters: fixed mean and a
    /// standard deviation of 100 × the table size (applied in
    /// [`generate_table`]).
    pub fn new(rows: usize, seed: u64) -> SyntheticConfig {
        SyntheticConfig {
            rows,
            mean: 0.0,
            seed,
        }
    }
}

/// Samples a standard normal variate with the Box–Muller transform (keeps the
/// dependency footprint to `rand` itself).
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Number of distinct values of the low-cardinality correlation attribute
/// `g`. Correlated sublink workloads (the `q3` query) bind on `g`, so a
/// memoizing executor runs each sublink at most this many times (plus once
/// per distinct NULL-free binding absent from the table) however large the
/// outer relation grows.
pub const CORRELATION_GROUPS: i64 = 32;

/// Generates one synthetic table with schema `(a, b, g)` qualified by
/// `name`. `a` and `b` are Gaussian with the configured mean and a standard
/// deviation of 100 × the table size, rounded to integers (Section 4.2.2);
/// `g` is uniform over `0..CORRELATION_GROUPS` and parameterises the
/// correlated-sublink workload.
pub fn generate_table(name: &str, config: SyntheticConfig) -> Relation {
    let schema = Schema::new(vec![
        Attribute::qualified(name, "a", DataType::Int),
        Attribute::qualified(name, "b", DataType::Int),
        Attribute::qualified(name, "g", DataType::Int),
    ]);
    let std_dev = 100.0 * config.rows as f64;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut relation = Relation::empty(schema);
    for _ in 0..config.rows {
        let a = config.mean + standard_normal(&mut rng) * std_dev;
        let b = config.mean + standard_normal(&mut rng) * std_dev;
        let g = rng.gen_range(0..CORRELATION_GROUPS);
        relation.push_unchecked(Tuple::new(vec![
            Value::Int(a.round() as i64),
            Value::Int(b.round() as i64),
            Value::Int(g),
        ]));
    }
    relation
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_number_of_rows() {
        let r = generate_table("r1", SyntheticConfig::new(250, 7));
        assert_eq!(r.len(), 250);
        assert_eq!(r.schema().names(), vec!["a", "b", "g"]);
    }

    #[test]
    fn correlation_attribute_is_low_cardinality() {
        let r = generate_table("r1", SyntheticConfig::new(1000, 5));
        let mut groups: Vec<i64> = r
            .tuples()
            .iter()
            .map(|t| t.get(2).as_i64().unwrap())
            .collect();
        groups.sort_unstable();
        groups.dedup();
        assert!(groups.len() as i64 <= CORRELATION_GROUPS);
        assert!(groups.iter().all(|g| (0..CORRELATION_GROUPS).contains(g)));
        // 1000 draws over 32 groups should hit (nearly) all of them.
        assert!(groups.len() >= 24, "got only {} groups", groups.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_table("r1", SyntheticConfig::new(100, 3));
        let b = generate_table("r1", SyntheticConfig::new(100, 3));
        assert!(a.bag_eq(&b));
        let c = generate_table("r1", SyntheticConfig::new(100, 4));
        assert!(!a.bag_eq(&c));
    }

    #[test]
    fn values_spread_with_table_size() {
        // The standard deviation is proportional to the table size, so the
        // spread of a larger table must be wider.
        let spread = |rows: usize| {
            let r = generate_table("r", SyntheticConfig::new(rows, 11));
            let values: Vec<i64> = r
                .tuples()
                .iter()
                .map(|t| t.get(0).as_i64().unwrap())
                .collect();
            (*values.iter().max().unwrap() - *values.iter().min().unwrap()) as f64
        };
        assert!(spread(500) > spread(50));
    }
}
