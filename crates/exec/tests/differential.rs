//! Differential testing of the three execution modes over randomly
//! generated nested-subquery plans.
//!
//! A seeded generator (the local `rand` shim, so runs are reproducible)
//! composes plans over the synthetic tables of `perm-synthetic` —
//! correlated and uncorrelated sublinks of every kind (`EXISTS`, `ANY`,
//! `ALL`, scalar), optionally nested two levels deep, under selections,
//! projections, aggregations, sorts with limits, joins and set operations.
//! Every plan is executed through
//!
//! 1. `Executor::execute` — compile + parameterized sublink/verdict memos,
//! 2. `Executor::execute_unoptimized` — the name-resolving interpreter
//!    (which shares the parameterized memo, resolved at runtime), and
//! 3. `Executor::execute` with the memos disabled,
//!
//! and the three results must agree bag-for-bag (or all three must fail).
//! Since both drivers are thin shells over the shared physical-operator
//! layer, a divergence here points at the evaluator closures or the memo
//! keying — exactly the parts that are *not* shared.

use perm_algebra::builder::{
    all_sublink, and, any_sublink, between, cmp, count_star, eq, exists_sublink, lit, not, or,
    qcol, scalar_sublink, sum, PlanBuilder,
};
use perm_algebra::{CompareOp, Plan, ProjectItem, SetOpKind, SortKey};
use perm_exec::Executor;
use perm_storage::Database;
use perm_synthetic::build_database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PLANS: usize = 220;

fn random_compare_op(rng: &mut StdRng) -> CompareOp {
    match rng.gen_range(0..6u32) {
        0 => CompareOp::Eq,
        1 => CompareOp::Neq,
        2 => CompareOp::Lt,
        3 => CompareOp::Le,
        4 => CompareOp::Gt,
        _ => CompareOp::Ge,
    }
}

/// A random window predicate on `r2.b` (the synthetic values are Gaussian
/// with σ = 100 · rows, so the window keeps selectivity away from 0/1).
fn random_r2_window(rng: &mut StdRng) -> perm_algebra::Expr {
    let low = rng.gen_range(-3000..1500i64);
    between(
        qcol("r2", "b"),
        lit(low),
        lit(low + rng.gen_range(500..3000i64)),
    )
}

/// A random sublink query over `r2`, correlated against the enclosing scan
/// of `r1` with the given probability; `project_a` adds the single-column
/// projection `ANY`/`ALL`/scalar sublinks need.
fn random_sublink_plan(db: &Database, rng: &mut StdRng, correlated: bool, nested: bool) -> Plan {
    let corr = match rng.gen_range(0..3u32) {
        0 => eq(qcol("r2", "g"), qcol("r1", "g")),
        1 => cmp(CompareOp::Le, qcol("r2", "b"), qcol("r1", "b")),
        _ => and(
            eq(qcol("r2", "g"), qcol("r1", "g")),
            cmp(CompareOp::Gt, qcol("r2", "a"), qcol("r1", "a")),
        ),
    };
    let window = random_r2_window(rng);
    let predicate = if correlated {
        and(window, corr)
    } else {
        window
    };
    let builder = PlanBuilder::scan_as(db, "r2", Some("r2"))
        .expect("r2 must exist")
        .select(predicate);
    if !nested {
        return builder.build();
    }
    // Nest one more sublink level: the inner query scans r2 under a fresh
    // alias and correlates against the *middle* scope (and, sometimes,
    // through to the outermost r1 scope).
    let inner_corr = if rng.gen_bool(0.5) {
        eq(qcol("m", "g"), qcol("r2", "g"))
    } else {
        and(
            eq(qcol("m", "g"), qcol("r2", "g")),
            cmp(CompareOp::Lt, qcol("m", "a"), qcol("r1", "b")),
        )
    };
    let inner = PlanBuilder::scan_as(db, "r2", Some("m"))
        .expect("r2 must exist")
        .select(inner_corr)
        .build();
    let inner_sublink = if rng.gen_bool(0.5) {
        exists_sublink(inner)
    } else {
        not(exists_sublink(inner))
    };
    builder.select(inner_sublink).build()
}

/// A random sublink *expression* usable in a selection over `r1`.
fn random_sublink_expr(db: &Database, rng: &mut StdRng) -> perm_algebra::Expr {
    let correlated = rng.gen_bool(0.6);
    let nested = rng.gen_bool(0.25);
    match rng.gen_range(0..4u32) {
        0 => {
            let sub = random_sublink_plan(db, rng, correlated, nested);
            if rng.gen_bool(0.3) {
                not(exists_sublink(sub))
            } else {
                exists_sublink(sub)
            }
        }
        1 => {
            let sub = PlanBuilder::from_plan(random_sublink_plan(db, rng, correlated, nested))
                .project_columns(&["a"])
                .build();
            let test = if rng.gen_bool(0.5) {
                qcol("r1", "a")
            } else {
                qcol("r1", "b")
            };
            any_sublink(test, random_compare_op(rng), sub)
        }
        2 => {
            let sub = PlanBuilder::from_plan(random_sublink_plan(db, rng, correlated, nested))
                .project_columns(&["a"])
                .build();
            all_sublink(qcol("r1", "a"), random_compare_op(rng), sub)
        }
        _ => {
            // Scalar sublink: the global aggregate guarantees exactly one
            // row and one attribute for every binding.
            let agg = if rng.gen_bool(0.5) {
                count_star("n")
            } else {
                sum(qcol("r2", "a"), "s")
            };
            let sub = PlanBuilder::from_plan(random_sublink_plan(db, rng, correlated, nested))
                .aggregate(vec![], vec![agg])
                .build();
            cmp(
                random_compare_op(rng),
                scalar_sublink(sub),
                lit(rng.gen_range(-4000..4000i64)),
            )
        }
    }
}

/// A random selection over `r1` whose predicate combines a sublink with an
/// optional plain range conjunct/disjunct.
fn random_filtered_r1(db: &Database, rng: &mut StdRng) -> Plan {
    let sublink = random_sublink_expr(db, rng);
    let predicate = match rng.gen_range(0..3u32) {
        0 => sublink,
        1 => {
            let low = rng.gen_range(-3000..2000i64);
            and(between(qcol("r1", "b"), lit(low), lit(low + 2000)), sublink)
        }
        _ => {
            let low = rng.gen_range(-3000..2000i64);
            or(between(qcol("r1", "b"), lit(low), lit(low + 500)), sublink)
        }
    };
    PlanBuilder::scan(db, "r1")
        .expect("r1 must exist")
        .select(predicate)
        .build()
}

/// One full random plan: a sublink selection over `r1` under a random
/// top-level shape.
fn random_plan(db: &Database, rng: &mut StdRng) -> Plan {
    let base = random_filtered_r1(db, rng);
    match rng.gen_range(0..6u32) {
        // The bare sublink selection.
        0 => base,
        // Projection, bag or set.
        1 => {
            let builder = PlanBuilder::from_plan(base);
            if rng.gen_bool(0.5) {
                builder.project_columns(&["g", "a"]).build()
            } else {
                builder
                    .project_distinct(vec![ProjectItem::column("g")])
                    .build()
            }
        }
        // Aggregation over the filtered rows.
        2 => PlanBuilder::from_plan(base)
            .aggregate(
                vec![ProjectItem::column("g")],
                vec![count_star("n"), sum(qcol("r1", "a"), "total")],
            )
            .build(),
        // Sort + limit (stable sort, shared loop ⇒ identical prefixes).
        3 => PlanBuilder::from_plan(base)
            .sort(vec![
                SortKey::desc(qcol("r1", "b")),
                SortKey::asc(qcol("r1", "a")),
            ])
            .limit(rng.gen_range(1..12usize))
            .build(),
        // Set operation between two independently filtered branches.
        4 => {
            let left = PlanBuilder::from_plan(base)
                .project_columns(&["a", "g"])
                .build();
            let right = PlanBuilder::from_plan(random_filtered_r1(db, rng))
                .project_columns(&["a", "g"])
                .build();
            let op = match rng.gen_range(0..3u32) {
                0 => SetOpKind::Union,
                1 => SetOpKind::Intersect,
                _ => SetOpKind::Except,
            };
            PlanBuilder::from_plan(left)
                .set_op(op, rng.gen_bool(0.5), right)
                .build()
        }
        // Join with a sublink-bearing condition (nested-loop path) or a
        // plain equi-join (hash path) against a second r1 alias.
        _ => {
            let other = PlanBuilder::scan_as(db, "r1", Some("o"))
                .expect("r1 must exist")
                .build();
            let join_cond = eq(qcol("r1", "g"), qcol("o", "g"));
            let builder = PlanBuilder::from_plan(base);
            if rng.gen_bool(0.5) {
                builder.join(other, join_cond).build()
            } else {
                builder.left_join(other, join_cond).build()
            }
        }
    }
}

#[test]
fn random_plans_agree_across_all_three_execution_modes() {
    // Small tables keep even the ALL-sublink nested loops fast; 24 × 18
    // rows with the 32-group correlation attribute still exercises memo
    // hits, NULL-free bindings and empty sublink results.
    let db = build_database(24, 18, 0xD1FF);
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let mut correlated_hits = 0usize;
    for i in 0..PLANS {
        let plan = random_plan(&db, &mut rng);

        let compiled_ex = Executor::new(&db);
        let compiled = compiled_ex.execute(&plan);

        let interp_ex = Executor::new(&db);
        let interpreted = interp_ex.execute_unoptimized(&plan);

        let memo_off_ex = Executor::new(&db).with_sublink_memo(false);
        let memo_off = memo_off_ex.execute(&plan);

        match (&compiled, &interpreted, &memo_off) {
            (Ok(a), Ok(b), Ok(c)) => {
                assert!(
                    a.bag_eq(b),
                    "plan {i}: compiled+memo disagrees with the interpreter\n{}",
                    perm_algebra::display::explain(&plan)
                );
                assert!(
                    a.bag_eq(c),
                    "plan {i}: compiled+memo disagrees with memo-off\n{}",
                    perm_algebra::display::explain(&plan)
                );
                if compiled_ex.operators_evaluated() < memo_off_ex.operators_evaluated() {
                    correlated_hits += 1;
                }
            }
            (Err(_), Err(_), Err(_)) => {}
            other => panic!(
                "plan {i}: execution modes disagree on success/failure: \
                 compiled={:?} interpreted={:?} memo_off={:?}\n{}",
                other.0.as_ref().map(|_| "ok"),
                other.1.as_ref().map(|_| "ok"),
                other.2.as_ref().map(|_| "ok"),
                perm_algebra::display::explain(&plan),
            ),
        }
    }
    // The sweep must actually exercise the memo, not just uncorrelated
    // plans: a healthy generator produces many plans where memoization
    // saves operator evaluations.
    assert!(
        correlated_hits >= PLANS / 10,
        "only {correlated_hits}/{PLANS} plans exercised the sublink memo"
    );
}
