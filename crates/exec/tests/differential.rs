//! Differential testing of the execution modes over randomly generated
//! nested-subquery plans.
//!
//! A seeded generator (the local `rand` shim, so runs are reproducible)
//! composes plans over the synthetic tables of `perm-synthetic` —
//! correlated and uncorrelated sublinks of every kind (`EXISTS`, `ANY`,
//! `ALL`, scalar), optionally nested two levels deep, under selections,
//! projections, aggregations, sorts with limits, joins and set operations.
//! Every plan is executed through
//!
//! 1. `Executor::execute` — compile + parameterized sublink/verdict memos,
//!    with the default columnar batch layout,
//! 2. `Executor::execute` with columnar off — the row-major vectorized
//!    layout over the same batches,
//! 3. `Executor::execute_unoptimized` — the name-resolving interpreter
//!    (which shares the parameterized memo, resolved at runtime), and
//! 4. `Executor::execute` with the memos disabled,
//!
//! and all results must agree bag-for-bag (or all modes must fail). The
//! batch-seam cases below add the fifth mode, batching off entirely (the
//! per-tuple compiled dispatch). Since both drivers are thin shells over
//! the shared physical-operator layer, a divergence here points at the
//! evaluator closures, the typed kernels or the memo keying — exactly the
//! parts that are *not* shared.

use perm_algebra::builder::{
    all_sublink, and, any_sublink, between, cmp, count_star, eq, exists_sublink, lit, not, or,
    qcol, scalar_sublink, sum, PlanBuilder,
};
use perm_algebra::{CompareOp, Plan, ProjectItem, SetOpKind, SortKey};
use perm_exec::{ExecError, Executor, FaultKind, FaultPlan, FaultSite, BATCH_ROWS};
use perm_storage::{Attribute, DataType, Database, Relation, Schema, Value};
use perm_synthetic::build_database;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PLANS: usize = 220;

fn random_compare_op(rng: &mut StdRng) -> CompareOp {
    match rng.gen_range(0..6u32) {
        0 => CompareOp::Eq,
        1 => CompareOp::Neq,
        2 => CompareOp::Lt,
        3 => CompareOp::Le,
        4 => CompareOp::Gt,
        _ => CompareOp::Ge,
    }
}

/// A random window predicate on `r2.b` (the synthetic values are Gaussian
/// with σ = 100 · rows, so the window keeps selectivity away from 0/1).
fn random_r2_window(rng: &mut StdRng) -> perm_algebra::Expr {
    let low = rng.gen_range(-3000..1500i64);
    between(
        qcol("r2", "b"),
        lit(low),
        lit(low + rng.gen_range(500..3000i64)),
    )
}

/// A random sublink query over `r2`, correlated against the enclosing scan
/// of `r1` with the given probability; `project_a` adds the single-column
/// projection `ANY`/`ALL`/scalar sublinks need.
fn random_sublink_plan(db: &Database, rng: &mut StdRng, correlated: bool, nested: bool) -> Plan {
    let corr = match rng.gen_range(0..3u32) {
        0 => eq(qcol("r2", "g"), qcol("r1", "g")),
        1 => cmp(CompareOp::Le, qcol("r2", "b"), qcol("r1", "b")),
        _ => and(
            eq(qcol("r2", "g"), qcol("r1", "g")),
            cmp(CompareOp::Gt, qcol("r2", "a"), qcol("r1", "a")),
        ),
    };
    let window = random_r2_window(rng);
    let predicate = if correlated {
        and(window, corr)
    } else {
        window
    };
    let builder = PlanBuilder::scan_as(db, "r2", Some("r2"))
        .expect("r2 must exist")
        .select(predicate);
    if !nested {
        return builder.build();
    }
    // Nest one more sublink level: the inner query scans r2 under a fresh
    // alias and correlates against the *middle* scope (and, sometimes,
    // through to the outermost r1 scope).
    let inner_corr = if rng.gen_bool(0.5) {
        eq(qcol("m", "g"), qcol("r2", "g"))
    } else {
        and(
            eq(qcol("m", "g"), qcol("r2", "g")),
            cmp(CompareOp::Lt, qcol("m", "a"), qcol("r1", "b")),
        )
    };
    let inner = PlanBuilder::scan_as(db, "r2", Some("m"))
        .expect("r2 must exist")
        .select(inner_corr)
        .build();
    let inner_sublink = if rng.gen_bool(0.5) {
        exists_sublink(inner)
    } else {
        not(exists_sublink(inner))
    };
    builder.select(inner_sublink).build()
}

/// A random sublink *expression* usable in a selection over `r1`.
fn random_sublink_expr(db: &Database, rng: &mut StdRng) -> perm_algebra::Expr {
    let correlated = rng.gen_bool(0.6);
    let nested = rng.gen_bool(0.25);
    match rng.gen_range(0..4u32) {
        0 => {
            let sub = random_sublink_plan(db, rng, correlated, nested);
            if rng.gen_bool(0.3) {
                not(exists_sublink(sub))
            } else {
                exists_sublink(sub)
            }
        }
        1 => {
            let sub = PlanBuilder::from_plan(random_sublink_plan(db, rng, correlated, nested))
                .project_columns(&["a"])
                .build();
            let test = if rng.gen_bool(0.5) {
                qcol("r1", "a")
            } else {
                qcol("r1", "b")
            };
            any_sublink(test, random_compare_op(rng), sub)
        }
        2 => {
            let sub = PlanBuilder::from_plan(random_sublink_plan(db, rng, correlated, nested))
                .project_columns(&["a"])
                .build();
            all_sublink(qcol("r1", "a"), random_compare_op(rng), sub)
        }
        _ => {
            // Scalar sublink: the global aggregate guarantees exactly one
            // row and one attribute for every binding.
            let agg = if rng.gen_bool(0.5) {
                count_star("n")
            } else {
                sum(qcol("r2", "a"), "s")
            };
            let sub = PlanBuilder::from_plan(random_sublink_plan(db, rng, correlated, nested))
                .aggregate(vec![], vec![agg])
                .build();
            cmp(
                random_compare_op(rng),
                scalar_sublink(sub),
                lit(rng.gen_range(-4000..4000i64)),
            )
        }
    }
}

/// A random selection over `r1` whose predicate combines a sublink with an
/// optional plain range conjunct/disjunct.
fn random_filtered_r1(db: &Database, rng: &mut StdRng) -> Plan {
    let sublink = random_sublink_expr(db, rng);
    let predicate = match rng.gen_range(0..3u32) {
        0 => sublink,
        1 => {
            let low = rng.gen_range(-3000..2000i64);
            and(between(qcol("r1", "b"), lit(low), lit(low + 2000)), sublink)
        }
        _ => {
            let low = rng.gen_range(-3000..2000i64);
            or(between(qcol("r1", "b"), lit(low), lit(low + 500)), sublink)
        }
    };
    PlanBuilder::scan(db, "r1")
        .expect("r1 must exist")
        .select(predicate)
        .build()
}

/// One full random plan: a sublink selection over `r1` under a random
/// top-level shape.
fn random_plan(db: &Database, rng: &mut StdRng) -> Plan {
    let base = random_filtered_r1(db, rng);
    match rng.gen_range(0..6u32) {
        // The bare sublink selection.
        0 => base,
        // Projection, bag or set.
        1 => {
            let builder = PlanBuilder::from_plan(base);
            if rng.gen_bool(0.5) {
                builder.project_columns(&["g", "a"]).build()
            } else {
                builder
                    .project_distinct(vec![ProjectItem::column("g")])
                    .build()
            }
        }
        // Aggregation over the filtered rows.
        2 => PlanBuilder::from_plan(base)
            .aggregate(
                vec![ProjectItem::column("g")],
                vec![count_star("n"), sum(qcol("r1", "a"), "total")],
            )
            .build(),
        // Sort + limit (stable sort, shared loop ⇒ identical prefixes).
        3 => PlanBuilder::from_plan(base)
            .sort(vec![
                SortKey::desc(qcol("r1", "b")),
                SortKey::asc(qcol("r1", "a")),
            ])
            .limit(rng.gen_range(1..12usize))
            .build(),
        // Set operation between two independently filtered branches.
        4 => {
            let left = PlanBuilder::from_plan(base)
                .project_columns(&["a", "g"])
                .build();
            let right = PlanBuilder::from_plan(random_filtered_r1(db, rng))
                .project_columns(&["a", "g"])
                .build();
            let op = match rng.gen_range(0..3u32) {
                0 => SetOpKind::Union,
                1 => SetOpKind::Intersect,
                _ => SetOpKind::Except,
            };
            PlanBuilder::from_plan(left)
                .set_op(op, rng.gen_bool(0.5), right)
                .build()
        }
        // Join with a sublink-bearing condition (nested-loop path) or a
        // plain equi-join (hash path) against a second r1 alias.
        _ => {
            let other = PlanBuilder::scan_as(db, "r1", Some("o"))
                .expect("r1 must exist")
                .build();
            let join_cond = eq(qcol("r1", "g"), qcol("o", "g"));
            let builder = PlanBuilder::from_plan(base);
            if rng.gen_bool(0.5) {
                builder.join(other, join_cond).build()
            } else {
                builder.left_join(other, join_cond).build()
            }
        }
    }
}

#[test]
fn random_plans_agree_across_all_execution_modes() {
    // Small tables keep even the ALL-sublink nested loops fast; 24 × 18
    // rows with the 32-group correlation attribute still exercises memo
    // hits, NULL-free bindings and empty sublink results.
    let db = build_database(24, 18, 0xD1FF);
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let mut correlated_hits = 0usize;
    for i in 0..PLANS {
        let plan = random_plan(&db, &mut rng);

        let compiled_ex = Executor::new(&db);
        let compiled = compiled_ex.execute(&plan);

        let row_major_ex = Executor::new(&db).with_columnar(false);
        let row_major = row_major_ex.execute(&plan);

        let interp_ex = Executor::new(&db);
        let interpreted = interp_ex.execute_unoptimized(&plan);

        let memo_off_ex = Executor::new(&db).with_sublink_memo(false);
        let memo_off = memo_off_ex.execute(&plan);

        match (&compiled, &row_major, &interpreted, &memo_off) {
            (Ok(a), Ok(r), Ok(b), Ok(c)) => {
                assert!(
                    a.bag_eq(r),
                    "plan {i}: columnar disagrees with row-major vectorized\n{}",
                    perm_algebra::display::explain(&plan)
                );
                assert!(
                    a.bag_eq(b),
                    "plan {i}: compiled+memo disagrees with the interpreter\n{}",
                    perm_algebra::display::explain(&plan)
                );
                assert!(
                    a.bag_eq(c),
                    "plan {i}: compiled+memo disagrees with memo-off\n{}",
                    perm_algebra::display::explain(&plan)
                );
                assert_eq!(
                    compiled_ex.operators_evaluated(),
                    row_major_ex.operators_evaluated(),
                    "plan {i}: operators_evaluated must not depend on the column layout"
                );
                if compiled_ex.operators_evaluated() < memo_off_ex.operators_evaluated() {
                    correlated_hits += 1;
                }
            }
            (Err(_), Err(_), Err(_), Err(_)) => {}
            other => panic!(
                "plan {i}: execution modes disagree on success/failure: \
                 compiled={:?} row_major={:?} interpreted={:?} memo_off={:?}\n{}",
                other.0.as_ref().map(|_| "ok"),
                other.1.as_ref().map(|_| "ok"),
                other.2.as_ref().map(|_| "ok"),
                other.3.as_ref().map(|_| "ok"),
                perm_algebra::display::explain(&plan),
            ),
        }
    }
    // The sweep must actually exercise the memo, not just uncorrelated
    // plans: a healthy generator produces many plans where memoization
    // saves operator evaluations.
    assert!(
        correlated_hits >= PLANS / 10,
        "only {correlated_hits}/{PLANS} plans exercised the sublink memo"
    );
}

/// The seventh differential mode: the full random corpus with the
/// **algebraic optimizer** on versus the memo-only reference. Result bags
/// must agree (or both modes must fail), and the optimizer must never cost
/// operator evaluations beyond the decorrelation allowance — a
/// decorrelated plan may spend up to two extra operators (the join and the
/// fresh key projection) at trivial scale, and must *win* operators on a
/// healthy share of correlated plans, where one join replaces a
/// per-binding sublink re-execution.
#[test]
fn optimizer_on_agrees_with_reference_and_never_costs_operators() {
    let db = build_database(24, 18, 0xD1FF);
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let mut decorrelated_plans = 0usize;
    let mut strict_wins = 0usize;
    for i in 0..PLANS {
        let plan = random_plan(&db, &mut rng);

        let ref_ex = Executor::new(&db);
        let reference = ref_ex.execute(&plan);

        let opt_ex = Executor::new(&db).with_optimizer(true);
        let optimized = opt_ex.execute(&plan);

        match (&reference, &optimized) {
            (Ok(a), Ok(b)) => {
                assert!(
                    a.bag_eq(b),
                    "plan {i}: optimizer-on disagrees with memo-only reference\n{}",
                    perm_algebra::display::explain(&plan)
                );
                let report = opt_ex.optimizer_report();
                let slack = 2 * report.sublinks_decorrelated;
                let (ops_ref, ops_opt) =
                    (ref_ex.operators_evaluated(), opt_ex.operators_evaluated());
                assert!(
                    ops_opt <= ops_ref + slack,
                    "plan {i}: optimizer-on evaluated {ops_opt} operators vs {ops_ref} \
                     reference (allowance {slack}); report {report:?}\n{}",
                    perm_algebra::display::explain(&plan)
                );
                if report.sublinks_decorrelated > 0 {
                    decorrelated_plans += 1;
                    if ops_opt < ops_ref {
                        strict_wins += 1;
                    }
                }
            }
            (Err(_), Err(_)) => {}
            other => panic!(
                "plan {i}: optimizer changed the error outcome: reference={:?} optimized={:?}\n{}",
                other.0.as_ref().map(|_| "ok"),
                other.1.as_ref().map(|_| "ok"),
                perm_algebra::display::explain(&plan),
            ),
        }
    }
    // The corpus must actually exercise decorrelation, and decorrelation
    // must actually pay: most correlated points have more bindings than
    // the 2-operator allowance.
    assert!(
        decorrelated_plans >= PLANS / 10,
        "only {decorrelated_plans}/{PLANS} plans decorrelated a sublink"
    );
    assert!(
        strict_wins * 2 >= decorrelated_plans,
        "decorrelation won operators on only {strict_wins}/{decorrelated_plans} plans"
    );
}

// ---------------------------------------------------------------------------
// Batch-seam differential cases: table sizes straddling the batch size
// (0, 1, BATCH−1, BATCH, BATCH+1 rows) with NaN keys and >2⁵³ integer keys
// placed so they cross the first batch boundary. Five execution modes
// (columnar, row-major vectorized, per-tuple compiled, interpreted,
// memo-off) must agree bag-for-bag on every plan shape that exercises a
// batched seam
// (vectorized logic/CASE/function evaluation, hashed and batched join
// probes, grouping, sort+limit tie order, sublink fallback), and the
// vectorized and per-tuple compiled modes must report identical
// `operators_evaluated` (the counter is per logical operator invocation,
// not per batch).
// ---------------------------------------------------------------------------

const TWO_53: i64 = 1 << 53;

/// t(a, k, g) with `rows` rows: `a` is the row number, `k` mixes small
/// integers, NaN floats (every 97th row) and a run of 2⁵³-family integers
/// straddling the first batch boundary, `g` is a 7-group correlation
/// attribute. u(c, g) is a small lookup relation to correlate against.
fn seam_database(rows: usize) -> Database {
    let mut db = Database::new();
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            let k = if i + 4 >= BATCH_ROWS && i <= BATCH_ROWS + 1 {
                // 2⁵³−4 … 2⁵³+1: exact-integer keys whose f64 views collide
                // at the top, crossing the first batch boundary.
                Value::Int(TWO_53 + (i as i64 - BATCH_ROWS as i64))
            } else if i % 97 == 0 {
                Value::Float(f64::NAN)
            } else {
                Value::Int((i % 5) as i64)
            };
            vec![Value::Int(i as i64), k, Value::Int((i % 7) as i64)]
        })
        .collect();
    db.create_table(
        "t",
        Relation::from_rows(
            Schema::new(vec![
                Attribute::qualified("t", "a", DataType::Int),
                Attribute::qualified("t", "k", DataType::Any),
                Attribute::qualified("t", "g", DataType::Int),
            ]),
            data,
        ),
    )
    .unwrap();
    db.create_table(
        "u",
        Relation::from_rows(
            Schema::new(vec![
                Attribute::qualified("u", "c", DataType::Int),
                Attribute::qualified("u", "g", DataType::Int),
            ]),
            (0..21)
                .map(|i| vec![Value::Int(i), Value::Int(i % 7)])
                .collect(),
        ),
    )
    .unwrap();
    db
}

/// Runs one plan through columnar-compiled (the default), row-major
/// vectorized (columnar off), per-tuple-compiled (batching off),
/// interpreted and memo-off execution and asserts bag equality plus
/// operator-count parity among the three compiled modes.
fn assert_seam_modes_agree(db: &Database, plan: &Plan, label: &str) {
    let batched_ex = Executor::new(db);
    let batched = batched_ex.execute(plan).unwrap();
    let row_major_ex = Executor::new(db).with_columnar(false);
    let row_major = row_major_ex.execute(plan).unwrap();
    let per_tuple_ex = Executor::new(db).with_batching(false);
    let per_tuple = per_tuple_ex.execute(plan).unwrap();
    let interpreted = Executor::new(db).execute_unoptimized(plan).unwrap();
    let memo_off = Executor::new(db)
        .with_sublink_memo(false)
        .execute(plan)
        .unwrap();
    assert!(batched.bag_eq(&row_major), "{label}: columnar vs row-major");
    assert!(batched.bag_eq(&per_tuple), "{label}: batched vs per-tuple");
    assert!(
        batched.bag_eq(&interpreted),
        "{label}: batched vs interpreter"
    );
    assert!(batched.bag_eq(&memo_off), "{label}: batched vs memo-off");
    assert_eq!(
        batched_ex.operators_evaluated(),
        per_tuple_ex.operators_evaluated(),
        "{label}: operators_evaluated must not depend on batching"
    );
    assert_eq!(
        batched_ex.operators_evaluated(),
        row_major_ex.operators_evaluated(),
        "{label}: operators_evaluated must not depend on the column layout"
    );
}

#[test]
fn batch_boundary_seams_agree_across_all_modes() {
    for rows in [0, 1, BATCH_ROWS - 1, BATCH_ROWS, BATCH_ROWS + 1] {
        let db = seam_database(rows);
        let label = |shape: &str| format!("{shape} at {rows} rows");

        // Vectorized AND/OR short-circuiting plus arithmetic over batches.
        let select = PlanBuilder::scan(&db, "t")
            .unwrap()
            .select(or(
                and(
                    cmp(CompareOp::Ge, qcol("t", "k"), lit(3)),
                    cmp(CompareOp::Lt, qcol("t", "g"), lit(5)),
                ),
                cmp(
                    CompareOp::Gt,
                    perm_algebra::builder::binary(
                        perm_algebra::BinaryOp::Mul,
                        qcol("t", "a"),
                        lit(2),
                    ),
                    lit(rows as i64),
                ),
            ))
            .build();
        assert_seam_modes_agree(&db, &select, &label("select"));

        // Vectorized CASE branch narrowing and function evaluation.
        let project = PlanBuilder::scan(&db, "t")
            .unwrap()
            .project(vec![
                ProjectItem::new(
                    perm_algebra::builder::binary(
                        perm_algebra::BinaryOp::Add,
                        qcol("t", "a"),
                        lit(1),
                    ),
                    "a1",
                ),
                ProjectItem::new(
                    perm_algebra::Expr::Case {
                        branches: vec![
                            (cmp(CompareOp::Gt, qcol("t", "k"), lit(2)), lit("hi")),
                            (cmp(CompareOp::Le, qcol("t", "k"), lit(0)), lit("lo")),
                        ],
                        else_expr: Some(Box::new(lit("mid"))),
                    },
                    "bucket",
                ),
                ProjectItem::new(
                    perm_algebra::Expr::Func {
                        name: perm_algebra::FuncName::Abs,
                        args: vec![perm_algebra::builder::binary(
                            perm_algebra::BinaryOp::Sub,
                            qcol("t", "g"),
                            lit(3),
                        )],
                    },
                    "dist",
                ),
            ])
            .build();
        assert_seam_modes_agree(&db, &project, &label("project"));

        // Grouping on the mixed key column: NaN forms one group, the
        // 2⁵³-family integers stay distinct groups across the boundary.
        let aggregate = PlanBuilder::scan(&db, "t")
            .unwrap()
            .aggregate(
                vec![ProjectItem::column("k")],
                vec![count_star("n"), sum(qcol("t", "a"), "total")],
            )
            .build();
        assert_seam_modes_agree(&db, &aggregate, &label("aggregate"));

        // Stable sort with heavy ties + limit at the batch boundary: tie
        // order (input order) must survive batching identically.
        let sort_limit = PlanBuilder::scan(&db, "t")
            .unwrap()
            .sort(vec![
                SortKey::desc(qcol("t", "g")),
                SortKey::asc(qcol("t", "k")),
            ])
            .limit(BATCH_ROWS)
            .build();
        assert_seam_modes_agree(&db, &sort_limit, &label("sort+limit"));

        // Hash join whose probe side crosses the batch boundary and whose
        // build side carries the NaN and >2⁵³ keys.
        let boundary_rows = PlanBuilder::scan_as(&db, "t", Some("o"))
            .unwrap()
            .select(cmp(
                CompareOp::Ge,
                qcol("o", "a"),
                lit(BATCH_ROWS as i64 - 4),
            ))
            .build();
        let join = PlanBuilder::scan(&db, "t")
            .unwrap()
            .join(boundary_rows.clone(), eq(qcol("t", "k"), qcol("o", "k")))
            .build();
        assert_seam_modes_agree(&db, &join, &label("hash join"));

        // Left-outer nested-loop join (no extractable equi-key): batched
        // candidate filtering with per-left-row padding order.
        let outer_join = PlanBuilder::scan(&db, "t")
            .unwrap()
            .select(cmp(CompareOp::Lt, qcol("t", "a"), lit(40)))
            .left_join(
                boundary_rows,
                or(
                    eq(qcol("t", "k"), qcol("o", "k")),
                    cmp(CompareOp::Gt, qcol("t", "g"), qcol("o", "g")),
                ),
            )
            .build();
        assert_seam_modes_agree(&db, &outer_join, &label("left-outer nested-loop join"));

        // Correlated EXISTS: the sublink subtree falls back per tuple and
        // must keep driving the parameterized memo (7 distinct bindings).
        let correlated = PlanBuilder::scan(&db, "t")
            .unwrap()
            .select(and(
                exists_sublink(
                    PlanBuilder::scan(&db, "u")
                        .unwrap()
                        .select(and(
                            eq(qcol("u", "g"), qcol("t", "g")),
                            cmp(CompareOp::Gt, qcol("u", "c"), lit(10)),
                        ))
                        .build(),
                ),
                cmp(CompareOp::Ge, qcol("t", "a"), lit(0)),
            ))
            .build();
        assert_seam_modes_agree(&db, &correlated, &label("correlated exists"));
    }
}

/// v(x, y) with `rows` rows where `x` is NULL on two runs that straddle the
/// first and second batch boundaries (and `y` interleaves shorter NULL
/// runs): the validity bitmap of a typed Int lane must carry whole-word
/// NULL runs across the 1024-row seam identically to row-major `Value`s.
fn null_run_database(rows: usize) -> Database {
    let in_null_run = |i: usize| {
        (i + 37 >= BATCH_ROWS && i <= BATCH_ROWS + 41)
            || (i + 3 >= 2 * BATCH_ROWS && i <= 2 * BATCH_ROWS + 66)
    };
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            let x = if in_null_run(i) {
                Value::Null
            } else {
                Value::Int((i % 11) as i64)
            };
            let y = if i % 128 < 5 {
                Value::Null
            } else {
                Value::Int((i % 7) as i64)
            };
            vec![x, y]
        })
        .collect();
    let mut db = Database::new();
    db.create_table(
        "v",
        Relation::from_rows(
            Schema::new(vec![
                Attribute::qualified("v", "x", DataType::Int),
                Attribute::qualified("v", "y", DataType::Int),
            ]),
            data,
        ),
    )
    .unwrap();
    db
}

#[test]
fn null_runs_crossing_the_batch_seam_agree_across_modes() {
    let db = null_run_database(2 * BATCH_ROWS + 70);

    // Typed comparison and arithmetic over the NULL runs: UNKNOWN rows are
    // dropped by the selection in every mode.
    let select = PlanBuilder::scan(&db, "v")
        .unwrap()
        .select(or(
            cmp(
                CompareOp::Lt,
                perm_algebra::builder::binary(perm_algebra::BinaryOp::Add, qcol("v", "x"), lit(2)),
                lit(6),
            ),
            cmp(CompareOp::Ge, qcol("v", "y"), lit(5)),
        ))
        .build();
    assert_seam_modes_agree(&db, &select, "select over NULL runs");

    // NULL-safe grouping: the NULL runs form one group whose key encoding
    // must agree between the column-wise and row-major encoders.
    let aggregate = PlanBuilder::scan(&db, "v")
        .unwrap()
        .aggregate(
            vec![ProjectItem::column("x")],
            vec![count_star("n"), sum(qcol("v", "y"), "total")],
        )
        .build();
    assert_seam_modes_agree(&db, &aggregate, "aggregate over NULL runs");

    // Hash join keyed on the NULL-run column: NULL keys never match under
    // plain equality, so both runs drop out of build and probe.
    let small = PlanBuilder::scan_as(&db, "v", Some("w"))
        .unwrap()
        .select(cmp(CompareOp::Ge, qcol("w", "y"), lit(4)))
        .build();
    let join = PlanBuilder::scan(&db, "v")
        .unwrap()
        .join(small, eq(qcol("v", "x"), qcol("w", "x")))
        .build();
    assert_seam_modes_agree(&db, &join, "hash join over NULL-run keys");

    // IS NULL / IS NOT NULL straight off the validity bitmap.
    let is_null = PlanBuilder::scan(&db, "v")
        .unwrap()
        .select(and(
            perm_algebra::builder::is_null(qcol("v", "x")),
            not(perm_algebra::builder::is_null(qcol("v", "y"))),
        ))
        .build();
    assert_seam_modes_agree(&db, &is_null, "IS NULL over the validity bitmap");
}

// ---------------------------------------------------------------------------
// Crash-consistency sweeps: the same seeded plan corpus, re-executed under
// injected faults. The contract is binary — every faulted execution returns
// either the exact reference bag (the fault landed after the work, or the
// governor degraded gracefully) or one clean typed error; never a partial
// bag, a hang, or a panic.
// ---------------------------------------------------------------------------

/// The plans of the seeded corpus, sampled every 11th (20 of 220) to keep
/// the sweep a few seconds while still covering every top-level shape.
fn sampled_corpus(db: &Database) -> Vec<(usize, Plan)> {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    (0..PLANS)
        .map(|i| (i, random_plan(db, &mut rng)))
        .step_by(11)
        .collect()
}

#[test]
fn cancellation_sweep_yields_exact_bags_or_a_clean_cancelled_error() {
    let db = build_database(24, 18, 0xD1FF);
    let mut cancelled = 0usize;
    for (i, plan) in sampled_corpus(&db) {
        let reference = Executor::new(&db).execute(&plan);
        // Cancel at the k-th checkpoint, k swept geometrically until it
        // lies beyond the plan's last checkpoint (the fault no longer
        // fires and the run must reproduce the reference exactly).
        let mut k = 1u64;
        loop {
            let fault = FaultPlan::new(FaultKind::Cancel, FaultSite::Checkpoint, k);
            let ex = Executor::new(&db).with_fault_plan(fault.clone());
            let result = ex.execute(&plan);
            match (&reference, &result) {
                (_, Err(ExecError::Cancelled { reason })) => {
                    assert!(
                        reason.contains("injected"),
                        "plan {i} k={k}: cancellation must carry its reason, got {reason:?}"
                    );
                    cancelled += 1;
                }
                (Ok(want), Ok(got)) => assert!(
                    want.bag_eq(got),
                    "plan {i} k={k}: a survived cancellation point changed the bag"
                ),
                (Err(want), Err(got)) => assert_eq!(
                    want, got,
                    "plan {i} k={k}: the plan's own error must survive unchanged"
                ),
                _ => panic!(
                    "plan {i} k={k}: fault flipped success/failure: reference \
                     {reference:?} vs faulted {result:?}"
                ),
            }
            if !fault.fired() {
                break;
            }
            k *= 2;
        }
    }
    assert!(
        cancelled >= 20,
        "the sweep must actually hit live checkpoints, got {cancelled} cancellations"
    );
}

#[test]
fn memory_budget_sweep_degrades_gracefully_or_fails_with_a_named_operator() {
    let db = build_database(24, 18, 0xD1FF);
    let mut exhausted = 0usize;
    for (i, plan) in sampled_corpus(&db) {
        let reference = Executor::new(&db).execute(&plan);
        // Budgets from starvation to ample: small ones force memo skips and
        // operator failures, large ones must change nothing.
        for budget in [256u64, 4 << 10, 64 << 10, 4 << 20] {
            let ex = Executor::new(&db).with_memory_budget(Some(budget));
            let result = ex.execute(&plan);
            match (&reference, &result) {
                (_, Err(ExecError::ResourceExhausted { operator })) => {
                    assert!(
                        !operator.is_empty(),
                        "plan {i} budget={budget}: exhaustion must name its operator"
                    );
                    exhausted += 1;
                }
                (Ok(want), Ok(got)) => assert!(
                    want.bag_eq(got),
                    "plan {i} budget={budget}: degraded memoization changed the bag"
                ),
                (Err(want), Err(got)) => assert_eq!(want, got, "plan {i} budget={budget}"),
                _ => panic!(
                    "plan {i} budget={budget}: budget flipped success/failure: \
                     {reference:?} vs {result:?}"
                ),
            }
        }
    }
    assert!(
        exhausted > 0,
        "the starvation budgets must exhaust at least one operator"
    );
}

// ---------------------------------------------------------------------------
// Spill-forced sixth mode: the full 220-plan corpus under a starvation
// budget *with spilling enabled*. Queries must produce exactly the
// unbudgeted reference bag — the out-of-core operators (grace hash join,
// external merge sort, partitioned aggregation) and the spilled memo are
// bag- and order-transparent — and `operators_evaluated` must match the
// reference exactly: a spilled memo entry is reloaded, never re-executed.
// ---------------------------------------------------------------------------

/// Drives each out-of-core operator path deterministically — grace inner
/// join, grace left-outer join (NULL padding through the ordinal walk),
/// external merge sort over a multi-batch input, and partitioned
/// aggregation — and demands **row-for-row identical** output, not just
/// bag equality: out-of-core execution must be order-transparent.
#[test]
fn out_of_core_operators_reproduce_exact_row_order() {
    let db = build_database(600, 400, 0xACE5);
    // Self-join on the Gaussian `b` values: ~600 distinct keys, so grace
    // partitioning is effective (a low-cardinality key like `g` would pack
    // whole key groups into single partitions), and every left row matches
    // itself, so the join output stays full-size for the sort and
    // aggregation plans below.
    let inner_join = || {
        PlanBuilder::scan(&db, "r1")
            .unwrap()
            .join(
                PlanBuilder::scan_as(&db, "r1", Some("o")).unwrap().build(),
                eq(qcol("r1", "b"), qcol("o", "b")),
            )
            .build()
    };
    // Equality on the Gaussian `a` values matches almost never, so nearly
    // every left row takes the left-outer NULL-padding path.
    let outer_join = PlanBuilder::scan(&db, "r1")
        .unwrap()
        .left_join(
            PlanBuilder::scan_as(&db, "r2", Some("o")).unwrap().build(),
            eq(qcol("r1", "a"), qcol("o", "a")),
        )
        .build();
    let sorted = PlanBuilder::from_plan(inner_join())
        .sort(vec![
            SortKey::desc(qcol("r1", "b")),
            SortKey::asc(qcol("o", "a")),
        ])
        .build();
    let grouped = PlanBuilder::from_plan(inner_join())
        .aggregate(
            vec![ProjectItem::new(qcol("r1", "g"), "g")],
            vec![count_star("n"), sum(qcol("o", "b"), "total")],
        )
        .build();
    for (label, plan) in [
        ("grace inner join", inner_join()),
        ("grace left-outer join", outer_join),
        ("external merge sort", sorted),
        ("partitioned aggregation", grouped),
    ] {
        let reference = Executor::new(&db).execute(&plan).unwrap();
        let ex = Executor::new(&db)
            .with_memory_budget(Some(4 << 10))
            .with_spill(true);
        let got = ex.execute(&plan).unwrap();
        assert_eq!(
            reference, got,
            "{label}: out-of-core output must be row-for-row identical"
        );
        assert!(ex.spilled_bytes() > 0, "{label}: must actually spill");
        assert!(
            ex.spill_partitions() > 0,
            "{label}: must create partition files or runs"
        );
        assert_eq!(
            ex.degradation(),
            perm_exec::Degradation::SpilledToDisk,
            "{label}: spilling must stop the ladder at its first rung"
        );
        assert!(
            ex.buffer_pool_hits() + ex.buffer_pool_misses() > 0,
            "{label}: spilled state must be read back through the pool"
        );
    }
}

#[test]
fn spill_forced_corpus_reproduces_reference_bags_and_operator_counts() {
    let db = build_database(24, 18, 0xD1FF);
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let dir = std::env::temp_dir();
    let mut spilled_total = 0u64;
    let mut spilled_plans = 0usize;
    for i in 0..PLANS {
        let plan = random_plan(&db, &mut rng);
        let reference_ex = Executor::new(&db);
        let reference = reference_ex.execute(&plan);
        let spill_ex = Executor::new(&db)
            .with_memory_budget(Some(4 << 10))
            .with_spill(true)
            .with_spill_dir(Some(dir.clone()));
        let result = spill_ex.execute(&plan);
        match (&reference, &result) {
            (Ok(want), Ok(got)) => {
                assert!(
                    want.bag_eq(got),
                    "plan {i}: spilling changed the bag\n{}",
                    perm_algebra::display::explain(&plan)
                );
                assert_eq!(
                    reference_ex.operators_evaluated(),
                    spill_ex.operators_evaluated(),
                    "plan {i}: a spilled memo entry must reload, not re-execute\n{}",
                    perm_algebra::display::explain(&plan)
                );
            }
            (Err(want), Err(got)) => assert_eq!(want, got, "plan {i}"),
            _ => panic!(
                "plan {i}: spilling flipped success/failure: reference {reference:?} \
                 vs spilled {result:?}\n{}",
                perm_algebra::display::explain(&plan)
            ),
        }
        if spill_ex.spilled_bytes() > 0 {
            spilled_plans += 1;
            spilled_total += spill_ex.spilled_bytes();
        }
    }
    assert!(
        spilled_plans >= PLANS / 10,
        "the starvation budget must actually force spilling, \
         got {spilled_plans}/{PLANS} plans ({spilled_total} bytes)"
    );
}

#[test]
fn resilience_counters_are_monotone_across_executions() {
    let db = build_database(24, 18, 0xD1FF);
    let ex = Executor::new(&db).with_memory_budget(Some(16 << 20));
    let mut last_checks = 0u64;
    let mut last_peak = 0u64;
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for _ in 0..8 {
        let plan = random_plan(&db, &mut rng);
        let _ = ex.execute(&plan);
        let checks = ex.cancel_checks();
        let peak = ex.peak_bytes();
        assert!(
            checks > last_checks,
            "every execution passes at least one checkpoint"
        );
        assert!(peak >= last_peak, "peak_bytes is a high-water mark");
        last_checks = checks;
        last_peak = peak;
    }
}

#[test]
fn streaming_cursor_honours_a_cancel_handle_mid_stream() {
    use perm_algebra::builder::PlanBuilder;
    let db = seam_database(BATCH_ROWS + 1);
    let plan = PlanBuilder::scan(&db, "t")
        .unwrap()
        .select(cmp(CompareOp::Ge, qcol("t", "a"), lit(0)))
        .build();
    let ex = Executor::new(&db);
    let compiled = ex.prepare(&plan).unwrap();
    let mut rows = ex.open(&compiled).unwrap();
    let handle = rows.cancel_handle();
    assert!(rows.next().unwrap().is_ok(), "stream starts healthy");
    handle.cancel("user abort");
    // Buffered rows may still drain; the next refill must fail cleanly.
    let tail_error = rows
        .by_ref()
        .find_map(|r| r.err())
        .expect("a cancelled cursor must surface the cancellation");
    assert_eq!(
        tail_error,
        ExecError::Cancelled {
            reason: "user abort".into()
        }
    );
    assert!(rows.next().is_none(), "a failed cursor stays terminated");
}

#[test]
fn vectorized_fallback_rows_are_counted_and_memo_behaviour_is_unchanged() {
    // The sublink fallback seam: on a batched execution every outer row of
    // a sublink-bearing predicate is handed to the per-tuple evaluator
    // (visible on `batch_fallback_rows`), while the memo still collapses
    // the sublink to one execution per distinct binding.
    let rows = BATCH_ROWS + 1;
    let db = seam_database(rows);
    let plan = PlanBuilder::scan(&db, "t")
        .unwrap()
        .select(exists_sublink(
            PlanBuilder::scan(&db, "u")
                .unwrap()
                .select(eq(qcol("u", "g"), qcol("t", "g")))
                .build(),
        ))
        .build();
    let ex = Executor::new(&db);
    ex.execute(&plan).unwrap();
    assert_eq!(
        ex.batch_fallback_rows(),
        rows as u64,
        "every outer row goes through the per-tuple sublink fallback"
    );
    assert!(ex.batches_vectorized() > 0, "the spine still vectorizes");
    // scan t + select + 7 distinct g bindings × (select + scan u).
    assert_eq!(ex.operators_evaluated(), 2 + 7 * 2);

    // Per-tuple mode never vectorizes, and counts identically.
    let per_tuple = Executor::new(&db).with_batching(false);
    per_tuple.execute(&plan).unwrap();
    assert_eq!(per_tuple.batches_vectorized(), 0);
    assert_eq!(per_tuple.operators_evaluated(), 2 + 7 * 2);
}
