//! Compiled-vs-interpreted equivalence: `Executor::execute` (slot-compiled
//! expressions + parameterized sublink memo) must produce relations
//! bag-equal to `Executor::execute_unoptimized` (the name-resolving
//! reference interpreter) for every sublink kind, correlated or not,
//! including NULL bindings and empty sublink results — with the memo both
//! on and off.

use perm_algebra::builder::{
    self, all_sublink, any_sublink, col, count_star, eq, exists_sublink, lit, not, qcol,
    scalar_sublink, sum, PlanBuilder,
};
use perm_algebra::{CompareOp, Plan, ProjectItem, SetOpKind, SortKey};
use perm_exec::Executor;
use perm_storage::{Attribute, DataType, Database, Relation, Schema, Value};

/// R(a, b, g), S(c, d, g) and a tiny U(e): `g` is a low-cardinality
/// correlation attribute with NULLs mixed in, so memo entries are shared
/// across outer tuples and NULL bindings are exercised.
fn test_db() -> Database {
    let mut db = Database::new();
    let r_rows: Vec<Vec<Value>> = (0..12)
        .map(|i| {
            let g = if i % 5 == 4 {
                Value::Null
            } else {
                Value::Int(i % 3)
            };
            vec![Value::Int(i), Value::Int(i % 4), g]
        })
        .collect();
    let s_rows: Vec<Vec<Value>> = (0..8)
        .map(|i| {
            let g = if i == 7 {
                Value::Null
            } else {
                Value::Int(i % 3)
            };
            vec![Value::Int(100 + i), Value::Int(i % 2), g]
        })
        .collect();
    db.create_table(
        "r",
        Relation::from_rows(
            Schema::new(vec![
                Attribute::qualified("r", "a", DataType::Int),
                Attribute::qualified("r", "b", DataType::Int),
                Attribute::qualified("r", "g", DataType::Int),
            ]),
            r_rows,
        ),
    )
    .unwrap();
    db.create_table(
        "s",
        Relation::from_rows(
            Schema::new(vec![
                Attribute::qualified("s", "c", DataType::Int),
                Attribute::qualified("s", "d", DataType::Int),
                Attribute::qualified("s", "g", DataType::Int),
            ]),
            s_rows,
        ),
    )
    .unwrap();
    db.create_table(
        "u",
        Relation::from_rows(
            Schema::new(vec![Attribute::qualified("u", "e", DataType::Int)]),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        ),
    )
    .unwrap();
    db
}

/// Asserts the three execution modes agree on `plan`, and that the memoized
/// run does no more operator work than the unmemoized one.
fn assert_execution_modes_agree(db: &Database, plan: &Plan) {
    let reference = Executor::new(db)
        .execute_unoptimized(plan)
        .expect("interpreter must run");

    let memoized_executor = Executor::new(db);
    let memoized = memoized_executor.execute(plan).expect("compiled must run");
    let memoized_ops = memoized_executor.operators_evaluated();

    let unmemoized_executor = Executor::new(db).with_sublink_memo(false);
    let unmemoized = unmemoized_executor
        .execute(plan)
        .expect("compiled (memo off) must run");
    let unmemoized_ops = unmemoized_executor.operators_evaluated();

    assert!(
        memoized.bag_eq(&reference),
        "compiled+memoized disagrees with the interpreter"
    );
    assert!(
        unmemoized.bag_eq(&reference),
        "compiled (memo off) disagrees with the interpreter"
    );
    assert!(
        memoized_ops <= unmemoized_ops,
        "memoization must never add operator evaluations ({memoized_ops} > {unmemoized_ops})"
    );
}

#[test]
fn correlated_exists_sublink() {
    let db = test_db();
    let sub = PlanBuilder::scan(&db, "s")
        .unwrap()
        .select(eq(qcol("s", "g"), qcol("r", "g")))
        .build();
    let q = PlanBuilder::scan(&db, "r")
        .unwrap()
        .select(exists_sublink(sub))
        .build();
    assert_execution_modes_agree(&db, &q);
}

#[test]
fn correlated_not_exists_sublink() {
    let db = test_db();
    let sub = PlanBuilder::scan(&db, "s")
        .unwrap()
        .select(eq(qcol("s", "g"), qcol("r", "g")))
        .build();
    let q = PlanBuilder::scan(&db, "r")
        .unwrap()
        .select(not(exists_sublink(sub)))
        .build();
    assert_execution_modes_agree(&db, &q);
}

#[test]
fn correlated_any_sublink() {
    let db = test_db();
    // a = ANY(Π_c(σ_{s.g = r.g}(S))) — NULL g rows of R get an empty
    // sublink, so ANY is FALSE for them.
    let sub = PlanBuilder::scan(&db, "s")
        .unwrap()
        .select(eq(qcol("s", "g"), qcol("r", "g")))
        .project_columns(&["c"])
        .build();
    let q = PlanBuilder::scan(&db, "r")
        .unwrap()
        .select(any_sublink(
            builder::binary(perm_algebra::BinaryOp::Add, col("a"), lit(100)),
            CompareOp::Eq,
            sub,
        ))
        .build();
    assert_execution_modes_agree(&db, &q);
}

#[test]
fn correlated_all_sublink() {
    let db = test_db();
    // b < ALL(Π_d(σ_{s.g = r.g}(S))) — ALL over the empty result (NULL g)
    // is TRUE.
    let sub = PlanBuilder::scan(&db, "s")
        .unwrap()
        .select(eq(qcol("s", "g"), qcol("r", "g")))
        .project_columns(&["d"])
        .build();
    let q = PlanBuilder::scan(&db, "r")
        .unwrap()
        .select(all_sublink(col("b"), CompareOp::Lt, sub))
        .build();
    assert_execution_modes_agree(&db, &q);
}

#[test]
fn correlated_scalar_sublink_in_projection() {
    let db = test_db();
    // The aggregate guarantees a single row per binding, NULL-binding rows
    // included (count over the empty match set is 0).
    let sub = PlanBuilder::scan(&db, "s")
        .unwrap()
        .select(eq(qcol("s", "g"), qcol("r", "g")))
        .aggregate(vec![], vec![count_star("n")])
        .build();
    let q = PlanBuilder::scan(&db, "r")
        .unwrap()
        .project(vec![
            ProjectItem::column("a"),
            ProjectItem::new(scalar_sublink(sub), "n_matches"),
        ])
        .build();
    assert_execution_modes_agree(&db, &q);
}

#[test]
fn null_binding_comparison_inside_sublink() {
    let db = test_db();
    // The correlated comparison itself sees NULL bindings: g = NULL is
    // UNKNOWN, never TRUE, and the memo must keep the NULL-binding result
    // separate from g = 0.
    let sub = PlanBuilder::scan(&db, "s")
        .unwrap()
        .select(builder::or(
            eq(qcol("s", "g"), qcol("r", "g")),
            eq(qcol("s", "d"), qcol("r", "b")),
        ))
        .project_columns(&["c"])
        .build();
    let q = PlanBuilder::scan(&db, "r")
        .unwrap()
        .select(any_sublink(col("a"), CompareOp::Le, sub))
        .build();
    assert_execution_modes_agree(&db, &q);
}

#[test]
fn empty_sublink_results_for_every_kind() {
    let db = test_db();
    let empty_sub = || {
        PlanBuilder::scan(&db, "s")
            .unwrap()
            .select(eq(col("c"), lit(-999)))
            .project_columns(&["c"])
            .build()
    };
    for q in [
        PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(any_sublink(col("a"), CompareOp::Eq, empty_sub()))
            .build(),
        PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(all_sublink(col("a"), CompareOp::Eq, empty_sub()))
            .build(),
        PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(exists_sublink(empty_sub()))
            .build(),
        PlanBuilder::scan(&db, "r")
            .unwrap()
            .project(vec![
                ProjectItem::column("a"),
                ProjectItem::new(scalar_sublink(empty_sub()), "nothing"),
            ])
            .build(),
    ] {
        assert_execution_modes_agree(&db, &q);
    }
}

#[test]
fn nested_correlated_sublinks() {
    let db = test_db();
    // EXISTS(σ_{s.g = r.g ∧ EXISTS(σ_{u.e = s.d}(U))}(S)): the inner
    // sublink correlates one level up (s.d), the outer one two levels out
    // (r.g escapes through the middle scope).
    let inner = PlanBuilder::scan(&db, "u")
        .unwrap()
        .select(eq(col("e"), qcol("s", "d")))
        .build();
    let middle = PlanBuilder::scan(&db, "s")
        .unwrap()
        .select(builder::and(
            eq(qcol("s", "g"), qcol("r", "g")),
            exists_sublink(inner),
        ))
        .build();
    let q = PlanBuilder::scan(&db, "r")
        .unwrap()
        .select(exists_sublink(middle))
        .build();
    assert_execution_modes_agree(&db, &q);
}

#[test]
fn correlation_only_through_nested_test_expr() {
    let db = test_db();
    // Π_{(r.a = ANY(Π_d(S)))}(U limit 1) used as a scalar sublink: the
    // sublink plan's *only* outer reference is the test expression of the
    // nested ANY sublink — the ANY's own plan is closed. The correlation
    // analysis must see through the nested test expression, or the memo
    // treats the sublink as uncorrelated and reuses the first outer tuple's
    // result for every binding.
    let inner_any = any_sublink(
        qcol("r", "a"),
        CompareOp::Eq,
        PlanBuilder::scan(&db, "s")
            .unwrap()
            .project_columns(&["d"])
            .build(),
    );
    let sub = PlanBuilder::scan(&db, "u")
        .unwrap()
        .limit(1)
        .project(vec![ProjectItem::new(inner_any, "hit")])
        .build();
    let q = PlanBuilder::scan(&db, "r")
        .unwrap()
        .project(vec![
            ProjectItem::column("a"),
            ProjectItem::new(scalar_sublink(sub), "hit"),
        ])
        .build();
    assert_execution_modes_agree(&db, &q);

    // Pin the actual values: S.d holds {0, 1}, so only a = 0 and a = 1 hit —
    // the result must vary across outer tuples, not repeat the first one.
    let result = Executor::new(&db).execute(&q).unwrap();
    let hits: Vec<Value> = result.tuples().iter().map(|t| t.get(1).clone()).collect();
    let expected: Vec<Value> = (0..12).map(|i| Value::Bool(i < 2)).collect();
    assert_eq!(hits, expected);
}

#[test]
fn correlated_sublink_under_joins_sorts_and_set_ops() {
    let db = test_db();
    let correlated_exists = || {
        exists_sublink(
            PlanBuilder::scan(&db, "s")
                .unwrap()
                .select(eq(qcol("s", "g"), qcol("r", "g")))
                .build(),
        )
    };
    // Join whose condition carries the sublink (nested-loop path).
    let join_q = PlanBuilder::scan(&db, "r")
        .unwrap()
        .join(
            PlanBuilder::scan(&db, "u").unwrap().build(),
            builder::and(eq(col("b"), col("e")), correlated_exists()),
        )
        .build();
    assert_execution_modes_agree(&db, &join_q);

    // Sort keyed by a correlated scalar sublink.
    let sort_q = PlanBuilder::scan(&db, "r")
        .unwrap()
        .sort(vec![
            SortKey::desc(scalar_sublink(
                PlanBuilder::scan(&db, "s")
                    .unwrap()
                    .select(eq(qcol("s", "g"), qcol("r", "g")))
                    .aggregate(vec![], vec![count_star("n")])
                    .build(),
            )),
            SortKey::asc(col("a")),
        ])
        .limit(5)
        .build();
    assert_execution_modes_agree(&db, &sort_q);

    // Set operation over two sublink selections.
    let left = PlanBuilder::scan(&db, "r")
        .unwrap()
        .select(correlated_exists())
        .project_columns(&["a"])
        .build();
    let right = PlanBuilder::scan(&db, "r")
        .unwrap()
        .select(not(correlated_exists()))
        .project_columns(&["a"])
        .build();
    let setop_q = PlanBuilder::from_plan(left)
        .set_op(SetOpKind::Union, true, right)
        .build();
    assert_execution_modes_agree(&db, &setop_q);
}

#[test]
fn correlated_sublink_in_aggregate_group_and_argument() {
    let db = test_db();
    // Group R by g and sum a guard value computed through a correlated
    // scalar sublink in the aggregate argument.
    let arg_sub = scalar_sublink(
        PlanBuilder::scan(&db, "s")
            .unwrap()
            .select(eq(qcol("s", "g"), qcol("r", "g")))
            .aggregate(vec![], vec![count_star("n")])
            .build(),
    );
    let q = PlanBuilder::scan(&db, "r")
        .unwrap()
        .aggregate(vec![ProjectItem::column("g")], vec![sum(arg_sub, "total")])
        .build();
    assert_execution_modes_agree(&db, &q);
}

#[test]
fn memo_shares_entries_across_equal_bindings_only() {
    let db = test_db();
    let sub = PlanBuilder::scan(&db, "s")
        .unwrap()
        .select(eq(qcol("s", "g"), qcol("r", "g")))
        .build();
    let q = PlanBuilder::scan(&db, "r")
        .unwrap()
        .select(exists_sublink(sub))
        .build();
    let ex = Executor::new(&db);
    ex.execute(&q).unwrap();
    // R has bindings {0, 1, 2, NULL} for g → the 2-operator sublink runs 4
    // times; scan + select on top.
    assert_eq!(ex.operators_evaluated(), 2 + 4 * 2);
}
