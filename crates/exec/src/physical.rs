//! The single physical-operator layer shared by both execution paths.
//!
//! Every operator loop of the engine — projection, selection, cross
//! product, hash and nested-loop joins (including left-outer NULL padding),
//! grouping/aggregation, set operations, sorting and limiting — is
//! implemented exactly once here, parameterized over *tuple-evaluator
//! closures*. The two execution paths differ only in how an expression is
//! evaluated against a tuple:
//!
//! * the name-resolving interpreter ([`crate::Executor::execute_with_env`])
//!   builds an [`crate::eval::Env`] scope chain and resolves names per
//!   access;
//! * the compiled path ([`crate::Executor::execute_compiled`]) builds a
//!   [`crate::compile::Frame`] chain and indexes slots.
//!
//! Both are thin drivers that execute their children, wrap their expression
//! evaluator into closures, and delegate the loop body to this module — so
//! a semantics fix (NULL handling in hash keys, outer-join padding, empty
//! group seeding, …) lands in one place and cannot silently miss one path,
//! following the closure-parameterization pattern `crate::eval` already
//! uses for function dispatch and sublink folding.
//!
//! The `operators_evaluated` accounting also lives here, in one place:
//! every physical operator counts exactly one evaluation per invocation on
//! the shared [`OpCounter`], which is what makes sublink-memo hits (which
//! never reach this module) measurable as missing operator evaluations.

use crate::aggregate::Accumulator;
use crate::{ExecError, Result};
use perm_algebra::{AggFunc, JoinKind, SetOpKind};
use perm_storage::{encode_key, Database, Relation, Schema, Tuple, Value};
use std::cell::Cell;
use std::collections::HashMap;

/// The diagnostic operator-evaluation counter both drivers share.
pub(crate) type OpCounter = Cell<u64>;

fn count(ops: &OpCounter) {
    ops.set(ops.get() + 1);
}

/// What the physical aggregate needs to know about one aggregate
/// computation; the argument *expression* stays behind the evaluator
/// closure.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AggSpec {
    /// The aggregate function.
    pub(crate) func: AggFunc,
    /// Whether duplicates are dropped before aggregating.
    pub(crate) distinct: bool,
    /// `false` for `count(*)`, whose per-row contribution is the constant 1.
    pub(crate) has_arg: bool,
}

/// Base relation access: materialises the stored table under the plan's
/// schema (which may carry an alias qualifier).
pub(crate) fn scan(
    ops: &OpCounter,
    db: &Database,
    table: &str,
    schema: &Schema,
) -> Result<Relation> {
    count(ops);
    let base = db.table(table)?;
    Ok(Relation::new(schema.clone(), base.tuples().to_vec())?)
}

/// Constant relation.
pub(crate) fn values(ops: &OpCounter, schema: &Schema, rows: &[Tuple]) -> Result<Relation> {
    count(ops);
    Ok(Relation::new(schema.clone(), rows.to_vec())?)
}

/// Projection: `row_of` evaluates all projection items against one input
/// tuple.
pub(crate) fn project(
    ops: &OpCounter,
    child: &Relation,
    out_schema: Schema,
    distinct: bool,
    mut row_of: impl FnMut(&Tuple) -> Result<Vec<Value>>,
) -> Result<Relation> {
    count(ops);
    let mut out = Relation::empty(out_schema);
    for tuple in child.tuples() {
        out.push_unchecked(Tuple::new(row_of(tuple)?));
    }
    Ok(if distinct { out.distinct() } else { out })
}

/// Selection: `keep` evaluates the predicate against one input tuple
/// (three-valued TRUE only).
pub(crate) fn select(
    ops: &OpCounter,
    child: &Relation,
    mut keep: impl FnMut(&Tuple) -> Result<bool>,
) -> Result<Relation> {
    count(ops);
    let mut out = Relation::empty(child.schema().clone());
    for tuple in child.tuples() {
        if keep(tuple)? {
            out.push_unchecked(tuple.clone());
        }
    }
    Ok(out)
}

/// Cross product.
pub(crate) fn cross_product(
    ops: &OpCounter,
    l: &Relation,
    r: &Relation,
    out_schema: Schema,
) -> Relation {
    count(ops);
    let mut out = Relation::empty(out_schema);
    for lt in l.tuples() {
        for rt in r.tuples() {
            out.push_unchecked(lt.concat(rt));
        }
    }
    out
}

/// Inner or left-outer join over already-executed inputs.
///
/// `key_null_safe` carries one flag per extracted equi-key conjunct; when
/// non-empty the join runs hashed — the right side is bucketed under
/// [`encode_key`] of its key values, and only bucket-mates are rechecked
/// against the full `condition`. Rows whose key is NULL under a plain
/// (non-null-safe) equality can never match and are dropped from the hash
/// table / probe. When empty (no usable equality, or the condition carries
/// sublinks, e.g. the Jsub conditions of the Left strategy) the join falls
/// back to a nested loop. Either way an unmatched left row of a left-outer
/// join is padded with NULLs on the right.
#[allow(clippy::too_many_arguments)]
pub(crate) fn join(
    ops: &OpCounter,
    l: &Relation,
    r: &Relation,
    out_schema: &Schema,
    kind: JoinKind,
    key_null_safe: &[bool],
    mut left_key: impl FnMut(&Tuple, usize) -> Result<Value>,
    mut right_key: impl FnMut(&Tuple, usize) -> Result<Value>,
    mut condition: impl FnMut(&Tuple) -> Result<bool>,
) -> Result<Relation> {
    count(ops);
    let right_arity = r.schema().arity();
    let mut out = Relation::empty(out_schema.clone());

    if !key_null_safe.is_empty() {
        // Hash join: bucket the right side by its key values.
        let mut buckets: HashMap<Vec<u8>, Vec<&Tuple>> = HashMap::new();
        'right: for rt in r.tuples() {
            let mut key_values = Vec::with_capacity(key_null_safe.len());
            for (i, null_safe) in key_null_safe.iter().enumerate() {
                let v = right_key(rt, i)?;
                if v.is_null() && !null_safe {
                    continue 'right;
                }
                key_values.push(v);
            }
            buckets.entry(encode_key(&key_values)).or_default().push(rt);
        }
        let empty: Vec<&Tuple> = Vec::new();
        for lt in l.tuples() {
            let mut key_values = Vec::with_capacity(key_null_safe.len());
            let mut has_null_key = false;
            for (i, null_safe) in key_null_safe.iter().enumerate() {
                let v = left_key(lt, i)?;
                if v.is_null() && !null_safe {
                    has_null_key = true;
                    break;
                }
                key_values.push(v);
            }
            let candidates = if has_null_key {
                &empty
            } else {
                buckets.get(&encode_key(&key_values)).unwrap_or(&empty)
            };
            let mut matched = false;
            for rt in candidates {
                let joined = lt.concat(rt);
                if condition(&joined)? {
                    matched = true;
                    out.push_unchecked(joined);
                }
            }
            if !matched && kind == JoinKind::LeftOuter {
                out.push_unchecked(lt.concat(&Tuple::new(vec![Value::Null; right_arity])));
            }
        }
        return Ok(out);
    }

    // Nested-loop join.
    for lt in l.tuples() {
        let mut matched = false;
        for rt in r.tuples() {
            let joined = lt.concat(rt);
            if condition(&joined)? {
                matched = true;
                out.push_unchecked(joined);
            }
        }
        if !matched && kind == JoinKind::LeftOuter {
            out.push_unchecked(lt.concat(&Tuple::new(vec![Value::Null; right_arity])));
        }
    }
    Ok(out)
}

/// Grouping and aggregation. `group_key` evaluates the `i`-th grouping
/// expression and `agg_arg` the `i`-th aggregate's argument against one
/// input tuple (`agg_arg` is only called for specs with `has_arg`; argless
/// `count(*)` contributes the constant 1). Groups are keyed by
/// [`encode_key`] — the key *is* the grouping equality, with no recheck —
/// and emitted in first-encounter order. A global aggregation (no GROUP BY)
/// over an empty input still produces one tuple (e.g. `count(*)` = 0): the
/// single group is seeded up front.
pub(crate) fn aggregate(
    ops: &OpCounter,
    child: &Relation,
    out_schema: Schema,
    group_arity: usize,
    specs: &[AggSpec],
    mut group_key: impl FnMut(&Tuple, usize) -> Result<Value>,
    mut agg_arg: impl FnMut(&Tuple, usize) -> Result<Value>,
) -> Result<Relation> {
    count(ops);
    let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
    let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
    let make_accs = || -> Vec<Accumulator> {
        specs
            .iter()
            .map(|s| Accumulator::new(s.func, s.distinct))
            .collect()
    };

    if group_arity == 0 {
        groups.push((Vec::new(), make_accs()));
        index.insert(Vec::new(), 0);
    }

    for tuple in child.tuples() {
        let mut key_values = Vec::with_capacity(group_arity);
        for i in 0..group_arity {
            key_values.push(group_key(tuple, i)?);
        }
        let key = encode_key(&key_values);
        let group_index = match index.get(&key) {
            Some(&i) => i,
            None => {
                groups.push((key_values, make_accs()));
                index.insert(key, groups.len() - 1);
                groups.len() - 1
            }
        };
        for (i, (acc, spec)) in groups[group_index].1.iter_mut().zip(specs).enumerate() {
            let value = if spec.has_arg {
                agg_arg(tuple, i)?
            } else {
                Value::Int(1)
            };
            acc.update(&value);
        }
    }

    let mut out = Relation::empty(out_schema);
    for (key_values, accs) in groups {
        let mut row = key_values;
        for acc in &accs {
            row.push(acc.finish());
        }
        out.push_unchecked(Tuple::new(row));
    }
    Ok(out)
}

/// Set operation over already-executed inputs. The arity check happens here
/// at execution time, not compile time, so a malformed set operation behind
/// a short circuit stays as unreachable as it is in the interpreter.
pub(crate) fn set_op(
    ops: &OpCounter,
    op: SetOpKind,
    all: bool,
    l: &Relation,
    r: &Relation,
) -> Result<Relation> {
    count(ops);
    if l.schema().arity() != r.schema().arity() {
        return Err(ExecError::Unsupported(
            "set operation over inputs of different arity".into(),
        ));
    }
    Ok(match (op, all) {
        (SetOpKind::Union, true) => l.bag_union(r),
        (SetOpKind::Union, false) => l.set_union(r),
        (SetOpKind::Intersect, true) => l.bag_intersect(r),
        (SetOpKind::Intersect, false) => l.set_intersect(r),
        (SetOpKind::Except, true) => l.bag_difference(r),
        (SetOpKind::Except, false) => l.set_difference(r),
    })
}

/// Sorting: `keys_of` evaluates all sort-key expressions against one tuple;
/// `ascending` carries the per-key direction. The underlying sort is stable,
/// so ties keep the input order — which both drivers produce identically.
pub(crate) fn sort(
    ops: &OpCounter,
    child: Relation,
    ascending: &[bool],
    mut keys_of: impl FnMut(&Tuple) -> Result<Vec<Value>>,
) -> Result<Relation> {
    count(ops);
    let schema = child.schema().clone();
    let mut keyed: Vec<(Vec<Value>, Tuple)> = Vec::with_capacity(child.len());
    for tuple in child.tuples() {
        keyed.push((keys_of(tuple)?, tuple.clone()));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, asc) in ascending.iter().enumerate() {
            let ord = ka[i].sort_key(&kb[i]);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(Relation::new(
        schema,
        keyed.into_iter().map(|(_, t)| t).collect(),
    )?)
}

/// First-`n` truncation.
pub(crate) fn limit(ops: &OpCounter, child: Relation, n: usize) -> Result<Relation> {
    count(ops);
    let schema = child.schema().clone();
    let tuples = child.into_tuples().into_iter().take(n).collect();
    Ok(Relation::new(schema, tuples)?)
}
