//! The single physical-operator layer shared by both execution paths, now
//! **batch-at-a-time**.
//!
//! Every operator loop of the engine — projection, selection, cross
//! product, hash and nested-loop joins (including left-outer NULL padding),
//! grouping/aggregation, set operations, sorting and limiting — is
//! implemented exactly once here, parameterized over *batch-evaluator
//! closures*: a closure receives a [`Batch`] (up to [`BATCH_ROWS`] tuples
//! plus a selection vector, see `crate::batch` for the invariants) and
//! appends one result per live row. The two execution paths differ only in
//! how those closures evaluate expressions:
//!
//! * the name-resolving interpreter ([`crate::Executor::execute_with_env`])
//!   loops over the batch row by row, builds an [`crate::eval::Env`] scope
//!   chain per row and resolves names per access — the unchanged per-tuple
//!   reference semantics;
//! * the compiled path ([`crate::Executor::execute_compiled`]) evaluates
//!   each expression *vectorized* over the whole batch
//!   (`Executor::ceval_batch`): one dispatch per expression node per batch
//!   instead of per tuple, falling back to per-tuple evaluation for
//!   sublink-bearing expressions so the parameterized sublink memo is
//!   untouched.
//!
//! Both are thin drivers that execute their children, wrap their expression
//! evaluator into closures, and delegate the loop body to this module — so
//! a semantics fix (NULL handling in hash keys, outer-join padding, empty
//! group seeding, …) lands in one place and cannot silently miss one path.
//!
//! Operator **output order** is part of the engine's observable semantics
//! (a stable sort above an operator keeps tie order, and `LIMIT` truncates
//! it), so the batched loops emit rows in exactly the order the classic
//! per-tuple loops did: a join emits each left row's surviving matches in
//! right-input order, then its NULL padding, before the next left row —
//! candidate batches are filtered with a truth vector and drained in order,
//! never reordered.
//!
//! The `operators_evaluated` accounting also lives here, in one place:
//! every physical operator counts exactly one evaluation **per logical
//! operator invocation** through its [`OpProbe`] (the shared [`OpCounter`]
//! plus, when an `EXPLAIN ANALYZE` profile is armed, the operator's
//! per-node stats — both incremented at the same site, so per-node profile
//! sums always equal the global counter) — *not* per batch — which keeps
//! the counter comparable across batch sizes and is what makes
//! sublink-memo hits (which never reach this module) measurable as missing
//! operator evaluations.
//!
//! Every operator also cooperates with the executor's `Governor`
//! (`crate::resilience`): a cancellation **checkpoint** runs once per batch
//! boundary (never per row, so the ≤5% overhead budget holds), an operator
//! event gives fault injection its hook, and the state that can actually
//! grow without bound — hash-join build tables and candidate buffers,
//! aggregation groups, sort buffers — is charged against the memory budget
//! as it grows, with the charge credited back when the operator returns.
//! The `cancel_checks` counter is deliberately separate from
//! `operators_evaluated`: the latter is a per-invocation semantics
//! diagnostic that many tests pin exactly.
//!
//! With spilling enabled (`Executor::with_spill`) those growing operators
//! go **out of core** instead of failing: when a budget charge is refused
//! the hash join switches to a *grace hash join* (build side partitioned to
//! heap files by [`fnv1a`] of the encoded key, probe keys routed by
//! ordinal, per-partition rebuild + probe, survivors re-emitted in exact
//! left-row order), the sort becomes an *external merge sort* (sorted runs
//! on disk, k-way merge with run-index tie-break — runs are consecutive
//! input segments, so that tie-break *is* the stable-sort order), and the
//! aggregate flushes partial group states to hash partitions that are
//! merged per partition afterwards ([`Accumulator::merge`]), emitting
//! groups in global first-encounter order via per-group creation ordinals.
//! All three produce bag- and order-identical results to their resident
//! forms; only `SessionStats`' spill counters can tell them apart.

use crate::aggregate::Accumulator;
use crate::batch::{Batch, ColumnBlock, BATCH_ROWS};
use crate::profile::{self, OpProbe};
use crate::resilience::{relation_bytes, tuple_bytes, value_bytes, Governor, TransientCharge};
use crate::spill::{self, fnv1a, SpillManager};
use crate::{ExecError, Result};
use perm_algebra::{AggFunc, JoinKind, SetOpKind};
use perm_storage::{
    encode_key_column, encode_key_column_filtered, ColumnVec, Database, HeapFile, Relation, Schema,
    Tuple, Value,
};
use std::cell::Cell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::rc::Rc;

/// The diagnostic operator-evaluation counter both drivers share.
pub(crate) type OpCounter = Cell<u64>;

/// What the physical aggregate needs to know about one aggregate
/// computation; the argument *expression* stays behind the evaluator
/// closure.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AggSpec {
    /// The aggregate function.
    pub(crate) func: AggFunc,
    /// Whether duplicates are dropped before aggregating.
    pub(crate) distinct: bool,
    /// `false` for `count(*)`, whose per-row contribution is the constant 1.
    pub(crate) has_arg: bool,
}

/// Base relation access: materialises the stored table under the plan's
/// schema (which may carry an alias qualifier).
pub(crate) fn scan(
    probe: OpProbe<'_>,
    gov: &Governor,
    db: &Database,
    table: &str,
    schema: &Schema,
) -> Result<Relation> {
    let _timer = profile::begin(&probe);
    gov.operator_event("scan")?;
    gov.checkpoint("scan")?;
    probe.batch();
    let base = db.table(table)?;
    Ok(Relation::new(schema.clone(), base.tuples().to_vec())?)
}

/// Constant relation.
pub(crate) fn values(
    probe: OpProbe<'_>,
    gov: &Governor,
    schema: &Schema,
    rows: &[Tuple],
) -> Result<Relation> {
    let _timer = profile::begin(&probe);
    gov.operator_event("values")?;
    gov.checkpoint("values")?;
    probe.batch();
    Ok(Relation::new(schema.clone(), rows.to_vec())?)
}

/// Projection: `rows_of` evaluates all projection items over one batch,
/// appending one output tuple per live row.
pub(crate) fn project(
    probe: OpProbe<'_>,
    gov: &Governor,
    child: &Relation,
    out_schema: Schema,
    distinct: bool,
    mut rows_of: impl FnMut(&Batch<'_>, &mut Vec<Tuple>) -> Result<()>,
) -> Result<Relation> {
    let _timer = profile::begin(&probe);
    gov.operator_event("project")?;
    let arity = child.schema().arity();
    let mut out = Relation::empty(out_schema);
    let mut buf: Vec<Tuple> = Vec::with_capacity(BATCH_ROWS.min(child.len()));
    for chunk in child.tuples().chunks(BATCH_ROWS) {
        gov.checkpoint("project")?;
        probe.batch();
        buf.clear();
        let block = ColumnBlock::new(arity);
        rows_of(&Batch::dense_with_block(chunk, &block), &mut buf)?;
        debug_assert_eq!(buf.len(), chunk.len(), "projection must be 1:1 per batch");
        for tuple in buf.drain(..) {
            out.push_unchecked(tuple);
        }
    }
    Ok(if distinct { out.distinct() } else { out })
}

/// Selection: `keep` evaluates the predicate over one batch (three-valued
/// TRUE only), appending one verdict per live row. Survivors are marked in
/// a truth vector and copied once into the output — dropped rows are never
/// materialised.
pub(crate) fn select(
    probe: OpProbe<'_>,
    gov: &Governor,
    child: &Relation,
    mut keep: impl FnMut(&Batch<'_>, &mut Vec<bool>) -> Result<()>,
) -> Result<Relation> {
    let _timer = profile::begin(&probe);
    gov.operator_event("select")?;
    let arity = child.schema().arity();
    let mut out = Relation::empty(child.schema().clone());
    let mut truths: Vec<bool> = Vec::with_capacity(BATCH_ROWS.min(child.len()));
    for chunk in child.tuples().chunks(BATCH_ROWS) {
        gov.checkpoint("select")?;
        probe.batch();
        truths.clear();
        let block = ColumnBlock::new(arity);
        keep(&Batch::dense_with_block(chunk, &block), &mut truths)?;
        debug_assert_eq!(truths.len(), chunk.len(), "one verdict per live row");
        for (tuple, keep) in chunk.iter().zip(&truths) {
            if *keep {
                out.push_unchecked(tuple.clone());
            }
        }
    }
    Ok(out)
}

/// Cross product.
pub(crate) fn cross_product(
    probe: OpProbe<'_>,
    gov: &Governor,
    l: &Relation,
    r: &Relation,
    out_schema: Schema,
) -> Result<Relation> {
    let _timer = profile::begin(&probe);
    gov.operator_event("cross_product")?;
    let mut out = Relation::empty(out_schema);
    let mut since_checkpoint = 0usize;
    for lt in l.tuples() {
        since_checkpoint += r.len();
        if since_checkpoint >= BATCH_ROWS {
            since_checkpoint = 0;
            gov.checkpoint("cross_product")?;
            probe.batch();
        }
        for rt in r.tuples() {
            out.push_unchecked(lt.concat(rt));
        }
    }
    Ok(out)
}

/// Resets the per-row key buffers for a chunk of `n` rows: every buffer is
/// emptied (capacity kept, so steady state allocates nothing) and every row
/// starts live. Shared by the hash-join build/probe and the aggregate.
fn reset_key_buffers(n: usize, keys_buf: &mut Vec<Vec<u8>>, live: &mut Vec<bool>) {
    if keys_buf.len() < n {
        keys_buf.resize_with(n, Vec::new);
    }
    for key in keys_buf[..n].iter_mut() {
        key.clear();
    }
    live.clear();
    live.resize(n, true);
}

/// One left row's candidate range inside a pending joined-row buffer:
/// the left tuple (for padding) and the half-open candidate range.
struct JoinSegment<'l> {
    left: &'l Tuple,
    start: usize,
    end: usize,
}

/// Filters a pending buffer of joined candidate rows with `condition`
/// (evaluated batch-at-a-time) and emits, **in order**, each segment's
/// surviving rows followed by its left-outer NULL padding when nothing
/// survived. Drains both buffers.
#[allow(clippy::too_many_arguments)]
fn flush_join_segments(
    probe: OpProbe<'_>,
    gov: &Governor,
    condition: &mut impl FnMut(&Batch<'_>, &mut Vec<bool>) -> Result<()>,
    pending: &mut Vec<Tuple>,
    segments: &mut Vec<JoinSegment<'_>>,
    truths: &mut Vec<bool>,
    kind: JoinKind,
    join_arity: usize,
    right_arity: usize,
    out: &mut Relation,
) -> Result<()> {
    truths.clear();
    for chunk in pending.chunks(BATCH_ROWS) {
        gov.checkpoint("join")?;
        probe.batch();
        let block = ColumnBlock::new(join_arity);
        condition(&Batch::dense_with_block(chunk, &block), truths)?;
    }
    debug_assert_eq!(truths.len(), pending.len(), "one verdict per candidate");
    for segment in segments.drain(..) {
        let mut matched = false;
        for idx in segment.start..segment.end {
            if truths[idx] {
                matched = true;
                if kind.left_only_output() {
                    break;
                }
                out.push_unchecked(std::mem::take(&mut pending[idx]));
            }
        }
        match kind {
            JoinKind::LeftOuter if !matched => out.push_unchecked(
                segment
                    .left
                    .concat(&Tuple::new(vec![Value::Null; right_arity])),
            ),
            // Semi/anti joins emit the left tuple alone — at most once —
            // depending on whether any candidate satisfied the condition.
            JoinKind::Semi if matched => out.push_unchecked(segment.left.clone()),
            JoinKind::Anti if !matched => out.push_unchecked(segment.left.clone()),
            _ => {}
        }
    }
    pending.clear();
    Ok(())
}

/// The grace-hash-join spill state: one build and one probe partition file
/// per hash partition, plus the manager that owns them.
struct JoinSpill {
    mgr: Rc<SpillManager>,
    build: Vec<Rc<HeapFile>>,
    probe: Vec<Rc<HeapFile>>,
}

impl JoinSpill {
    fn partition_of(&self, key: &[u8]) -> usize {
        (fnv1a(key) % self.build.len() as u64) as usize
    }
}

/// Picks the grace-join partition count so one partition's build side is
/// expected to fit in roughly a quarter of the budget — the rebuild is the
/// ladder's last resort, so the expectation carries headroom for hash skew
/// — clamped to a sane range.
fn join_partition_count(budget: u64, build_side: &Relation) -> usize {
    let bytes = relation_bytes(build_side);
    ((4 * bytes / budget.max(1)) as usize).clamp(2, 64)
}

/// Switches the build phase to grace mode: creates the partition files and
/// drains the in-memory buckets into them. Per-key candidate order is
/// preserved — each bucket's rows are written in build-input order, and
/// every row of one key lands in the same partition file.
fn spill_join_build(
    gov: &Governor,
    build_side: &Relation,
    buckets: &mut HashMap<Vec<u8>, Vec<&Tuple>>,
) -> Result<JoinSpill> {
    let mgr = gov
        .spill()
        .expect("a refused try_grow guarantees a live spill manager");
    let parts = join_partition_count(gov.budget().unwrap_or(1), build_side);
    let mut build = Vec::with_capacity(parts);
    let mut probe = Vec::with_capacity(parts);
    for p in 0..parts {
        build.push(mgr.create_file(&format!("join-build-{p}"))?);
        probe.push(mgr.create_file(&format!("join-probe-{p}"))?);
    }
    mgr.note_partitions(2 * parts as u64);
    let js = JoinSpill { mgr, build, probe };
    let mut buf = Vec::new();
    for (key, mates) in buckets.drain() {
        let p = js.partition_of(&key);
        for rt in mates {
            spill::encode_keyed_tuple(&key, rt, &mut buf);
            js.build[p].append_record(&buf)?;
            js.mgr.note_spilled(buf.len() as u64);
        }
    }
    Ok(js)
}

/// Filters a pending buffer of joined candidate rows with `condition` and
/// collects each segment's survivors as `(left ordinal, tuple)` pairs —
/// the grace-probe counterpart of [`flush_join_segments`], which cannot
/// emit directly because partitions scramble the probe order. Padding is
/// deferred to the ordinal-ordered emission walk.
#[allow(clippy::too_many_arguments)]
fn flush_spill_candidates(
    probe: OpProbe<'_>,
    gov: &Governor,
    condition: &mut impl FnMut(&Batch<'_>, &mut Vec<bool>) -> Result<()>,
    pending: &mut Vec<Tuple>,
    segments: &mut Vec<(u64, usize, usize)>,
    truths: &mut Vec<bool>,
    join_arity: usize,
    survivors: &mut Vec<(u64, Tuple)>,
) -> Result<()> {
    truths.clear();
    for chunk in pending.chunks(BATCH_ROWS) {
        gov.checkpoint("join")?;
        probe.batch();
        let block = ColumnBlock::new(join_arity);
        condition(&Batch::dense_with_block(chunk, &block), truths)?;
    }
    debug_assert_eq!(truths.len(), pending.len(), "one verdict per candidate");
    for (ordinal, start, end) in segments.drain(..) {
        for idx in start..end {
            if truths[idx] {
                survivors.push((ordinal, std::mem::take(&mut pending[idx])));
            }
        }
    }
    pending.clear();
    Ok(())
}

/// The grace-join probe and emission phases, entered once the build side
/// has been partitioned to disk. The left input stays resident; only its
/// `(ordinal, key)` pairs are routed through the probe partition files, so
/// each partition joins against exactly the build rows that can match it.
/// Survivors are re-emitted in exact left-row order (stable sort by
/// ordinal), with left-outer padding for ordinals nothing survived for.
#[allow(clippy::too_many_arguments)]
fn grace_probe(
    probe: OpProbe<'_>,
    gov: &Governor,
    js: &JoinSpill,
    l: &Relation,
    out_schema: &Schema,
    kind: JoinKind,
    right_arity: usize,
    key_null_safe: &[bool],
    charge: &mut Option<TransientCharge<'_>>,
    cand_charge: &mut Option<TransientCharge<'_>>,
    mut left_keys: impl FnMut(&Batch<'_>, usize, &mut ColumnVec) -> Result<()>,
    mut condition: impl FnMut(&Batch<'_>, &mut Vec<bool>) -> Result<()>,
) -> Result<Relation> {
    let left_arity = l.schema().arity();
    let join_arity = left_arity + right_arity;
    let nkeys = key_null_safe.len();

    // Route each live left row's (ordinal, key) to its partition; rows with
    // a NULL key under plain equality match nothing and are skipped (their
    // left-outer padding falls out of the emission walk).
    let mut key_cols: Vec<ColumnVec> = vec![ColumnVec::default(); nkeys];
    let mut keys_buf: Vec<Vec<u8>> = Vec::new();
    let mut live: Vec<bool> = Vec::new();
    let mut buf = Vec::new();
    let mut ordinal = 0u64;
    for chunk in l.tuples().chunks(BATCH_ROWS) {
        gov.checkpoint("join")?;
        probe.batch();
        let block = ColumnBlock::new(left_arity);
        let batch = Batch::dense_with_block(chunk, &block);
        for (i, col) in key_cols.iter_mut().enumerate() {
            col.clear_values();
            left_keys(&batch, i, col)?;
        }
        reset_key_buffers(chunk.len(), &mut keys_buf, &mut live);
        for (col, null_safe) in key_cols.iter().zip(key_null_safe) {
            encode_key_column_filtered(col, *null_safe, &mut live, &mut keys_buf[..chunk.len()]);
        }
        for j in 0..chunk.len() {
            if live[j] {
                spill::encode_probe(ordinal, &keys_buf[j], &mut buf);
                js.probe[js.partition_of(&keys_buf[j])].append_record(&buf)?;
                js.mgr.note_spilled(buf.len() as u64);
            }
            ordinal += 1;
        }
    }
    for file in js.build.iter().chain(js.probe.iter()) {
        file.seal()?;
    }

    // Per partition: rebuild that partition's buckets (this is the ladder's
    // last resort — a partition that cannot fit fails the query), then
    // stream its probe records and collect survivors.
    let mut survivors: Vec<(u64, Tuple)> = Vec::new();
    let mut pending: Vec<Tuple> = Vec::new();
    let mut segments: Vec<(u64, usize, usize)> = Vec::new();
    let mut truths: Vec<bool> = Vec::new();
    let l_tuples = l.tuples();
    for p in 0..js.build.len() {
        let mut buckets: HashMap<Vec<u8>, Vec<Tuple>> = HashMap::new();
        let mut stream = js.mgr.pool().stream(&js.build[p]);
        let mut since = 0usize;
        while let Some(record) = stream.next_record()? {
            let (key, tuple) = spill::decode_keyed_tuple(&record)?;
            if let Some(c) = charge.as_mut() {
                c.grow(key.len() as u64 + tuple_bytes(&tuple))?;
            }
            buckets.entry(key).or_default().push(tuple);
            since += 1;
            if since.is_multiple_of(BATCH_ROWS) {
                gov.checkpoint("join")?;
                probe.batch();
            }
        }
        let mut stream = js.mgr.pool().stream(&js.probe[p]);
        while let Some(record) = stream.next_record()? {
            let (ord, key) = spill::decode_probe(&record)?;
            let lt = &l_tuples[ord as usize];
            let start = pending.len();
            if let Some(mates) = buckets.get(&key) {
                for rt in mates {
                    pending.push(lt.concat(rt));
                }
            }
            let mut flush_now = false;
            if let Some(c) = cand_charge.as_mut() {
                let grown: u64 = pending[start..].iter().map(tuple_bytes).sum();
                if !c.try_grow(grown)? {
                    flush_now = true;
                }
            }
            segments.push((ord, start, pending.len()));
            if flush_now || pending.len() >= BATCH_ROWS {
                flush_spill_candidates(
                    probe,
                    gov,
                    &mut condition,
                    &mut pending,
                    &mut segments,
                    &mut truths,
                    join_arity,
                    &mut survivors,
                )?;
                if let Some(c) = cand_charge.as_mut() {
                    c.release();
                }
            }
        }
        flush_spill_candidates(
            probe,
            gov,
            &mut condition,
            &mut pending,
            &mut segments,
            &mut truths,
            join_arity,
            &mut survivors,
        )?;
        if let Some(c) = cand_charge.as_mut() {
            c.release();
        }
        if let Some(c) = charge.as_mut() {
            // This partition's buckets are about to drop.
            c.release();
        }
    }

    // Emission in exact left-row order: a stable sort groups survivors by
    // ordinal while keeping each ordinal's build-input candidate order.
    survivors.sort_by_key(|(ord, _)| *ord);
    let mut out = Relation::empty(out_schema.clone());
    let mut cursor = 0usize;
    for (ord, lt) in l_tuples.iter().enumerate() {
        let ord = ord as u64;
        let mut matched = false;
        while cursor < survivors.len() && survivors[cursor].0 == ord {
            matched = true;
            if kind.left_only_output() {
                // Survivors only signal a match here; the emitted tuple is
                // the bare left row.
                survivors[cursor].1 = Tuple::new(Vec::new());
                cursor += 1;
                continue;
            }
            out.push_unchecked(std::mem::take(&mut survivors[cursor].1));
            cursor += 1;
        }
        match kind {
            JoinKind::LeftOuter if !matched => {
                out.push_unchecked(lt.concat(&Tuple::new(vec![Value::Null; right_arity])));
            }
            JoinKind::Semi if matched => out.push_unchecked(lt.clone()),
            JoinKind::Anti if !matched => out.push_unchecked(lt.clone()),
            _ => {}
        }
    }
    Ok(out)
}

/// Inner or left-outer join over already-executed inputs.
///
/// `key_null_safe` carries one flag per extracted equi-key conjunct; when
/// non-empty the join runs hashed — the right side (the **build** side, a
/// pipeline breaker consumed batch by batch at its input boundary) is
/// bucketed under the column-wise key encoding
/// ([`encode_key_column_filtered`]) of its key values: each key column is
/// encoded in one contiguous pass, appending its bytes to every row's key
/// buffer, and only bucket-mates are rechecked against the full
/// `condition`. Rows whose key is NULL under a plain (non-null-safe)
/// equality can never match and are dropped from the hash table / probe
/// (the encoder marks them dead in the `live` mask). When empty (no usable
/// equality, or the condition carries sublinks, e.g. the Jsub conditions
/// of the Left strategy) the join falls back to a nested loop. Either way
/// the **probe** operates batch-at-a-time: key expressions are evaluated
/// once per batch into typed [`ColumnVec`] lanes, candidate joined rows
/// are filtered through a batched `condition` pass, and an unmatched left
/// row of a left-outer join is padded with NULLs on the right — in exactly
/// the per-left-row output order of a tuple-at-a-time loop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn join(
    probe: OpProbe<'_>,
    gov: &Governor,
    l: &Relation,
    r: &Relation,
    out_schema: &Schema,
    kind: JoinKind,
    key_null_safe: &[bool],
    mut left_keys: impl FnMut(&Batch<'_>, usize, &mut ColumnVec) -> Result<()>,
    mut right_keys: impl FnMut(&Batch<'_>, usize, &mut ColumnVec) -> Result<()>,
    mut condition: impl FnMut(&Batch<'_>, &mut Vec<bool>) -> Result<()>,
) -> Result<Relation> {
    let _timer = profile::begin(&probe);
    gov.operator_event("join")?;
    let mut charge = gov.transient("join");
    let mut cand_charge = gov.transient("join");
    let left_arity = l.schema().arity();
    let right_arity = r.schema().arity();
    // Candidate rows are always left⧺right, even for semi/anti joins whose
    // *output* schema is the left input alone.
    let join_arity = left_arity + right_arity;
    let nkeys = key_null_safe.len();
    let mut out = Relation::empty(out_schema.clone());
    let mut pending: Vec<Tuple> = Vec::new();
    let mut segments: Vec<JoinSegment<'_>> = Vec::new();
    let mut truths: Vec<bool> = Vec::new();

    if nkeys > 0 {
        // Build side: bucket the right rows by their encoded key values,
        // one batch of key evaluations at a time. Evaluating every key
        // column eagerly (where the tuple-at-a-time loop stopped at a
        // row's first NULL non-null-safe key) is safe because equi keys
        // are always bare column references (`extract_equi_keys` extracts
        // only `Column = Column` conjuncts, resolution-checked against the
        // input schemas), so key evaluation cannot raise an error the
        // early exit would have shielded.
        let mut buckets: HashMap<Vec<u8>, Vec<&Tuple>> = HashMap::new();
        let mut key_cols: Vec<ColumnVec> = vec![ColumnVec::default(); nkeys];
        let mut keys_buf: Vec<Vec<u8>> = Vec::new();
        let mut live: Vec<bool> = Vec::new();
        let mut js: Option<JoinSpill> = None;
        let mut rec_buf: Vec<u8> = Vec::new();
        for chunk in r.tuples().chunks(BATCH_ROWS) {
            gov.checkpoint("join")?;
            probe.batch();
            let block = ColumnBlock::new(right_arity);
            let batch = Batch::dense_with_block(chunk, &block);
            for (i, col) in key_cols.iter_mut().enumerate() {
                col.clear_values();
                right_keys(&batch, i, col)?;
            }
            // Column-wise key encoding: one pass per key column appends
            // that column's bytes to every live row's key buffer; a NULL
            // under a non-null-safe equality kills the row instead.
            reset_key_buffers(chunk.len(), &mut keys_buf, &mut live);
            for (col, null_safe) in key_cols.iter().zip(key_null_safe) {
                encode_key_column_filtered(
                    col,
                    *null_safe,
                    &mut live,
                    &mut keys_buf[..chunk.len()],
                );
            }
            if let Some(js) = &js {
                // Grace mode: the build table already moved to disk; route
                // this chunk's live rows straight to their partition files.
                for (j, rt) in chunk.iter().enumerate() {
                    if !live[j] {
                        continue;
                    }
                    spill::encode_keyed_tuple(&keys_buf[j], rt, &mut rec_buf);
                    js.build[js.partition_of(&keys_buf[j])].append_record(&rec_buf)?;
                    js.mgr.note_spilled(rec_buf.len() as u64);
                }
                continue;
            }
            let mut chunk_bytes = 0u64;
            for (j, rt) in chunk.iter().enumerate() {
                if !live[j] {
                    continue;
                }
                // Move, don't clone: each row's key buffer is consumed
                // once (taking it leaves an empty Vec behind, which the
                // next chunk's reset reuses without reallocating).
                let key = std::mem::take(&mut keys_buf[j]);
                if charge.is_some() {
                    // Build-table growth: the encoded key plus the
                    // bucket-mate reference.
                    chunk_bytes += key.len() as u64 + std::mem::size_of::<&Tuple>() as u64;
                }
                buckets.entry(key).or_default().push(rt);
            }
            if let Some(c) = charge.as_mut() {
                if !c.try_grow(chunk_bytes)? {
                    // The build table no longer fits: go grace — partition
                    // everything bucketed so far to disk and free its
                    // budget immediately.
                    js = Some(spill_join_build(gov, r, &mut buckets)?);
                    c.release();
                }
            }
        }
        if let Some(js) = js {
            return grace_probe(
                probe,
                gov,
                &js,
                l,
                out_schema,
                kind,
                right_arity,
                key_null_safe,
                &mut charge,
                &mut cand_charge,
                left_keys,
                condition,
            );
        }

        // Probe side, batch-at-a-time: evaluate the key columns once per
        // probe batch, gather each row's bucket-mates into the pending
        // buffer, and flush (condition + ordered emission) at left-row
        // boundaries once a batch worth of candidates has accumulated.
        let empty: Vec<&Tuple> = Vec::new();
        let mut key_cols: Vec<ColumnVec> = vec![ColumnVec::default(); nkeys];
        for chunk in l.tuples().chunks(BATCH_ROWS) {
            gov.checkpoint("join")?;
            probe.batch();
            let block = ColumnBlock::new(left_arity);
            let batch = Batch::dense_with_block(chunk, &block);
            for (i, col) in key_cols.iter_mut().enumerate() {
                col.clear_values();
                left_keys(&batch, i, col)?;
            }
            reset_key_buffers(chunk.len(), &mut keys_buf, &mut live);
            for (col, null_safe) in key_cols.iter().zip(key_null_safe) {
                encode_key_column_filtered(
                    col,
                    *null_safe,
                    &mut live,
                    &mut keys_buf[..chunk.len()],
                );
            }
            for (j, lt) in chunk.iter().enumerate() {
                let candidates = if !live[j] {
                    &empty
                } else {
                    buckets.get(&keys_buf[j]).unwrap_or(&empty)
                };
                let start = pending.len();
                for rt in candidates {
                    pending.push(lt.concat(rt));
                }
                let mut flush_now = false;
                if let Some(c) = cand_charge.as_mut() {
                    // Candidate-buffer growth, which also proxies the
                    // operator's output growth (survivors move to `out`).
                    let grown: u64 = pending[start..].iter().map(tuple_bytes).sum();
                    if !c.try_grow(grown)? {
                        flush_now = true;
                    }
                }
                segments.push(JoinSegment {
                    left: lt,
                    start,
                    end: pending.len(),
                });
                if flush_now || pending.len() >= BATCH_ROWS {
                    flush_join_segments(
                        probe,
                        gov,
                        &mut condition,
                        &mut pending,
                        &mut segments,
                        &mut truths,
                        kind,
                        join_arity,
                        right_arity,
                        &mut out,
                    )?;
                    if flush_now {
                        // Only a refused charge frees the candidate budget:
                        // the ordinary batch flush keeps the no-spill
                        // accounting identical to the pre-spill executor.
                        if let Some(c) = cand_charge.as_mut() {
                            c.release();
                        }
                    }
                }
            }
        }
        flush_join_segments(
            probe,
            gov,
            &mut condition,
            &mut pending,
            &mut segments,
            &mut truths,
            kind,
            join_arity,
            right_arity,
            &mut out,
        )?;
        return Ok(out);
    }

    // Nested-loop join: each left row's candidates are the whole right
    // input, processed one right batch at a time (bounded memory, batched
    // condition dispatch), with padding emitted at the row boundary.
    for lt in l.tuples() {
        let mut matched = false;
        for r_chunk in r.tuples().chunks(BATCH_ROWS) {
            gov.checkpoint("join")?;
            probe.batch();
            pending.clear();
            for rt in r_chunk {
                pending.push(lt.concat(rt));
            }
            truths.clear();
            let block = ColumnBlock::new(join_arity);
            condition(&Batch::dense_with_block(&pending, &block), &mut truths)?;
            debug_assert_eq!(truths.len(), pending.len(), "one verdict per candidate");
            for (idx, keep) in truths.iter().enumerate() {
                if *keep {
                    matched = true;
                    if kind.left_only_output() {
                        break;
                    }
                    out.push_unchecked(std::mem::take(&mut pending[idx]));
                }
            }
            // One match decides a semi/anti join's verdict for this left
            // row; the remaining right chunks cannot change it. (The
            // optimizer only builds semi/anti joins over total conditions,
            // so skipping them drops no evaluation errors.)
            if matched && kind.left_only_output() {
                break;
            }
        }
        match kind {
            JoinKind::LeftOuter if !matched => {
                out.push_unchecked(lt.concat(&Tuple::new(vec![Value::Null; right_arity])));
            }
            JoinKind::Semi if matched => out.push_unchecked(lt.clone()),
            JoinKind::Anti if !matched => out.push_unchecked(lt.clone()),
            _ => {}
        }
    }
    Ok(out)
}

/// How many hash partitions the out-of-core aggregation flushes partial
/// group states across. Fixed (unlike the grace join's estimate): the
/// flushed records are *partial* states whose merged size is the true group
/// count, not the input size.
const AGG_SPILL_PARTITIONS: usize = 16;

/// Flushes every resident partial group state to its hash partition file
/// (creating the partition files on first flush) and clears the resident
/// state. Records carry the group's creation ordinal so the merge phase can
/// restore global first-encounter order.
fn flush_agg_groups(
    gov: &Governor,
    files: &mut Option<(Rc<SpillManager>, Vec<Rc<HeapFile>>)>,
    groups: &mut Vec<(Vec<Value>, Vec<Accumulator>)>,
    ords: &mut Vec<u64>,
    index: &mut HashMap<Vec<u8>, usize>,
) -> Result<()> {
    if files.is_none() {
        let mgr = gov
            .spill()
            .expect("a refused try_grow guarantees a live spill manager");
        let mut parts = Vec::with_capacity(AGG_SPILL_PARTITIONS);
        for p in 0..AGG_SPILL_PARTITIONS {
            parts.push(mgr.create_file(&format!("agg-part-{p}"))?);
        }
        mgr.note_partitions(AGG_SPILL_PARTITIONS as u64);
        *files = Some((mgr, parts));
    }
    let (mgr, parts) = files.as_ref().expect("just created");
    let mut buf = Vec::new();
    for (key_bytes, idx) in index.drain() {
        let (key_values, accs) = &groups[idx];
        spill::encode_agg_group(ords[idx], &key_bytes, key_values, accs, &mut buf);
        parts[(fnv1a(&key_bytes) % AGG_SPILL_PARTITIONS as u64) as usize].append_record(&buf)?;
        mgr.note_spilled(buf.len() as u64);
    }
    groups.clear();
    ords.clear();
    Ok(())
}

/// Grouping and aggregation — a pipeline breaker consuming its input batch
/// by batch. `eval` evaluates, for one batch, every grouping expression
/// into `group_cols[i]` (a typed [`ColumnVec`] lane) and every aggregate
/// argument into `agg_cols[i]` (columns for argless `count(*)` specs stay
/// empty; their per-row contribution is the constant 1). Groups are keyed
/// by the column-wise key encoding ([`encode_key_column`]) — the key *is*
/// the grouping equality, with no recheck — and emitted in
/// first-encounter order. A global aggregation (no GROUP BY) over an empty
/// input still produces one tuple (e.g. `count(*)` = 0): the single group
/// is seeded up front.
///
/// Under budget pressure with spilling enabled, partial group states are
/// flushed to hash partition files ([`flush_agg_groups`]) and merged per
/// partition afterwards ([`Accumulator::merge`]); global creation ordinals
/// (monotone, never reset, so the minimum per key is its global first
/// encounter) restore the exact first-encounter output order.
pub(crate) fn aggregate(
    probe: OpProbe<'_>,
    gov: &Governor,
    child: &Relation,
    out_schema: Schema,
    group_arity: usize,
    specs: &[AggSpec],
    mut eval: impl FnMut(&Batch<'_>, &mut [ColumnVec], &mut [Vec<Value>]) -> Result<()>,
) -> Result<Relation> {
    let _timer = profile::begin(&probe);
    gov.operator_event("aggregate")?;
    let mut charge = gov.transient("aggregate");
    let in_arity = child.schema().arity();
    let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
    let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
    // Per-group creation ordinals (parallel to `groups`): `next_ord` is
    // global and monotone across flushes, so after partition merging the
    // minimum ordinal per key is its global first encounter — unique, and
    // sorting by it restores exact first-encounter output order.
    let mut ords: Vec<u64> = Vec::new();
    let mut next_ord = 0u64;
    let mut spill_files: Option<(Rc<SpillManager>, Vec<Rc<HeapFile>>)> = None;
    let make_accs = || -> Vec<Accumulator> {
        specs
            .iter()
            .map(|s| Accumulator::new(s.func, s.distinct))
            .collect()
    };

    if group_arity == 0 {
        groups.push((Vec::new(), make_accs()));
        index.insert(Vec::new(), 0);
        ords.push(next_ord);
        next_ord += 1;
    }

    let mut group_cols: Vec<ColumnVec> = vec![ColumnVec::default(); group_arity];
    let mut agg_cols: Vec<Vec<Value>> = vec![Vec::new(); specs.len()];
    let mut keys_buf: Vec<Vec<u8>> = Vec::new();
    let mut live: Vec<bool> = Vec::new();
    for chunk in child.tuples().chunks(BATCH_ROWS) {
        gov.checkpoint("aggregate")?;
        probe.batch();
        for col in group_cols.iter_mut() {
            col.clear_values();
        }
        for col in agg_cols.iter_mut() {
            col.clear();
        }
        let block = ColumnBlock::new(in_arity);
        eval(
            &Batch::dense_with_block(chunk, &block),
            &mut group_cols,
            &mut agg_cols,
        )?;
        // Column-wise grouping keys: one contiguous pass per grouping
        // column (NULLs group together, so every row stays live).
        reset_key_buffers(chunk.len(), &mut keys_buf, &mut live);
        for col in group_cols.iter() {
            encode_key_column(col, &mut keys_buf[..chunk.len()]);
        }
        let groups_before = groups.len();
        for j in 0..chunk.len() {
            let key = std::mem::take(&mut keys_buf[j]);
            let group_index = match index.get(&key) {
                Some(&i) => i,
                None => {
                    // First encounter: materialise the group's
                    // representative values out of the column lanes (moved,
                    // not cloned — each cell is consumed at most once).
                    let key_values: Vec<Value> =
                        group_cols.iter_mut().map(|col| col.take_value(j)).collect();
                    groups.push((key_values, make_accs()));
                    index.insert(key, groups.len() - 1);
                    ords.push(next_ord);
                    next_ord += 1;
                    groups.len() - 1
                }
            };
            for (i, (acc, spec)) in groups[group_index].1.iter_mut().zip(specs).enumerate() {
                if spec.has_arg {
                    acc.update(&agg_cols[i][j]);
                } else {
                    acc.update(&Value::Int(1));
                }
            }
        }
        if let Some(c) = charge.as_mut() {
            // Group-state growth: key values plus accumulator slots for
            // every group first seen in this chunk.
            let grown: u64 = groups[groups_before..]
                .iter()
                .map(|(key, accs)| {
                    key.iter().map(value_bytes).sum::<u64>()
                        + (accs.len() * std::mem::size_of::<Accumulator>()) as u64
                })
                .sum();
            if !c.try_grow(grown)? {
                // Group state no longer fits: flush every resident partial
                // state to its hash partition and start over empty. A
                // global aggregation re-seeds its single group so rows keep
                // landing somewhere (with a fresh ordinal — the min-merge
                // keeps the original).
                flush_agg_groups(gov, &mut spill_files, &mut groups, &mut ords, &mut index)?;
                c.release();
                if group_arity == 0 {
                    groups.push((Vec::new(), make_accs()));
                    index.insert(Vec::new(), 0);
                    ords.push(next_ord);
                    next_ord += 1;
                }
            }
        }
    }

    if spill_files.is_some() {
        // Out-of-core finish: flush the remainder, then merge each
        // partition independently — every occurrence of one key hashes to
        // the same partition, so a per-partition hash map sees all of its
        // partial states ([`Accumulator::merge`] is order-insensitive).
        flush_agg_groups(gov, &mut spill_files, &mut groups, &mut ords, &mut index)?;
        if let Some(c) = charge.as_mut() {
            c.release();
        }
        let (mgr, parts) = spill_files.as_ref().expect("just flushed");
        for file in parts {
            file.seal()?;
        }
        let mut merged: Vec<(u64, Tuple)> = Vec::new();
        for file in parts {
            let mut part: HashMap<Vec<u8>, (u64, Vec<Value>, Vec<Accumulator>)> = HashMap::new();
            let mut stream = mgr.pool().stream(file);
            let mut since = 0usize;
            while let Some(record) = stream.next_record()? {
                let (ord, key_bytes, key_values, accs) = spill::decode_agg_group(&record)?;
                match part.entry(key_bytes) {
                    Entry::Occupied(mut e) => {
                        let slot = e.get_mut();
                        slot.0 = slot.0.min(ord);
                        for (a, b) in slot.2.iter_mut().zip(&accs) {
                            a.merge(b);
                        }
                    }
                    Entry::Vacant(e) => {
                        if let Some(c) = charge.as_mut() {
                            // One partition's merged state is the ladder's
                            // last resort — a partition that cannot fit
                            // fails the query.
                            c.grow(
                                key_values.iter().map(value_bytes).sum::<u64>()
                                    + (accs.len() * std::mem::size_of::<Accumulator>()) as u64,
                            )?;
                        }
                        e.insert((ord, key_values, accs));
                    }
                }
                since += 1;
                if since.is_multiple_of(BATCH_ROWS) {
                    gov.checkpoint("aggregate")?;
                    probe.batch();
                }
            }
            for (ord, key_values, accs) in part.into_values() {
                let mut row = key_values;
                for acc in &accs {
                    row.push(acc.finish());
                }
                merged.push((ord, Tuple::new(row)));
            }
            if let Some(c) = charge.as_mut() {
                // This partition's map just dropped; only the finished
                // output rows remain, which the resident path never charges
                // either.
                c.release();
            }
        }
        merged.sort_by_key(|(ord, _)| *ord);
        let mut out = Relation::empty(out_schema);
        for (_, tuple) in merged {
            out.push_unchecked(tuple);
        }
        return Ok(out);
    }

    let mut out = Relation::empty(out_schema);
    for (key_values, accs) in groups {
        let mut row = key_values;
        for acc in &accs {
            row.push(acc.finish());
        }
        out.push_unchecked(Tuple::new(row));
    }
    Ok(out)
}

/// Set operation over already-executed inputs. The arity check happens here
/// at execution time, not compile time, so a malformed set operation behind
/// a short circuit stays as unreachable as it is in the interpreter.
pub(crate) fn set_op(
    probe: OpProbe<'_>,
    gov: &Governor,
    op: SetOpKind,
    all: bool,
    l: &Relation,
    r: &Relation,
) -> Result<Relation> {
    let _timer = profile::begin(&probe);
    gov.operator_event("set_op")?;
    gov.checkpoint("set_op")?;
    probe.batch();
    if l.schema().arity() != r.schema().arity() {
        return Err(ExecError::Unsupported(
            "set operation over inputs of different arity".into(),
        ));
    }
    Ok(match (op, all) {
        (SetOpKind::Union, true) => l.bag_union(r),
        (SetOpKind::Union, false) => l.set_union(r),
        (SetOpKind::Intersect, true) => l.bag_intersect(r),
        (SetOpKind::Intersect, false) => l.set_intersect(r),
        (SetOpKind::Except, true) => l.bag_difference(r),
        (SetOpKind::Except, false) => l.set_difference(r),
    })
}

/// The sort-key comparator shared by the in-memory sort and the k-way run
/// merge: per-key `Value::sort_key` with the per-key direction applied.
fn cmp_key_rows(ka: &[Value], kb: &[Value], ascending: &[bool]) -> std::cmp::Ordering {
    for (i, asc) in ascending.iter().enumerate() {
        let ord = ka[i].sort_key(&kb[i]);
        let ord = if *asc { ord } else { ord.reverse() };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Sorts the resident buffer and writes it out as one sorted run file.
/// Because a run is always a *consecutive* segment of the input, merging
/// runs with a lowest-run-index tie-break later reproduces the stable
/// in-memory sort order exactly.
fn spill_sort_run(
    gov: &Governor,
    keyed: &mut Vec<(Vec<Value>, Tuple)>,
    ascending: &[bool],
    runs: &mut Vec<Rc<HeapFile>>,
) -> Result<()> {
    let mgr = gov
        .spill()
        .expect("a refused try_grow guarantees a live spill manager");
    keyed.sort_by(|(ka, _), (kb, _)| cmp_key_rows(ka, kb, ascending));
    let file = mgr.create_file(&format!("sort-run-{}", runs.len()))?;
    let mut buf = Vec::new();
    for (key_values, tuple) in keyed.iter() {
        spill::encode_run_row(key_values, tuple, &mut buf);
        file.append_record(&buf)?;
        mgr.note_spilled(buf.len() as u64);
    }
    file.seal()?;
    mgr.note_partitions(1);
    runs.push(file);
    keyed.clear();
    Ok(())
}

/// Sorting — a pipeline breaker consuming its input batch by batch. `keys`
/// evaluates, for one batch, every sort-key expression into `key_cols[i]`;
/// `ascending` carries the per-key direction. The underlying sort is
/// stable, so ties keep the input order — which both drivers produce
/// identically. Under budget pressure with spilling enabled the operator
/// becomes an *external merge sort*: the buffer is flushed as sorted runs
/// ([`spill_sort_run`]) and the runs are k-way merged at the end, with ties
/// broken toward the lowest run index — runs are consecutive input
/// segments, so that tie-break *is* the stable order.
pub(crate) fn sort(
    probe: OpProbe<'_>,
    gov: &Governor,
    child: Relation,
    ascending: &[bool],
    mut keys: impl FnMut(&Batch<'_>, &mut [Vec<Value>]) -> Result<()>,
) -> Result<Relation> {
    let _timer = profile::begin(&probe);
    gov.operator_event("sort")?;
    let mut charge = gov.transient("sort");
    let arity = child.schema().arity();
    let schema = child.schema().clone();
    let mut keyed: Vec<(Vec<Value>, Tuple)> = Vec::with_capacity(child.len());
    let mut key_cols: Vec<Vec<Value>> = vec![Vec::new(); ascending.len()];
    let mut runs: Vec<Rc<HeapFile>> = Vec::new();
    for chunk in child.tuples().chunks(BATCH_ROWS) {
        gov.checkpoint("sort")?;
        probe.batch();
        for col in key_cols.iter_mut() {
            col.clear();
        }
        let block = ColumnBlock::new(arity);
        keys(&Batch::dense_with_block(chunk, &block), &mut key_cols)?;
        let mut chunk_bytes = 0u64;
        for (j, tuple) in chunk.iter().enumerate() {
            let mut key_values = Vec::with_capacity(ascending.len());
            for col in key_cols.iter_mut() {
                key_values.push(std::mem::replace(&mut col[j], Value::Null));
            }
            if charge.is_some() {
                // Sort-buffer growth: the extracted keys plus the cloned
                // input row.
                chunk_bytes += key_values.iter().map(value_bytes).sum::<u64>() + tuple_bytes(tuple);
            }
            keyed.push((key_values, tuple.clone()));
        }
        if let Some(c) = charge.as_mut() {
            if !c.try_grow(chunk_bytes)? {
                spill_sort_run(gov, &mut keyed, ascending, &mut runs)?;
                c.release();
            }
        }
    }
    // The in-memory remainder is sorted either way; with runs on disk it
    // plays the role of the final (highest-index) run in the merge.
    keyed.sort_by(|(ka, _), (kb, _)| cmp_key_rows(ka, kb, ascending));
    if runs.is_empty() {
        return Ok(Relation::new(
            schema,
            keyed.into_iter().map(|(_, t)| t).collect(),
        )?);
    }
    let mgr = gov
        .spill()
        .expect("runs exist only when a spill manager is live");
    let mut streams: Vec<_> = runs.iter().map(|f| mgr.pool().stream(f)).collect();
    let mut heads: Vec<Option<(Vec<Value>, Tuple)>> = Vec::with_capacity(streams.len() + 1);
    for stream in streams.iter_mut() {
        heads.push(match stream.next_record()? {
            Some(record) => Some(spill::decode_run_row(&record)?),
            None => None,
        });
    }
    let mut mem = std::mem::take(&mut keyed).into_iter();
    heads.push(mem.next());
    let mut out = Relation::empty(schema);
    let mut emitted = 0usize;
    loop {
        // Linear min-scan over the run heads (the run count is small —
        // every run paid for itself in budget pressure); strict `<` keeps
        // the lowest run index on ties, which is the stable order.
        let mut best: Option<usize> = None;
        for i in 0..heads.len() {
            if heads[i].is_none() {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(b) => {
                    let ki = &heads[i].as_ref().unwrap().0;
                    let kb = &heads[b].as_ref().unwrap().0;
                    if cmp_key_rows(ki, kb, ascending).is_lt() {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let Some(b) = best else { break };
        let (_, tuple) = heads[b].take().expect("best head is non-empty");
        out.push_unchecked(tuple);
        emitted += 1;
        if emitted.is_multiple_of(BATCH_ROWS) {
            gov.checkpoint("sort")?;
            probe.batch();
        }
        heads[b] = if b < streams.len() {
            match streams[b].next_record()? {
                Some(record) => Some(spill::decode_run_row(&record)?),
                None => None,
            }
        } else {
            mem.next()
        };
    }
    Ok(out)
}

/// First-`n` truncation.
pub(crate) fn limit(
    probe: OpProbe<'_>,
    gov: &Governor,
    child: Relation,
    n: usize,
) -> Result<Relation> {
    let _timer = profile::begin(&probe);
    gov.operator_event("limit")?;
    gov.checkpoint("limit")?;
    probe.batch();
    let schema = child.schema().clone();
    let tuples = child.into_tuples().into_iter().take(n).collect();
    Ok(Relation::new(schema, tuples)?)
}
