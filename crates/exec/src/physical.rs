//! The single physical-operator layer shared by both execution paths, now
//! **batch-at-a-time**.
//!
//! Every operator loop of the engine — projection, selection, cross
//! product, hash and nested-loop joins (including left-outer NULL padding),
//! grouping/aggregation, set operations, sorting and limiting — is
//! implemented exactly once here, parameterized over *batch-evaluator
//! closures*: a closure receives a [`Batch`] (up to [`BATCH_ROWS`] tuples
//! plus a selection vector, see `crate::batch` for the invariants) and
//! appends one result per live row. The two execution paths differ only in
//! how those closures evaluate expressions:
//!
//! * the name-resolving interpreter ([`crate::Executor::execute_with_env`])
//!   loops over the batch row by row, builds an [`crate::eval::Env`] scope
//!   chain per row and resolves names per access — the unchanged per-tuple
//!   reference semantics;
//! * the compiled path ([`crate::Executor::execute_compiled`]) evaluates
//!   each expression *vectorized* over the whole batch
//!   (`Executor::ceval_batch`): one dispatch per expression node per batch
//!   instead of per tuple, falling back to per-tuple evaluation for
//!   sublink-bearing expressions so the parameterized sublink memo is
//!   untouched.
//!
//! Both are thin drivers that execute their children, wrap their expression
//! evaluator into closures, and delegate the loop body to this module — so
//! a semantics fix (NULL handling in hash keys, outer-join padding, empty
//! group seeding, …) lands in one place and cannot silently miss one path.
//!
//! Operator **output order** is part of the engine's observable semantics
//! (a stable sort above an operator keeps tie order, and `LIMIT` truncates
//! it), so the batched loops emit rows in exactly the order the classic
//! per-tuple loops did: a join emits each left row's surviving matches in
//! right-input order, then its NULL padding, before the next left row —
//! candidate batches are filtered with a truth vector and drained in order,
//! never reordered.
//!
//! The `operators_evaluated` accounting also lives here, in one place:
//! every physical operator counts exactly one evaluation **per logical
//! operator invocation** on the shared [`OpCounter`] — *not* per batch —
//! which keeps the counter comparable across batch sizes and is what makes
//! sublink-memo hits (which never reach this module) measurable as missing
//! operator evaluations.
//!
//! Every operator also cooperates with the executor's `Governor`
//! (`crate::resilience`): a cancellation **checkpoint** runs once per batch
//! boundary (never per row, so the ≤5% overhead budget holds), an operator
//! event gives fault injection its hook, and the state that can actually
//! grow without bound — hash-join build tables and candidate buffers,
//! aggregation groups, sort buffers — is charged against the memory budget
//! as it grows, with the charge credited back when the operator returns.
//! The `cancel_checks` counter is deliberately separate from
//! `operators_evaluated`: the latter is a per-invocation semantics
//! diagnostic that many tests pin exactly.

use crate::aggregate::Accumulator;
use crate::batch::{Batch, ColumnBlock, BATCH_ROWS};
use crate::resilience::{tuple_bytes, value_bytes, Governor};
use crate::{ExecError, Result};
use perm_algebra::{AggFunc, JoinKind, SetOpKind};
use perm_storage::{
    encode_key_column, encode_key_column_filtered, ColumnVec, Database, Relation, Schema, Tuple,
    Value,
};
use std::cell::Cell;
use std::collections::HashMap;

/// The diagnostic operator-evaluation counter both drivers share.
pub(crate) type OpCounter = Cell<u64>;

fn count(ops: &OpCounter) {
    ops.set(ops.get() + 1);
}

/// What the physical aggregate needs to know about one aggregate
/// computation; the argument *expression* stays behind the evaluator
/// closure.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AggSpec {
    /// The aggregate function.
    pub(crate) func: AggFunc,
    /// Whether duplicates are dropped before aggregating.
    pub(crate) distinct: bool,
    /// `false` for `count(*)`, whose per-row contribution is the constant 1.
    pub(crate) has_arg: bool,
}

/// Base relation access: materialises the stored table under the plan's
/// schema (which may carry an alias qualifier).
pub(crate) fn scan(
    ops: &OpCounter,
    gov: &Governor,
    db: &Database,
    table: &str,
    schema: &Schema,
) -> Result<Relation> {
    count(ops);
    gov.operator_event("scan")?;
    gov.checkpoint("scan")?;
    let base = db.table(table)?;
    Ok(Relation::new(schema.clone(), base.tuples().to_vec())?)
}

/// Constant relation.
pub(crate) fn values(
    ops: &OpCounter,
    gov: &Governor,
    schema: &Schema,
    rows: &[Tuple],
) -> Result<Relation> {
    count(ops);
    gov.operator_event("values")?;
    gov.checkpoint("values")?;
    Ok(Relation::new(schema.clone(), rows.to_vec())?)
}

/// Projection: `rows_of` evaluates all projection items over one batch,
/// appending one output tuple per live row.
pub(crate) fn project(
    ops: &OpCounter,
    gov: &Governor,
    child: &Relation,
    out_schema: Schema,
    distinct: bool,
    mut rows_of: impl FnMut(&Batch<'_>, &mut Vec<Tuple>) -> Result<()>,
) -> Result<Relation> {
    count(ops);
    gov.operator_event("project")?;
    let arity = child.schema().arity();
    let mut out = Relation::empty(out_schema);
    let mut buf: Vec<Tuple> = Vec::with_capacity(BATCH_ROWS.min(child.len()));
    for chunk in child.tuples().chunks(BATCH_ROWS) {
        gov.checkpoint("project")?;
        buf.clear();
        let block = ColumnBlock::new(arity);
        rows_of(&Batch::dense_with_block(chunk, &block), &mut buf)?;
        debug_assert_eq!(buf.len(), chunk.len(), "projection must be 1:1 per batch");
        for tuple in buf.drain(..) {
            out.push_unchecked(tuple);
        }
    }
    Ok(if distinct { out.distinct() } else { out })
}

/// Selection: `keep` evaluates the predicate over one batch (three-valued
/// TRUE only), appending one verdict per live row. Survivors are marked in
/// a truth vector and copied once into the output — dropped rows are never
/// materialised.
pub(crate) fn select(
    ops: &OpCounter,
    gov: &Governor,
    child: &Relation,
    mut keep: impl FnMut(&Batch<'_>, &mut Vec<bool>) -> Result<()>,
) -> Result<Relation> {
    count(ops);
    gov.operator_event("select")?;
    let arity = child.schema().arity();
    let mut out = Relation::empty(child.schema().clone());
    let mut truths: Vec<bool> = Vec::with_capacity(BATCH_ROWS.min(child.len()));
    for chunk in child.tuples().chunks(BATCH_ROWS) {
        gov.checkpoint("select")?;
        truths.clear();
        let block = ColumnBlock::new(arity);
        keep(&Batch::dense_with_block(chunk, &block), &mut truths)?;
        debug_assert_eq!(truths.len(), chunk.len(), "one verdict per live row");
        for (tuple, keep) in chunk.iter().zip(&truths) {
            if *keep {
                out.push_unchecked(tuple.clone());
            }
        }
    }
    Ok(out)
}

/// Cross product.
pub(crate) fn cross_product(
    ops: &OpCounter,
    gov: &Governor,
    l: &Relation,
    r: &Relation,
    out_schema: Schema,
) -> Result<Relation> {
    count(ops);
    gov.operator_event("cross_product")?;
    let mut out = Relation::empty(out_schema);
    let mut since_checkpoint = 0usize;
    for lt in l.tuples() {
        since_checkpoint += r.len();
        if since_checkpoint >= BATCH_ROWS {
            since_checkpoint = 0;
            gov.checkpoint("cross_product")?;
        }
        for rt in r.tuples() {
            out.push_unchecked(lt.concat(rt));
        }
    }
    Ok(out)
}

/// Resets the per-row key buffers for a chunk of `n` rows: every buffer is
/// emptied (capacity kept, so steady state allocates nothing) and every row
/// starts live. Shared by the hash-join build/probe and the aggregate.
fn reset_key_buffers(n: usize, keys_buf: &mut Vec<Vec<u8>>, live: &mut Vec<bool>) {
    if keys_buf.len() < n {
        keys_buf.resize_with(n, Vec::new);
    }
    for key in keys_buf[..n].iter_mut() {
        key.clear();
    }
    live.clear();
    live.resize(n, true);
}

/// One left row's candidate range inside a pending joined-row buffer:
/// the left tuple (for padding) and the half-open candidate range.
struct JoinSegment<'l> {
    left: &'l Tuple,
    start: usize,
    end: usize,
}

/// Filters a pending buffer of joined candidate rows with `condition`
/// (evaluated batch-at-a-time) and emits, **in order**, each segment's
/// surviving rows followed by its left-outer NULL padding when nothing
/// survived. Drains both buffers.
#[allow(clippy::too_many_arguments)]
fn flush_join_segments(
    gov: &Governor,
    condition: &mut impl FnMut(&Batch<'_>, &mut Vec<bool>) -> Result<()>,
    pending: &mut Vec<Tuple>,
    segments: &mut Vec<JoinSegment<'_>>,
    truths: &mut Vec<bool>,
    kind: JoinKind,
    join_arity: usize,
    right_arity: usize,
    out: &mut Relation,
) -> Result<()> {
    truths.clear();
    for chunk in pending.chunks(BATCH_ROWS) {
        gov.checkpoint("join")?;
        let block = ColumnBlock::new(join_arity);
        condition(&Batch::dense_with_block(chunk, &block), truths)?;
    }
    debug_assert_eq!(truths.len(), pending.len(), "one verdict per candidate");
    for segment in segments.drain(..) {
        let mut matched = false;
        for idx in segment.start..segment.end {
            if truths[idx] {
                matched = true;
                out.push_unchecked(std::mem::take(&mut pending[idx]));
            }
        }
        if !matched && kind == JoinKind::LeftOuter {
            out.push_unchecked(
                segment
                    .left
                    .concat(&Tuple::new(vec![Value::Null; right_arity])),
            );
        }
    }
    pending.clear();
    Ok(())
}

/// Inner or left-outer join over already-executed inputs.
///
/// `key_null_safe` carries one flag per extracted equi-key conjunct; when
/// non-empty the join runs hashed — the right side (the **build** side, a
/// pipeline breaker consumed batch by batch at its input boundary) is
/// bucketed under the column-wise key encoding
/// ([`encode_key_column_filtered`]) of its key values: each key column is
/// encoded in one contiguous pass, appending its bytes to every row's key
/// buffer, and only bucket-mates are rechecked against the full
/// `condition`. Rows whose key is NULL under a plain (non-null-safe)
/// equality can never match and are dropped from the hash table / probe
/// (the encoder marks them dead in the `live` mask). When empty (no usable
/// equality, or the condition carries sublinks, e.g. the Jsub conditions
/// of the Left strategy) the join falls back to a nested loop. Either way
/// the **probe** operates batch-at-a-time: key expressions are evaluated
/// once per batch into typed [`ColumnVec`] lanes, candidate joined rows
/// are filtered through a batched `condition` pass, and an unmatched left
/// row of a left-outer join is padded with NULLs on the right — in exactly
/// the per-left-row output order of a tuple-at-a-time loop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn join(
    ops: &OpCounter,
    gov: &Governor,
    l: &Relation,
    r: &Relation,
    out_schema: &Schema,
    kind: JoinKind,
    key_null_safe: &[bool],
    mut left_keys: impl FnMut(&Batch<'_>, usize, &mut ColumnVec) -> Result<()>,
    mut right_keys: impl FnMut(&Batch<'_>, usize, &mut ColumnVec) -> Result<()>,
    mut condition: impl FnMut(&Batch<'_>, &mut Vec<bool>) -> Result<()>,
) -> Result<Relation> {
    count(ops);
    gov.operator_event("join")?;
    let mut charge = gov.transient("join");
    let left_arity = l.schema().arity();
    let right_arity = r.schema().arity();
    let join_arity = out_schema.arity();
    let nkeys = key_null_safe.len();
    let mut out = Relation::empty(out_schema.clone());
    let mut pending: Vec<Tuple> = Vec::new();
    let mut segments: Vec<JoinSegment<'_>> = Vec::new();
    let mut truths: Vec<bool> = Vec::new();

    if nkeys > 0 {
        // Build side: bucket the right rows by their encoded key values,
        // one batch of key evaluations at a time. Evaluating every key
        // column eagerly (where the tuple-at-a-time loop stopped at a
        // row's first NULL non-null-safe key) is safe because equi keys
        // are always bare column references (`extract_equi_keys` extracts
        // only `Column = Column` conjuncts, resolution-checked against the
        // input schemas), so key evaluation cannot raise an error the
        // early exit would have shielded.
        let mut buckets: HashMap<Vec<u8>, Vec<&Tuple>> = HashMap::new();
        let mut key_cols: Vec<ColumnVec> = vec![ColumnVec::default(); nkeys];
        let mut keys_buf: Vec<Vec<u8>> = Vec::new();
        let mut live: Vec<bool> = Vec::new();
        for chunk in r.tuples().chunks(BATCH_ROWS) {
            gov.checkpoint("join")?;
            let block = ColumnBlock::new(right_arity);
            let batch = Batch::dense_with_block(chunk, &block);
            for (i, col) in key_cols.iter_mut().enumerate() {
                col.clear_values();
                right_keys(&batch, i, col)?;
            }
            // Column-wise key encoding: one pass per key column appends
            // that column's bytes to every live row's key buffer; a NULL
            // under a non-null-safe equality kills the row instead.
            reset_key_buffers(chunk.len(), &mut keys_buf, &mut live);
            for (col, null_safe) in key_cols.iter().zip(key_null_safe) {
                encode_key_column_filtered(
                    col,
                    *null_safe,
                    &mut live,
                    &mut keys_buf[..chunk.len()],
                );
            }
            let mut chunk_bytes = 0u64;
            for (j, rt) in chunk.iter().enumerate() {
                if !live[j] {
                    continue;
                }
                // Move, don't clone: each row's key buffer is consumed
                // once (taking it leaves an empty Vec behind, which the
                // next chunk's reset reuses without reallocating).
                let key = std::mem::take(&mut keys_buf[j]);
                if charge.is_some() {
                    // Build-table growth: the encoded key plus the
                    // bucket-mate reference.
                    chunk_bytes += key.len() as u64 + std::mem::size_of::<&Tuple>() as u64;
                }
                buckets.entry(key).or_default().push(rt);
            }
            if let Some(c) = charge.as_mut() {
                c.grow(chunk_bytes)?;
            }
        }

        // Probe side, batch-at-a-time: evaluate the key columns once per
        // probe batch, gather each row's bucket-mates into the pending
        // buffer, and flush (condition + ordered emission) at left-row
        // boundaries once a batch worth of candidates has accumulated.
        let empty: Vec<&Tuple> = Vec::new();
        let mut key_cols: Vec<ColumnVec> = vec![ColumnVec::default(); nkeys];
        for chunk in l.tuples().chunks(BATCH_ROWS) {
            gov.checkpoint("join")?;
            let block = ColumnBlock::new(left_arity);
            let batch = Batch::dense_with_block(chunk, &block);
            for (i, col) in key_cols.iter_mut().enumerate() {
                col.clear_values();
                left_keys(&batch, i, col)?;
            }
            reset_key_buffers(chunk.len(), &mut keys_buf, &mut live);
            for (col, null_safe) in key_cols.iter().zip(key_null_safe) {
                encode_key_column_filtered(
                    col,
                    *null_safe,
                    &mut live,
                    &mut keys_buf[..chunk.len()],
                );
            }
            for (j, lt) in chunk.iter().enumerate() {
                let candidates = if !live[j] {
                    &empty
                } else {
                    buckets.get(&keys_buf[j]).unwrap_or(&empty)
                };
                let start = pending.len();
                for rt in candidates {
                    pending.push(lt.concat(rt));
                }
                if let Some(c) = charge.as_mut() {
                    // Candidate-buffer growth, which also proxies the
                    // operator's output growth (survivors move to `out`).
                    let grown: u64 = pending[start..].iter().map(tuple_bytes).sum();
                    c.grow(grown)?;
                }
                segments.push(JoinSegment {
                    left: lt,
                    start,
                    end: pending.len(),
                });
                if pending.len() >= BATCH_ROWS {
                    flush_join_segments(
                        gov,
                        &mut condition,
                        &mut pending,
                        &mut segments,
                        &mut truths,
                        kind,
                        join_arity,
                        right_arity,
                        &mut out,
                    )?;
                }
            }
        }
        flush_join_segments(
            gov,
            &mut condition,
            &mut pending,
            &mut segments,
            &mut truths,
            kind,
            join_arity,
            right_arity,
            &mut out,
        )?;
        return Ok(out);
    }

    // Nested-loop join: each left row's candidates are the whole right
    // input, processed one right batch at a time (bounded memory, batched
    // condition dispatch), with padding emitted at the row boundary.
    for lt in l.tuples() {
        let mut matched = false;
        for r_chunk in r.tuples().chunks(BATCH_ROWS) {
            gov.checkpoint("join")?;
            pending.clear();
            for rt in r_chunk {
                pending.push(lt.concat(rt));
            }
            truths.clear();
            let block = ColumnBlock::new(join_arity);
            condition(&Batch::dense_with_block(&pending, &block), &mut truths)?;
            debug_assert_eq!(truths.len(), pending.len(), "one verdict per candidate");
            for (idx, keep) in truths.iter().enumerate() {
                if *keep {
                    matched = true;
                    out.push_unchecked(std::mem::take(&mut pending[idx]));
                }
            }
        }
        if !matched && kind == JoinKind::LeftOuter {
            out.push_unchecked(lt.concat(&Tuple::new(vec![Value::Null; right_arity])));
        }
    }
    Ok(out)
}

/// Grouping and aggregation — a pipeline breaker consuming its input batch
/// by batch. `eval` evaluates, for one batch, every grouping expression
/// into `group_cols[i]` (a typed [`ColumnVec`] lane) and every aggregate
/// argument into `agg_cols[i]` (columns for argless `count(*)` specs stay
/// empty; their per-row contribution is the constant 1). Groups are keyed
/// by the column-wise key encoding ([`encode_key_column`]) — the key *is*
/// the grouping equality, with no recheck — and emitted in
/// first-encounter order. A global aggregation (no GROUP BY) over an empty
/// input still produces one tuple (e.g. `count(*)` = 0): the single group
/// is seeded up front.
pub(crate) fn aggregate(
    ops: &OpCounter,
    gov: &Governor,
    child: &Relation,
    out_schema: Schema,
    group_arity: usize,
    specs: &[AggSpec],
    mut eval: impl FnMut(&Batch<'_>, &mut [ColumnVec], &mut [Vec<Value>]) -> Result<()>,
) -> Result<Relation> {
    count(ops);
    gov.operator_event("aggregate")?;
    let mut charge = gov.transient("aggregate");
    let in_arity = child.schema().arity();
    let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
    let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
    let make_accs = || -> Vec<Accumulator> {
        specs
            .iter()
            .map(|s| Accumulator::new(s.func, s.distinct))
            .collect()
    };

    if group_arity == 0 {
        groups.push((Vec::new(), make_accs()));
        index.insert(Vec::new(), 0);
    }

    let mut group_cols: Vec<ColumnVec> = vec![ColumnVec::default(); group_arity];
    let mut agg_cols: Vec<Vec<Value>> = vec![Vec::new(); specs.len()];
    let mut keys_buf: Vec<Vec<u8>> = Vec::new();
    let mut live: Vec<bool> = Vec::new();
    for chunk in child.tuples().chunks(BATCH_ROWS) {
        gov.checkpoint("aggregate")?;
        for col in group_cols.iter_mut() {
            col.clear_values();
        }
        for col in agg_cols.iter_mut() {
            col.clear();
        }
        let block = ColumnBlock::new(in_arity);
        eval(
            &Batch::dense_with_block(chunk, &block),
            &mut group_cols,
            &mut agg_cols,
        )?;
        // Column-wise grouping keys: one contiguous pass per grouping
        // column (NULLs group together, so every row stays live).
        reset_key_buffers(chunk.len(), &mut keys_buf, &mut live);
        for col in group_cols.iter() {
            encode_key_column(col, &mut keys_buf[..chunk.len()]);
        }
        let groups_before = groups.len();
        for j in 0..chunk.len() {
            let key = std::mem::take(&mut keys_buf[j]);
            let group_index = match index.get(&key) {
                Some(&i) => i,
                None => {
                    // First encounter: materialise the group's
                    // representative values out of the column lanes (moved,
                    // not cloned — each cell is consumed at most once).
                    let key_values: Vec<Value> =
                        group_cols.iter_mut().map(|col| col.take_value(j)).collect();
                    groups.push((key_values, make_accs()));
                    index.insert(key, groups.len() - 1);
                    groups.len() - 1
                }
            };
            for (i, (acc, spec)) in groups[group_index].1.iter_mut().zip(specs).enumerate() {
                if spec.has_arg {
                    acc.update(&agg_cols[i][j]);
                } else {
                    acc.update(&Value::Int(1));
                }
            }
        }
        if let Some(c) = charge.as_mut() {
            // Group-state growth: key values plus accumulator slots for
            // every group first seen in this chunk.
            let grown: u64 = groups[groups_before..]
                .iter()
                .map(|(key, accs)| {
                    key.iter().map(value_bytes).sum::<u64>()
                        + (accs.len() * std::mem::size_of::<Accumulator>()) as u64
                })
                .sum();
            c.grow(grown)?;
        }
    }

    let mut out = Relation::empty(out_schema);
    for (key_values, accs) in groups {
        let mut row = key_values;
        for acc in &accs {
            row.push(acc.finish());
        }
        out.push_unchecked(Tuple::new(row));
    }
    Ok(out)
}

/// Set operation over already-executed inputs. The arity check happens here
/// at execution time, not compile time, so a malformed set operation behind
/// a short circuit stays as unreachable as it is in the interpreter.
pub(crate) fn set_op(
    ops: &OpCounter,
    gov: &Governor,
    op: SetOpKind,
    all: bool,
    l: &Relation,
    r: &Relation,
) -> Result<Relation> {
    count(ops);
    gov.operator_event("set_op")?;
    gov.checkpoint("set_op")?;
    if l.schema().arity() != r.schema().arity() {
        return Err(ExecError::Unsupported(
            "set operation over inputs of different arity".into(),
        ));
    }
    Ok(match (op, all) {
        (SetOpKind::Union, true) => l.bag_union(r),
        (SetOpKind::Union, false) => l.set_union(r),
        (SetOpKind::Intersect, true) => l.bag_intersect(r),
        (SetOpKind::Intersect, false) => l.set_intersect(r),
        (SetOpKind::Except, true) => l.bag_difference(r),
        (SetOpKind::Except, false) => l.set_difference(r),
    })
}

/// Sorting — a pipeline breaker consuming its input batch by batch. `keys`
/// evaluates, for one batch, every sort-key expression into `key_cols[i]`;
/// `ascending` carries the per-key direction. The underlying sort is
/// stable, so ties keep the input order — which both drivers produce
/// identically.
pub(crate) fn sort(
    ops: &OpCounter,
    gov: &Governor,
    child: Relation,
    ascending: &[bool],
    mut keys: impl FnMut(&Batch<'_>, &mut [Vec<Value>]) -> Result<()>,
) -> Result<Relation> {
    count(ops);
    gov.operator_event("sort")?;
    let mut charge = gov.transient("sort");
    let arity = child.schema().arity();
    let schema = child.schema().clone();
    let mut keyed: Vec<(Vec<Value>, Tuple)> = Vec::with_capacity(child.len());
    let mut key_cols: Vec<Vec<Value>> = vec![Vec::new(); ascending.len()];
    for chunk in child.tuples().chunks(BATCH_ROWS) {
        gov.checkpoint("sort")?;
        for col in key_cols.iter_mut() {
            col.clear();
        }
        let block = ColumnBlock::new(arity);
        keys(&Batch::dense_with_block(chunk, &block), &mut key_cols)?;
        let mut chunk_bytes = 0u64;
        for (j, tuple) in chunk.iter().enumerate() {
            let mut key_values = Vec::with_capacity(ascending.len());
            for col in key_cols.iter_mut() {
                key_values.push(std::mem::replace(&mut col[j], Value::Null));
            }
            if charge.is_some() {
                // Sort-buffer growth: the extracted keys plus the cloned
                // input row.
                chunk_bytes += key_values.iter().map(value_bytes).sum::<u64>() + tuple_bytes(tuple);
            }
            keyed.push((key_values, tuple.clone()));
        }
        if let Some(c) = charge.as_mut() {
            c.grow(chunk_bytes)?;
        }
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, asc) in ascending.iter().enumerate() {
            let ord = ka[i].sort_key(&kb[i]);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(Relation::new(
        schema,
        keyed.into_iter().map(|(_, t)| t).collect(),
    )?)
}

/// First-`n` truncation.
pub(crate) fn limit(
    ops: &OpCounter,
    gov: &Governor,
    child: Relation,
    n: usize,
) -> Result<Relation> {
    count(ops);
    gov.operator_event("limit")?;
    gov.checkpoint("limit")?;
    let schema = child.schema().clone();
    let tuples = child.into_tuples().into_iter().take(n).collect();
    Ok(Relation::new(schema, tuples)?)
}
