//! Per-operator execution profiles: the `EXPLAIN ANALYZE` substrate.
//!
//! A [`ProfileTree`] mirrors one [`CompiledPlan`]: one `ProfNode` per plan
//! operator, in the same child order the drivers recurse in, plus one
//! subtree per compiled sublink (attached to the operator whose expressions
//! carry it, and indexed by sublink id so the memoized-sublink seam can find
//! its subtree without positional threading). Arming a tree costs one
//! allocation pass per `explain_analyze`; execution then records, per node:
//!
//! * **invocations** — incremented at the same single site as the global
//!   `operators_evaluated` counter (`begin`, called by every operator in
//!   `crate::physical`), so the per-node sums are equal to the global count
//!   by construction — a memo hit skips both.
//! * **wall time** — entry-to-exit clock probes around the operator body.
//!   Probes are *strided* once a node gets hot (the PR 6 `DEADLINE_STRIDE`
//!   discipline applied to profile clocks): the first
//!   `PROFILE_TIME_STRIDE` invocations are timed exactly, after which
//!   every stride-th invocation is sampled and scaled, so a sublink body
//!   re-executed thousands of times pays two clock reads per 64
//!   invocations, not per invocation. Time is *self* time of the operator
//!   body over already-executed inputs — except that sublink evaluation
//!   inside an operator's expressions is included in that operator *and*
//!   attributed to the sublink's own subtree, exactly like the nested
//!   "actual time" of PostgreSQL's `EXPLAIN ANALYZE`.
//! * **batches** — one tick per batch-boundary loop iteration.
//! * **rows in/out, memo hits/misses, spill bytes/partitions, columnar
//!   fallback rows** — recorded by the drivers around each operator call
//!   (the drivers see the child relations, the result, and the executor's
//!   spill/columnar counters; the physical bodies do not).
//!
//! Unarmed (no profile attached — every path except `explain_analyze`,
//! `Rows::profile` and the obs harness), the probe is a `None` check per
//! operator invocation: the hot path's cost profile is unchanged, which
//! `harness obs --check` gates at ≤1.05 pairwise.

use crate::compile::{CompiledExpr, CompiledPlan, CompiledSublink};
use crate::physical::OpCounter;
use std::cell::Cell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Instant;

/// Exact-timing threshold and sampling stride of the profile clock probes.
pub(crate) const PROFILE_TIME_STRIDE: u64 = 64;

/// The per-node counters, interior-mutable because the whole executor is
/// single-threaded `Cell` machinery.
#[derive(Debug, Default)]
pub(crate) struct NodeStats {
    pub(crate) invocations: Cell<u64>,
    pub(crate) rows_in: Cell<u64>,
    pub(crate) rows_out: Cell<u64>,
    pub(crate) batches: Cell<u64>,
    pub(crate) wall_nanos: Cell<u64>,
    pub(crate) memo_hits: Cell<u64>,
    pub(crate) memo_misses: Cell<u64>,
    pub(crate) spilled_bytes: Cell<u64>,
    pub(crate) spill_partitions: Cell<u64>,
    pub(crate) columnar_fallback_rows: Cell<u64>,
}

fn add(cell: &Cell<u64>, delta: u64) {
    cell.set(cell.get() + delta);
}

/// One profile node, mirroring one compiled plan operator.
#[derive(Debug)]
pub(crate) struct ProfNode {
    /// Operator name (`scan`, `join`, …) — the same site labels the
    /// governor uses.
    pub(crate) op: &'static str,
    /// Operator-specific detail (table name, join kind, …).
    pub(crate) detail: String,
    pub(crate) stats: NodeStats,
    /// Input children, in driver recursion order.
    pub(crate) children: Vec<Rc<ProfNode>>,
    /// Sublink subtrees rooted in this operator's expressions, in
    /// `(sublink id, subtree)` pairs.
    pub(crate) sublinks: Vec<(usize, Rc<ProfNode>)>,
}

impl ProfNode {
    /// The `i`-th input child — positional, matching the driver recursion.
    pub(crate) fn child(&self, i: usize) -> &ProfNode {
        &self.children[i]
    }
}

/// A profile tree armed for one compiled plan: the root mirrors the plan,
/// and every compiled sublink (however deeply nested) is indexed by id.
#[derive(Debug)]
pub struct ProfileTree {
    pub(crate) root: Rc<ProfNode>,
    sublinks: HashMap<usize, Rc<ProfNode>>,
}

impl ProfileTree {
    /// Builds the (zeroed) profile skeleton for a compiled plan.
    pub fn for_plan(plan: &CompiledPlan) -> Rc<ProfileTree> {
        let mut sublinks = HashMap::new();
        let root = build_node(plan, &mut sublinks);
        Rc::new(ProfileTree { root, sublinks })
    }

    /// The subtree of a compiled sublink, by id — the memoized-sublink
    /// seam's lookup. `None` when the executing plan is not the plan this
    /// tree was armed for (ids are process-unique, so a foreign plan can
    /// never misattribute).
    pub(crate) fn sublink(&self, id: usize) -> Option<&Rc<ProfNode>> {
        self.sublinks.get(&id)
    }

    /// Snapshots the tree into the owned, `Send`-able public profile.
    pub fn snapshot(&self) -> QueryProfile {
        QueryProfile {
            root: snapshot_node(&self.root),
            bound_plan: None,
            optimized_plan: None,
            optimizer: None,
        }
    }
}

fn build_node(plan: &CompiledPlan, sublinks: &mut HashMap<usize, Rc<ProfNode>>) -> Rc<ProfNode> {
    let (op, detail, children, exprs): (
        &'static str,
        String,
        Vec<&CompiledPlan>,
        Vec<&CompiledExpr>,
    ) = match plan {
        CompiledPlan::Scan { table, .. } => ("scan", table.clone(), vec![], vec![]),
        CompiledPlan::Values { rows, .. } => {
            ("values", format!("{} rows", rows.len()), vec![], vec![])
        }
        CompiledPlan::Project {
            input,
            items,
            distinct,
            ..
        } => (
            "project",
            format!(
                "{} item{}{}",
                items.len(),
                if items.len() == 1 { "" } else { "s" },
                if *distinct { " distinct" } else { "" }
            ),
            vec![input],
            items.iter().collect(),
        ),
        CompiledPlan::Select {
            input, predicate, ..
        } => ("select", String::new(), vec![input], vec![predicate]),
        CompiledPlan::CrossProduct { left, right, .. } => {
            ("cross_product", String::new(), vec![left, right], vec![])
        }
        CompiledPlan::Join {
            left,
            right,
            kind,
            condition,
            equi_keys,
            ..
        } => (
            "join",
            format!(
                "{:?}{}",
                kind,
                if equi_keys.is_empty() {
                    " nested-loop"
                } else {
                    " hash"
                }
            ),
            vec![left, right],
            // Key expressions are column references (no sublinks); the
            // residual condition is where sublinks can live.
            vec![condition],
        ),
        CompiledPlan::Aggregate {
            input,
            group_by,
            aggregates,
            ..
        } => (
            "aggregate",
            format!("{} group keys, {} aggs", group_by.len(), aggregates.len()),
            vec![input],
            group_by
                .iter()
                .chain(aggregates.iter().filter_map(|a| a.arg.as_ref()))
                .collect(),
        ),
        CompiledPlan::SetOp {
            op,
            all,
            left,
            right,
            ..
        } => (
            "set_op",
            format!("{:?}{}", op, if *all { " all" } else { "" }),
            vec![left, right],
            vec![],
        ),
        CompiledPlan::Sort { input, keys, .. } => (
            "sort",
            format!(
                "{} key{}",
                keys.len(),
                if keys.len() == 1 { "" } else { "s" }
            ),
            vec![input],
            keys.iter().map(|k| &k.expr).collect(),
        ),
        CompiledPlan::Limit { input, limit, .. } => {
            ("limit", format!("{limit}"), vec![input], vec![])
        }
    };
    let children = children
        .into_iter()
        .map(|c| build_node(c, sublinks))
        .collect();
    let mut node_sublinks = Vec::new();
    for expr in exprs {
        collect_sublinks(expr, sublinks, &mut node_sublinks);
    }
    Rc::new(ProfNode {
        op,
        detail,
        stats: NodeStats::default(),
        children,
        sublinks: node_sublinks,
    })
}

fn collect_sublinks(
    expr: &CompiledExpr,
    registry: &mut HashMap<usize, Rc<ProfNode>>,
    out: &mut Vec<(usize, Rc<ProfNode>)>,
) {
    match expr {
        CompiledExpr::Sublink(sublink) => {
            let sublink: &CompiledSublink = sublink;
            // The sublink's plan gets its own subtree (nested sublinks
            // inside it register recursively through build_node), rooted
            // here and indexed by id for the memo seam.
            let subtree = build_node(&sublink.plan, registry);
            registry.insert(sublink.id, Rc::clone(&subtree));
            out.push((sublink.id, subtree));
            if let Some(test) = &sublink.test_expr {
                collect_sublinks(test, registry, out);
            }
        }
        CompiledExpr::Binary { left, right, .. } => {
            collect_sublinks(left, registry, out);
            collect_sublinks(right, registry, out);
        }
        CompiledExpr::Unary { expr, .. } => collect_sublinks(expr, registry, out),
        CompiledExpr::Func { args, .. } => {
            for a in args {
                collect_sublinks(a, registry, out);
            }
        }
        CompiledExpr::Case {
            branches,
            else_expr,
        } => {
            for (c, v) in branches {
                collect_sublinks(c, registry, out);
                collect_sublinks(v, registry, out);
            }
            if let Some(e) = else_expr {
                collect_sublinks(e, registry, out);
            }
        }
        CompiledExpr::Slot(_)
        | CompiledExpr::Unresolved { .. }
        | CompiledExpr::Literal(_)
        | CompiledExpr::Param(_) => {}
    }
}

fn snapshot_node(node: &ProfNode) -> ProfileNode {
    let s = &node.stats;
    ProfileNode {
        operator: node.op.to_string(),
        detail: node.detail.clone(),
        invocations: s.invocations.get(),
        rows_in: s.rows_in.get(),
        rows_out: s.rows_out.get(),
        batches: s.batches.get(),
        wall_nanos: s.wall_nanos.get(),
        memo_hits: s.memo_hits.get(),
        memo_misses: s.memo_misses.get(),
        spilled_bytes: s.spilled_bytes.get(),
        spill_partitions: s.spill_partitions.get(),
        columnar_fallback_rows: s.columnar_fallback_rows.get(),
        children: node.children.iter().map(|c| snapshot_node(c)).collect(),
        sublinks: node
            .sublinks
            .iter()
            .map(|(_, sub)| snapshot_node(sub))
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// The probes driven by `crate::physical` and the drivers.
// ---------------------------------------------------------------------------

/// What every physical operator receives instead of the bare counter: the
/// shared `operators_evaluated` cell plus the armed profile node, if any.
#[derive(Clone, Copy)]
pub(crate) struct OpProbe<'p> {
    pub(crate) ops: &'p OpCounter,
    pub(crate) node: Option<&'p NodeStats>,
}

impl<'p> OpProbe<'p> {
    pub(crate) fn new(ops: &'p OpCounter, node: Option<&'p NodeStats>) -> OpProbe<'p> {
        OpProbe { ops, node }
    }

    /// Records one batch-boundary loop iteration.
    pub(crate) fn batch(&self) {
        if let Some(stats) = self.node {
            add(&stats.batches, 1);
        }
    }
}

/// Counts one operator invocation — on the global counter *and* the armed
/// node, at the same site, which is what keeps the per-node sums equal to
/// `operators_evaluated` — and starts the (strided) wall clock. Dropping
/// the returned timer at the end of the operator body records the elapsed
/// time, on errors too.
pub(crate) fn begin<'p>(probe: &OpProbe<'p>) -> OpTimer<'p> {
    probe.ops.set(probe.ops.get() + 1);
    match probe.node {
        None => OpTimer {
            node: None,
            start: None,
            scale: 1,
        },
        Some(stats) => {
            let n = stats.invocations.get();
            stats.invocations.set(n + 1);
            // Exact timing while the node is cold; once hot, sample every
            // stride-th invocation and scale — two clock reads per
            // PROFILE_TIME_STRIDE invocations instead of per invocation.
            let (start, scale) = if n < PROFILE_TIME_STRIDE {
                (Some(Instant::now()), 1)
            } else if n % PROFILE_TIME_STRIDE == 0 {
                (Some(Instant::now()), PROFILE_TIME_STRIDE)
            } else {
                (None, 1)
            };
            OpTimer {
                node: probe.node,
                start,
                scale,
            }
        }
    }
}

/// The scope guard recording an operator body's wall time on drop.
pub(crate) struct OpTimer<'p> {
    node: Option<&'p NodeStats>,
    start: Option<Instant>,
    scale: u64,
}

impl Drop for OpTimer<'_> {
    fn drop(&mut self) {
        if let (Some(stats), Some(start)) = (self.node, self.start) {
            add(
                &stats.wall_nanos,
                (start.elapsed().as_nanos() as u64).saturating_mul(self.scale),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// The public snapshot.
// ---------------------------------------------------------------------------

/// One node of an execution profile: the operator, its actuals, its input
/// children and the sublink subtrees rooted in its expressions. All
/// counters are zero in a plain `explain` (plan shape, no execution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Operator name (`scan`, `select`, `join`, …).
    pub operator: String,
    /// Operator-specific detail (table name, join kind, key counts, …).
    pub detail: String,
    /// Operator invocations; summing this over the whole tree gives exactly
    /// the executor's `operators_evaluated` delta for the profiled run.
    pub invocations: u64,
    /// Input rows consumed across all invocations (sum of child
    /// cardinalities per invocation).
    pub rows_in: u64,
    /// Output rows produced across all invocations.
    pub rows_out: u64,
    /// Batch-boundary loop iterations across all invocations.
    pub batches: u64,
    /// Cumulative wall time of the operator body, in nanoseconds (strided
    /// clock probes; see the module docs for the sampling discipline).
    pub wall_nanos: u64,
    /// Sublink-memo hits attributed to this subtree's root (served without
    /// executing the sublink plan below).
    pub memo_hits: u64,
    /// Sublink-memo misses attributed to this subtree's root (each one
    /// executed the plan below).
    pub memo_misses: u64,
    /// Spill-file payload bytes written while this operator body ran.
    pub spilled_bytes: u64,
    /// Spill partition files / sort runs created while this operator body
    /// ran.
    pub spill_partitions: u64,
    /// Rows whose columnar evaluation fell back to the scalar path while
    /// this operator body ran.
    pub columnar_fallback_rows: u64,
    /// Input operators, in execution order.
    pub children: Vec<ProfileNode>,
    /// Sublink sub-plans rooted in this operator's expressions.
    pub sublinks: Vec<ProfileNode>,
}

impl ProfileNode {
    fn total_invocations(&self) -> u64 {
        self.invocations
            + self
                .children
                .iter()
                .chain(self.sublinks.iter())
                .map(|n| n.total_invocations())
                .sum::<u64>()
    }

    fn render_into(&self, out: &mut String, indent: usize, tag: &str) {
        for _ in 0..indent {
            out.push_str("  ");
        }
        out.push_str(tag);
        out.push_str(&self.operator);
        if !self.detail.is_empty() {
            let _ = write!(out, " {}", self.detail);
        }
        let _ = write!(
            out,
            "  [inv={} in={} out={} batches={} time={:.3}ms",
            self.invocations,
            self.rows_in,
            self.rows_out,
            self.batches,
            self.wall_nanos as f64 / 1e6
        );
        if self.memo_hits + self.memo_misses > 0 {
            let _ = write!(out, " memo={}/{}", self.memo_hits, self.memo_misses);
        }
        if self.spilled_bytes > 0 || self.spill_partitions > 0 {
            let _ = write!(
                out,
                " spill={}B/{}",
                self.spilled_bytes, self.spill_partitions
            );
        }
        if self.columnar_fallback_rows > 0 {
            let _ = write!(out, " colfb={}", self.columnar_fallback_rows);
        }
        out.push_str("]\n");
        for child in &self.children {
            child.render_into(out, indent + 1, "");
        }
        for sub in &self.sublinks {
            sub.render_into(out, indent + 1, "sublink: ");
        }
    }

    fn json_into(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"operator\":\"{}\",\"detail\":\"{}\",\"invocations\":{},\"rows_in\":{},\
             \"rows_out\":{},\"batches\":{},\"wall_nanos\":{},\"memo_hits\":{},\
             \"memo_misses\":{},\"spilled_bytes\":{},\"spill_partitions\":{},\
             \"columnar_fallback_rows\":{},\"children\":[",
            json_escape(&self.operator),
            json_escape(&self.detail),
            self.invocations,
            self.rows_in,
            self.rows_out,
            self.batches,
            self.wall_nanos,
            self.memo_hits,
            self.memo_misses,
            self.spilled_bytes,
            self.spill_partitions,
            self.columnar_fallback_rows,
        );
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.json_into(out);
        }
        out.push_str("],\"sublinks\":[");
        for (i, sub) in self.sublinks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            sub.json_into(out);
        }
        out.push_str("]}");
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An execution profile: the operator tree of one compiled plan, annotated
/// with per-node actuals (or all zeroes for a plain `explain`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryProfile {
    /// The root operator.
    pub root: ProfileNode,
    /// Rendering of the **pre-optimization** bound logical plan, when the
    /// caller went through a session pipeline that ran the algebraic
    /// optimizer (`None` for executor-level profiles). Shown by
    /// [`QueryProfile::render`] so one `EXPLAIN` call exposes the
    /// bound-vs-optimized diff.
    pub bound_plan: Option<String>,
    /// Rendering of the optimized logical plan that was compiled
    /// (`None` when the optimizer did not run).
    pub optimized_plan: Option<String>,
    /// One-line optimizer rule summary (e.g. `decorrelate×1 pushdown×2`;
    /// `None` when the optimizer did not run).
    pub optimizer: Option<String>,
}

impl QueryProfile {
    /// Sum of per-node invocation counts over the whole tree (children and
    /// sublink subtrees included). For a profiled execution this equals the
    /// executor's `operators_evaluated` delta exactly — both are counted at
    /// the same site.
    pub fn total_invocations(&self) -> u64 {
        self.root.total_invocations()
    }

    /// A human-readable indented tree. When the optimizer annotations are
    /// present, the physical tree is preceded by the bound logical plan,
    /// the optimized logical plan, and the rule summary — the full
    /// before/after diff in one rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if let Some(bound) = &self.bound_plan {
            out.push_str("bound plan:\n");
            for line in bound.lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        if let Some(optimized) = &self.optimized_plan {
            out.push_str("optimized plan");
            if let Some(rules) = &self.optimizer {
                let _ = write!(out, " ({rules})");
            }
            out.push_str(":\n");
            for line in optimized.lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
            out.push_str("physical plan:\n");
        }
        self.root.render_into(&mut out, 0, "");
        out
    }

    /// A self-contained JSON encoding (hand-rolled; no external crates).
    /// Without optimizer annotations this is the root operator object
    /// (the established shape); with them it is an envelope
    /// `{"bound_plan": .., "optimized_plan": .., "optimizer": .., "root": ..}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        if self.bound_plan.is_none() && self.optimized_plan.is_none() && self.optimizer.is_none() {
            self.root.json_into(&mut out);
            return out;
        }
        out.push('{');
        for (key, value) in [
            ("bound_plan", &self.bound_plan),
            ("optimized_plan", &self.optimized_plan),
            ("optimizer", &self.optimizer),
        ] {
            if let Some(value) = value {
                let _ = write!(out, "\"{key}\":\"{}\",", json_escape(value));
            }
        }
        out.push_str("\"root\":");
        self.root.json_into(&mut out);
        out.push('}');
        out
    }
}

impl std::fmt::Display for QueryProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}
