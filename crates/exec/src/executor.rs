//! Plan execution: two thin drivers over one shared physical-operator
//! layer, with a compile/memoize pipeline in front of the default path.
//!
//! Execution of a top-level plan through [`Executor::execute`] goes through
//! three stages:
//!
//! 1. **Plan-level optimization** — residual selections sitting directly on
//!    cross products are fused into joins
//!    ([`perm_algebra::optimize::fuse_select_over_cross`]) so that large
//!    products (in particular the `CrossBase` products of the Gen rewrite
//!    strategy) are never materialised unfiltered.
//! 2. **Compilation** ([`crate::compile`]) — a one-time pass per operator
//!    that resolves every column reference to a positional *slot*
//!    (scope depth + attribute index) against the concrete schema chain, so
//!    the per-tuple evaluator does integer indexing instead of name lookup,
//!    and computes each sublink's *correlation signature* (its free column
//!    references, [`perm_algebra::visit::free_correlated_columns`]) resolved
//!    to outer-scope slots.
//! 3. **Compiled evaluation** with a **parameterized sublink memo**: a
//!    sublink result is cached under `(sublink identity, encoded values of
//!    its correlated bindings)` as an `Arc<Relation>`, so a hit shares the
//!    materialised result instead of deep-copying it. A correlated sublink
//!    over an outer relation with *k* distinct binding values therefore
//!    executes *k* times instead of once per outer tuple; an uncorrelated
//!    sublink (empty signature) degenerates to the classic PostgreSQL
//!    "InitPlan" behaviour of one execution per query. On top of the result
//!    memo, `ANY`/`ALL` *verdicts* are memoized per `(sublink identity,
//!    bindings, test value)`, so repeated quantifier folds over the same
//!    cached result are skipped too. The memos can be switched off with
//!    [`Executor::with_sublink_memo`] for measurements.
//!
//! The uncompiled interpreter ([`Executor::execute_unoptimized`] /
//! [`Executor::execute_with_env`]) remains available as the reference
//! semantics; the tracer in `perm-core` builds on it, and the
//! strategy-equivalence tests cross-check compiled against interpreted
//! results. Both drivers delegate every operator loop — joins (hashed and
//! nested-loop, with left-outer padding), aggregation, sorting, set
//! operations, projection/selection — to the shared `crate::physical`
//! module, so no operator body is implemented twice; the drivers differ
//! only in the tuple-evaluator closures they pass (name lookup through an
//! [`Env`] chain vs. slot indexing through a [`crate::compile::Frame`]
//! chain). The interpreter path resolves correlation signatures *at
//! runtime* ([`perm_algebra::visit::free_correlated_columns`] looked up in
//! the current [`Env`]), which lets the same parameterized sublink memo —
//! and the verdict memo — serve the interpreter and the tracer as well.

use crate::compile::CompiledPlan;
use crate::eval::Env;
use crate::memo::{MemoMap, SharedSublinkMemo};
use crate::optimize::OptimizerReport;
use crate::physical::{self, AggSpec};
use crate::profile::{OpProbe, ProfileTree};
use crate::resilience::{CancelToken, Degradation, FaultPlan, Governor, MemoCost, TraceSignal};
use crate::{ExecError, Result};
use perm_algebra::visit::{free_correlated_columns, free_params};
use perm_algebra::{Expr, Plan, SortKey};
use perm_storage::{encode_key_typed, Database, Relation, Schema, Truth, Tuple, Value};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::{Rc, Weak};
use std::sync::Arc;
use std::time::Duration;

/// One free correlated column reference as reported by
/// [`free_correlated_columns`]: optional qualifier plus name.
type FreeColumn = (Option<String>, String);

/// Executes plans against an in-memory database.
pub struct Executor<'a> {
    db: &'a Database,
    /// Parameterized sublink memo of the compiled path: sublink results
    /// keyed by `(compiled sublink id, typed encoding of the referenced
    /// query-parameter values followed by the correlated binding values)`,
    /// shared as `Arc`s so hits never deep-copy. Wrapped in an `Rc` so the
    /// resilience governor can hold a reclaim handle: under memory-budget
    /// pressure the memo is cleared (a pure speed loss) before the query is
    /// failed.
    pub(crate) sublink_memo: Rc<RefCell<MemoMap<Arc<Relation>>>>,
    /// Parameterized sublink memo of the interpreter path: same contract,
    /// keyed by the sublink plan's *node address* (stable for the lifetime
    /// of one query execution because plans are borrowed immutably) plus
    /// the typed encoding of its referenced parameter values and free
    /// correlated column bindings.
    pub(crate) interp_sublink_memo: Rc<RefCell<MemoMap<Arc<Relation>>>>,
    /// `ANY`/`ALL` verdict memo, shared by both paths: `Truth` keyed by the
    /// sublink's result-memo key extended with the typed test value. The
    /// namespace tag leading each result key keeps compiled ids and
    /// interpreter addresses from colliding.
    pub(crate) verdict_memo: Rc<RefCell<MemoMap<Truth>>>,
    /// The resilience governor: installed cancel token / fault plan /
    /// memory budget plus the `cancel_checks` and `peak_bytes` counters.
    /// Polled at batch boundaries by `crate::physical`, at cursor refills
    /// and at memoized-sublink entry.
    pub(crate) governor: Governor,
    /// Optional cross-thread memo ([`Executor::with_shared_memo`]). When
    /// attached, compiled-path sublink results and verdicts go to (and come
    /// from) the shared sharded maps instead of the private memos above, so
    /// worker threads and sibling sessions serving the same prepared
    /// statements reuse each other's work. Interpreter-path entries stay
    /// private either way — their keys are plan *node addresses*, which mean
    /// nothing outside this executor.
    pub(crate) shared_memo: Option<Arc<SharedSublinkMemo>>,
    /// Cache of free-correlated-column analyses per interpreter sublink
    /// plan address.
    free_columns_cache: RefCell<HashMap<usize, Rc<[FreeColumn]>>>,
    /// Cache of free-parameter analyses per interpreter sublink plan
    /// address (the parameter half of the memo signature).
    free_params_cache: RefCell<HashMap<usize, Rc<[usize]>>>,
    /// The query-parameter vector (`$1` is index 0) bound for the current
    /// execution. Shared as an `Rc` so a streaming cursor can cheaply
    /// re-assert its own binding on every pull.
    pub(crate) params: RefCell<Rc<[Value]>>,
    /// Whether the parameterized memos may be consulted for correlated
    /// sublinks.
    pub(crate) memo_enabled: Cell<bool>,
    /// Whether [`Executor::execute`] retains the compiled-path memos across
    /// calls instead of clearing them up front (the prepared-statement
    /// serving policy; see [`Executor::with_memo_retention`]).
    retain_memo: Cell<bool>,
    /// Number of plan compilations performed by [`Executor::prepare`]
    /// (diagnostic counter for prepared-statement tests).
    compile_count: Cell<u64>,
    /// Whether [`Executor::prepare`] runs the algebraic optimizer
    /// ([`crate::optimize`]) before compiling (off by default — sessions
    /// run the optimizer themselves so they can diff the plans; this switch
    /// serves executor-direct callers such as the differential harness).
    optimizer_enabled: Cell<bool>,
    /// What the optimizer did during the most recent [`Executor::prepare`]
    /// with the optimizer enabled.
    optimizer_report: Cell<OptimizerReport>,
    /// Number of operator evaluations performed (for tests/diagnostics);
    /// counted inside `crate::physical`, once per operator invocation.
    pub(crate) ops_evaluated: Cell<u64>,
    /// Number of per-row comparisons performed while folding `ANY`/`ALL`
    /// sublink results (for tests/diagnostics; verdict-memo hits skip the
    /// fold entirely).
    pub(crate) cmp_evaluated: Cell<u64>,
    /// Whether the compiled driver evaluates expressions *vectorized* over
    /// whole batches (the default) or per tuple within each batch (the
    /// measurement baseline of `harness batch`). Results are identical
    /// either way; only the dispatch granularity differs.
    pub(crate) batch_enabled: Cell<bool>,
    /// Number of expression-over-batch evaluations performed by the
    /// vectorized compiled evaluator (diagnostic; one per expression per
    /// batch).
    pub(crate) batches_vectorized: Cell<u64>,
    /// Rows a vectorized batch evaluation handed back to the per-tuple
    /// evaluator because their expression subtree carries a sublink (the
    /// fallback that keeps the parameterized sublink memo seam untouched).
    pub(crate) batch_fallback_rows: Cell<u64>,
    /// Whether the vectorized compiled evaluator runs over typed columnar
    /// lanes (the default) or row-major `Value` columns (the measurement
    /// baseline of `harness batch`). Results are identical either way;
    /// only the data layout under each kernel differs.
    pub(crate) columnar_enabled: Cell<bool>,
    /// Number of [`crate::batch::ColumnBlock`]s that served at least one
    /// columnar lane access (diagnostic; one per block touched, not per
    /// access).
    pub(crate) columnar_blocks: Cell<u64>,
    /// Rows whose columnar evaluation fell back to the row-major scalar
    /// path: mixed-type (`Values`) lanes, lane pairings without a typed
    /// kernel, integer-overflow retries, and sublink-bearing subtrees.
    pub(crate) columnar_fallback_rows: Cell<u64>,
    /// The armed `EXPLAIN ANALYZE` profile tree, held weakly: only the
    /// memoized-sublink seam reads it (to attribute memo hits/misses and
    /// sublink executions by sublink id — ids are process-unique, so a plan
    /// the tree was not armed for simply misses the lookup); the operator
    /// tree itself is threaded positionally by the profiled driver. A
    /// `Weak` means a dropped profile degrades to unarmed execution with no
    /// bookkeeping.
    pub(crate) profile: RefCell<Weak<ProfileTree>>,
}

/// Namespace tag of compiled-path memo keys.
pub(crate) const MEMO_TAG_COMPILED: u8 = b'C';
/// Namespace tag of interpreter-path memo keys.
pub(crate) const MEMO_TAG_INTERPRETED: u8 = b'I';

impl<'a> Executor<'a> {
    /// Creates an executor over a database. Sublink memoization is enabled;
    /// use [`Executor::with_sublink_memo`] to switch it off.
    pub fn new(db: &'a Database) -> Executor<'a> {
        let sublink_memo = Rc::new(RefCell::new(MemoMap::new()));
        let interp_sublink_memo = Rc::new(RefCell::new(MemoMap::new()));
        let verdict_memo = Rc::new(RefCell::new(MemoMap::new()));
        let governor = Governor::new();
        // Register every private memo for byte accounting and
        // budget-pressure reclaim (evict first, fail only if that is not
        // enough).
        // The compiled result memo is registered through the spill-aware
        // wrapper: under pressure with spilling enabled its entries are
        // persisted instead of dropped (compiled keys are process-stable).
        // The interpreter memo (keyed by plan-node *addresses*, unsafe to
        // persist) and the verdict memo (cheap to refold) reclaim by
        // dropping.
        governor.register_memo(Box::new(crate::memo::SpillableResultMemo(Rc::clone(
            &sublink_memo,
        ))));
        governor.register_memo(Box::new(Rc::clone(&interp_sublink_memo)));
        governor.register_memo(Box::new(Rc::clone(&verdict_memo)));
        Executor {
            db,
            sublink_memo,
            interp_sublink_memo,
            verdict_memo,
            governor,
            shared_memo: None,
            free_columns_cache: RefCell::new(HashMap::new()),
            free_params_cache: RefCell::new(HashMap::new()),
            params: RefCell::new(Rc::from(Vec::new())),
            memo_enabled: Cell::new(true),
            retain_memo: Cell::new(false),
            compile_count: Cell::new(0),
            optimizer_enabled: Cell::new(false),
            optimizer_report: Cell::new(OptimizerReport::default()),
            ops_evaluated: Cell::new(0),
            cmp_evaluated: Cell::new(0),
            batch_enabled: Cell::new(true),
            batches_vectorized: Cell::new(0),
            batch_fallback_rows: Cell::new(0),
            columnar_enabled: Cell::new(true),
            columnar_blocks: Cell::new(0),
            columnar_fallback_rows: Cell::new(0),
            profile: RefCell::new(Weak::new()),
        }
    }

    /// Arms (or, with `None`, disarms) the `EXPLAIN ANALYZE` profile for
    /// subsequent profiled executions. Held weakly — see the field docs.
    pub(crate) fn set_profile(&self, tree: Option<&Rc<ProfileTree>>) {
        *self.profile.borrow_mut() = match tree {
            Some(tree) => Rc::downgrade(tree),
            None => Weak::new(),
        };
    }

    /// Enables or disables vectorized batch evaluation on the compiled path
    /// (enabled by default). Disabled, the compiled driver dispatches every
    /// expression once per tuple within each batch — the pre-batching cost
    /// profile, kept as the `harness batch` measurement baseline. Results,
    /// errors and `operators_evaluated` are identical in both modes.
    pub fn with_batching(self, enabled: bool) -> Executor<'a> {
        self.batch_enabled.set(enabled);
        self
    }

    /// Whether vectorized batch evaluation is enabled on the compiled path
    /// (see [`Executor::with_batching`]).
    pub fn batching_enabled(&self) -> bool {
        self.batch_enabled.get()
    }

    /// Number of expression-over-batch evaluations performed so far by the
    /// vectorized compiled evaluator (diagnostic counter; one per
    /// expression per batch of up to [`crate::BATCH_ROWS`] rows).
    pub fn batches_vectorized(&self) -> u64 {
        self.batches_vectorized.get()
    }

    /// Number of rows vectorized batch evaluation handed back to the
    /// per-tuple evaluator because their expression subtree carries a
    /// sublink (diagnostic counter; those rows drive the parameterized
    /// sublink memo exactly like tuple-at-a-time execution).
    pub fn batch_fallback_rows(&self) -> u64 {
        self.batch_fallback_rows.get()
    }

    /// Enables or disables columnar execution on the vectorized compiled
    /// path (enabled by default). Disabled, vectorized evaluation runs the
    /// row-major `Value`-column kernels — the data-layout measurement
    /// baseline of `harness batch`; it has no effect when batching itself
    /// is off. Results, errors and `operators_evaluated` are identical in
    /// both modes.
    pub fn with_columnar(self, enabled: bool) -> Executor<'a> {
        self.columnar_enabled.set(enabled);
        self
    }

    /// Whether columnar execution is enabled on the vectorized compiled
    /// path (see [`Executor::with_columnar`]).
    pub fn columnar_enabled(&self) -> bool {
        self.columnar_enabled.get()
    }

    /// Number of column blocks that served at least one columnar lane
    /// access so far (diagnostic counter; a block of up to
    /// [`crate::BATCH_ROWS`] rows counts once however many lanes and
    /// expressions touch it).
    pub fn columnar_blocks(&self) -> u64 {
        self.columnar_blocks.get()
    }

    /// Number of rows whose columnar evaluation fell back to the row-major
    /// scalar path (diagnostic counter): mixed-type lanes, lane pairings
    /// without a typed kernel, integer-overflow retries, and
    /// sublink-bearing subtrees (which are also counted in
    /// [`Executor::batch_fallback_rows`]).
    pub fn columnar_fallback_rows(&self) -> u64 {
        self.columnar_fallback_rows.get()
    }

    /// Enables or disables the parameterized sublink memos (enabled by
    /// default) on both execution paths. Disabling them makes every
    /// correlated sublink execute once per outer tuple again, which is what
    /// the benchmark harness measures as the "memo off" baseline; the
    /// per-query InitPlan caching of *uncorrelated* sublinks stays on
    /// either way, mirroring what the PostgreSQL engine underneath the
    /// original Perm system always does.
    pub fn with_sublink_memo(self, enabled: bool) -> Executor<'a> {
        self.memo_enabled.set(enabled);
        self
    }

    /// Bounds every memo (sublink results on both paths and `ANY`/`ALL`
    /// verdicts) to at most `capacity` entries each, evicting
    /// least-recently-used entries — the ROADMAP follow-on for
    /// high-cardinality correlations. `None` (the default) keeps the memos
    /// unbounded, preserving the established behaviour.
    pub fn with_memo_capacity(self, capacity: Option<usize>) -> Executor<'a> {
        self.sublink_memo.borrow_mut().set_capacity(capacity);
        self.interp_sublink_memo.borrow_mut().set_capacity(capacity);
        self.verdict_memo.borrow_mut().set_capacity(capacity);
        self
    }

    /// Attaches a cross-thread [`SharedSublinkMemo`]: compiled-path sublink
    /// results and `ANY`/`ALL` verdicts are then cached in (and served
    /// from) the shared sharded maps instead of this executor's private
    /// memos, so several worker executors — each still single-threaded —
    /// jointly warm one memo. Safe because compiled memo keys embed a
    /// process-unique sublink id plus the typed parameter and binding
    /// values; see [`SharedSublinkMemo`] for the full contract.
    ///
    /// The shared memo's lifecycle belongs to its owner:
    /// [`Executor::clear_compiled_memos`] never touches it, and ad-hoc
    /// [`Executor::execute`] (which mints fresh sublink ids per call) would
    /// fill it with entries that can never hit again — attach it to
    /// executors serving *prepared* plans under memo retention, which is
    /// what the serving subsystem does.
    pub fn with_shared_memo(mut self, memo: Arc<SharedSublinkMemo>) -> Executor<'a> {
        // The shared memo participates in byte accounting and is reclaimed
        // under budget pressure like the private memos — other sessions
        // lose warm entries (speed), never correctness.
        self.governor.register_memo(Box::new(Arc::clone(&memo)));
        self.shared_memo = Some(memo);
        self
    }

    /// The attached cross-thread memo, if any.
    pub fn shared_memo(&self) -> Option<&Arc<SharedSublinkMemo>> {
        self.shared_memo.as_ref()
    }

    /// Chooses the memo policy of [`Executor::execute`]: with `retain` set,
    /// the compiled-path memos survive across `execute` calls instead of
    /// being cleared up front. Retention is what a prepared statement wants
    /// — re-executing the same [`CompiledPlan`] (same sublink ids, with the
    /// bound parameter values folded into every memo key) can then reuse
    /// entries from earlier executions. The default (`false`) keeps the
    /// ad-hoc clearing semantics: each `execute` mints fresh sublink ids,
    /// so old entries could never hit again and would only accumulate.
    pub fn with_memo_retention(self, retain: bool) -> Executor<'a> {
        self.retain_memo.set(retain);
        self
    }

    /// Installs a cooperative [`CancelToken`], polled at batch boundaries,
    /// cursor refills and memoized-sublink entry; once it trips, the
    /// current (and any later) execution fails with
    /// [`ExecError::Cancelled`] within one batch worth of work.
    pub fn with_cancel_token(self, token: CancelToken) -> Executor<'a> {
        self.governor.set_cancel_token(Some(token));
        self
    }

    /// Installs a fresh cancel token that trips once `deadline` has passed
    /// (a convenience over [`Executor::with_cancel_token`]).
    pub fn with_deadline(self, deadline: Duration) -> Executor<'a> {
        self.governor
            .set_cancel_token(Some(CancelToken::with_deadline(deadline)));
        self
    }

    /// Bounds the bytes this executor may hold in growing operator state
    /// (hash-join build tables and candidate buffers, aggregation groups,
    /// sort buffers) plus its sublink memos. On pressure the memos are
    /// reclaimed first — losing only speed — and the query fails with
    /// [`ExecError::ResourceExhausted`] only when that does not free
    /// enough. `None` (the default) disables accounting entirely.
    pub fn with_memory_budget(self, bytes: Option<u64>) -> Executor<'a> {
        self.governor.set_budget(bytes);
        self
    }

    /// Enables spill-to-disk degradation (disabled by default): under
    /// budget pressure the growing operators go out of core (grace hash
    /// join, external merge sort, partitioned aggregation) and reclaimed
    /// compiled-memo entries are persisted for reload instead of dropped,
    /// demoting [`ExecError::ResourceExhausted`] to a last resort. Results
    /// are bag- and order-identical to in-memory execution; only the spill
    /// counters ([`Executor::spilled_bytes`] &c.) can tell the difference.
    pub fn with_spill(self, enabled: bool) -> Executor<'a> {
        self.governor.set_spill_enabled(enabled);
        self
    }

    /// Base directory for spill files (`None`, the default, uses the system
    /// temp dir). The executor creates a process-unique subdirectory inside
    /// it and removes the subdirectory on drop.
    pub fn with_spill_dir(self, dir: Option<std::path::PathBuf>) -> Executor<'a> {
        self.governor.set_spill_dir(dir);
        self
    }

    /// Worst [`Degradation`] rung reached so far under memory pressure.
    pub fn degradation(&self) -> Degradation {
        self.governor.degradation()
    }

    /// Total payload bytes written to spill files so far.
    pub fn spilled_bytes(&self) -> u64 {
        self.governor.spilled_bytes()
    }

    /// Spill partition files and sort runs created so far.
    pub fn spill_partitions(&self) -> u64 {
        self.governor.spill_partitions()
    }

    /// Buffer-pool hits while reading spill files.
    pub fn buffer_pool_hits(&self) -> u64 {
        self.governor.buffer_pool_hits()
    }

    /// Buffer-pool misses (page loads from disk) while reading spill files.
    pub fn buffer_pool_misses(&self) -> u64 {
        self.governor.buffer_pool_misses()
    }

    /// Buffer-pool frame evictions while reading spill files.
    pub fn buffer_pool_evictions(&self) -> u64 {
        self.governor.buffer_pool_evictions()
    }

    /// Installs (or clears, with `None`) a structured-trace hook: the
    /// governor and the memoized-sublink seams call it with a
    /// [`TraceSignal`] on memo inserts and hits, spill writes, degradation
    /// rung transitions, and cancellation checkpoints that fired. The
    /// session facade bridges these into its `TraceSink`; with no hook
    /// installed the emission sites cost one `Option` check.
    pub fn set_trace_hook(&self, hook: Option<Rc<dyn Fn(TraceSignal)>>) {
        self.governor.set_trace_hook(hook);
    }

    /// Configured buffer-pool frame capacity (0 until a spill manager — and
    /// with it a pool — has been created).
    pub fn buffer_pool_capacity(&self) -> u64 {
        self.governor.buffer_pool_capacity()
    }

    /// Installs a deterministic [`FaultPlan`] that fires a cancellation,
    /// budget exhaustion or panic at the N-th checkpoint / memo-insert /
    /// operator event — the crash-consistency test harness.
    pub fn with_fault_plan(self, plan: FaultPlan) -> Executor<'a> {
        self.governor.set_fault_plan(Some(plan));
        self
    }

    /// Replaces the installed cancel token (or removes it with `None`)
    /// without consuming the executor — sessions mint a fresh token per
    /// execution so a stale cancel never leaks into the next query.
    pub fn set_cancel_token(&self, token: Option<CancelToken>) {
        self.governor.set_cancel_token(token);
    }

    /// The installed cancel token, creating (and installing) a fresh one if
    /// none is present — the handle behind `Rows::cancel_handle`.
    pub fn cancel_handle(&self) -> CancelToken {
        self.governor.ensure_cancel_token()
    }

    /// Number of cancellation checkpoints polled so far (diagnostic
    /// counter; deliberately separate from
    /// [`Executor::operators_evaluated`], which counts logical operator
    /// invocations and is pinned exactly by many tests).
    pub fn cancel_checks(&self) -> u64 {
        self.governor.cancel_checks()
    }

    /// High-water mark of accounted bytes (operator state plus memo
    /// footprint) observed so far. Only grows while a memory budget is
    /// installed or memos insert entries.
    pub fn peak_bytes(&self) -> u64 {
        self.governor.peak_bytes()
    }

    /// Binds the query-parameter vector (`$1` is `params[0]`) used by
    /// subsequent executions. Parameters stay bound until rebound; plans
    /// that reference no parameters ignore the vector entirely.
    pub fn bind_params(&self, params: Vec<Value>) {
        *self.params.borrow_mut() = Rc::from(params);
    }

    /// The currently bound parameter vector, shared.
    pub(crate) fn params_rc(&self) -> Rc<[Value]> {
        Rc::clone(&self.params.borrow())
    }

    /// Re-asserts a previously captured parameter binding (used by
    /// streaming cursors, whose pulls may interleave with other executions
    /// on the same executor).
    pub(crate) fn rebind_params(&self, params: &Rc<[Value]>) {
        *self.params.borrow_mut() = Rc::clone(params);
    }

    /// Reads the value bound to parameter index `index` (0-based), erring
    /// like an unresolvable column when the binding is absent.
    pub(crate) fn param_value(&self, index: usize) -> Result<Value> {
        let params = self.params.borrow();
        params.get(index).cloned().ok_or_else(|| {
            ExecError::Param(format!(
                "parameter ${} is not bound ({} parameter{} supplied)",
                index + 1,
                params.len(),
                if params.len() == 1 { "" } else { "s" }
            ))
        })
    }

    /// The database this executor reads from.
    pub fn database(&self) -> &Database {
        self.db
    }

    /// Number of operator invocations so far (diagnostic counter). Both the
    /// compiled and the interpreted path count one evaluation per operator
    /// node per invocation; a memo hit counts nothing, which is what makes
    /// the memoization win measurable.
    pub fn operators_evaluated(&self) -> u64 {
        self.ops_evaluated.get()
    }

    /// Number of per-row `ANY`/`ALL` fold comparisons so far (diagnostic
    /// counter). A verdict-memo hit skips the fold and counts nothing.
    pub fn quantifier_comparisons(&self) -> u64 {
        self.cmp_evaluated.get()
    }

    /// Number of plan compilations performed so far (diagnostic counter).
    /// The prepared-statement contract is that re-executing a prepared plan
    /// performs *zero* additional compilations; this counter makes that
    /// assertable.
    pub fn statements_compiled(&self) -> u64 {
        self.compile_count.get()
    }

    /// Compiles a plan for repeated execution: fuses residual selections
    /// over cross products, then resolves all column references to slots
    /// and attaches correlation signatures (plus referenced parameter
    /// indices) to sublinks (see [`crate::compile`]). Sublink ids are drawn
    /// from a process-wide counter, so compiled plans from different
    /// executors can never collide in a shared memo.
    pub fn prepare(&self, plan: &Plan) -> Result<CompiledPlan> {
        self.compile_count.set(self.compile_count.get() + 1);
        let optimized;
        let plan = if self.optimizer_enabled.get() {
            let (p, report) = crate::optimize::optimize(plan);
            self.optimizer_report.set(report);
            optimized = p;
            &optimized
        } else {
            plan
        };
        let fused = perm_algebra::optimize::fuse_select_over_cross(plan.clone());
        crate::compile::compile_plan(&fused)
    }

    /// Enables or disables the algebraic optimizer pass in
    /// [`Executor::prepare`] (disabled by default; see the field docs for
    /// why sessions keep it off and run [`crate::optimize::optimize`]
    /// themselves).
    pub fn with_optimizer(self, enabled: bool) -> Executor<'a> {
        self.optimizer_enabled.set(enabled);
        self
    }

    /// Whether [`Executor::prepare`] runs the algebraic optimizer.
    pub fn optimizer_enabled(&self) -> bool {
        self.optimizer_enabled.get()
    }

    /// The rule-application report of the most recent optimizer run in
    /// [`Executor::prepare`] (all-zero when the optimizer never ran).
    pub fn optimizer_report(&self) -> OptimizerReport {
        self.optimizer_report.get()
    }

    /// Clears the compiled-path memos (sublink results and verdicts) *of
    /// this executor*. An attached [`SharedSublinkMemo`] is deliberately
    /// left alone — it is shared state whose lifecycle belongs to its owner
    /// (clearing it here would drop entries other sessions are warm on).
    /// The interpreter-path caches have their own lifecycle
    /// ([`Executor::reset_interpreter_caches`]).
    pub fn clear_compiled_memos(&self) {
        self.sublink_memo.borrow_mut().clear();
        self.verdict_memo.borrow_mut().clear();
    }

    /// Executes a top-level plan through the compile/memoize pipeline.
    ///
    /// Under the default policy the compiled-path memos are cleared first:
    /// `execute` mints fresh sublink ids via [`Executor::prepare`], so
    /// entries from earlier `execute` calls could never hit again and would
    /// only accumulate. Callers that re-execute the *same* prepared
    /// [`CompiledPlan`] — where reuse is both safe (stable sublink ids,
    /// parameter values folded into every key) and the entire point —
    /// should either call [`Executor::execute_compiled`] directly or switch
    /// the policy with [`Executor::with_memo_retention`].
    pub fn execute(&self, plan: &Plan) -> Result<Relation> {
        if !self.retain_memo.get() {
            self.clear_compiled_memos();
        }
        let compiled = self.prepare(plan)?;
        self.execute_compiled(&compiled, None)
    }

    /// Executes a plan exactly as given with the name-resolving interpreter:
    /// no fusing pass and no compilation. The interpreter shares the
    /// parameterized sublink memo (resolving correlation signatures at
    /// runtime instead of compile time), so it is the *semantics* reference
    /// — same results, same errors — not a memoization-free baseline; for
    /// that, combine it with [`Executor::with_sublink_memo`]`(false)`.
    pub fn execute_unoptimized(&self, plan: &Plan) -> Result<Relation> {
        self.reset_interpreter_caches();
        self.execute_with_env(plan, None)
    }

    /// Clears the interpreter-path sublink caches. They are keyed by plan
    /// *node address*, which is only stable while that plan is alive — a
    /// later plan can allocate a sublink node at a freed address and would
    /// otherwise inherit stale entries. Called automatically at the start of
    /// [`Executor::execute_unoptimized`]; callers that drive
    /// [`Executor::execute_with_env`] directly across different plans (e.g.
    /// the tracer in `perm-core`) must call it between plans themselves.
    pub fn reset_interpreter_caches(&self) {
        self.interp_sublink_memo.borrow_mut().clear();
        self.free_columns_cache.borrow_mut().clear();
        self.free_params_cache.borrow_mut().clear();
        // The verdict memo namespaces interpreter entries under the plan
        // address too; clearing it wholesale is conservative but safe (the
        // compiled entries it drops were only a shortcut).
        self.verdict_memo.borrow_mut().clear();
    }

    /// The parameterized memo key of an interpreter-path sublink: the plan
    /// node address plus the typed encoding of its referenced
    /// query-parameter values and its free correlated column bindings
    /// resolved in `env` — the runtime analogue of the compiled path's
    /// correlation signature. Parameter and binding counts are fixed per
    /// plan node, so the two groups concatenate unambiguously. Returns
    /// `None` when the sublink is not memoizable here: a binding does not
    /// resolve in the current scope chain or a referenced parameter is
    /// unbound (either reference might still sit safely behind a short
    /// circuit), or the memo is disabled and the sublink is correlated
    /// (uncorrelated sublinks keep their InitPlan caching either way).
    pub(crate) fn interp_sublink_key(&self, plan: &Plan, env: Option<&Env<'_>>) -> Option<Vec<u8>> {
        let addr = plan as *const Plan as usize;
        let free = {
            let mut cache = self.free_columns_cache.borrow_mut();
            cache
                .entry(addr)
                .or_insert_with(|| free_correlated_columns(plan).into())
                .clone()
        };
        if !free.is_empty() && !self.memo_enabled.get() {
            return None;
        }
        let param_refs = {
            let mut cache = self.free_params_cache.borrow_mut();
            cache
                .entry(addr)
                .or_insert_with(|| free_params(plan).into())
                .clone()
        };
        let params = self.params.borrow();
        let mut values = Vec::with_capacity(param_refs.len() + free.len());
        for &index in param_refs.iter() {
            values.push(params.get(index)?.clone());
        }
        for (qualifier, name) in free.iter() {
            values.push(env?.lookup(qualifier.as_deref(), name).ok()?);
        }
        let mut key = vec![MEMO_TAG_INTERPRETED];
        key.extend_from_slice(&addr.to_le_bytes());
        key.extend_from_slice(&encode_key_typed(&values));
        Some(key)
    }

    /// Executes a sublink plan in the given correlation environment,
    /// consulting the parameterized memo. See
    /// [`Executor::interp_sublink_key`] for the key contract.
    pub(crate) fn execute_sublink(
        &self,
        plan: &Plan,
        env: Option<&Env<'_>>,
    ) -> Result<Arc<Relation>> {
        let key = self.interp_sublink_key(plan, env);
        self.execute_sublink_keyed(plan, env, key)
    }

    /// [`Executor::execute_sublink`] with a precomputed memo key (so the
    /// `ANY`/`ALL` verdict path computes the key once for both memos).
    pub(crate) fn execute_sublink_keyed(
        &self,
        plan: &Plan,
        env: Option<&Env<'_>>,
        key: Option<Vec<u8>>,
    ) -> Result<Arc<Relation>> {
        if let Some(k) = &key {
            if let Some(hit) = self.interp_sublink_memo.borrow_mut().get(k) {
                self.governor.trace_memo_hit("interp-sublink-memo");
                return Ok(hit);
            }
        }
        let result = Arc::new(self.execute_with_env(plan, env)?);
        if let Some(k) = key {
            let cost = k.len() as u64 + result.cost_bytes();
            if self.governor.memo_insert_event("sublink-memo", cost)? {
                self.interp_sublink_memo
                    .borrow_mut()
                    .insert(k, Arc::clone(&result));
            }
        }
        Ok(result)
    }

    /// Recursive interpreter-path plan evaluation: executes children, wraps
    /// [`Executor::eval_expr`] into per-tuple closures over an [`Env`] scope
    /// chain, and delegates every operator body to `crate::physical`.
    /// `env` is the enclosing correlation scope (present when this plan is a
    /// sublink query of an outer operator).
    pub fn execute_with_env(&self, plan: &Plan, env: Option<&Env<'_>>) -> Result<Relation> {
        // The interpreter path runs unprofiled (profiles mirror *compiled*
        // plans); the probe still carries the shared global counter.
        let probe = OpProbe::new(&self.ops_evaluated, None);
        let gov = &self.governor;
        match plan {
            Plan::Scan { table, schema, .. } => physical::scan(probe, gov, self.db, table, schema),
            Plan::Values { schema, rows } => physical::values(probe, gov, schema, rows),
            Plan::Project {
                input,
                items,
                distinct,
            } => {
                let child = self.execute_with_env(input, env)?;
                let child_schema = child.schema().clone();
                physical::project(
                    probe,
                    gov,
                    &child,
                    plan.schema(),
                    *distinct,
                    |batch, out| {
                        for tuple in batch.iter() {
                            let scope = Env::new(env, &child_schema, tuple);
                            // Explicit loop, not `collect::<Result<_>>()`: the
                            // fallible-collect machinery reports a zero lower
                            // size hint and grows the row by realloc —
                            // measurably slower on projection-heavy plans.
                            let mut row = Vec::with_capacity(items.len());
                            for item in items {
                                row.push(self.eval_expr(&item.expr, Some(&scope))?);
                            }
                            out.push(Tuple::new(row));
                        }
                        Ok(())
                    },
                )
            }
            Plan::Select { input, predicate } => {
                let child = self.execute_with_env(input, env)?;
                let child_schema = child.schema().clone();
                physical::select(probe, gov, &child, |batch, out| {
                    for tuple in batch.iter() {
                        let scope = Env::new(env, &child_schema, tuple);
                        out.push(self.eval_predicate(predicate, Some(&scope))?.is_true());
                    }
                    Ok(())
                })
            }
            Plan::CrossProduct { left, right } => {
                let l = self.execute_with_env(left, env)?;
                let r = self.execute_with_env(right, env)?;
                let schema = l.schema().concat(r.schema());
                physical::cross_product(probe, gov, &l, &r, schema)
            }
            Plan::Join {
                left,
                right,
                kind,
                condition,
            } => {
                let l = self.execute_with_env(left, env)?;
                if l.is_empty() && kind.left_only_output() {
                    // Mirror the per-binding reference: with no outer rows
                    // the decorrelated inner plan never runs.
                    return Ok(Relation::empty(l.schema().clone()));
                }
                let r = self.execute_with_env(right, env)?;
                let l_schema = l.schema().clone();
                let r_schema = r.schema().clone();
                // The condition is evaluated over the concatenated candidate
                // row even for semi/anti joins, whose output is left-only.
                let cond_schema = l_schema.concat(&r_schema);
                let out_schema = if kind.left_only_output() {
                    l_schema.clone()
                } else {
                    cond_schema.clone()
                };
                // Hash keys only for sublink-free conditions: a condition
                // carrying sublinks falls back to the nested loop, which is
                // exactly the cost profile the paper discusses for the Left
                // strategy's Jsub conditions.
                let equi_keys = if condition.has_sublink() {
                    Vec::new()
                } else {
                    extract_equi_keys(condition, &l_schema, &r_schema)
                };
                let null_safe: Vec<bool> = equi_keys.iter().map(|k| k.null_safe).collect();
                physical::join(
                    probe,
                    gov,
                    &l,
                    &r,
                    &out_schema,
                    *kind,
                    &null_safe,
                    |batch, i, col| {
                        for lt in batch.iter() {
                            let scope = Env::new(env, &l_schema, lt);
                            col.push_value(self.eval_expr(&equi_keys[i].left, Some(&scope))?);
                        }
                        Ok(())
                    },
                    |batch, i, col| {
                        for rt in batch.iter() {
                            let scope = Env::new(env, &r_schema, rt);
                            col.push_value(self.eval_expr(&equi_keys[i].right, Some(&scope))?);
                        }
                        Ok(())
                    },
                    |batch, out| {
                        for joined in batch.iter() {
                            let scope = Env::new(env, &cond_schema, joined);
                            out.push(self.eval_predicate(condition, Some(&scope))?.is_true());
                        }
                        Ok(())
                    },
                )
            }
            Plan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let child = self.execute_with_env(input, env)?;
                let child_schema = child.schema().clone();
                let specs: Vec<AggSpec> = aggregates
                    .iter()
                    .map(|a| AggSpec {
                        func: a.func,
                        distinct: a.distinct,
                        has_arg: a.arg.is_some(),
                    })
                    .collect();
                physical::aggregate(
                    probe,
                    gov,
                    &child,
                    plan.schema(),
                    group_by.len(),
                    &specs,
                    |batch, group_cols, agg_cols| {
                        for tuple in batch.iter() {
                            let scope = Env::new(env, &child_schema, tuple);
                            for (g, col) in group_by.iter().zip(group_cols.iter_mut()) {
                                col.push_value(self.eval_expr(&g.expr, Some(&scope))?);
                            }
                            for (a, col) in aggregates.iter().zip(agg_cols.iter_mut()) {
                                if let Some(arg) = &a.arg {
                                    col.push(self.eval_expr(arg, Some(&scope))?);
                                }
                            }
                        }
                        Ok(())
                    },
                )
            }
            Plan::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let l = self.execute_with_env(left, env)?;
                let r = self.execute_with_env(right, env)?;
                physical::set_op(probe, gov, *op, *all, &l, &r)
            }
            Plan::Sort { input, keys } => {
                let child = self.execute_with_env(input, env)?;
                let child_schema = child.schema().clone();
                let ascending: Vec<bool> = keys.iter().map(|k: &SortKey| k.ascending).collect();
                physical::sort(probe, gov, child, &ascending, |batch, cols| {
                    for tuple in batch.iter() {
                        let scope = Env::new(env, &child_schema, tuple);
                        for (k, col) in keys.iter().zip(cols.iter_mut()) {
                            col.push(self.eval_expr(&k.expr, Some(&scope))?);
                        }
                    }
                    Ok(())
                })
            }
            Plan::Limit { input, limit } => {
                let child = self.execute_with_env(input, env)?;
                physical::limit(probe, gov, child, *limit)
            }
        }
    }
}

/// One hash-join key pair: a left-side expression, a right-side expression
/// and whether the comparison is null-safe (`=n`, in which case NULL keys
/// match NULL keys instead of being dropped).
pub(crate) struct EquiKey {
    pub(crate) left: Expr,
    pub(crate) right: Expr,
    pub(crate) null_safe: bool,
}

/// Extracts equality conjuncts `colL = colR` (or `colL =n colR`) from a join
/// condition, where one side resolves only against the left schema and the
/// other only against the right schema.
pub(crate) fn extract_equi_keys(condition: &Expr, left: &Schema, right: &Schema) -> Vec<EquiKey> {
    let mut conjuncts = Vec::new();
    flatten_conjuncts(condition, &mut conjuncts);
    let mut keys = Vec::new();
    for c in conjuncts {
        if let Expr::Binary {
            op,
            left: a,
            right: b,
        } = c
        {
            let null_safe = match op {
                perm_algebra::BinaryOp::Cmp(perm_algebra::CompareOp::Eq) => false,
                perm_algebra::BinaryOp::NullSafeEq => true,
                _ => continue,
            };
            if let (Expr::Column { .. }, Expr::Column { .. }) = (a.as_ref(), b.as_ref()) {
                match (side_of(a, left, right), side_of(b, left, right)) {
                    (Some(Side::Left), Some(Side::Right)) => keys.push(EquiKey {
                        left: a.as_ref().clone(),
                        right: b.as_ref().clone(),
                        null_safe,
                    }),
                    (Some(Side::Right), Some(Side::Left)) => keys.push(EquiKey {
                        left: b.as_ref().clone(),
                        right: a.as_ref().clone(),
                        null_safe,
                    }),
                    _ => {}
                }
            }
        }
    }
    keys
}

#[derive(PartialEq)]
enum Side {
    Left,
    Right,
}

fn side_of(expr: &Expr, left: &Schema, right: &Schema) -> Option<Side> {
    if let Expr::Column { qualifier, name } = expr {
        let in_left = matches!(left.try_resolve(qualifier.as_deref(), name), Ok(Some(_)));
        let in_right = matches!(right.try_resolve(qualifier.as_deref(), name), Ok(Some(_)));
        match (in_left, in_right) {
            (true, false) => Some(Side::Left),
            (false, true) => Some(Side::Right),
            _ => None,
        }
    } else {
        None
    }
}

fn flatten_conjuncts<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::Binary {
        op: perm_algebra::BinaryOp::And,
        left,
        right,
    } = expr
    {
        flatten_conjuncts(left, out);
        flatten_conjuncts(right, out);
    } else {
        out.push(expr);
    }
}

/// Three-valued truth helper re-exported for predicates in tests.
pub fn truth_of(value: &Value) -> Truth {
    value.as_truth()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecError;
    use perm_algebra::builder::{
        self, all_sublink, any_sublink, col, count_star, eq, exists_sublink, lit, qcol,
        scalar_sublink, sum, PlanBuilder,
    };
    use perm_algebra::{CompareOp, ProjectItem, SetOpKind};
    use perm_storage::{Attribute, DataType, Tuple};

    /// The example relations R(a,b) and S(c,d) from Figure 3 of the paper.
    fn figure3_db() -> Database {
        let mut db = Database::new();
        let r_schema = Schema::new(vec![
            Attribute::qualified("r", "a", DataType::Int),
            Attribute::qualified("r", "b", DataType::Int),
        ]);
        let s_schema = Schema::new(vec![
            Attribute::qualified("s", "c", DataType::Int),
            Attribute::qualified("s", "d", DataType::Int),
        ]);
        db.create_table(
            "r",
            Relation::from_rows(
                r_schema,
                vec![
                    vec![Value::Int(1), Value::Int(1)],
                    vec![Value::Int(2), Value::Int(1)],
                    vec![Value::Int(3), Value::Int(2)],
                ],
            ),
        )
        .unwrap();
        db.create_table(
            "s",
            Relation::from_rows(
                s_schema,
                vec![
                    vec![Value::Int(1), Value::Int(3)],
                    vec![Value::Int(2), Value::Int(4)],
                    vec![Value::Int(4), Value::Int(5)],
                ],
            ),
        )
        .unwrap();
        db
    }

    fn run(db: &Database, plan: &Plan) -> Relation {
        Executor::new(db).execute(plan).unwrap()
    }

    #[test]
    fn scan_select_project() {
        let db = figure3_db();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(eq(col("a"), lit(3)))
            .project_columns(&["b"])
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 1);
        assert_eq!(result.tuples()[0], Tuple::new(vec![Value::Int(2)]));
    }

    #[test]
    fn projection_bag_vs_set() {
        let db = figure3_db();
        let bag = PlanBuilder::scan(&db, "r")
            .unwrap()
            .project_columns(&["b"])
            .build();
        assert_eq!(run(&db, &bag).len(), 3);
        let set = PlanBuilder::scan(&db, "r")
            .unwrap()
            .project_distinct(vec![ProjectItem::column("b")])
            .build();
        assert_eq!(run(&db, &set).len(), 2);
    }

    #[test]
    fn cross_product_and_join() {
        let db = figure3_db();
        let s = PlanBuilder::scan(&db, "s").unwrap().build();
        let cross = PlanBuilder::scan(&db, "r")
            .unwrap()
            .cross(s.clone())
            .build();
        assert_eq!(run(&db, &cross).len(), 9);
        let join = PlanBuilder::scan(&db, "r")
            .unwrap()
            .join(s, eq(col("a"), col("c")))
            .build();
        let result = run(&db, &join);
        assert_eq!(result.len(), 2); // a=1 matches c=1, a=2 matches c=2
    }

    #[test]
    fn left_outer_join_pads_with_nulls() {
        let db = figure3_db();
        let s = PlanBuilder::scan(&db, "s").unwrap().build();
        let join = PlanBuilder::scan(&db, "r")
            .unwrap()
            .left_join(s, eq(col("a"), col("c")))
            .build();
        let result = run(&db, &join);
        assert_eq!(result.len(), 3);
        let unmatched: Vec<&Tuple> = result
            .tuples()
            .iter()
            .filter(|t| t.get(0) == &Value::Int(3))
            .collect();
        assert_eq!(unmatched.len(), 1);
        assert!(unmatched[0].get(2).is_null());
        assert!(unmatched[0].get(3).is_null());
    }

    #[test]
    fn join_with_non_equi_condition_uses_nested_loop() {
        let db = figure3_db();
        let s = PlanBuilder::scan(&db, "s").unwrap().build();
        let join = PlanBuilder::scan(&db, "r")
            .unwrap()
            .join(s, builder::cmp(CompareOp::Lt, col("a"), col("c")))
            .build();
        let result = run(&db, &join);
        // pairs with a < c: (1,*)x(2,4),(4,5) ; (2,*)x(4,5); (3,*)x(4,5)
        assert_eq!(result.len(), 4);
    }

    #[test]
    fn aggregate_with_and_without_groups() {
        let db = figure3_db();
        let global = PlanBuilder::scan(&db, "r")
            .unwrap()
            .aggregate(vec![], vec![sum(col("a"), "sum_a"), count_star("cnt")])
            .build();
        let result = run(&db, &global);
        assert_eq!(result.len(), 1);
        assert_eq!(
            result.tuples()[0],
            Tuple::new(vec![Value::Int(6), Value::Int(3)])
        );

        let grouped = PlanBuilder::scan(&db, "r")
            .unwrap()
            .aggregate(vec![ProjectItem::column("b")], vec![sum(col("a"), "sum_a")])
            .build();
        let result = run(&db, &grouped);
        assert_eq!(result.len(), 2);
        let mut rows = result.sorted_tuples();
        rows.sort_by(|x, y| x.sort_key(y));
        assert_eq!(rows[0], Tuple::new(vec![Value::Int(1), Value::Int(3)]));
        assert_eq!(rows[1], Tuple::new(vec![Value::Int(2), Value::Int(3)]));
    }

    #[test]
    fn aggregate_over_empty_input_produces_single_row_without_groups() {
        let db = figure3_db();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(eq(col("a"), lit(999)))
            .aggregate(vec![], vec![count_star("cnt"), sum(col("a"), "s")])
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 1);
        assert_eq!(result.tuples()[0].get(0), &Value::Int(0));
        assert!(result.tuples()[0].get(1).is_null());
    }

    #[test]
    fn set_operations() {
        let db = figure3_db();
        let r1 = PlanBuilder::scan(&db, "r")
            .unwrap()
            .project_columns(&["b"])
            .build();
        let r2 = PlanBuilder::scan(&db, "r")
            .unwrap()
            .project_columns(&["b"])
            .build();
        let union_all = PlanBuilder::from_plan(r1.clone())
            .set_op(SetOpKind::Union, true, r2.clone())
            .build();
        assert_eq!(run(&db, &union_all).len(), 6);
        let union = PlanBuilder::from_plan(r1.clone())
            .set_op(SetOpKind::Union, false, r2.clone())
            .build();
        assert_eq!(run(&db, &union).len(), 2);
        let except = PlanBuilder::from_plan(r1)
            .set_op(SetOpKind::Except, true, r2)
            .build();
        assert_eq!(run(&db, &except).len(), 0);
    }

    #[test]
    fn sort_and_limit() {
        let db = figure3_db();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .sort(vec![SortKey::desc(col("a"))])
            .limit(2)
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 2);
        assert_eq!(result.tuples()[0].get(0), &Value::Int(3));
        assert_eq!(result.tuples()[1].get(0), &Value::Int(2));
    }

    #[test]
    fn uncorrelated_any_sublink_in_selection() {
        let db = figure3_db();
        // q1 from Figure 3: σ_{a = ANY(Π_c(S))}(R)
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .project_columns(&["c"])
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(any_sublink(col("a"), CompareOp::Eq, sub))
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 2);
        assert!(result.contains(&Tuple::new(vec![Value::Int(1), Value::Int(1)])));
        assert!(result.contains(&Tuple::new(vec![Value::Int(2), Value::Int(1)])));
    }

    #[test]
    fn uncorrelated_all_sublink_in_selection() {
        let db = figure3_db();
        // q2 from Figure 3: σ_{c > ALL(Π_a(R))}(S) — only (4,5) qualifies.
        let sub = PlanBuilder::scan(&db, "r")
            .unwrap()
            .project_columns(&["a"])
            .build();
        let q = PlanBuilder::scan(&db, "s")
            .unwrap()
            .select(all_sublink(col("c"), CompareOp::Gt, sub))
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 1);
        assert_eq!(
            result.tuples()[0],
            Tuple::new(vec![Value::Int(4), Value::Int(5)])
        );
    }

    #[test]
    fn correlated_exists_sublink() {
        let db = figure3_db();
        // σ_{EXISTS(σ_{c = a}(S))}(R): rows of R whose a appears as S.c.
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .select(eq(col("c"), qcol("r", "a")))
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(exists_sublink(sub))
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 2);
        assert!(!result.contains(&Tuple::new(vec![Value::Int(3), Value::Int(2)])));
    }

    #[test]
    fn correlated_scalar_sublink_in_projection() {
        let db = figure3_db();
        // Π_{a, (σ_{c=b}(Π_c(S)))}(R): the scalar sublink returns the single
        // matching c or NULL.
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .select(eq(col("c"), qcol("r", "b")))
            .project_columns(&["c"])
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .project(vec![
                ProjectItem::column("a"),
                ProjectItem::new(scalar_sublink(sub), "match_c"),
            ])
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 3);
        let rows = result.sorted_tuples();
        assert_eq!(rows[0], Tuple::new(vec![Value::Int(1), Value::Int(1)]));
        assert_eq!(rows[1], Tuple::new(vec![Value::Int(2), Value::Int(1)]));
        assert_eq!(rows[2], Tuple::new(vec![Value::Int(3), Value::Int(2)]));
    }

    #[test]
    fn scalar_sublink_cardinality_violation_is_an_error() {
        let db = figure3_db();
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .project_columns(&["c"])
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .project(vec![ProjectItem::new(scalar_sublink(sub), "x")])
            .build();
        let err = Executor::new(&db).execute(&q).unwrap_err();
        assert!(matches!(err, ExecError::ScalarSublinkCardinality(_)));
    }

    #[test]
    fn nested_sublinks() {
        let db = figure3_db();
        // σ_{a = ANY(σ_{c = ANY(Π_d(S))}(Π_c(S)))}(R):
        // inner: c values that appear among d values of S -> {4}
        // outer: rows of R with a = 4 -> none. Then with d replaced by c the
        // middle level keeps all c's -> rows with a ∈ {1,2,4} -> 2 rows.
        let inner = PlanBuilder::scan_as(&db, "s", Some("s2"))
            .unwrap()
            .project_columns(&["d"])
            .build();
        let middle = PlanBuilder::scan(&db, "s")
            .unwrap()
            .select(any_sublink(col("c"), CompareOp::Eq, inner))
            .project_columns(&["c"])
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(any_sublink(col("a"), CompareOp::Eq, middle))
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 0);
    }

    #[test]
    fn null_semantics_in_any_sublink() {
        // NOT IN with NULLs: x NOT IN (…, NULL, …) is never TRUE when no
        // element matches — the classic three-valued-logic trap.
        let mut db = Database::new();
        db.create_table(
            "t",
            Relation::from_rows(
                Schema::from_names(&["x"]),
                vec![vec![Value::Int(1)], vec![Value::Int(5)]],
            ),
        )
        .unwrap();
        db.create_table(
            "u",
            Relation::from_rows(
                Schema::from_names(&["y"]),
                vec![vec![Value::Int(1)], vec![Value::Null]],
            ),
        )
        .unwrap();
        let sub = PlanBuilder::scan(&db, "u").unwrap().build();
        let q = PlanBuilder::scan(&db, "t")
            .unwrap()
            .select(builder::not(any_sublink(col("x"), CompareOp::Eq, sub)))
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 0, "x NOT IN (1, NULL) must never be TRUE");
    }

    #[test]
    fn empty_sublink_results() {
        let db = figure3_db();
        let empty_sub = || {
            PlanBuilder::scan(&db, "s")
                .unwrap()
                .select(eq(col("c"), lit(999)))
                .project_columns(&["c"])
                .build()
        };
        // ANY over empty is FALSE, ALL over empty is TRUE, EXISTS is FALSE.
        let any_q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(any_sublink(col("a"), CompareOp::Eq, empty_sub()))
            .build();
        assert_eq!(run(&db, &any_q).len(), 0);
        let all_q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(all_sublink(col("a"), CompareOp::Eq, empty_sub()))
            .build();
        assert_eq!(run(&db, &all_q).len(), 3);
        let exists_q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(exists_sublink(empty_sub()))
            .build();
        assert_eq!(run(&db, &exists_q).len(), 0);
    }

    #[test]
    fn values_plan_is_materialised() {
        let db = Database::new();
        let plan = Plan::Values {
            schema: Schema::from_names(&["x"]),
            rows: vec![
                Tuple::new(vec![Value::Int(7)]),
                Tuple::new(vec![Value::Null]),
            ],
        };
        let result = Executor::new(&db).execute(&plan).unwrap();
        assert_eq!(result.len(), 2);
    }

    #[test]
    fn group_by_keeps_large_ints_distinct() {
        // Int(2⁵³) and Int(2⁵³ + 1) share an f64 view but are distinct
        // values; a lossy grouping key would merge their groups.
        const TWO_53: i64 = 1 << 53;
        let mut db = Database::new();
        db.create_table(
            "t",
            Relation::from_rows(
                Schema::new(vec![Attribute::qualified("t", "x", DataType::Int)]),
                vec![
                    vec![Value::Int(TWO_53)],
                    vec![Value::Int(TWO_53 + 1)],
                    vec![Value::Int(TWO_53)],
                ],
            ),
        )
        .unwrap();
        let q = PlanBuilder::scan(&db, "t")
            .unwrap()
            .aggregate(vec![ProjectItem::column("x")], vec![count_star("n")])
            .build();
        for result in [
            Executor::new(&db).execute(&q).unwrap(),
            Executor::new(&db).execute_unoptimized(&q).unwrap(),
        ] {
            assert_eq!(result.len(), 2);
            let mut groups: Vec<(i64, i64)> = result
                .tuples()
                .iter()
                .map(|t| match (t.get(0), t.get(1)) {
                    (Value::Int(x), Value::Int(n)) => (*x, *n),
                    other => panic!("unexpected group row {other:?}"),
                })
                .collect();
            groups.sort_unstable();
            assert_eq!(groups, vec![(TWO_53, 2), (TWO_53 + 1, 1)]);
        }
    }

    #[test]
    fn hash_join_matches_date_keys_against_int_keys() {
        let mut db = Database::new();
        db.create_table(
            "d",
            Relation::from_rows(
                Schema::new(vec![Attribute::qualified("d", "day", DataType::Date)]),
                vec![vec![Value::Date(3)], vec![Value::Date(9)]],
            ),
        )
        .unwrap();
        db.create_table(
            "n",
            Relation::from_rows(
                Schema::new(vec![Attribute::qualified("n", "num", DataType::Int)]),
                vec![vec![Value::Int(3)], vec![Value::Int(7)]],
            ),
        )
        .unwrap();
        let join = PlanBuilder::scan(&db, "d")
            .unwrap()
            .join(
                PlanBuilder::scan(&db, "n").unwrap().build(),
                eq(col("day"), col("num")),
            )
            .build();
        // The condition is a column-to-column equality, so this runs as a
        // hash join; the Date(3)/Int(3) pair must meet in one bucket because
        // the engine's equality coerces dates numerically.
        let hashed = run(&db, &join);
        assert_eq!(hashed.len(), 1);
        assert_eq!(
            hashed.tuples()[0],
            Tuple::new(vec![Value::Date(3), Value::Int(3)])
        );
        // Cross-check against the nested-loop path: force it by OR-ing an
        // always-false disjunct, which defeats equi-key extraction.
        let nested = PlanBuilder::scan(&db, "d")
            .unwrap()
            .join(
                PlanBuilder::scan(&db, "n").unwrap().build(),
                builder::or(eq(col("day"), col("num")), eq(lit(1), lit(2))),
            )
            .build();
        assert!(run(&db, &nested).bag_eq(&hashed));
    }

    #[test]
    fn aggregate_groups_date_keys_with_equal_int_keys() {
        let mut db = Database::new();
        db.create_table(
            "m",
            Relation::from_rows(
                Schema::new(vec![
                    Attribute::qualified("m", "k", DataType::Any),
                    Attribute::qualified("m", "v", DataType::Int),
                ]),
                vec![
                    vec![Value::Date(3), Value::Int(10)],
                    vec![Value::Int(3), Value::Int(20)],
                    vec![Value::Float(3.0), Value::Int(30)],
                    vec![Value::Int(4), Value::Int(40)],
                ],
            ),
        )
        .unwrap();
        let q = PlanBuilder::scan(&db, "m")
            .unwrap()
            .aggregate(vec![ProjectItem::column("k")], vec![sum(col("v"), "s")])
            .build();
        let result = run(&db, &q);
        // Date(3), Int(3) and Float(3.0) are null_safe_eq-equal and must
        // land in one group.
        assert_eq!(result.len(), 2);
        let sums: Vec<i64> = result
            .tuples()
            .iter()
            .map(|t| match t.get(1) {
                Value::Int(i) => *i,
                other => panic!("expected int sum, got {other:?}"),
            })
            .collect();
        assert!(sums.contains(&60) && sums.contains(&40));
    }

    #[test]
    fn sublink_cache_reuses_uncorrelated_results() {
        let db = figure3_db();
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .project_columns(&["c"])
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(any_sublink(col("a"), CompareOp::Eq, sub))
            .build();
        let ex = Executor::new(&db);
        ex.execute(&q).unwrap();
        // The uncorrelated sublink plan (project over scan) is evaluated only
        // once even though R has three tuples: scan r + select + (project +
        // scan s) = 4 operator invocations.
        assert_eq!(ex.operators_evaluated(), 4);
    }

    #[test]
    fn interpreter_path_memoizes_correlated_sublinks_per_binding() {
        // The acceptance bar of the shared-operator refactor: the
        // parameterized sublink memo serves the interpreter too. R.b takes
        // the two distinct values {1, 2} over three rows, so the correlated
        // sublink (select + scan = 2 operators) runs twice, not thrice.
        let db = figure3_db();
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .select(eq(col("c"), qcol("r", "b")))
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(exists_sublink(sub))
            .build();

        let memoized = Executor::new(&db);
        memoized.execute_unoptimized(&q).unwrap();
        assert_eq!(memoized.operators_evaluated(), 2 + 2 * 2);

        let unmemoized = Executor::new(&db).with_sublink_memo(false);
        unmemoized.execute_unoptimized(&q).unwrap();
        // Memo off: once per outer tuple again.
        assert_eq!(unmemoized.operators_evaluated(), 2 + 3 * 2);
    }

    #[test]
    fn initplan_caching_survives_memo_off_on_both_paths() {
        // Uncorrelated sublinks keep their per-query InitPlan cache even in
        // the memo-off baseline, mirroring the PostgreSQL engine the paper
        // measures against — on the interpreter *and* the compiled path, so
        // "memo off" means the same baseline on both.
        let db = figure3_db();
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .project_columns(&["c"])
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(any_sublink(col("a"), CompareOp::Eq, sub))
            .build();
        let interp = Executor::new(&db).with_sublink_memo(false);
        interp.execute_unoptimized(&q).unwrap();
        assert_eq!(interp.operators_evaluated(), 4);

        let compiled = Executor::new(&db).with_sublink_memo(false);
        compiled.execute(&q).unwrap();
        assert_eq!(compiled.operators_evaluated(), 4);
    }
}
