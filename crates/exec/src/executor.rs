//! Plan execution.
//!
//! The executor is a straightforward bag-semantics interpreter of the
//! algebra in Figure 1 of the paper. Two pragmatic optimizations mirror what
//! the PostgreSQL engine underneath the original Perm system does and are
//! needed for the benchmark figures to be meaningful:
//!
//! * **Uncorrelated sublink caching** (PostgreSQL "InitPlans"): a sublink
//!   query with no correlated attribute references is materialised once per
//!   query execution instead of once per outer tuple.
//! * **Equi-join hashing**: inner and left-outer joins whose condition
//!   contains column-to-column equality conjuncts are executed as hash
//!   joins, with the full condition re-checked on each candidate pair. Joins
//!   whose condition contains sublinks (as produced by the Left strategy)
//!   fall back to a nested loop, which is exactly the cost profile the paper
//!   discusses for that strategy.

use crate::eval::Env;
use crate::{aggregate::Accumulator, ExecError, Result};
use perm_algebra::visit::is_correlated;
use perm_algebra::{Expr, JoinKind, Plan, SetOpKind, SortKey};
use perm_storage::{Database, Relation, Schema, Truth, Tuple, Value};
use std::cell::RefCell;
use std::collections::HashMap;

/// Executes plans against an in-memory database.
pub struct Executor<'a> {
    db: &'a Database,
    /// Cache of materialised uncorrelated sublink results, keyed by the
    /// address of the sublink plan node (stable for the lifetime of one
    /// query execution because plans are borrowed immutably).
    sublink_cache: RefCell<HashMap<usize, Relation>>,
    /// Cache of correlation checks per sublink plan.
    correlation_cache: RefCell<HashMap<usize, bool>>,
    /// Number of operator evaluations performed (for tests/diagnostics).
    ops_evaluated: RefCell<u64>,
}

impl<'a> Executor<'a> {
    /// Creates an executor over a database.
    pub fn new(db: &'a Database) -> Executor<'a> {
        Executor {
            db,
            sublink_cache: RefCell::new(HashMap::new()),
            correlation_cache: RefCell::new(HashMap::new()),
            ops_evaluated: RefCell::new(0),
        }
    }

    /// The database this executor reads from.
    pub fn database(&self) -> &Database {
        self.db
    }

    /// Number of operator invocations so far (diagnostic counter).
    pub fn operators_evaluated(&self) -> u64 {
        *self.ops_evaluated.borrow()
    }

    /// Executes a top-level plan. Residual selections sitting directly on
    /// cross products are fused into joins first so that large products (in
    /// particular the `CrossBase` products of the Gen rewrite strategy) are
    /// never materialised unfiltered.
    pub fn execute(&self, plan: &Plan) -> Result<Relation> {
        let fused = perm_algebra::optimize::fuse_select_over_cross(plan.clone());
        self.execute_with_env(&fused, None)
    }

    /// Executes a plan exactly as given, without the pre-execution fusing
    /// pass (useful in tests that exercise specific plan shapes).
    pub fn execute_unoptimized(&self, plan: &Plan) -> Result<Relation> {
        self.execute_with_env(plan, None)
    }

    /// Executes a sublink plan in the given correlation environment. The
    /// result is cached when the sublink is uncorrelated.
    pub(crate) fn execute_sublink(&self, plan: &Plan, env: Option<&Env<'_>>) -> Result<Relation> {
        let key = plan as *const Plan as usize;
        let correlated = *self
            .correlation_cache
            .borrow_mut()
            .entry(key)
            .or_insert_with(|| is_correlated(plan));
        if !correlated {
            if let Some(cached) = self.sublink_cache.borrow().get(&key) {
                return Ok(cached.clone());
            }
            let result = self.execute_with_env(plan, None)?;
            self.sublink_cache
                .borrow_mut()
                .insert(key, result.clone());
            return Ok(result);
        }
        self.execute_with_env(plan, env)
    }

    /// Recursive plan evaluation. `env` is the enclosing correlation scope
    /// (present when this plan is a sublink query of an outer operator).
    pub fn execute_with_env(&self, plan: &Plan, env: Option<&Env<'_>>) -> Result<Relation> {
        *self.ops_evaluated.borrow_mut() += 1;
        match plan {
            Plan::Scan { table, schema, .. } => {
                let base = self.db.table(table)?;
                Ok(Relation::new(schema.clone(), base.tuples().to_vec())?)
            }
            Plan::Values { schema, rows } => Ok(Relation::new(schema.clone(), rows.clone())?),
            Plan::Project {
                input,
                items,
                distinct,
            } => {
                let child = self.execute_with_env(input, env)?;
                let child_schema = child.schema().clone();
                let out_schema = plan.schema();
                let mut out = Relation::empty(out_schema);
                for tuple in child.tuples() {
                    let scope = Env::new(env, &child_schema, tuple);
                    let mut row = Vec::with_capacity(items.len());
                    for item in items {
                        row.push(self.eval_expr(&item.expr, Some(&scope))?);
                    }
                    out.push_unchecked(Tuple::new(row));
                }
                Ok(if *distinct { out.distinct() } else { out })
            }
            Plan::Select { input, predicate } => {
                let child = self.execute_with_env(input, env)?;
                let child_schema = child.schema().clone();
                let mut out = Relation::empty(child_schema.clone());
                for tuple in child.tuples() {
                    let scope = Env::new(env, &child_schema, tuple);
                    if self.eval_predicate(predicate, Some(&scope))?.is_true() {
                        out.push_unchecked(tuple.clone());
                    }
                }
                Ok(out)
            }
            Plan::CrossProduct { left, right } => {
                let l = self.execute_with_env(left, env)?;
                let r = self.execute_with_env(right, env)?;
                let schema = l.schema().concat(r.schema());
                let mut out = Relation::empty(schema);
                for lt in l.tuples() {
                    for rt in r.tuples() {
                        out.push_unchecked(lt.concat(rt));
                    }
                }
                Ok(out)
            }
            Plan::Join {
                left,
                right,
                kind,
                condition,
            } => self.execute_join(left, right, *kind, condition, env),
            Plan::Aggregate {
                input,
                group_by,
                aggregates,
            } => self.execute_aggregate(plan, input, group_by, aggregates, env),
            Plan::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let l = self.execute_with_env(left, env)?;
                let r = self.execute_with_env(right, env)?;
                if l.schema().arity() != r.schema().arity() {
                    return Err(ExecError::Unsupported(
                        "set operation over inputs of different arity".into(),
                    ));
                }
                Ok(match (op, all) {
                    (SetOpKind::Union, true) => l.bag_union(&r),
                    (SetOpKind::Union, false) => l.set_union(&r),
                    (SetOpKind::Intersect, true) => l.bag_intersect(&r),
                    (SetOpKind::Intersect, false) => l.set_intersect(&r),
                    (SetOpKind::Except, true) => l.bag_difference(&r),
                    (SetOpKind::Except, false) => l.set_difference(&r),
                })
            }
            Plan::Sort { input, keys } => {
                let child = self.execute_with_env(input, env)?;
                self.execute_sort(child, keys, env)
            }
            Plan::Limit { input, limit } => {
                let child = self.execute_with_env(input, env)?;
                let schema = child.schema().clone();
                let tuples = child.into_tuples().into_iter().take(*limit).collect();
                Ok(Relation::new(schema, tuples)?)
            }
        }
    }

    fn execute_sort(
        &self,
        child: Relation,
        keys: &[SortKey],
        env: Option<&Env<'_>>,
    ) -> Result<Relation> {
        let schema = child.schema().clone();
        let mut keyed: Vec<(Vec<Value>, Tuple)> = Vec::with_capacity(child.len());
        for tuple in child.tuples() {
            let scope = Env::new(env, &schema, tuple);
            let mut key_values = Vec::with_capacity(keys.len());
            for key in keys {
                key_values.push(self.eval_expr(&key.expr, Some(&scope))?);
            }
            keyed.push((key_values, tuple.clone()));
        }
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, key) in keys.iter().enumerate() {
                let ord = ka[i].sort_key(&kb[i]);
                let ord = if key.ascending { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(Relation::new(
            schema,
            keyed.into_iter().map(|(_, t)| t).collect(),
        )?)
    }

    fn execute_join(
        &self,
        left: &Plan,
        right: &Plan,
        kind: JoinKind,
        condition: &Expr,
        env: Option<&Env<'_>>,
    ) -> Result<Relation> {
        let l = self.execute_with_env(left, env)?;
        let r = self.execute_with_env(right, env)?;
        let l_schema = l.schema().clone();
        let r_schema = r.schema().clone();
        let out_schema = l_schema.concat(&r_schema);
        let mut out = Relation::empty(out_schema.clone());

        let equi_keys = if condition.has_sublink() {
            Vec::new()
        } else {
            extract_equi_keys(condition, &l_schema, &r_schema)
        };

        if !equi_keys.is_empty() {
            // Hash join: bucket the right side by its key values. Rows with a
            // NULL key under a plain (non-null-safe) equality can never
            // match and are dropped from the hash table / probe.
            let mut buckets: HashMap<Vec<u8>, Vec<&Tuple>> = HashMap::new();
            'right: for rt in r.tuples() {
                let scope = Env::new(env, &r_schema, rt);
                let mut key_values = Vec::with_capacity(equi_keys.len());
                for key in &equi_keys {
                    let v = self.eval_expr(&key.right, Some(&scope))?;
                    if v.is_null() && !key.null_safe {
                        continue 'right;
                    }
                    key_values.push(v);
                }
                buckets.entry(encode_key(&key_values)).or_default().push(rt);
            }
            let empty: Vec<&Tuple> = Vec::new();
            for lt in l.tuples() {
                let scope = Env::new(env, &l_schema, lt);
                let mut key_values = Vec::with_capacity(equi_keys.len());
                let mut has_null_key = false;
                for key in &equi_keys {
                    let v = self.eval_expr(&key.left, Some(&scope))?;
                    if v.is_null() && !key.null_safe {
                        has_null_key = true;
                        break;
                    }
                    key_values.push(v);
                }
                let candidates = if has_null_key {
                    &empty
                } else {
                    buckets.get(&encode_key(&key_values)).unwrap_or(&empty)
                };
                let mut matched = false;
                for rt in candidates {
                    let joined = lt.concat(rt);
                    let scope = Env::new(env, &out_schema, &joined);
                    if self.eval_predicate(condition, Some(&scope))?.is_true() {
                        matched = true;
                        out.push_unchecked(joined);
                    }
                }
                if !matched && kind == JoinKind::LeftOuter {
                    out.push_unchecked(lt.concat(&Tuple::new(vec![Value::Null; r_schema.arity()])));
                }
            }
            return Ok(out);
        }

        // Nested-loop join (required when the condition carries sublinks,
        // e.g. the Jsub conditions of the Left strategy).
        for lt in l.tuples() {
            let mut matched = false;
            for rt in r.tuples() {
                let joined = lt.concat(rt);
                let scope = Env::new(env, &out_schema, &joined);
                if self.eval_predicate(condition, Some(&scope))?.is_true() {
                    matched = true;
                    out.push_unchecked(joined);
                }
            }
            if !matched && kind == JoinKind::LeftOuter {
                out.push_unchecked(lt.concat(&Tuple::new(vec![Value::Null; r_schema.arity()])));
            }
        }
        Ok(out)
    }

    fn execute_aggregate(
        &self,
        plan: &Plan,
        input: &Plan,
        group_by: &[perm_algebra::ProjectItem],
        aggregates: &[perm_algebra::AggregateExpr],
        env: Option<&Env<'_>>,
    ) -> Result<Relation> {
        let child = self.execute_with_env(input, env)?;
        let child_schema = child.schema().clone();
        let out_schema = plan.schema();

        // Group rows by the encoded grouping key.
        let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
        let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
        let make_accs = || -> Vec<Accumulator> {
            aggregates
                .iter()
                .map(|a| Accumulator::new(a.func, a.distinct))
                .collect()
        };

        // A global aggregation (no GROUP BY) over an empty input still
        // produces one tuple (e.g. `count(*)` = 0); seed the single group.
        if group_by.is_empty() {
            groups.push((Vec::new(), make_accs()));
            index.insert(Vec::new(), 0);
        }

        for tuple in child.tuples() {
            let scope = Env::new(env, &child_schema, tuple);
            let mut key_values = Vec::with_capacity(group_by.len());
            for g in group_by {
                key_values.push(self.eval_expr(&g.expr, Some(&scope))?);
            }
            let key = encode_key(&key_values);
            let group_index = match index.get(&key) {
                Some(&i) => i,
                None => {
                    groups.push((key_values, make_accs()));
                    index.insert(key, groups.len() - 1);
                    groups.len() - 1
                }
            };
            for (acc, agg_expr) in groups[group_index].1.iter_mut().zip(aggregates.iter()) {
                let value = match &agg_expr.arg {
                    Some(arg) => self.eval_expr(arg, Some(&scope))?,
                    None => Value::Int(1),
                };
                acc.update(&value);
            }
        }

        let mut out = Relation::empty(out_schema);
        for (key_values, accs) in groups {
            let mut row = key_values;
            for acc in &accs {
                row.push(acc.finish());
            }
            out.push_unchecked(Tuple::new(row));
        }
        Ok(out)
    }
}

/// One hash-join key pair: a left-side expression, a right-side expression
/// and whether the comparison is null-safe (`=n`, in which case NULL keys
/// match NULL keys instead of being dropped).
struct EquiKey {
    left: Expr,
    right: Expr,
    null_safe: bool,
}

/// Extracts equality conjuncts `colL = colR` (or `colL =n colR`) from a join
/// condition, where one side resolves only against the left schema and the
/// other only against the right schema.
fn extract_equi_keys(condition: &Expr, left: &Schema, right: &Schema) -> Vec<EquiKey> {
    let mut conjuncts = Vec::new();
    flatten_conjuncts(condition, &mut conjuncts);
    let mut keys = Vec::new();
    for c in conjuncts {
        if let Expr::Binary { op, left: a, right: b } = c {
            let null_safe = match op {
                perm_algebra::BinaryOp::Cmp(perm_algebra::CompareOp::Eq) => false,
                perm_algebra::BinaryOp::NullSafeEq => true,
                _ => continue,
            };
            if let (Expr::Column { .. }, Expr::Column { .. }) = (a.as_ref(), b.as_ref()) {
                match (side_of(a, left, right), side_of(b, left, right)) {
                    (Some(Side::Left), Some(Side::Right)) => keys.push(EquiKey {
                        left: a.as_ref().clone(),
                        right: b.as_ref().clone(),
                        null_safe,
                    }),
                    (Some(Side::Right), Some(Side::Left)) => keys.push(EquiKey {
                        left: b.as_ref().clone(),
                        right: a.as_ref().clone(),
                        null_safe,
                    }),
                    _ => {}
                }
            }
        }
    }
    keys
}

#[derive(PartialEq)]
enum Side {
    Left,
    Right,
}

fn side_of(expr: &Expr, left: &Schema, right: &Schema) -> Option<Side> {
    if let Expr::Column { qualifier, name } = expr {
        let in_left = matches!(left.try_resolve(qualifier.as_deref(), name), Ok(Some(_)));
        let in_right = matches!(right.try_resolve(qualifier.as_deref(), name), Ok(Some(_)));
        match (in_left, in_right) {
            (true, false) => Some(Side::Left),
            (false, true) => Some(Side::Right),
            _ => None,
        }
    } else {
        None
    }
}

fn flatten_conjuncts<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::Binary {
        op: perm_algebra::BinaryOp::And,
        left,
        right,
    } = expr
    {
        flatten_conjuncts(left, out);
        flatten_conjuncts(right, out);
    } else {
        out.push(expr);
    }
}

/// Encodes a list of values into a hashable byte key. Numeric values are
/// normalised to their `f64` representation so that `Int(3)` and `Float(3.0)`
/// land in the same group, matching the engine's null-safe equality.
fn encode_key(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 9);
    for v in values {
        match v {
            Value::Null => out.push(0u8),
            Value::Bool(b) => {
                out.push(1);
                out.push(*b as u8);
            }
            Value::Int(_) | Value::Float(_) | Value::Date(_) => {
                out.push(2);
                let f = v.as_f64().unwrap_or(0.0);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
    out
}

/// Three-valued truth helper re-exported for predicates in tests.
pub fn truth_of(value: &Value) -> Truth {
    value.as_truth()
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_algebra::builder::{
        self, all_sublink, any_sublink, col, count_star, eq, exists_sublink, lit, qcol,
        scalar_sublink, sum, PlanBuilder,
    };
    use perm_algebra::{CompareOp, ProjectItem, SetOpKind};
    use perm_storage::{Attribute, DataType};

    /// The example relations R(a,b) and S(c,d) from Figure 3 of the paper.
    fn figure3_db() -> Database {
        let mut db = Database::new();
        let r_schema = Schema::new(vec![
            Attribute::qualified("r", "a", DataType::Int),
            Attribute::qualified("r", "b", DataType::Int),
        ]);
        let s_schema = Schema::new(vec![
            Attribute::qualified("s", "c", DataType::Int),
            Attribute::qualified("s", "d", DataType::Int),
        ]);
        db.create_table(
            "r",
            Relation::from_rows(
                r_schema,
                vec![
                    vec![Value::Int(1), Value::Int(1)],
                    vec![Value::Int(2), Value::Int(1)],
                    vec![Value::Int(3), Value::Int(2)],
                ],
            ),
        )
        .unwrap();
        db.create_table(
            "s",
            Relation::from_rows(
                s_schema,
                vec![
                    vec![Value::Int(1), Value::Int(3)],
                    vec![Value::Int(2), Value::Int(4)],
                    vec![Value::Int(4), Value::Int(5)],
                ],
            ),
        )
        .unwrap();
        db
    }

    fn run(db: &Database, plan: &Plan) -> Relation {
        Executor::new(db).execute(plan).unwrap()
    }

    #[test]
    fn scan_select_project() {
        let db = figure3_db();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(eq(col("a"), lit(3)))
            .project_columns(&["b"])
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 1);
        assert_eq!(result.tuples()[0], Tuple::new(vec![Value::Int(2)]));
    }

    #[test]
    fn projection_bag_vs_set() {
        let db = figure3_db();
        let bag = PlanBuilder::scan(&db, "r")
            .unwrap()
            .project_columns(&["b"])
            .build();
        assert_eq!(run(&db, &bag).len(), 3);
        let set = PlanBuilder::scan(&db, "r")
            .unwrap()
            .project_distinct(vec![ProjectItem::column("b")])
            .build();
        assert_eq!(run(&db, &set).len(), 2);
    }

    #[test]
    fn cross_product_and_join() {
        let db = figure3_db();
        let s = PlanBuilder::scan(&db, "s").unwrap().build();
        let cross = PlanBuilder::scan(&db, "r").unwrap().cross(s.clone()).build();
        assert_eq!(run(&db, &cross).len(), 9);
        let join = PlanBuilder::scan(&db, "r")
            .unwrap()
            .join(s, eq(col("a"), col("c")))
            .build();
        let result = run(&db, &join);
        assert_eq!(result.len(), 2); // a=1 matches c=1, a=2 matches c=2
    }

    #[test]
    fn left_outer_join_pads_with_nulls() {
        let db = figure3_db();
        let s = PlanBuilder::scan(&db, "s").unwrap().build();
        let join = PlanBuilder::scan(&db, "r")
            .unwrap()
            .left_join(s, eq(col("a"), col("c")))
            .build();
        let result = run(&db, &join);
        assert_eq!(result.len(), 3);
        let unmatched: Vec<&Tuple> = result
            .tuples()
            .iter()
            .filter(|t| t.get(0) == &Value::Int(3))
            .collect();
        assert_eq!(unmatched.len(), 1);
        assert!(unmatched[0].get(2).is_null());
        assert!(unmatched[0].get(3).is_null());
    }

    #[test]
    fn join_with_non_equi_condition_uses_nested_loop() {
        let db = figure3_db();
        let s = PlanBuilder::scan(&db, "s").unwrap().build();
        let join = PlanBuilder::scan(&db, "r")
            .unwrap()
            .join(s, builder::cmp(CompareOp::Lt, col("a"), col("c")))
            .build();
        let result = run(&db, &join);
        // pairs with a < c: (1,*)x(2,4),(4,5) ; (2,*)x(4,5); (3,*)x(4,5)
        assert_eq!(result.len(), 4);
    }

    #[test]
    fn aggregate_with_and_without_groups() {
        let db = figure3_db();
        let global = PlanBuilder::scan(&db, "r")
            .unwrap()
            .aggregate(vec![], vec![sum(col("a"), "sum_a"), count_star("cnt")])
            .build();
        let result = run(&db, &global);
        assert_eq!(result.len(), 1);
        assert_eq!(result.tuples()[0], Tuple::new(vec![Value::Int(6), Value::Int(3)]));

        let grouped = PlanBuilder::scan(&db, "r")
            .unwrap()
            .aggregate(
                vec![ProjectItem::column("b")],
                vec![sum(col("a"), "sum_a")],
            )
            .build();
        let result = run(&db, &grouped);
        assert_eq!(result.len(), 2);
        let mut rows = result.sorted_tuples();
        rows.sort_by(|x, y| x.sort_key(y));
        assert_eq!(rows[0], Tuple::new(vec![Value::Int(1), Value::Int(3)]));
        assert_eq!(rows[1], Tuple::new(vec![Value::Int(2), Value::Int(3)]));
    }

    #[test]
    fn aggregate_over_empty_input_produces_single_row_without_groups() {
        let db = figure3_db();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(eq(col("a"), lit(999)))
            .aggregate(vec![], vec![count_star("cnt"), sum(col("a"), "s")])
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 1);
        assert_eq!(result.tuples()[0].get(0), &Value::Int(0));
        assert!(result.tuples()[0].get(1).is_null());
    }

    #[test]
    fn set_operations() {
        let db = figure3_db();
        let r1 = PlanBuilder::scan(&db, "r").unwrap().project_columns(&["b"]).build();
        let r2 = PlanBuilder::scan(&db, "r").unwrap().project_columns(&["b"]).build();
        let union_all = PlanBuilder::from_plan(r1.clone())
            .set_op(SetOpKind::Union, true, r2.clone())
            .build();
        assert_eq!(run(&db, &union_all).len(), 6);
        let union = PlanBuilder::from_plan(r1.clone())
            .set_op(SetOpKind::Union, false, r2.clone())
            .build();
        assert_eq!(run(&db, &union).len(), 2);
        let except = PlanBuilder::from_plan(r1)
            .set_op(SetOpKind::Except, true, r2)
            .build();
        assert_eq!(run(&db, &except).len(), 0);
    }

    #[test]
    fn sort_and_limit() {
        let db = figure3_db();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .sort(vec![SortKey::desc(col("a"))])
            .limit(2)
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 2);
        assert_eq!(result.tuples()[0].get(0), &Value::Int(3));
        assert_eq!(result.tuples()[1].get(0), &Value::Int(2));
    }

    #[test]
    fn uncorrelated_any_sublink_in_selection() {
        let db = figure3_db();
        // q1 from Figure 3: σ_{a = ANY(Π_c(S))}(R)
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .project_columns(&["c"])
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(any_sublink(col("a"), CompareOp::Eq, sub))
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 2);
        assert!(result.contains(&Tuple::new(vec![Value::Int(1), Value::Int(1)])));
        assert!(result.contains(&Tuple::new(vec![Value::Int(2), Value::Int(1)])));
    }

    #[test]
    fn uncorrelated_all_sublink_in_selection() {
        let db = figure3_db();
        // q2 from Figure 3: σ_{c > ALL(Π_a(R))}(S) — only (4,5) qualifies.
        let sub = PlanBuilder::scan(&db, "r")
            .unwrap()
            .project_columns(&["a"])
            .build();
        let q = PlanBuilder::scan(&db, "s")
            .unwrap()
            .select(all_sublink(col("c"), CompareOp::Gt, sub))
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 1);
        assert_eq!(
            result.tuples()[0],
            Tuple::new(vec![Value::Int(4), Value::Int(5)])
        );
    }

    #[test]
    fn correlated_exists_sublink() {
        let db = figure3_db();
        // σ_{EXISTS(σ_{c = a}(S))}(R): rows of R whose a appears as S.c.
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .select(eq(col("c"), qcol("r", "a")))
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(exists_sublink(sub))
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 2);
        assert!(!result.contains(&Tuple::new(vec![Value::Int(3), Value::Int(2)])));
    }

    #[test]
    fn correlated_scalar_sublink_in_projection() {
        let db = figure3_db();
        // Π_{a, (σ_{c=b}(Π_c(S)))}(R): the scalar sublink returns the single
        // matching c or NULL.
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .select(eq(col("c"), qcol("r", "b")))
            .project_columns(&["c"])
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .project(vec![
                ProjectItem::column("a"),
                ProjectItem::new(scalar_sublink(sub), "match_c"),
            ])
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 3);
        let rows = result.sorted_tuples();
        assert_eq!(rows[0], Tuple::new(vec![Value::Int(1), Value::Int(1)]));
        assert_eq!(rows[1], Tuple::new(vec![Value::Int(2), Value::Int(1)]));
        assert_eq!(rows[2], Tuple::new(vec![Value::Int(3), Value::Int(2)]));
    }

    #[test]
    fn scalar_sublink_cardinality_violation_is_an_error() {
        let db = figure3_db();
        let sub = PlanBuilder::scan(&db, "s").unwrap().project_columns(&["c"]).build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .project(vec![ProjectItem::new(scalar_sublink(sub), "x")])
            .build();
        let err = Executor::new(&db).execute(&q).unwrap_err();
        assert!(matches!(err, ExecError::ScalarSublinkCardinality(_)));
    }

    #[test]
    fn nested_sublinks() {
        let db = figure3_db();
        // σ_{a = ANY(σ_{c = ANY(Π_d(S))}(Π_c(S)))}(R):
        // inner: c values that appear among d values of S -> {4}
        // outer: rows of R with a = 4 -> none. Then with d replaced by c the
        // middle level keeps all c's -> rows with a ∈ {1,2,4} -> 2 rows.
        let inner = PlanBuilder::scan_as(&db, "s", Some("s2"))
            .unwrap()
            .project_columns(&["d"])
            .build();
        let middle = PlanBuilder::scan(&db, "s")
            .unwrap()
            .select(any_sublink(col("c"), CompareOp::Eq, inner))
            .project_columns(&["c"])
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(any_sublink(col("a"), CompareOp::Eq, middle))
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 0);
    }

    #[test]
    fn null_semantics_in_any_sublink() {
        // NOT IN with NULLs: x NOT IN (…, NULL, …) is never TRUE when no
        // element matches — the classic three-valued-logic trap.
        let mut db = Database::new();
        db.create_table(
            "t",
            Relation::from_rows(
                Schema::from_names(&["x"]),
                vec![vec![Value::Int(1)], vec![Value::Int(5)]],
            ),
        )
        .unwrap();
        db.create_table(
            "u",
            Relation::from_rows(
                Schema::from_names(&["y"]),
                vec![vec![Value::Int(1)], vec![Value::Null]],
            ),
        )
        .unwrap();
        let sub = PlanBuilder::scan(&db, "u").unwrap().build();
        let q = PlanBuilder::scan(&db, "t")
            .unwrap()
            .select(builder::not(any_sublink(col("x"), CompareOp::Eq, sub)))
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 0, "x NOT IN (1, NULL) must never be TRUE");
    }

    #[test]
    fn empty_sublink_results() {
        let db = figure3_db();
        let empty_sub = || {
            PlanBuilder::scan(&db, "s")
                .unwrap()
                .select(eq(col("c"), lit(999)))
                .project_columns(&["c"])
                .build()
        };
        // ANY over empty is FALSE, ALL over empty is TRUE, EXISTS is FALSE.
        let any_q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(any_sublink(col("a"), CompareOp::Eq, empty_sub()))
            .build();
        assert_eq!(run(&db, &any_q).len(), 0);
        let all_q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(all_sublink(col("a"), CompareOp::Eq, empty_sub()))
            .build();
        assert_eq!(run(&db, &all_q).len(), 3);
        let exists_q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(exists_sublink(empty_sub()))
            .build();
        assert_eq!(run(&db, &exists_q).len(), 0);
    }

    #[test]
    fn values_plan_is_materialised() {
        let db = Database::new();
        let plan = Plan::Values {
            schema: Schema::from_names(&["x"]),
            rows: vec![Tuple::new(vec![Value::Int(7)]), Tuple::new(vec![Value::Null])],
        };
        let result = Executor::new(&db).execute(&plan).unwrap();
        assert_eq!(result.len(), 2);
    }

    #[test]
    fn sublink_cache_reuses_uncorrelated_results() {
        let db = figure3_db();
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .project_columns(&["c"])
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(any_sublink(col("a"), CompareOp::Eq, sub))
            .build();
        let ex = Executor::new(&db);
        ex.execute(&q).unwrap();
        // The uncorrelated sublink plan (project over scan) is evaluated only
        // once even though R has three tuples: scan r + select + (project +
        // scan s) = 4 operator invocations.
        assert_eq!(ex.operators_evaluated(), 4);
    }
}
