//! Plan execution: a compile/memoize pipeline in front of a bag-semantics
//! interpreter.
//!
//! Execution of a top-level plan goes through three stages:
//!
//! 1. **Plan-level optimization** — residual selections sitting directly on
//!    cross products are fused into joins
//!    ([`perm_algebra::optimize::fuse_select_over_cross`]) so that large
//!    products (in particular the `CrossBase` products of the Gen rewrite
//!    strategy) are never materialised unfiltered.
//! 2. **Compilation** ([`crate::compile`]) — a one-time pass per operator
//!    that resolves every column reference to a positional *slot*
//!    (scope depth + attribute index) against the concrete schema chain, so
//!    the per-tuple evaluator does integer indexing instead of name lookup,
//!    and computes each sublink's *correlation signature* (its free column
//!    references, [`perm_algebra::visit::free_correlated_columns`]) resolved
//!    to outer-scope slots.
//! 3. **Compiled evaluation** with a **parameterized sublink memo**: a
//!    sublink result is cached under `(sublink identity, encoded values of
//!    its correlated bindings)`. A correlated sublink over an outer relation
//!    with *k* distinct binding values therefore executes *k* times instead
//!    of once per outer tuple; an uncorrelated sublink (empty signature)
//!    degenerates to the classic PostgreSQL "InitPlan" behaviour of one
//!    execution per query. The memo can be switched off with
//!    [`Executor::with_sublink_memo`] for measurements.
//!
//! The uncompiled interpreter ([`Executor::execute_unoptimized`] /
//! [`Executor::execute_with_env`]) remains available; the tracer in
//! `perm-core` builds on it, and the strategy-equivalence tests cross-check
//! compiled against interpreted results.
//!
//! Two further interpreter-level optimizations mirror what the PostgreSQL
//! engine underneath the original Perm system does and are needed for the
//! benchmark figures to be meaningful:
//!
//! * **Uncorrelated sublink caching** (interpreter path): a sublink query
//!   with no correlated attribute references is materialised once per query
//!   execution instead of once per outer tuple.
//! * **Equi-join hashing**: inner and left-outer joins whose condition
//!   contains column-to-column equality conjuncts are executed as hash
//!   joins, with the full condition re-checked on each candidate pair. Joins
//!   whose condition contains sublinks (as produced by the Left strategy)
//!   fall back to a nested loop, which is exactly the cost profile the paper
//!   discusses for that strategy.

use crate::compile::CompiledPlan;
use crate::eval::Env;
use crate::{aggregate::Accumulator, ExecError, Result};
use perm_algebra::visit::is_correlated;
use perm_algebra::{Expr, JoinKind, Plan, SetOpKind, SortKey};
use perm_storage::{Database, Relation, Schema, Truth, Tuple, Value};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// Executes plans against an in-memory database.
pub struct Executor<'a> {
    db: &'a Database,
    /// Cache of materialised uncorrelated sublink results, keyed by the
    /// address of the sublink plan node (stable for the lifetime of one
    /// query execution because plans are borrowed immutably). Used by the
    /// interpreter path only; the compiled path uses `sublink_memo`.
    sublink_cache: RefCell<HashMap<usize, Relation>>,
    /// Cache of correlation checks per sublink plan.
    correlation_cache: RefCell<HashMap<usize, bool>>,
    /// Parameterized sublink memo for the compiled path: sublink results
    /// keyed by `(compiled sublink id, encoded correlated binding values)`.
    pub(crate) sublink_memo: RefCell<HashMap<Vec<u8>, Relation>>,
    /// Whether the compiled path may reuse memoized sublink results.
    pub(crate) memo_enabled: Cell<bool>,
    /// Source of unique ids for compiled sublinks, so memo keys from
    /// different [`Executor::prepare`] calls never collide.
    pub(crate) next_sublink_id: Cell<usize>,
    /// Number of operator evaluations performed (for tests/diagnostics).
    pub(crate) ops_evaluated: RefCell<u64>,
}

impl<'a> Executor<'a> {
    /// Creates an executor over a database. Sublink memoization is enabled;
    /// use [`Executor::with_sublink_memo`] to switch it off.
    pub fn new(db: &'a Database) -> Executor<'a> {
        Executor {
            db,
            sublink_cache: RefCell::new(HashMap::new()),
            correlation_cache: RefCell::new(HashMap::new()),
            sublink_memo: RefCell::new(HashMap::new()),
            memo_enabled: Cell::new(true),
            next_sublink_id: Cell::new(0),
            ops_evaluated: RefCell::new(0),
        }
    }

    /// Enables or disables the parameterized sublink memo of the compiled
    /// execution path (enabled by default). Disabling it makes every
    /// correlated sublink execute once per outer tuple again, which is what
    /// the benchmark harness measures as the "memo off" baseline.
    pub fn with_sublink_memo(self, enabled: bool) -> Executor<'a> {
        self.memo_enabled.set(enabled);
        self
    }

    /// The database this executor reads from.
    pub fn database(&self) -> &Database {
        self.db
    }

    /// Number of operator invocations so far (diagnostic counter). Both the
    /// compiled and the interpreted path count one evaluation per operator
    /// node per invocation; a memo hit counts nothing, which is what makes
    /// the memoization win measurable.
    pub fn operators_evaluated(&self) -> u64 {
        *self.ops_evaluated.borrow()
    }

    /// Compiles a plan for repeated execution: fuses residual selections
    /// over cross products, then resolves all column references to slots
    /// and attaches correlation signatures to sublinks (see
    /// [`crate::compile`]).
    pub fn prepare(&self, plan: &Plan) -> Result<CompiledPlan> {
        let fused = perm_algebra::optimize::fuse_select_over_cross(plan.clone());
        crate::compile::compile_plan(&fused, &self.next_sublink_id)
    }

    /// Executes a top-level plan through the compile/memoize pipeline.
    ///
    /// The sublink memo is cleared first: [`Executor::prepare`] mints fresh
    /// sublink ids, so entries from earlier `execute` calls could never hit
    /// again and would only accumulate. Callers that want memo reuse across
    /// repeated executions of the *same* query should `prepare` once and
    /// call [`Executor::execute_compiled`] directly.
    pub fn execute(&self, plan: &Plan) -> Result<Relation> {
        self.sublink_memo.borrow_mut().clear();
        let compiled = self.prepare(plan)?;
        self.execute_compiled(&compiled, None)
    }

    /// Executes a plan exactly as given with the name-resolving interpreter:
    /// no fusing pass, no compilation, no parameterized memo (only the
    /// per-execution InitPlan cache for uncorrelated sublinks). This is the
    /// reference semantics the compiled path is cross-checked against, and
    /// it is useful in tests that exercise specific plan shapes.
    pub fn execute_unoptimized(&self, plan: &Plan) -> Result<Relation> {
        self.reset_interpreter_caches();
        self.execute_with_env(plan, None)
    }

    /// Clears the interpreter-path sublink caches. They are keyed by plan
    /// *node address*, which is only stable while that plan is alive — a
    /// later plan can allocate a sublink node at a freed address and would
    /// otherwise inherit stale entries. Called automatically at the start of
    /// [`Executor::execute_unoptimized`]; callers that drive
    /// [`Executor::execute_with_env`] directly across different plans (e.g.
    /// the tracer in `perm-core`) must call it between plans themselves.
    pub fn reset_interpreter_caches(&self) {
        self.sublink_cache.borrow_mut().clear();
        self.correlation_cache.borrow_mut().clear();
    }

    /// Executes a sublink plan in the given correlation environment. The
    /// result is cached when the sublink is uncorrelated.
    pub(crate) fn execute_sublink(&self, plan: &Plan, env: Option<&Env<'_>>) -> Result<Relation> {
        let key = plan as *const Plan as usize;
        let correlated = *self
            .correlation_cache
            .borrow_mut()
            .entry(key)
            .or_insert_with(|| is_correlated(plan));
        if !correlated {
            if let Some(cached) = self.sublink_cache.borrow().get(&key) {
                return Ok(cached.clone());
            }
            let result = self.execute_with_env(plan, None)?;
            self.sublink_cache.borrow_mut().insert(key, result.clone());
            return Ok(result);
        }
        self.execute_with_env(plan, env)
    }

    /// Recursive plan evaluation. `env` is the enclosing correlation scope
    /// (present when this plan is a sublink query of an outer operator).
    pub fn execute_with_env(&self, plan: &Plan, env: Option<&Env<'_>>) -> Result<Relation> {
        *self.ops_evaluated.borrow_mut() += 1;
        match plan {
            Plan::Scan { table, schema, .. } => {
                let base = self.db.table(table)?;
                Ok(Relation::new(schema.clone(), base.tuples().to_vec())?)
            }
            Plan::Values { schema, rows } => Ok(Relation::new(schema.clone(), rows.clone())?),
            Plan::Project {
                input,
                items,
                distinct,
            } => {
                let child = self.execute_with_env(input, env)?;
                let child_schema = child.schema().clone();
                let out_schema = plan.schema();
                let mut out = Relation::empty(out_schema);
                for tuple in child.tuples() {
                    let scope = Env::new(env, &child_schema, tuple);
                    let mut row = Vec::with_capacity(items.len());
                    for item in items {
                        row.push(self.eval_expr(&item.expr, Some(&scope))?);
                    }
                    out.push_unchecked(Tuple::new(row));
                }
                Ok(if *distinct { out.distinct() } else { out })
            }
            Plan::Select { input, predicate } => {
                let child = self.execute_with_env(input, env)?;
                let child_schema = child.schema().clone();
                let mut out = Relation::empty(child_schema.clone());
                for tuple in child.tuples() {
                    let scope = Env::new(env, &child_schema, tuple);
                    if self.eval_predicate(predicate, Some(&scope))?.is_true() {
                        out.push_unchecked(tuple.clone());
                    }
                }
                Ok(out)
            }
            Plan::CrossProduct { left, right } => {
                let l = self.execute_with_env(left, env)?;
                let r = self.execute_with_env(right, env)?;
                let schema = l.schema().concat(r.schema());
                let mut out = Relation::empty(schema);
                for lt in l.tuples() {
                    for rt in r.tuples() {
                        out.push_unchecked(lt.concat(rt));
                    }
                }
                Ok(out)
            }
            Plan::Join {
                left,
                right,
                kind,
                condition,
            } => self.execute_join(left, right, *kind, condition, env),
            Plan::Aggregate {
                input,
                group_by,
                aggregates,
            } => self.execute_aggregate(plan, input, group_by, aggregates, env),
            Plan::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let l = self.execute_with_env(left, env)?;
                let r = self.execute_with_env(right, env)?;
                if l.schema().arity() != r.schema().arity() {
                    return Err(ExecError::Unsupported(
                        "set operation over inputs of different arity".into(),
                    ));
                }
                Ok(match (op, all) {
                    (SetOpKind::Union, true) => l.bag_union(&r),
                    (SetOpKind::Union, false) => l.set_union(&r),
                    (SetOpKind::Intersect, true) => l.bag_intersect(&r),
                    (SetOpKind::Intersect, false) => l.set_intersect(&r),
                    (SetOpKind::Except, true) => l.bag_difference(&r),
                    (SetOpKind::Except, false) => l.set_difference(&r),
                })
            }
            Plan::Sort { input, keys } => {
                let child = self.execute_with_env(input, env)?;
                self.execute_sort(child, keys, env)
            }
            Plan::Limit { input, limit } => {
                let child = self.execute_with_env(input, env)?;
                let schema = child.schema().clone();
                let tuples = child.into_tuples().into_iter().take(*limit).collect();
                Ok(Relation::new(schema, tuples)?)
            }
        }
    }

    fn execute_sort(
        &self,
        child: Relation,
        keys: &[SortKey],
        env: Option<&Env<'_>>,
    ) -> Result<Relation> {
        let schema = child.schema().clone();
        let mut keyed: Vec<(Vec<Value>, Tuple)> = Vec::with_capacity(child.len());
        for tuple in child.tuples() {
            let scope = Env::new(env, &schema, tuple);
            let mut key_values = Vec::with_capacity(keys.len());
            for key in keys {
                key_values.push(self.eval_expr(&key.expr, Some(&scope))?);
            }
            keyed.push((key_values, tuple.clone()));
        }
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, key) in keys.iter().enumerate() {
                let ord = ka[i].sort_key(&kb[i]);
                let ord = if key.ascending { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(Relation::new(
            schema,
            keyed.into_iter().map(|(_, t)| t).collect(),
        )?)
    }

    fn execute_join(
        &self,
        left: &Plan,
        right: &Plan,
        kind: JoinKind,
        condition: &Expr,
        env: Option<&Env<'_>>,
    ) -> Result<Relation> {
        let l = self.execute_with_env(left, env)?;
        let r = self.execute_with_env(right, env)?;
        let l_schema = l.schema().clone();
        let r_schema = r.schema().clone();
        let out_schema = l_schema.concat(&r_schema);
        let mut out = Relation::empty(out_schema.clone());

        let equi_keys = if condition.has_sublink() {
            Vec::new()
        } else {
            extract_equi_keys(condition, &l_schema, &r_schema)
        };

        if !equi_keys.is_empty() {
            // Hash join: bucket the right side by its key values. Rows with a
            // NULL key under a plain (non-null-safe) equality can never
            // match and are dropped from the hash table / probe.
            let mut buckets: HashMap<Vec<u8>, Vec<&Tuple>> = HashMap::new();
            'right: for rt in r.tuples() {
                let scope = Env::new(env, &r_schema, rt);
                let mut key_values = Vec::with_capacity(equi_keys.len());
                for key in &equi_keys {
                    let v = self.eval_expr(&key.right, Some(&scope))?;
                    if v.is_null() && !key.null_safe {
                        continue 'right;
                    }
                    key_values.push(v);
                }
                buckets.entry(encode_key(&key_values)).or_default().push(rt);
            }
            let empty: Vec<&Tuple> = Vec::new();
            for lt in l.tuples() {
                let scope = Env::new(env, &l_schema, lt);
                let mut key_values = Vec::with_capacity(equi_keys.len());
                let mut has_null_key = false;
                for key in &equi_keys {
                    let v = self.eval_expr(&key.left, Some(&scope))?;
                    if v.is_null() && !key.null_safe {
                        has_null_key = true;
                        break;
                    }
                    key_values.push(v);
                }
                let candidates = if has_null_key {
                    &empty
                } else {
                    buckets.get(&encode_key(&key_values)).unwrap_or(&empty)
                };
                let mut matched = false;
                for rt in candidates {
                    let joined = lt.concat(rt);
                    let scope = Env::new(env, &out_schema, &joined);
                    if self.eval_predicate(condition, Some(&scope))?.is_true() {
                        matched = true;
                        out.push_unchecked(joined);
                    }
                }
                if !matched && kind == JoinKind::LeftOuter {
                    out.push_unchecked(lt.concat(&Tuple::new(vec![Value::Null; r_schema.arity()])));
                }
            }
            return Ok(out);
        }

        // Nested-loop join (required when the condition carries sublinks,
        // e.g. the Jsub conditions of the Left strategy).
        for lt in l.tuples() {
            let mut matched = false;
            for rt in r.tuples() {
                let joined = lt.concat(rt);
                let scope = Env::new(env, &out_schema, &joined);
                if self.eval_predicate(condition, Some(&scope))?.is_true() {
                    matched = true;
                    out.push_unchecked(joined);
                }
            }
            if !matched && kind == JoinKind::LeftOuter {
                out.push_unchecked(lt.concat(&Tuple::new(vec![Value::Null; r_schema.arity()])));
            }
        }
        Ok(out)
    }

    fn execute_aggregate(
        &self,
        plan: &Plan,
        input: &Plan,
        group_by: &[perm_algebra::ProjectItem],
        aggregates: &[perm_algebra::AggregateExpr],
        env: Option<&Env<'_>>,
    ) -> Result<Relation> {
        let child = self.execute_with_env(input, env)?;
        let child_schema = child.schema().clone();
        let out_schema = plan.schema();

        // Group rows by the encoded grouping key.
        let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
        let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
        let make_accs = || -> Vec<Accumulator> {
            aggregates
                .iter()
                .map(|a| Accumulator::new(a.func, a.distinct))
                .collect()
        };

        // A global aggregation (no GROUP BY) over an empty input still
        // produces one tuple (e.g. `count(*)` = 0); seed the single group.
        if group_by.is_empty() {
            groups.push((Vec::new(), make_accs()));
            index.insert(Vec::new(), 0);
        }

        for tuple in child.tuples() {
            let scope = Env::new(env, &child_schema, tuple);
            let mut key_values = Vec::with_capacity(group_by.len());
            for g in group_by {
                key_values.push(self.eval_expr(&g.expr, Some(&scope))?);
            }
            let key = encode_key(&key_values);
            let group_index = match index.get(&key) {
                Some(&i) => i,
                None => {
                    groups.push((key_values, make_accs()));
                    index.insert(key, groups.len() - 1);
                    groups.len() - 1
                }
            };
            for (acc, agg_expr) in groups[group_index].1.iter_mut().zip(aggregates.iter()) {
                let value = match &agg_expr.arg {
                    Some(arg) => self.eval_expr(arg, Some(&scope))?,
                    None => Value::Int(1),
                };
                acc.update(&value);
            }
        }

        let mut out = Relation::empty(out_schema);
        for (key_values, accs) in groups {
            let mut row = key_values;
            for acc in &accs {
                row.push(acc.finish());
            }
            out.push_unchecked(Tuple::new(row));
        }
        Ok(out)
    }
}

/// One hash-join key pair: a left-side expression, a right-side expression
/// and whether the comparison is null-safe (`=n`, in which case NULL keys
/// match NULL keys instead of being dropped).
pub(crate) struct EquiKey {
    pub(crate) left: Expr,
    pub(crate) right: Expr,
    pub(crate) null_safe: bool,
}

/// Extracts equality conjuncts `colL = colR` (or `colL =n colR`) from a join
/// condition, where one side resolves only against the left schema and the
/// other only against the right schema.
pub(crate) fn extract_equi_keys(condition: &Expr, left: &Schema, right: &Schema) -> Vec<EquiKey> {
    let mut conjuncts = Vec::new();
    flatten_conjuncts(condition, &mut conjuncts);
    let mut keys = Vec::new();
    for c in conjuncts {
        if let Expr::Binary {
            op,
            left: a,
            right: b,
        } = c
        {
            let null_safe = match op {
                perm_algebra::BinaryOp::Cmp(perm_algebra::CompareOp::Eq) => false,
                perm_algebra::BinaryOp::NullSafeEq => true,
                _ => continue,
            };
            if let (Expr::Column { .. }, Expr::Column { .. }) = (a.as_ref(), b.as_ref()) {
                match (side_of(a, left, right), side_of(b, left, right)) {
                    (Some(Side::Left), Some(Side::Right)) => keys.push(EquiKey {
                        left: a.as_ref().clone(),
                        right: b.as_ref().clone(),
                        null_safe,
                    }),
                    (Some(Side::Right), Some(Side::Left)) => keys.push(EquiKey {
                        left: b.as_ref().clone(),
                        right: a.as_ref().clone(),
                        null_safe,
                    }),
                    _ => {}
                }
            }
        }
    }
    keys
}

#[derive(PartialEq)]
enum Side {
    Left,
    Right,
}

fn side_of(expr: &Expr, left: &Schema, right: &Schema) -> Option<Side> {
    if let Expr::Column { qualifier, name } = expr {
        let in_left = matches!(left.try_resolve(qualifier.as_deref(), name), Ok(Some(_)));
        let in_right = matches!(right.try_resolve(qualifier.as_deref(), name), Ok(Some(_)));
        match (in_left, in_right) {
            (true, false) => Some(Side::Left),
            (false, true) => Some(Side::Right),
            _ => None,
        }
    } else {
        None
    }
}

fn flatten_conjuncts<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::Binary {
        op: perm_algebra::BinaryOp::And,
        left,
        right,
    } = expr
    {
        flatten_conjuncts(left, out);
        flatten_conjuncts(right, out);
    } else {
        out.push(expr);
    }
}

/// Encodes a list of values into a hashable byte key.
///
/// **Invariant:** `encode_key` equality must *refine and be refined by*
/// [`Value::null_safe_eq`] on engine-reachable values, i.e. two value lists
/// encode to the same bytes exactly when they are pairwise `null_safe_eq`.
/// Both directions are load-bearing:
///
/// * *encode equal ⇒ null-safe equal* keeps memoized sublink results and
///   aggregate groups correct — a memo hit must only ever substitute the
///   result of a genuinely equal binding.
/// * *null-safe equal ⇒ encode equal* keeps hash joins complete — two
///   values that the engine's equality would match must land in the same
///   bucket, because only bucket-mates are rechecked against the full join
///   condition.
///
/// This is why `Int`, `Float`, `Date` **and `Bool`** share one *canonical
/// numeric* encoding: [`Value::null_safe_eq`] coerces all four numerically
/// (`Date(3) = Int(3)` and `Bool(true) = Int(1)` are both TRUE), so giving
/// any of them its own tag would make the encoding *finer* than the
/// engine's equality and silently drop cross-type join matches. The
/// canonical form is the value's [`Value::exact_int`] — the exact `i64` it
/// denotes — whenever it denotes one (that covers `Int`, `Date`, `Bool`,
/// integral in-range `Float`s, and in particular `±0.0`, which both denote
/// 0); only fractional or out-of-`i64`-range floats, which can never equal
/// an integer-valued value, fall back to raw `f64` bits under a separate
/// tag. Encoding integers exactly instead of through `as_f64` matters above
/// 2⁵³, where the `f64` view is lossy and would merge distinct GROUP BY
/// groups such as `Int(2⁵³)` and `Int(2⁵³ + 1)` — grouping uses the key as
/// the equality itself, with no recheck. The regression tests below pin
/// both directions down. (NaN never reaches a key: arithmetic errors out on
/// division by zero instead of producing one.)
pub(crate) fn encode_key(values: &[Value]) -> Vec<u8> {
    encode_key_impl(values, false)
}

/// Type-exact variant of [`encode_key`] used for sublink memo keys: every
/// value variant gets its own tag and its exact bit pattern, so key equality
/// means the bindings are *byte-identical*, not merely in the same
/// [`Value::null_safe_eq`] class. The memo substitutes one binding's cached
/// result for another's, with no recheck — a coarser key would conflate
/// `Int(3)` with `Float(3.0)` or `Date(3)`, whose sublink results can differ
/// in representation (string concatenation, date arithmetic). Extra
/// fineness only costs a memo miss, never correctness.
pub(crate) fn encode_key_typed(values: &[Value]) -> Vec<u8> {
    encode_key_impl(values, true)
}

fn encode_key_impl(values: &[Value], typed: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 9);
    for v in values {
        match v {
            Value::Null => out.push(0u8),
            Value::Bool(b) if typed => {
                out.push(1);
                out.push(*b as u8);
            }
            Value::Int(i) if typed => {
                out.push(4);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) if typed => {
                out.push(5);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Date(d) if typed => {
                out.push(6);
                out.extend_from_slice(&d.to_le_bytes());
            }
            Value::Bool(_) | Value::Int(_) | Value::Float(_) | Value::Date(_) => {
                // Canonical numeric form, see the invariant above: one exact
                // integer encoding for everything integer-valued, raw float
                // bits for the rest.
                match v.exact_int() {
                    Some(i) => {
                        out.push(2);
                        out.extend_from_slice(&i.to_le_bytes());
                    }
                    None => {
                        let f = v.as_f64().unwrap_or(0.0);
                        out.push(7);
                        out.extend_from_slice(&f.to_bits().to_le_bytes());
                    }
                }
            }
            Value::Str(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
    out
}

/// Three-valued truth helper re-exported for predicates in tests.
pub fn truth_of(value: &Value) -> Truth {
    value.as_truth()
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_algebra::builder::{
        self, all_sublink, any_sublink, col, count_star, eq, exists_sublink, lit, qcol,
        scalar_sublink, sum, PlanBuilder,
    };
    use perm_algebra::{CompareOp, ProjectItem, SetOpKind};
    use perm_storage::{Attribute, DataType};

    /// The example relations R(a,b) and S(c,d) from Figure 3 of the paper.
    fn figure3_db() -> Database {
        let mut db = Database::new();
        let r_schema = Schema::new(vec![
            Attribute::qualified("r", "a", DataType::Int),
            Attribute::qualified("r", "b", DataType::Int),
        ]);
        let s_schema = Schema::new(vec![
            Attribute::qualified("s", "c", DataType::Int),
            Attribute::qualified("s", "d", DataType::Int),
        ]);
        db.create_table(
            "r",
            Relation::from_rows(
                r_schema,
                vec![
                    vec![Value::Int(1), Value::Int(1)],
                    vec![Value::Int(2), Value::Int(1)],
                    vec![Value::Int(3), Value::Int(2)],
                ],
            ),
        )
        .unwrap();
        db.create_table(
            "s",
            Relation::from_rows(
                s_schema,
                vec![
                    vec![Value::Int(1), Value::Int(3)],
                    vec![Value::Int(2), Value::Int(4)],
                    vec![Value::Int(4), Value::Int(5)],
                ],
            ),
        )
        .unwrap();
        db
    }

    fn run(db: &Database, plan: &Plan) -> Relation {
        Executor::new(db).execute(plan).unwrap()
    }

    #[test]
    fn scan_select_project() {
        let db = figure3_db();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(eq(col("a"), lit(3)))
            .project_columns(&["b"])
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 1);
        assert_eq!(result.tuples()[0], Tuple::new(vec![Value::Int(2)]));
    }

    #[test]
    fn projection_bag_vs_set() {
        let db = figure3_db();
        let bag = PlanBuilder::scan(&db, "r")
            .unwrap()
            .project_columns(&["b"])
            .build();
        assert_eq!(run(&db, &bag).len(), 3);
        let set = PlanBuilder::scan(&db, "r")
            .unwrap()
            .project_distinct(vec![ProjectItem::column("b")])
            .build();
        assert_eq!(run(&db, &set).len(), 2);
    }

    #[test]
    fn cross_product_and_join() {
        let db = figure3_db();
        let s = PlanBuilder::scan(&db, "s").unwrap().build();
        let cross = PlanBuilder::scan(&db, "r")
            .unwrap()
            .cross(s.clone())
            .build();
        assert_eq!(run(&db, &cross).len(), 9);
        let join = PlanBuilder::scan(&db, "r")
            .unwrap()
            .join(s, eq(col("a"), col("c")))
            .build();
        let result = run(&db, &join);
        assert_eq!(result.len(), 2); // a=1 matches c=1, a=2 matches c=2
    }

    #[test]
    fn left_outer_join_pads_with_nulls() {
        let db = figure3_db();
        let s = PlanBuilder::scan(&db, "s").unwrap().build();
        let join = PlanBuilder::scan(&db, "r")
            .unwrap()
            .left_join(s, eq(col("a"), col("c")))
            .build();
        let result = run(&db, &join);
        assert_eq!(result.len(), 3);
        let unmatched: Vec<&Tuple> = result
            .tuples()
            .iter()
            .filter(|t| t.get(0) == &Value::Int(3))
            .collect();
        assert_eq!(unmatched.len(), 1);
        assert!(unmatched[0].get(2).is_null());
        assert!(unmatched[0].get(3).is_null());
    }

    #[test]
    fn join_with_non_equi_condition_uses_nested_loop() {
        let db = figure3_db();
        let s = PlanBuilder::scan(&db, "s").unwrap().build();
        let join = PlanBuilder::scan(&db, "r")
            .unwrap()
            .join(s, builder::cmp(CompareOp::Lt, col("a"), col("c")))
            .build();
        let result = run(&db, &join);
        // pairs with a < c: (1,*)x(2,4),(4,5) ; (2,*)x(4,5); (3,*)x(4,5)
        assert_eq!(result.len(), 4);
    }

    #[test]
    fn aggregate_with_and_without_groups() {
        let db = figure3_db();
        let global = PlanBuilder::scan(&db, "r")
            .unwrap()
            .aggregate(vec![], vec![sum(col("a"), "sum_a"), count_star("cnt")])
            .build();
        let result = run(&db, &global);
        assert_eq!(result.len(), 1);
        assert_eq!(
            result.tuples()[0],
            Tuple::new(vec![Value::Int(6), Value::Int(3)])
        );

        let grouped = PlanBuilder::scan(&db, "r")
            .unwrap()
            .aggregate(vec![ProjectItem::column("b")], vec![sum(col("a"), "sum_a")])
            .build();
        let result = run(&db, &grouped);
        assert_eq!(result.len(), 2);
        let mut rows = result.sorted_tuples();
        rows.sort_by(|x, y| x.sort_key(y));
        assert_eq!(rows[0], Tuple::new(vec![Value::Int(1), Value::Int(3)]));
        assert_eq!(rows[1], Tuple::new(vec![Value::Int(2), Value::Int(3)]));
    }

    #[test]
    fn aggregate_over_empty_input_produces_single_row_without_groups() {
        let db = figure3_db();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(eq(col("a"), lit(999)))
            .aggregate(vec![], vec![count_star("cnt"), sum(col("a"), "s")])
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 1);
        assert_eq!(result.tuples()[0].get(0), &Value::Int(0));
        assert!(result.tuples()[0].get(1).is_null());
    }

    #[test]
    fn set_operations() {
        let db = figure3_db();
        let r1 = PlanBuilder::scan(&db, "r")
            .unwrap()
            .project_columns(&["b"])
            .build();
        let r2 = PlanBuilder::scan(&db, "r")
            .unwrap()
            .project_columns(&["b"])
            .build();
        let union_all = PlanBuilder::from_plan(r1.clone())
            .set_op(SetOpKind::Union, true, r2.clone())
            .build();
        assert_eq!(run(&db, &union_all).len(), 6);
        let union = PlanBuilder::from_plan(r1.clone())
            .set_op(SetOpKind::Union, false, r2.clone())
            .build();
        assert_eq!(run(&db, &union).len(), 2);
        let except = PlanBuilder::from_plan(r1)
            .set_op(SetOpKind::Except, true, r2)
            .build();
        assert_eq!(run(&db, &except).len(), 0);
    }

    #[test]
    fn sort_and_limit() {
        let db = figure3_db();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .sort(vec![SortKey::desc(col("a"))])
            .limit(2)
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 2);
        assert_eq!(result.tuples()[0].get(0), &Value::Int(3));
        assert_eq!(result.tuples()[1].get(0), &Value::Int(2));
    }

    #[test]
    fn uncorrelated_any_sublink_in_selection() {
        let db = figure3_db();
        // q1 from Figure 3: σ_{a = ANY(Π_c(S))}(R)
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .project_columns(&["c"])
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(any_sublink(col("a"), CompareOp::Eq, sub))
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 2);
        assert!(result.contains(&Tuple::new(vec![Value::Int(1), Value::Int(1)])));
        assert!(result.contains(&Tuple::new(vec![Value::Int(2), Value::Int(1)])));
    }

    #[test]
    fn uncorrelated_all_sublink_in_selection() {
        let db = figure3_db();
        // q2 from Figure 3: σ_{c > ALL(Π_a(R))}(S) — only (4,5) qualifies.
        let sub = PlanBuilder::scan(&db, "r")
            .unwrap()
            .project_columns(&["a"])
            .build();
        let q = PlanBuilder::scan(&db, "s")
            .unwrap()
            .select(all_sublink(col("c"), CompareOp::Gt, sub))
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 1);
        assert_eq!(
            result.tuples()[0],
            Tuple::new(vec![Value::Int(4), Value::Int(5)])
        );
    }

    #[test]
    fn correlated_exists_sublink() {
        let db = figure3_db();
        // σ_{EXISTS(σ_{c = a}(S))}(R): rows of R whose a appears as S.c.
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .select(eq(col("c"), qcol("r", "a")))
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(exists_sublink(sub))
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 2);
        assert!(!result.contains(&Tuple::new(vec![Value::Int(3), Value::Int(2)])));
    }

    #[test]
    fn correlated_scalar_sublink_in_projection() {
        let db = figure3_db();
        // Π_{a, (σ_{c=b}(Π_c(S)))}(R): the scalar sublink returns the single
        // matching c or NULL.
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .select(eq(col("c"), qcol("r", "b")))
            .project_columns(&["c"])
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .project(vec![
                ProjectItem::column("a"),
                ProjectItem::new(scalar_sublink(sub), "match_c"),
            ])
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 3);
        let rows = result.sorted_tuples();
        assert_eq!(rows[0], Tuple::new(vec![Value::Int(1), Value::Int(1)]));
        assert_eq!(rows[1], Tuple::new(vec![Value::Int(2), Value::Int(1)]));
        assert_eq!(rows[2], Tuple::new(vec![Value::Int(3), Value::Int(2)]));
    }

    #[test]
    fn scalar_sublink_cardinality_violation_is_an_error() {
        let db = figure3_db();
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .project_columns(&["c"])
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .project(vec![ProjectItem::new(scalar_sublink(sub), "x")])
            .build();
        let err = Executor::new(&db).execute(&q).unwrap_err();
        assert!(matches!(err, ExecError::ScalarSublinkCardinality(_)));
    }

    #[test]
    fn nested_sublinks() {
        let db = figure3_db();
        // σ_{a = ANY(σ_{c = ANY(Π_d(S))}(Π_c(S)))}(R):
        // inner: c values that appear among d values of S -> {4}
        // outer: rows of R with a = 4 -> none. Then with d replaced by c the
        // middle level keeps all c's -> rows with a ∈ {1,2,4} -> 2 rows.
        let inner = PlanBuilder::scan_as(&db, "s", Some("s2"))
            .unwrap()
            .project_columns(&["d"])
            .build();
        let middle = PlanBuilder::scan(&db, "s")
            .unwrap()
            .select(any_sublink(col("c"), CompareOp::Eq, inner))
            .project_columns(&["c"])
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(any_sublink(col("a"), CompareOp::Eq, middle))
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 0);
    }

    #[test]
    fn null_semantics_in_any_sublink() {
        // NOT IN with NULLs: x NOT IN (…, NULL, …) is never TRUE when no
        // element matches — the classic three-valued-logic trap.
        let mut db = Database::new();
        db.create_table(
            "t",
            Relation::from_rows(
                Schema::from_names(&["x"]),
                vec![vec![Value::Int(1)], vec![Value::Int(5)]],
            ),
        )
        .unwrap();
        db.create_table(
            "u",
            Relation::from_rows(
                Schema::from_names(&["y"]),
                vec![vec![Value::Int(1)], vec![Value::Null]],
            ),
        )
        .unwrap();
        let sub = PlanBuilder::scan(&db, "u").unwrap().build();
        let q = PlanBuilder::scan(&db, "t")
            .unwrap()
            .select(builder::not(any_sublink(col("x"), CompareOp::Eq, sub)))
            .build();
        let result = run(&db, &q);
        assert_eq!(result.len(), 0, "x NOT IN (1, NULL) must never be TRUE");
    }

    #[test]
    fn empty_sublink_results() {
        let db = figure3_db();
        let empty_sub = || {
            PlanBuilder::scan(&db, "s")
                .unwrap()
                .select(eq(col("c"), lit(999)))
                .project_columns(&["c"])
                .build()
        };
        // ANY over empty is FALSE, ALL over empty is TRUE, EXISTS is FALSE.
        let any_q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(any_sublink(col("a"), CompareOp::Eq, empty_sub()))
            .build();
        assert_eq!(run(&db, &any_q).len(), 0);
        let all_q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(all_sublink(col("a"), CompareOp::Eq, empty_sub()))
            .build();
        assert_eq!(run(&db, &all_q).len(), 3);
        let exists_q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(exists_sublink(empty_sub()))
            .build();
        assert_eq!(run(&db, &exists_q).len(), 0);
    }

    #[test]
    fn values_plan_is_materialised() {
        let db = Database::new();
        let plan = Plan::Values {
            schema: Schema::from_names(&["x"]),
            rows: vec![
                Tuple::new(vec![Value::Int(7)]),
                Tuple::new(vec![Value::Null]),
            ],
        };
        let result = Executor::new(&db).execute(&plan).unwrap();
        assert_eq!(result.len(), 2);
    }

    /// `encode_key` regression tests: key equality must coincide with
    /// `null_safe_eq` (see the invariant on [`encode_key`]). The engine's
    /// equality coerces `Date` numerically, so a `Date`/`Int` hash join must
    /// find its matches and a `Date`/`Int` group-by must merge its groups —
    /// this is exactly why all numerics share one canonical encoding instead
    /// of per-type tags — while distinct integers above 2⁵³ must *keep*
    /// distinct keys even though their `f64` views collide.
    #[test]
    fn encode_key_coincides_with_null_safe_eq() {
        const TWO_53: i64 = 1 << 53;
        let same = [
            (Value::Int(3), Value::Float(3.0)),
            (Value::Int(3), Value::Date(3)),
            (Value::Float(3.0), Value::Date(3)),
            (Value::Float(0.0), Value::Float(-0.0)),
            (Value::Bool(true), Value::Int(1)),
            (Value::Bool(false), Value::Float(0.0)),
            (Value::Int(TWO_53), Value::Float(TWO_53 as f64)),
            (Value::Float(0.5), Value::Float(0.5)),
            (Value::Null, Value::Null),
        ];
        for (a, b) in same {
            assert!(a.null_safe_eq(&b), "{a:?} vs {b:?}");
            assert_eq!(
                encode_key(std::slice::from_ref(&a)),
                encode_key(std::slice::from_ref(&b)),
                "{a:?} vs {b:?} must share a key"
            );
        }
        let different = [
            (Value::Int(3), Value::Int(4)),
            (Value::Int(3), Value::Null),
            (Value::str("3"), Value::Int(3)),
            (Value::Date(3), Value::Date(4)),
            (Value::Bool(true), Value::Int(0)),
            (Value::Bool(true), Value::Bool(false)),
            // Above 2⁵³ the f64 view of an i64 is lossy: these pairs agree
            // in `as_f64` but denote distinct integers, and must keep
            // distinct keys (a shared key would merge their GROUP BY
            // groups, which use the key as the equality with no recheck).
            (Value::Int(TWO_53), Value::Int(TWO_53 + 1)),
            (Value::Int(TWO_53 + 1), Value::Float(TWO_53 as f64)),
            (Value::Int(i64::MAX), Value::Float(TWO_53 as f64 * 1024.0)),
            (Value::Int(3), Value::Float(3.5)),
        ];
        for (a, b) in different {
            assert!(!a.null_safe_eq(&b), "{a:?} vs {b:?}");
            assert_ne!(
                encode_key(std::slice::from_ref(&a)),
                encode_key(std::slice::from_ref(&b)),
                "{a:?} vs {b:?} must not share a key"
            );
        }
    }

    #[test]
    fn group_by_keeps_large_ints_distinct() {
        // Int(2⁵³) and Int(2⁵³ + 1) share an f64 view but are distinct
        // values; a lossy grouping key would merge their groups.
        const TWO_53: i64 = 1 << 53;
        let mut db = Database::new();
        db.create_table(
            "t",
            Relation::from_rows(
                Schema::new(vec![Attribute::qualified("t", "x", DataType::Int)]),
                vec![
                    vec![Value::Int(TWO_53)],
                    vec![Value::Int(TWO_53 + 1)],
                    vec![Value::Int(TWO_53)],
                ],
            ),
        )
        .unwrap();
        let q = PlanBuilder::scan(&db, "t")
            .unwrap()
            .aggregate(vec![ProjectItem::column("x")], vec![count_star("n")])
            .build();
        for result in [
            Executor::new(&db).execute(&q).unwrap(),
            Executor::new(&db).execute_unoptimized(&q).unwrap(),
        ] {
            assert_eq!(result.len(), 2);
            let mut groups: Vec<(i64, i64)> = result
                .tuples()
                .iter()
                .map(|t| match (t.get(0), t.get(1)) {
                    (Value::Int(x), Value::Int(n)) => (*x, *n),
                    other => panic!("unexpected group row {other:?}"),
                })
                .collect();
            groups.sort_unstable();
            assert_eq!(groups, vec![(TWO_53, 2), (TWO_53 + 1, 1)]);
        }
    }

    #[test]
    fn hash_join_matches_date_keys_against_int_keys() {
        let mut db = Database::new();
        db.create_table(
            "d",
            Relation::from_rows(
                Schema::new(vec![Attribute::qualified("d", "day", DataType::Date)]),
                vec![vec![Value::Date(3)], vec![Value::Date(9)]],
            ),
        )
        .unwrap();
        db.create_table(
            "n",
            Relation::from_rows(
                Schema::new(vec![Attribute::qualified("n", "num", DataType::Int)]),
                vec![vec![Value::Int(3)], vec![Value::Int(7)]],
            ),
        )
        .unwrap();
        let join = PlanBuilder::scan(&db, "d")
            .unwrap()
            .join(
                PlanBuilder::scan(&db, "n").unwrap().build(),
                eq(col("day"), col("num")),
            )
            .build();
        // The condition is a column-to-column equality, so this runs as a
        // hash join; the Date(3)/Int(3) pair must meet in one bucket because
        // the engine's equality coerces dates numerically.
        let hashed = run(&db, &join);
        assert_eq!(hashed.len(), 1);
        assert_eq!(
            hashed.tuples()[0],
            Tuple::new(vec![Value::Date(3), Value::Int(3)])
        );
        // Cross-check against the nested-loop path (interpreter, no fusing,
        // non-equi shape): σ_{day = num}(d × n) via a literal-guarded
        // condition would defeat key extraction; simpler is comparing with
        // the unoptimized interpreter on the same plan, which also hashes —
        // so force a nested loop by OR-ing an always-false disjunct.
        let nested = PlanBuilder::scan(&db, "d")
            .unwrap()
            .join(
                PlanBuilder::scan(&db, "n").unwrap().build(),
                builder::or(eq(col("day"), col("num")), eq(lit(1), lit(2))),
            )
            .build();
        assert!(run(&db, &nested).bag_eq(&hashed));
    }

    #[test]
    fn aggregate_groups_date_keys_with_equal_int_keys() {
        let mut db = Database::new();
        db.create_table(
            "m",
            Relation::from_rows(
                Schema::new(vec![
                    Attribute::qualified("m", "k", DataType::Any),
                    Attribute::qualified("m", "v", DataType::Int),
                ]),
                vec![
                    vec![Value::Date(3), Value::Int(10)],
                    vec![Value::Int(3), Value::Int(20)],
                    vec![Value::Float(3.0), Value::Int(30)],
                    vec![Value::Int(4), Value::Int(40)],
                ],
            ),
        )
        .unwrap();
        let q = PlanBuilder::scan(&db, "m")
            .unwrap()
            .aggregate(vec![ProjectItem::column("k")], vec![sum(col("v"), "s")])
            .build();
        let result = run(&db, &q);
        // Date(3), Int(3) and Float(3.0) are null_safe_eq-equal and must
        // land in one group.
        assert_eq!(result.len(), 2);
        let sums: Vec<i64> = result
            .tuples()
            .iter()
            .map(|t| match t.get(1) {
                Value::Int(i) => *i,
                other => panic!("expected int sum, got {other:?}"),
            })
            .collect();
        assert!(sums.contains(&60) && sums.contains(&40));
    }

    #[test]
    fn sublink_cache_reuses_uncorrelated_results() {
        let db = figure3_db();
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .project_columns(&["c"])
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(any_sublink(col("a"), CompareOp::Eq, sub))
            .build();
        let ex = Executor::new(&db);
        ex.execute(&q).unwrap();
        // The uncorrelated sublink plan (project over scan) is evaluated only
        // once even though R has three tuples: scan r + select + (project +
        // scan s) = 4 operator invocations.
        assert_eq!(ex.operators_evaluated(), 4);
    }
}
