//! Scalar function implementations: `LIKE` pattern matching and the built-in
//! functions needed by the TPC-H sublink queries.

use crate::{ExecError, Result};
use perm_storage::{civil_from_days, Truth, Value};

/// SQL `LIKE` matching with `%` (any sequence) and `_` (any single
/// character) wildcards. Returns [`Truth::Unknown`] when either operand is
/// NULL.
pub fn sql_like(value: &Value, pattern: &Value) -> Truth {
    match (value, pattern) {
        (Value::Null, _) | (_, Value::Null) => Truth::Unknown,
        (Value::Str(v), Value::Str(p)) => Truth::from_bool(like_match(v, p)),
        _ => Truth::False,
    }
}

/// Core `LIKE` matcher over string slices (greedy backtracking on `%`).
pub fn like_match(value: &str, pattern: &str) -> bool {
    let v: Vec<char> = value.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    like_rec(&v, &p)
}

fn like_rec(v: &[char], p: &[char]) -> bool {
    match p.first() {
        None => v.is_empty(),
        Some('%') => {
            // `%` matches any (possibly empty) sequence.
            (0..=v.len()).any(|skip| like_rec(&v[skip..], &p[1..]))
        }
        Some('_') => !v.is_empty() && like_rec(&v[1..], &p[1..]),
        Some(c) => !v.is_empty() && v[0] == *c && like_rec(&v[1..], &p[1..]),
    }
}

/// `substring(s, start, len)` with SQL's 1-based `start`.
pub fn substring(s: &Value, start: &Value, len: Option<&Value>) -> Result<Value> {
    if s.is_null() || start.is_null() || len.map(|l| l.is_null()).unwrap_or(false) {
        return Ok(Value::Null);
    }
    let text = s
        .as_str()
        .ok_or_else(|| ExecError::Type("substring expects a string".into()))?;
    let start = start
        .as_i64()
        .ok_or_else(|| ExecError::Type("substring start must be numeric".into()))?;
    let chars: Vec<char> = text.chars().collect();
    let begin = (start.max(1) - 1) as usize;
    if begin >= chars.len() {
        return Ok(Value::str(""));
    }
    let end = match len {
        None => chars.len(),
        Some(l) => {
            let l = l
                .as_i64()
                .ok_or_else(|| ExecError::Type("substring length must be numeric".into()))?;
            (begin + l.max(0) as usize).min(chars.len())
        }
    };
    Ok(Value::str(chars[begin..end].iter().collect::<String>()))
}

/// `abs(x)`.
pub fn abs(v: &Value) -> Result<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Int(i) => Ok(Value::Int(i.abs())),
        Value::Float(f) => Ok(Value::Float(f.abs())),
        _ => Err(ExecError::Type("abs expects a number".into())),
    }
}

/// `coalesce(a, b, …)`: the first non-NULL argument (NULL if all are NULL).
pub fn coalesce(args: &[Value]) -> Value {
    args.iter()
        .find(|v| !v.is_null())
        .cloned()
        .unwrap_or(Value::Null)
}

/// `lower(s)` / `upper(s)`.
pub fn change_case(v: &Value, upper: bool) -> Result<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Str(s) => Ok(Value::Str(if upper {
            s.to_uppercase()
        } else {
            s.to_lowercase()
        })),
        _ => Err(ExecError::Type("lower/upper expects a string".into())),
    }
}

/// `length(s)` in characters.
pub fn length(v: &Value) -> Result<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
        _ => Err(ExecError::Type("length expects a string".into())),
    }
}

/// `date('YYYY-MM-DD')`: parses a string (or passes a date through).
pub fn to_date(v: &Value) -> Result<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Date(_) => Ok(v.clone()),
        Value::Str(s) => Value::parse_date(s)
            .ok_or_else(|| ExecError::Type(format!("invalid date literal `{s}`"))),
        _ => Err(ExecError::Type("date expects a string".into())),
    }
}

/// `year(d)`: extracts the year of a date value.
pub fn year(v: &Value) -> Result<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Date(d) => {
            let (y, _, _) = civil_from_days(*d as i64);
            Ok(Value::Int(y))
        }
        _ => Err(ExecError::Type("year expects a date".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_wildcards() {
        assert!(like_match("BRASS", "%RASS"));
        assert!(like_match("STANDARD BRUSHED BRASS", "%BRASS"));
        assert!(like_match("abc", "abc"));
        assert!(like_match("abc", "a_c"));
        assert!(like_match("abc", "%"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", "a_d"));
        assert!(!like_match("abc", "abcd"));
        assert!(like_match("MEDIUM POLISHED", "MEDIUM POLISHED%"));
        assert!(!like_match("SMALL POLISHED", "MEDIUM POLISHED%"));
        assert!(like_match("promo burnished", "%promo%"));
    }

    #[test]
    fn like_null_is_unknown() {
        assert_eq!(sql_like(&Value::Null, &Value::str("%")), Truth::Unknown);
        assert_eq!(sql_like(&Value::str("x"), &Value::str("x")), Truth::True);
    }

    #[test]
    fn substring_is_one_based() {
        let s = Value::str("Customer#000001");
        assert_eq!(
            substring(&s, &Value::Int(1), Some(&Value::Int(8))).unwrap(),
            Value::str("Customer")
        );
        assert_eq!(
            substring(&Value::str("13-345"), &Value::Int(1), Some(&Value::Int(2))).unwrap(),
            Value::str("13")
        );
        assert_eq!(
            substring(&Value::str("abc"), &Value::Int(5), Some(&Value::Int(2))).unwrap(),
            Value::str("")
        );
        assert_eq!(
            substring(&Value::Null, &Value::Int(1), None).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn coalesce_picks_first_non_null() {
        assert_eq!(
            coalesce(&[Value::Null, Value::Int(3), Value::Int(4)]),
            Value::Int(3)
        );
        assert_eq!(coalesce(&[Value::Null, Value::Null]), Value::Null);
        assert_eq!(coalesce(&[]), Value::Null);
    }

    #[test]
    fn date_and_year() {
        let d = to_date(&Value::str("1995-06-17")).unwrap();
        assert_eq!(year(&d).unwrap(), Value::Int(1995));
        assert!(to_date(&Value::str("bogus")).is_err());
    }

    #[test]
    fn abs_and_case_and_length() {
        assert_eq!(abs(&Value::Int(-3)).unwrap(), Value::Int(3));
        assert_eq!(abs(&Value::Float(-2.5)).unwrap(), Value::Float(2.5));
        assert_eq!(
            change_case(&Value::str("AbC"), false).unwrap(),
            Value::str("abc")
        );
        assert_eq!(
            change_case(&Value::str("AbC"), true).unwrap(),
            Value::str("ABC")
        );
        assert_eq!(length(&Value::str("hello")).unwrap(), Value::Int(5));
        assert_eq!(length(&Value::Null).unwrap(), Value::Null);
    }
}
