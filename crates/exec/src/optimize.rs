//! The optimizer layer between bind/rewrite and compile: cost-free,
//! semantics-preserving rewrite rules over the bound algebra.
//!
//! The headline rule is **sublink decorrelation**: `EXISTS` / `NOT EXISTS` /
//! `IN` / `= ANY` sublinks appearing as top-level conjuncts of a selection
//! are unnested into hash semi joins (`⋉`) and anti joins (`▷`) over the
//! sublink's body, with the correlated comparison conjuncts hoisted into the
//! join condition. This is the static counterpart of the runtime binding
//! memo: where the memo re-executes the sublink once per distinct outer
//! binding, the decorrelated plan executes the body exactly once and lets
//! the (hash) join machinery distribute it over the outer rows. Shapes the
//! rule cannot prove safe — scalar sublinks, `ALL`, negated `ANY`,
//! non-comparison correlation, correlation that crosses more than one scope
//! — are left untouched and keep the memo path.
//!
//! Supporting rules in the same fixpoint driver: constant folding over
//! predicates, predicate pushdown through projections / `INTERSECT` /
//! `EXCEPT` / semi- and anti-join probe sides, and projection pruning off
//! column liveness.
//!
//! # Equivalence discipline
//!
//! Every rule preserves three observables of the reference interpreter
//! ([`crate::Executor::execute_unoptimized`]):
//!
//! 1. **Result bags** (and therefore provenance witness bags — the
//!    provenance rewrite runs *before* the optimizer, so witness attributes
//!    are ordinary columns here).
//! 2. **The error set.** The engine's `AND` evaluates its right operand
//!    when the left is `UNKNOWN` (only `FALSE` short-circuits), so moving,
//!    dropping, or re-ordering a conjunct changes *which expressions are
//!    evaluated on which rows*. Rules therefore only move expressions that
//!    are *total* (see `expr_is_total`) — provably unable to raise an evaluation
//!    error — unless the move provably keeps the evaluation set intact
//!    (e.g. an `EXISTS` verdict is never `UNKNOWN`, so a leading `EXISTS`
//!    conjunct gates its successors exactly like the semi join it becomes).
//! 3. **Operator invocations**: no rule may increase
//!    `operators_evaluated` on a plan it fires on; decorrelation lowers it
//!    on every correlated point with more than a handful of bindings.
//!
//! The differential suites enforce all three over the full random corpus
//! (optimizer-on vs optimizer-off, result and witness bags bag-identical).

use perm_algebra::builder::{cmp, conjunction};
use perm_algebra::expr::{BinaryOp, CompareOp, UnaryOp};
use perm_algebra::visit::{free_columns, free_expr_columns};
use perm_algebra::{AggFunc, Expr, JoinKind, Plan, ProjectItem, SublinkKind};
use perm_storage::{Schema, Value};

/// Upper bound on fixpoint iterations; each pass applies every rule once.
const MAX_PASSES: usize = 4;

/// What the optimizer did to one plan: per-rule fire counts, reported
/// through `SessionStats` and rendered by `EXPLAIN`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptimizerReport {
    /// Sublinks unnested into semi/anti joins.
    pub sublinks_decorrelated: u64,
    /// Constant subexpressions folded (including selections proven
    /// always-true or always-false).
    pub constants_folded: u64,
    /// Selections pushed through a projection, set operation, or semi/anti
    /// join probe side.
    pub predicates_pushed: u64,
    /// Projections narrowed by the liveness pass.
    pub projections_pruned: u64,
    /// Fixpoint passes run (diagnostic).
    pub passes: u64,
}

impl OptimizerReport {
    /// Total rule applications across all rules.
    pub fn rules_fired(&self) -> u64 {
        self.sublinks_decorrelated
            + self.constants_folded
            + self.predicates_pushed
            + self.projections_pruned
    }

    /// One-line human-readable summary (`decorrelate×2 pushdown×1`), or
    /// `"no rules fired"`.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        for (name, n) in [
            ("decorrelate", self.sublinks_decorrelated),
            ("fold", self.constants_folded),
            ("pushdown", self.predicates_pushed),
            ("prune", self.projections_pruned),
        ] {
            if n > 0 {
                parts.push(format!("{name}×{n}"));
            }
        }
        if parts.is_empty() {
            "no rules fired".to_string()
        } else {
            parts.join(" ")
        }
    }
}

/// Optimizes a bound (or provenance-rewritten) plan. Pure plan-to-plan:
/// the input is the reference shape, the output is what gets compiled.
pub fn optimize(plan: &Plan) -> (Plan, OptimizerReport) {
    let mut rep = OptimizerReport::default();
    let mut fresh = 0usize;
    let mut current = plan.clone();
    for _ in 0..MAX_PASSES {
        let before = current.clone();
        current = fold_pass(&current, &mut rep);
        current = decorrelate_pass(&current, &[], &mut rep, &mut fresh);
        current = pushdown_pass(&current, &mut rep);
        current = prune_pass(&current, None, &mut rep);
        rep.passes += 1;
        if current == before {
            break;
        }
    }
    (current, rep)
}

/// A stable structural fingerprint of the operator tree (FNV-1a over the
/// operator tags, join/set-op kinds, expression renderings, and sublink
/// plans), recorded in bench rows so measured speedups are attributable to
/// plan-shape changes. Stable across processes: nothing address- or
/// hash-map-ordering-dependent goes into it.
pub fn plan_fingerprint(plan: &Plan) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    fingerprint_into(plan, &mut h);
    h
}

fn fnv1a_step(h: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *h ^= u64::from(*b);
        *h = h.wrapping_mul(0x1000_0000_01b3);
    }
}

fn fingerprint_into(plan: &Plan, h: &mut u64) {
    let tag: &str = match plan {
        Plan::Scan { table, alias, .. } => {
            fnv1a_step(h, b"scan:");
            fnv1a_step(h, table.as_bytes());
            if let Some(a) = alias {
                fnv1a_step(h, a.as_bytes());
            }
            return;
        }
        Plan::Values { rows, .. } => {
            fnv1a_step(h, b"values:");
            fnv1a_step(h, &(rows.len() as u64).to_le_bytes());
            return;
        }
        Plan::Project { distinct, .. } => {
            if *distinct {
                "project-distinct"
            } else {
                "project"
            }
        }
        Plan::Select { .. } => "select",
        Plan::CrossProduct { .. } => "cross",
        Plan::Join { kind, .. } => match kind {
            JoinKind::Inner => "join-inner",
            JoinKind::LeftOuter => "join-left",
            JoinKind::Semi => "join-semi",
            JoinKind::Anti => "join-anti",
        },
        Plan::Aggregate { .. } => "aggregate",
        Plan::SetOp { op, all, .. } => match (op, all) {
            (perm_algebra::SetOpKind::Union, true) => "union-all",
            (perm_algebra::SetOpKind::Union, false) => "union",
            (perm_algebra::SetOpKind::Intersect, true) => "intersect-all",
            (perm_algebra::SetOpKind::Intersect, false) => "intersect",
            (perm_algebra::SetOpKind::Except, true) => "except-all",
            (perm_algebra::SetOpKind::Except, false) => "except",
        },
        Plan::Sort { .. } => "sort",
        Plan::Limit { .. } => "limit",
    };
    fnv1a_step(h, tag.as_bytes());
    fnv1a_step(h, b"(");
    for expr in plan.expressions() {
        fnv1a_step(h, expr.to_string().as_bytes());
        for sub in expr.sublinks() {
            if let Expr::Sublink { plan: sp, .. } = sub {
                fnv1a_step(h, b"[");
                fingerprint_into(sp, h);
                fnv1a_step(h, b"]");
            }
        }
    }
    for child in plan.children() {
        fnv1a_step(h, b",");
        fingerprint_into(child, h);
    }
    fnv1a_step(h, b")");
}

// ---------------------------------------------------------------------------
// Totality analysis
// ---------------------------------------------------------------------------

/// How a column reference resolves against a scope chain (innermost first),
/// mirroring [`crate::eval::Env::lookup`]: the first scope that knows the
/// name wins, ambiguity *within* a scope is an evaluation error.
fn resolves(scopes: &[Schema], qualifier: Option<&str>, name: &str) -> bool {
    for scope in scopes {
        match scope.try_resolve(qualifier, name) {
            Ok(Some(_)) => return true,
            Ok(None) => continue,
            Err(_) => return false,
        }
    }
    false
}

/// `true` when evaluating `expr` under the scope chain `scopes` (innermost
/// first) can never raise an error, for any row. This is the contract that
/// lets a rule move the expression to a place where it is evaluated on a
/// different set of rows. Deliberately conservative: arithmetic (division,
/// overflow-checked ops), function calls, parameters (which may be unbound)
/// and scalar sublinks (cardinality errors) are never total.
pub(crate) fn expr_is_total(expr: &Expr, scopes: &[Schema]) -> bool {
    match expr {
        Expr::Column { qualifier, name } => resolves(scopes, qualifier.as_deref(), name),
        Expr::Literal(_) => true,
        Expr::Param(_) => false,
        Expr::Binary { op, left, right } => {
            let ops_total = matches!(
                op,
                BinaryOp::And
                    | BinaryOp::Or
                    | BinaryOp::Cmp(_)
                    | BinaryOp::NullSafeEq
                    | BinaryOp::Like
                    | BinaryOp::NotLike
                    | BinaryOp::Concat
            );
            ops_total && expr_is_total(left, scopes) && expr_is_total(right, scopes)
        }
        Expr::Unary { op, expr } => {
            matches!(op, UnaryOp::Not | UnaryOp::IsNull | UnaryOp::IsNotNull)
                && expr_is_total(expr, scopes)
        }
        Expr::Func { .. } => false,
        Expr::Case {
            branches,
            else_expr,
        } => {
            branches
                .iter()
                .all(|(c, v)| expr_is_total(c, scopes) && expr_is_total(v, scopes))
                && else_expr
                    .as_deref()
                    .map(|e| expr_is_total(e, scopes))
                    .unwrap_or(true)
        }
        Expr::Sublink {
            kind,
            test_expr,
            plan,
            ..
        } => match kind {
            SublinkKind::Scalar => false,
            SublinkKind::Exists => plan_is_total(plan, scopes),
            SublinkKind::Any | SublinkKind::All => {
                test_expr
                    .as_deref()
                    .map(|t| expr_is_total(t, scopes))
                    .unwrap_or(false)
                    && plan_is_total(plan, scopes)
            }
        },
    }
}

/// `true` when executing `plan` (with enclosing scopes `outers`, innermost
/// first) can never raise an evaluation error. `Sum`/`Avg` aggregates are
/// excluded (arithmetic over non-numeric values errors); comparisons, hash
/// encodings and sorting are error-free in this engine.
pub(crate) fn plan_is_total(plan: &Plan, outers: &[Schema]) -> bool {
    let with_local = |local: Schema| -> Vec<Schema> {
        let mut chain = vec![local];
        chain.extend_from_slice(outers);
        chain
    };
    match plan {
        Plan::Scan { .. } | Plan::Values { .. } => true,
        Plan::Select { input, predicate } => {
            plan_is_total(input, outers) && expr_is_total(predicate, &with_local(input.schema()))
        }
        Plan::Project { input, items, .. } => {
            let chain = with_local(input.schema());
            plan_is_total(input, outers) && items.iter().all(|i| expr_is_total(&i.expr, &chain))
        }
        Plan::CrossProduct { left, right } => {
            plan_is_total(left, outers) && plan_is_total(right, outers)
        }
        Plan::Join {
            left,
            right,
            condition,
            ..
        } => {
            plan_is_total(left, outers)
                && plan_is_total(right, outers)
                && expr_is_total(
                    condition,
                    &with_local(left.schema().concat(&right.schema())),
                )
        }
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let chain = with_local(input.schema());
            plan_is_total(input, outers)
                && group_by.iter().all(|g| expr_is_total(&g.expr, &chain))
                && aggregates.iter().all(|a| {
                    matches!(
                        a.func,
                        AggFunc::Count | AggFunc::CountStar | AggFunc::Min | AggFunc::Max
                    ) && a
                        .arg
                        .as_ref()
                        .map(|e| expr_is_total(e, &chain))
                        .unwrap_or(true)
                })
        }
        Plan::SetOp { left, right, .. } => {
            plan_is_total(left, outers) && plan_is_total(right, outers)
        }
        Plan::Sort { input, keys } => {
            let chain = with_local(input.schema());
            plan_is_total(input, outers) && keys.iter().all(|k| expr_is_total(&k.expr, &chain))
        }
        Plan::Limit { input, .. } => plan_is_total(input, outers),
    }
}

// ---------------------------------------------------------------------------
// Scoped traversal
// ---------------------------------------------------------------------------

/// Rebuilds every sublink plan inside `expr` with `f`, handing each the
/// scope chain `scopes` (the chain its plan executes under). Descends into
/// `ANY`/`ALL` test expressions, which [`Expr::transform`] treats as opaque.
fn map_sublink_plans(
    expr: &Expr,
    scopes: &[Schema],
    f: &mut impl FnMut(&Plan, &[Schema]) -> Plan,
) -> Expr {
    expr.clone().transform(&mut |e| match e {
        Expr::Sublink {
            kind,
            test_expr,
            op,
            plan,
        } => Expr::Sublink {
            kind,
            test_expr: test_expr.map(|t| Box::new(map_sublink_plans(&t, scopes, f))),
            op,
            plan: Box::new(f(&plan, scopes)),
        },
        other => other,
    })
}

/// The scope chain a sublink embedded in this operator's expressions
/// executes under: the operator's own expression scope pushed onto the
/// enclosing chain.
fn child_chain(local: Schema, outers: &[Schema]) -> Vec<Schema> {
    let mut chain = vec![local];
    chain.extend_from_slice(outers);
    chain
}

// ---------------------------------------------------------------------------
// Rule: sublink decorrelation
// ---------------------------------------------------------------------------

/// Bottom-up decorrelation sweep. `outers` is the enclosing sublink scope
/// chain (innermost first) — empty at the top level.
fn decorrelate_pass(
    plan: &Plan,
    outers: &[Schema],
    rep: &mut OptimizerReport,
    fresh: &mut usize,
) -> Plan {
    let rebuilt = match plan {
        Plan::Scan { .. } | Plan::Values { .. } => plan.clone(),
        Plan::Project {
            input,
            items,
            distinct,
        } => {
            let chain = child_chain(input.schema(), outers);
            let input = decorrelate_pass(input, outers, rep, fresh);
            Plan::Project {
                items: items
                    .iter()
                    .map(|i| ProjectItem {
                        expr: map_sublink_plans(&i.expr, &chain, &mut |p, s| {
                            decorrelate_pass(p, s, rep, fresh)
                        }),
                        alias: i.alias.clone(),
                        qualifier: i.qualifier.clone(),
                    })
                    .collect(),
                distinct: *distinct,
                input: Box::new(input),
            }
        }
        Plan::Select { input, predicate } => {
            let chain = child_chain(input.schema(), outers);
            Plan::Select {
                predicate: map_sublink_plans(predicate, &chain, &mut |p, s| {
                    decorrelate_pass(p, s, rep, fresh)
                }),
                input: Box::new(decorrelate_pass(input, outers, rep, fresh)),
            }
        }
        Plan::CrossProduct { left, right } => Plan::CrossProduct {
            left: Box::new(decorrelate_pass(left, outers, rep, fresh)),
            right: Box::new(decorrelate_pass(right, outers, rep, fresh)),
        },
        Plan::Join {
            left,
            right,
            kind,
            condition,
        } => {
            let chain = child_chain(left.schema().concat(&right.schema()), outers);
            Plan::Join {
                condition: map_sublink_plans(condition, &chain, &mut |p, s| {
                    decorrelate_pass(p, s, rep, fresh)
                }),
                left: Box::new(decorrelate_pass(left, outers, rep, fresh)),
                right: Box::new(decorrelate_pass(right, outers, rep, fresh)),
                kind: *kind,
            }
        }
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => Plan::Aggregate {
            input: Box::new(decorrelate_pass(input, outers, rep, fresh)),
            group_by: group_by.clone(),
            aggregates: aggregates.clone(),
        },
        Plan::SetOp {
            op,
            all,
            left,
            right,
        } => Plan::SetOp {
            op: *op,
            all: *all,
            left: Box::new(decorrelate_pass(left, outers, rep, fresh)),
            right: Box::new(decorrelate_pass(right, outers, rep, fresh)),
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(decorrelate_pass(input, outers, rep, fresh)),
            keys: keys.clone(),
        },
        Plan::Limit { input, limit } => Plan::Limit {
            input: Box::new(decorrelate_pass(input, outers, rep, fresh)),
            limit: *limit,
        },
    };
    // Only top-scope selections decorrelate. A sublink nested inside
    // another sublink's plan re-executes with every enclosing binding, and
    // there the memo amortizes its body across bindings while a join would
    // rebuild per run — decorrelation can *cost* operators in that
    // position.
    if !outers.is_empty() {
        return rebuilt;
    }
    if let Plan::Select { input, predicate } = rebuilt {
        match try_decorrelate(*input, predicate, outers, rep, fresh) {
            Ok(plan) => plan,
            Err(untouched) => {
                let (input, predicate) = *untouched;
                Plan::Select {
                    input: Box::new(input),
                    predicate,
                }
            }
        }
    } else {
        rebuilt
    }
}

/// The join kind and pieces of one decorrelatable sublink conjunct.
struct Candidate<'a> {
    kind: JoinKind,
    /// `ANY` test expression (`None` for `EXISTS` variants).
    test: Option<&'a Expr>,
    sub: &'a Plan,
    /// `true` for the `EXISTS` variants, whose verdict is never `UNKNOWN`.
    exists_like: bool,
}

fn classify_sublink(conjunct: &Expr) -> Option<Candidate<'_>> {
    match conjunct {
        Expr::Sublink {
            kind: SublinkKind::Exists,
            plan,
            ..
        } => Some(Candidate {
            kind: JoinKind::Semi,
            test: None,
            sub: plan,
            exists_like: true,
        }),
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => match expr.as_ref() {
            Expr::Sublink {
                kind: SublinkKind::Exists,
                plan,
                ..
            } => Some(Candidate {
                kind: JoinKind::Anti,
                test: None,
                sub: plan,
                exists_like: true,
            }),
            _ => None,
        },
        // `IN` lowers to `= ANY` in the binder, so this covers both. The
        // negated forms (`NOT IN`, `<> ALL`) are NOT safe: a NULL element
        // makes the reference verdict UNKNOWN (row dropped) while an anti
        // join would keep the row.
        Expr::Sublink {
            kind: SublinkKind::Any,
            test_expr: Some(test),
            op: Some(CompareOp::Eq),
            plan,
        } => Some(Candidate {
            kind: JoinKind::Semi,
            test: Some(test),
            sub: plan,
            exists_like: false,
        }),
        _ => None,
    }
}

/// One correlated conjunct hoisted out of the sublink body.
enum Hoisted {
    /// `outer_expr ⟨op⟩ inner_expr`, normalised with the outer side left.
    Pair {
        outer: Expr,
        op: BinaryOp,
        inner: Expr,
    },
    /// A conjunct referencing the outer scope only — moves verbatim into
    /// the join condition (NOT into a selection above the join: for an anti
    /// join, a false outer-only conjunct must *keep* the outer row).
    OuterOnly(Expr),
}

/// Which single scope an expression's references live in.
enum Side {
    Outer,
    Inner,
    Mixed,
}

fn side_of(expr: &Expr, outer: &Schema, local: &Schema) -> Side {
    if expr.has_sublink() {
        return Side::Mixed;
    }
    let refs = expr.column_refs();
    let mut any_outer = false;
    let mut any_inner = false;
    for (q, n) in &refs {
        let in_local = local.try_resolve(q.as_deref(), n);
        let in_outer = outer.try_resolve(q.as_deref(), n);
        match (in_local, in_outer) {
            // Innermost scope wins at runtime, so a locally resolvable
            // reference is an inner reference.
            (Ok(Some(_)), _) => any_inner = true,
            (Ok(None), Ok(Some(_))) => any_outer = true,
            _ => return Side::Mixed,
        }
    }
    match (any_outer, any_inner) {
        (true, false) => Side::Outer,
        (false, _) => Side::Inner,
        (true, true) => Side::Mixed,
    }
}

/// Tries to decorrelate one sublink conjunct of `Select(input, predicate)`.
/// Returns the transformed plan, or the untouched pieces when no conjunct
/// qualifies (the memo fallback).
fn try_decorrelate(
    input: Plan,
    predicate: Expr,
    outers: &[Schema],
    rep: &mut OptimizerReport,
    fresh: &mut usize,
) -> Result<Plan, Box<(Plan, Expr)>> {
    let conjuncts = perm_algebra::optimize::split_conjuncts(&predicate);
    let outer_schema = input.schema();
    let pred_chain = child_chain(outer_schema.clone(), outers);

    for (i, conjunct) in conjuncts.iter().enumerate() {
        let Some(cand) = classify_sublink(conjunct) else {
            continue;
        };
        // Error-parity gate 1: the conjuncts that move to the selection
        // above the join are evaluated on (at most) the join's survivors
        // instead of their original rows, so they must be total — except
        // when a leading EXISTS gate makes the survivor set exactly the
        // reference evaluation set (an EXISTS verdict is never UNKNOWN, so
        // `AND` gates its successors precisely like the semi/anti join).
        let exists_first = cand.exists_like && i == 0;
        if !exists_first {
            let others_total = conjuncts
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .all(|(_, c)| expr_is_total(c, &pred_chain));
            if !others_total {
                continue;
            }
        }
        // ANY test expressions are re-evaluated as a join input; they must
        // be total and resolve entirely in the immediate outer scope.
        if let Some(test) = cand.test {
            if !expr_is_total(test, std::slice::from_ref(&outer_schema)) {
                continue;
            }
        }
        if let Some(built) = build_decorrelated(&cand, &outer_schema, outers, i == 0, fresh) {
            let others: Vec<Expr> = conjuncts
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, c)| c.clone())
                .collect();
            let join = Plan::Join {
                left: Box::new(input),
                right: Box::new(built.right),
                kind: cand.kind,
                condition: built.condition,
            };
            rep.sublinks_decorrelated += 1;
            return Ok(if others.is_empty() {
                join
            } else {
                Plan::Select {
                    input: Box::new(join),
                    predicate: conjunction(others),
                }
            });
        }
    }
    Err(Box::new((input, predicate)))
}

struct Decorrelated {
    right: Plan,
    condition: Expr,
}

/// Builds the join's right side and condition for one eligible sublink, or
/// `None` when a safety precondition fails (the caller falls back to the
/// memo path).
fn build_decorrelated(
    cand: &Candidate<'_>,
    outer_schema: &Schema,
    outers: &[Schema],
    is_first_conjunct: bool,
    fresh: &mut usize,
) -> Option<Decorrelated> {
    let corr = perm_algebra::visit::free_correlated_columns(cand.sub);
    // Correlation must target the immediate outer scope, and nothing
    // deeper: every escaping reference resolves (unambiguously) in the
    // outer schema.
    for (q, n) in &corr {
        if !matches!(outer_schema.try_resolve(q.as_deref(), n), Ok(Some(_))) {
            return None;
        }
    }

    if corr.is_empty() {
        // An uncorrelated sublink already runs exactly once per query —
        // the InitPlan memo, which retention even shares across executions
        // of a prepared statement. Decorrelating it gains nothing and
        // rebuilds the join's hash table every execution.
        return None;
    }

    let qual = format!("__dcl{}", *fresh);
    let mut cond_conjuncts: Vec<Expr> = Vec::new();
    let right;

    {
        // Peel the body down to its selection chain, hoist the correlated
        // comparison conjuncts, and re-project the inner sides as join
        // keys under a fresh qualifier.
        let (proj_items, sel_conjuncts, base) = peel_body(cand)?;
        let base_schema = base.schema();
        // Scope chain the body's expressions originally evaluated under.
        let mut body_chain = vec![base_schema.clone(), outer_schema.clone()];
        body_chain.extend_from_slice(outers);

        let mut hoisted: Vec<(usize, Hoisted)> = Vec::new();
        let mut residual: Vec<(usize, Expr)> = Vec::new();
        for (j, c) in sel_conjuncts.iter().enumerate() {
            if free_expr_columns(c, &base_schema).is_empty() {
                residual.push((j, c.clone()));
                continue;
            }
            hoisted.push((j, hoist_conjunct(c, outer_schema, &base_schema)?));
        }
        if hoisted.is_empty() {
            // The correlation lives somewhere the rule cannot reach
            // (projection items, nested sublinks, the base plan).
            return None;
        }
        // Error-parity gate 2: removing a conjunct changes which *later*
        // conjuncts are evaluated on which rows (AND only short-circuits
        // on FALSE), so every residual conjunct after the first hoisted
        // one must be total.
        let first_hoist = hoisted.first().map(|(j, _)| *j).unwrap_or(0);
        if !residual
            .iter()
            .filter(|(j, _)| *j > first_hoist)
            .all(|(_, c)| expr_is_total(c, &body_chain))
        {
            return None;
        }
        // Every hoisted side must be total: outer sides are re-evaluated
        // per probe row, inner sides per build row, both outside their
        // original AND chain.
        let outer_chain = std::slice::from_ref(outer_schema);
        let inner_chain = std::slice::from_ref(&base_schema);
        // Every peeled projection item's evaluation disappears (EXISTS) or
        // moves to residual survivors (the ANY value, item 0) — all of
        // them must be total.
        if !proj_items
            .iter()
            .all(|item| expr_is_total(&item.expr, inner_chain))
        {
            return None;
        }
        let mut items: Vec<ProjectItem> = Vec::new();
        if let (Some(item), Some(_)) = (proj_items.first(), cand.test) {
            // The reference fold compares the ANY test against column 0 of
            // the sublink output — the first projection item.
            items.push(ProjectItem::new(item.expr.clone(), "v").with_qualifier(qual.clone()));
            cond_conjuncts.push(cmp(
                CompareOp::Eq,
                cand.test?.clone(),
                Expr::Column {
                    qualifier: Some(qual.clone()),
                    name: "v".to_string(),
                },
            ));
        } else if cand.test.is_some() {
            // Correlated ANY without a projection wrapper: the value
            // column is the base's first attribute.
            let first = base_schema.attributes().first()?;
            if !matches!(
                base_schema.try_resolve(first.qualifier.as_deref(), &first.name),
                Ok(Some(0))
            ) {
                return None;
            }
            let value_ref = Expr::Column {
                qualifier: first.qualifier.clone(),
                name: first.name.clone(),
            };
            items.push(ProjectItem::new(value_ref, "v").with_qualifier(qual.clone()));
            cond_conjuncts.push(cmp(
                CompareOp::Eq,
                cand.test?.clone(),
                Expr::Column {
                    qualifier: Some(qual.clone()),
                    name: "v".to_string(),
                },
            ));
        }
        for (idx, (_, h)) in hoisted.iter().enumerate() {
            match h {
                Hoisted::Pair { outer, op, inner } => {
                    if !expr_is_total(outer, outer_chain) || !expr_is_total(inner, inner_chain) {
                        return None;
                    }
                    let key = format!("k{idx}");
                    items.push(
                        ProjectItem::new(inner.clone(), key.clone()).with_qualifier(qual.clone()),
                    );
                    cond_conjuncts.push(Expr::Binary {
                        op: *op,
                        left: Box::new(outer.clone()),
                        right: Box::new(Expr::Column {
                            qualifier: Some(qual.clone()),
                            name: key,
                        }),
                    });
                }
                Hoisted::OuterOnly(c) => {
                    if !expr_is_total(c, outer_chain) {
                        return None;
                    }
                    cond_conjuncts.push(c.clone());
                }
            }
        }
        if items.is_empty() {
            // EXISTS with only outer-only correlation: keep the body's
            // rows flowing but project a constant key so the join's right
            // side has a well-defined, collision-free schema.
            items.push(
                ProjectItem::new(Expr::Literal(Value::Int(1)), "k0").with_qualifier(qual.clone()),
            );
        }
        let inner_input = if residual.is_empty() {
            base
        } else {
            Plan::Select {
                input: Box::new(base),
                predicate: conjunction(residual.into_iter().map(|(_, c)| c)),
            }
        };
        right = Plan::Project {
            input: Box::new(inner_input),
            items,
            distinct: false,
        };
    }

    // Error-parity gate 3: the reference evaluates the sublink body only
    // for rows that reach the sublink conjunct. A leading conjunct is
    // reached by every input row (and the executor skips the build side on
    // an empty probe side), so any body is safe there; otherwise the body
    // must be total.
    if !is_first_conjunct && !plan_is_total(&right, outers) {
        return None;
    }
    // Resolution safety: the transformed right side must be fully
    // self-contained, and no outer-side reference of the join condition may
    // (also) resolve against the right schema — that would make it
    // ambiguous in the join's concatenated condition scope.
    if !free_columns(&right).is_empty() {
        return None;
    }
    let right_schema = right.schema();
    for c in &cond_conjuncts {
        for (q, n) in c.column_refs() {
            let in_outer = matches!(outer_schema.try_resolve(q.as_deref(), &n), Ok(Some(_)));
            let in_right = matches!(right_schema.try_resolve(q.as_deref(), &n), Ok(Some(_)));
            if in_outer && in_right {
                return None;
            }
            if !in_outer && !in_right {
                return None;
            }
        }
    }
    *fresh += 1;
    Some(Decorrelated {
        right,
        condition: conjunction(cond_conjuncts),
    })
}

/// Peels a sublink body down to `(ANY value item, selection conjuncts,
/// base plan)`. Accepts an optional projection wrapper over a chain of
/// selections; anything else is out of reach for the hoisting rule.
///
/// Peeling a selection *chain* into one conjunct list preserves the
/// left-to-right evaluation order (outer selections run last), and the
/// caller's totality gates ensure merging cannot change the error set.
fn peel_body(cand: &Candidate<'_>) -> Option<(Vec<ProjectItem>, Vec<Expr>, Plan)> {
    let mut proj_items = Vec::new();
    let mut body = cand.sub;
    if let Plan::Project {
        input,
        items,
        distinct: _,
    } = body
    {
        // The projection wrapper can be dropped: EXISTS ignores the output
        // entirely, ANY reads column 0 (which the caller re-projects as the
        // join value), and `distinct` changes neither emptiness nor the
        // existence of an equal element. The caller checks that every
        // dropped item expression is total — their evaluation disappears.
        proj_items = items.clone();
        body = input;
    }
    let mut conjuncts = Vec::new();
    // Outer selections evaluate after inner ones; collect inner-first so
    // the flattened list reads in evaluation order.
    let mut stack = Vec::new();
    while let Plan::Select { input, predicate } = body {
        stack.push(predicate);
        body = input;
    }
    for predicate in stack.into_iter().rev() {
        conjuncts.extend(perm_algebra::optimize::split_conjuncts(predicate));
    }
    if conjuncts.is_empty() {
        return None;
    }
    Some((proj_items, conjuncts, body.clone()))
}

/// Classifies one correlated conjunct for hoisting: a comparison with one
/// side entirely in the outer scope and the other entirely in the sublink's
/// local scope (normalised outer-left), or a conjunct referencing the outer
/// scope only.
fn hoist_conjunct(c: &Expr, outer: &Schema, local: &Schema) -> Option<Hoisted> {
    if let Side::Outer = side_of(c, outer, local) {
        return Some(Hoisted::OuterOnly(c.clone()));
    }
    let Expr::Binary { op, left, right } = c else {
        return None;
    };
    let op_ok = matches!(op, BinaryOp::Cmp(_) | BinaryOp::NullSafeEq);
    if !op_ok {
        return None;
    }
    match (side_of(left, outer, local), side_of(right, outer, local)) {
        (Side::Outer, Side::Inner) => Some(Hoisted::Pair {
            outer: (**left).clone(),
            op: *op,
            inner: (**right).clone(),
        }),
        (Side::Inner, Side::Outer) => {
            let flipped = match op {
                BinaryOp::Cmp(c) => BinaryOp::Cmp(c.flip()),
                BinaryOp::NullSafeEq => BinaryOp::NullSafeEq,
                _ => return None,
            };
            Some(Hoisted::Pair {
                outer: (**right).clone(),
                op: flipped,
                inner: (**left).clone(),
            })
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Rule: constant folding
// ---------------------------------------------------------------------------

fn fold_pass(plan: &Plan, rep: &mut OptimizerReport) -> Plan {
    match plan {
        Plan::Select { input, predicate } => {
            let folded = fold_expr(predicate, rep);
            let input = fold_pass(input, rep);
            match &folded {
                Expr::Literal(Value::Bool(true)) => {
                    rep.constants_folded += 1;
                    return input;
                }
                Expr::Literal(v)
                    if (v.is_null() || *v == Value::Bool(false))
                    // Dropping the input skips all of its evaluations, so
                    // it must be provably error-free.
                    && plan_is_total(&input, &[]) =>
                {
                    rep.constants_folded += 1;
                    return Plan::Values {
                        schema: input.schema(),
                        rows: Vec::new(),
                    };
                }
                _ => {}
            }
            Plan::Select {
                input: Box::new(input),
                predicate: folded,
            }
        }
        Plan::Join {
            left,
            right,
            kind,
            condition,
        } => Plan::Join {
            left: Box::new(fold_pass(left, rep)),
            right: Box::new(fold_pass(right, rep)),
            kind: *kind,
            condition: fold_expr(condition, rep),
        },
        Plan::Project {
            input,
            items,
            distinct,
        } => Plan::Project {
            input: Box::new(fold_pass(input, rep)),
            items: items.clone(),
            distinct: *distinct,
        },
        Plan::CrossProduct { left, right } => Plan::CrossProduct {
            left: Box::new(fold_pass(left, rep)),
            right: Box::new(fold_pass(right, rep)),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => Plan::Aggregate {
            input: Box::new(fold_pass(input, rep)),
            group_by: group_by.clone(),
            aggregates: aggregates.clone(),
        },
        Plan::SetOp {
            op,
            all,
            left,
            right,
        } => Plan::SetOp {
            op: *op,
            all: *all,
            left: Box::new(fold_pass(left, rep)),
            right: Box::new(fold_pass(right, rep)),
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(fold_pass(input, rep)),
            keys: keys.clone(),
        },
        Plan::Limit { input, limit } => Plan::Limit {
            input: Box::new(fold_pass(input, rep)),
            limit: *limit,
        },
        Plan::Scan { .. } | Plan::Values { .. } => plan.clone(),
    }
}

/// Shielding-exact constant folds over a predicate. Only folds that cannot
/// change which subexpressions are evaluated fire unconditionally; folds
/// that would *skip* evaluating an operand require it to be total.
fn fold_expr(expr: &Expr, rep: &mut OptimizerReport) -> Expr {
    expr.clone().transform(&mut |e| match &e {
        Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => match (left.as_ref(), right.as_ref()) {
            // AND short-circuits on a FALSE left operand, so these mirror
            // evaluation exactly.
            (Expr::Literal(Value::Bool(false)), _) => {
                rep.constants_folded += 1;
                Expr::Literal(Value::Bool(false))
            }
            (Expr::Literal(Value::Bool(true)), r) => {
                rep.constants_folded += 1;
                r.clone()
            }
            (l, Expr::Literal(Value::Bool(true))) => {
                rep.constants_folded += 1;
                l.clone()
            }
            _ => e,
        },
        Expr::Binary {
            op: BinaryOp::Or,
            left,
            right,
        } => match (left.as_ref(), right.as_ref()) {
            (Expr::Literal(Value::Bool(true)), _) => {
                rep.constants_folded += 1;
                Expr::Literal(Value::Bool(true))
            }
            (Expr::Literal(Value::Bool(false)), r) => {
                rep.constants_folded += 1;
                r.clone()
            }
            (l, Expr::Literal(Value::Bool(false))) => {
                rep.constants_folded += 1;
                l.clone()
            }
            _ => e,
        },
        Expr::Binary {
            op: BinaryOp::Cmp(cop),
            left,
            right,
        } => match (left.as_ref(), right.as_ref()) {
            (Expr::Literal(l), Expr::Literal(r)) => {
                rep.constants_folded += 1;
                crate::eval::compare(*cop, l, r).to_value_expr()
            }
            _ => e,
        },
        // Constant arithmetic (e.g. a bound `date '…' + interval '90' day`)
        // evaluates deterministically, so a successful fold is exact — and
        // it turns the surrounding comparison into a *total* expression,
        // unblocking decorrelation past it. An erroring constant (division
        // by zero) stays in place to keep erroring at runtime.
        Expr::Binary { op, left, right }
            if matches!(
                op,
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod
            ) =>
        {
            match (left.as_ref(), right.as_ref()) {
                (Expr::Literal(l), Expr::Literal(r)) => match crate::eval::arithmetic(*op, l, r) {
                    Ok(v) => {
                        rep.constants_folded += 1;
                        Expr::Literal(v)
                    }
                    Err(_) => e,
                },
                _ => e,
            }
        }
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => match expr.as_ref() {
            Expr::Literal(Value::Bool(b)) => {
                rep.constants_folded += 1;
                Expr::Literal(Value::Bool(!b))
            }
            _ => e,
        },
        _ => e,
    })
}

/// Renders a [`perm_storage::Truth`] as a literal expression.
trait TruthExpr {
    fn to_value_expr(self) -> Expr;
}

impl TruthExpr for perm_storage::Truth {
    fn to_value_expr(self) -> Expr {
        Expr::Literal(self.to_value())
    }
}

// ---------------------------------------------------------------------------
// Rule: predicate pushdown extensions
// ---------------------------------------------------------------------------

/// Pushes whole selections through operators the name-level pass in
/// `perm_algebra::optimize` does not handle: projections (by substituting
/// item expressions for output names), `INTERSECT`/`EXCEPT` left branches,
/// and semi/anti-join probe sides. A selection only moves when *all* its
/// conjuncts are total and the move keeps the operator count flat — so
/// neither the error set nor `operators_evaluated` can regress.
fn pushdown_pass(plan: &Plan, rep: &mut OptimizerReport) -> Plan {
    let rebuilt = match plan {
        Plan::Scan { .. } | Plan::Values { .. } => plan.clone(),
        Plan::Project {
            input,
            items,
            distinct,
        } => Plan::Project {
            input: Box::new(pushdown_pass(input, rep)),
            items: items.clone(),
            distinct: *distinct,
        },
        Plan::Select { input, predicate } => Plan::Select {
            input: Box::new(pushdown_pass(input, rep)),
            predicate: predicate.clone(),
        },
        Plan::CrossProduct { left, right } => Plan::CrossProduct {
            left: Box::new(pushdown_pass(left, rep)),
            right: Box::new(pushdown_pass(right, rep)),
        },
        Plan::Join {
            left,
            right,
            kind,
            condition,
        } => Plan::Join {
            left: Box::new(pushdown_pass(left, rep)),
            right: Box::new(pushdown_pass(right, rep)),
            kind: *kind,
            condition: condition.clone(),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => Plan::Aggregate {
            input: Box::new(pushdown_pass(input, rep)),
            group_by: group_by.clone(),
            aggregates: aggregates.clone(),
        },
        Plan::SetOp {
            op,
            all,
            left,
            right,
        } => Plan::SetOp {
            op: *op,
            all: *all,
            left: Box::new(pushdown_pass(left, rep)),
            right: Box::new(pushdown_pass(right, rep)),
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(pushdown_pass(input, rep)),
            keys: keys.clone(),
        },
        Plan::Limit { input, limit } => Plan::Limit {
            input: Box::new(pushdown_pass(input, rep)),
            limit: *limit,
        },
    };
    if let Plan::Select { input, predicate } = rebuilt {
        push_select(*input, predicate, rep)
    } else {
        rebuilt
    }
}

fn push_select(input: Plan, predicate: Expr, rep: &mut OptimizerReport) -> Plan {
    let keep = |input: Plan, predicate: Expr| Plan::Select {
        input: Box::new(input),
        predicate,
    };
    if predicate.has_sublink() {
        // Sublink-bearing selections stay put: moving one changes how
        // often the (expensive, operator-counted) sublink body runs, and
        // decorrelation wants to see them where they are.
        return keep(input, predicate);
    }
    let out_schema = input.schema();
    if !expr_is_total(&predicate, std::slice::from_ref(&out_schema)) {
        return keep(input, predicate);
    }
    match input {
        // σ_p(Π_items(T)) → Π_items(σ_p'(T)) with output names substituted
        // by their defining expressions. Projection items are evaluated on
        // the filtered rows afterwards, so they must be total; for a
        // distinct projection the predicate additionally runs pre-dedup,
        // which is harmless because it is total and value-deterministic.
        Plan::Project {
            input: inner,
            items,
            distinct,
        } => {
            let inner_schema = inner.schema();
            let items_total = items
                .iter()
                .all(|i| expr_is_total(&i.expr, std::slice::from_ref(&inner_schema)));
            let substituted = items_total
                .then(|| substitute_through(&predicate, &out_schema, &items))
                .flatten()
                .filter(|p| expr_is_total(p, std::slice::from_ref(&inner_schema)));
            match substituted {
                Some(pushed) => {
                    rep.predicates_pushed += 1;
                    Plan::Project {
                        input: Box::new(push_select(*inner, pushed, rep)),
                        items,
                        distinct,
                    }
                }
                None => keep(
                    Plan::Project {
                        input: inner,
                        items,
                        distinct,
                    },
                    predicate,
                ),
            }
        }
        // σ_p(L ∩ R) → σ_p(L) ∩ R and σ_p(L − R) → σ_p(L) − R: membership
        // of a row in the result is decided by the same row values the
        // predicate reads, so filtering the left branch first is bag-exact
        // and keeps the operator count flat (UNION would need the
        // predicate on both branches — one extra operator — and is
        // deliberately skipped).
        Plan::SetOp {
            op: op @ (perm_algebra::SetOpKind::Intersect | perm_algebra::SetOpKind::Except),
            all,
            left,
            right,
        } => {
            let left_schema = left.schema();
            let refs_ok = predicate
                .column_refs()
                .iter()
                .all(|(q, n)| matches!(left_schema.try_resolve(q.as_deref(), n), Ok(Some(_))));
            if refs_ok && expr_is_total(&predicate, std::slice::from_ref(&left_schema)) {
                rep.predicates_pushed += 1;
                Plan::SetOp {
                    op,
                    all,
                    left: Box::new(push_select(*left, predicate, rep)),
                    right,
                }
            } else {
                keep(
                    Plan::SetOp {
                        op,
                        all,
                        left,
                        right,
                    },
                    predicate,
                )
            }
        }
        // σ_p(L ⋉ R) → σ_p(L) ⋉ R (and ▷): the join emits left rows
        // verbatim, so a total predicate over them commutes with the join
        // and shrinks the probe side.
        Plan::Join {
            left,
            right,
            kind: kind @ (JoinKind::Semi | JoinKind::Anti),
            condition,
        } => {
            let left_schema = left.schema();
            let refs_ok = predicate
                .column_refs()
                .iter()
                .all(|(q, n)| matches!(left_schema.try_resolve(q.as_deref(), n), Ok(Some(_))));
            if refs_ok && expr_is_total(&predicate, std::slice::from_ref(&left_schema)) {
                rep.predicates_pushed += 1;
                Plan::Join {
                    left: Box::new(push_select(*left, predicate, rep)),
                    right,
                    kind,
                    condition,
                }
            } else {
                keep(
                    Plan::Join {
                        left,
                        right,
                        kind,
                        condition,
                    },
                    predicate,
                )
            }
        }
        other => keep(other, predicate),
    }
}

/// Rewrites `predicate` (over a projection's output schema) into an
/// equivalent predicate over the projection's *input* by substituting each
/// output-column reference with its defining item expression. `None` when
/// any reference does not resolve against the projection schema.
fn substitute_through(
    predicate: &Expr,
    proj_schema: &Schema,
    items: &[ProjectItem],
) -> Option<Expr> {
    let mut ok = true;
    let rewritten = predicate.clone().transform(&mut |e| match &e {
        Expr::Column { qualifier, name } => {
            match proj_schema.try_resolve(qualifier.as_deref(), name) {
                Ok(Some(idx)) => items[idx].expr.clone(),
                _ => {
                    ok = false;
                    e
                }
            }
        }
        _ => e,
    });
    ok.then_some(rewritten)
}

// ---------------------------------------------------------------------------
// Rule: projection pruning
// ---------------------------------------------------------------------------

/// Top-down liveness pass: narrows non-distinct projections to the columns
/// something above actually references. `required == None` means "every
/// column" — the root (whose positional layout the provenance descriptor
/// depends on), set-operation branches (positional arity contract) and
/// sublink bodies keep their full width.
fn prune_pass(
    plan: &Plan,
    required: Option<&[(Option<String>, String)]>,
    rep: &mut OptimizerReport,
) -> Plan {
    // Collects every column reference an expression needs from below,
    // including references escaping embedded sublink plans.
    let refs_of = |exprs: &[&Expr]| -> Vec<(Option<String>, String)> {
        let empty = Schema::empty();
        let mut out = Vec::new();
        for e in exprs {
            out.extend(free_expr_columns(e, &empty));
        }
        out
    };
    let prune_exprs = |e: &Expr, rep: &mut OptimizerReport| -> Expr {
        map_sublink_plans(e, &[], &mut |p, _| prune_pass(p, None, rep))
    };
    match plan {
        Plan::Scan { .. } | Plan::Values { .. } => plan.clone(),
        Plan::Project {
            input,
            items,
            distinct,
        } => {
            let input_schema = input.schema();
            let kept: Vec<ProjectItem> = match (required, *distinct) {
                (Some(req), false) => {
                    let mut kept: Vec<ProjectItem> = items
                        .iter()
                        .filter(|item| {
                            item_required(req, item)
                                // A non-total item's evaluation errors are
                                // observable even if nothing reads it.
                                || !expr_is_total(
                                    &item.expr,
                                    std::slice::from_ref(&input_schema),
                                )
                        })
                        .cloned()
                        .collect();
                    if kept.is_empty() {
                        kept.push(items[0].clone());
                    }
                    if kept.len() < items.len() {
                        rep.projections_pruned += 1;
                    }
                    kept
                }
                _ => items.clone(),
            };
            let child_req = refs_of(&kept.iter().map(|i| &i.expr).collect::<Vec<_>>());
            Plan::Project {
                input: Box::new(prune_pass(input, Some(&child_req), rep)),
                items: kept
                    .into_iter()
                    .map(|i| ProjectItem {
                        expr: prune_exprs(&i.expr, rep),
                        alias: i.alias,
                        qualifier: i.qualifier,
                    })
                    .collect(),
                distinct: *distinct,
            }
        }
        Plan::Select { input, predicate } => {
            let child_req = required.map(|req| {
                let mut r = req.to_vec();
                r.extend(refs_of(&[predicate]));
                r
            });
            Plan::Select {
                input: Box::new(prune_pass(input, child_req.as_deref(), rep)),
                predicate: prune_exprs(predicate, rep),
            }
        }
        Plan::CrossProduct { left, right } => {
            // Both sides contribute to the output positionally via concat;
            // pass the requirement through to both (loose name matching
            // keeps anything either side might satisfy).
            Plan::CrossProduct {
                left: Box::new(prune_pass(left, required, rep)),
                right: Box::new(prune_pass(right, required, rep)),
            }
        }
        Plan::Join {
            left,
            right,
            kind,
            condition,
        } => {
            let with_cond = |base: Option<&[(Option<String>, String)]>| {
                base.map(|req| {
                    let mut r = req.to_vec();
                    r.extend(refs_of(&[condition]));
                    r
                })
            };
            let left_req = with_cond(required);
            // Semi/anti joins emit left rows only: the right side exists
            // purely for the condition.
            let right_req = if kind.left_only_output() {
                Some(refs_of(&[condition]))
            } else {
                with_cond(required)
            };
            Plan::Join {
                left: Box::new(prune_pass(left, left_req.as_deref(), rep)),
                right: Box::new(prune_pass(right, right_req.as_deref(), rep)),
                kind: *kind,
                condition: prune_exprs(condition, rep),
            }
        }
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let mut exprs: Vec<&Expr> = group_by.iter().map(|g| &g.expr).collect();
            exprs.extend(aggregates.iter().filter_map(|a| a.arg.as_ref()));
            let child_req = refs_of(&exprs);
            Plan::Aggregate {
                input: Box::new(prune_pass(input, Some(&child_req), rep)),
                group_by: group_by.clone(),
                aggregates: aggregates.clone(),
            }
        }
        Plan::SetOp {
            op,
            all,
            left,
            right,
        } => Plan::SetOp {
            op: *op,
            all: *all,
            // Branch outputs correspond positionally; pruning either would
            // break the arity contract.
            left: Box::new(prune_pass(left, None, rep)),
            right: Box::new(prune_pass(right, None, rep)),
        },
        Plan::Sort { input, keys } => {
            let child_req = required.map(|req| {
                let mut r = req.to_vec();
                r.extend(refs_of(&keys.iter().map(|k| &k.expr).collect::<Vec<_>>()));
                r
            });
            Plan::Sort {
                input: Box::new(prune_pass(input, child_req.as_deref(), rep)),
                keys: keys.clone(),
            }
        }
        Plan::Limit { input, limit } => Plan::Limit {
            input: Box::new(prune_pass(input, required, rep)),
            limit: *limit,
        },
    }
}

/// Loose, ambiguity-preserving match: a projection item is required when
/// any needed reference could resolve to it. Two same-named items are both
/// kept, so a reference that was ambiguous (a runtime error) stays
/// ambiguous.
fn item_required(required: &[(Option<String>, String)], item: &ProjectItem) -> bool {
    required.iter().any(|(q, n)| {
        n == &item.alias
            && match (q, &item.qualifier) {
                (Some(q), Some(iq)) => q == iq,
                _ => true,
            }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Executor;
    use perm_algebra::builder::{
        and, between, col, eq, exists_sublink, lit, not, qcol, PlanBuilder,
    };
    use perm_storage::{Database, Relation, Schema, Tuple};

    fn db() -> Database {
        let mut db = Database::new();
        let mut r1 = Relation::empty(Schema::from_names(&["a", "g"]).with_qualifier("r1"));
        let mut r2 = Relation::empty(Schema::from_names(&["b", "g"]).with_qualifier("r2"));
        for i in 0..20i64 {
            r1.push(Tuple::new(vec![Value::Int(i), Value::Int(i % 4)]))
                .unwrap();
            r2.push(Tuple::new(vec![Value::Int(i), Value::Int(i % 3)]))
                .unwrap();
        }
        db.create_table("r1", r1).unwrap();
        db.create_table("r2", r2).unwrap();
        db
    }

    fn correlated_exists(db: &Database) -> Plan {
        let sub = PlanBuilder::scan(db, "r2")
            .unwrap()
            .select(and(
                between(qcol("r2", "b"), lit(2), lit(15)),
                eq(qcol("r2", "g"), qcol("r1", "g")),
            ))
            .build();
        PlanBuilder::scan(db, "r1")
            .unwrap()
            .select(exists_sublink(sub))
            .build()
    }

    fn bags_equal(mut a: Vec<String>, mut b: Vec<String>) -> bool {
        a.sort();
        b.sort();
        a == b
    }

    fn rows(r: &Relation) -> Vec<String> {
        r.tuples().iter().map(|t| format!("{t:?}")).collect()
    }

    #[test]
    fn decorrelates_correlated_exists_into_semi_join() {
        let db = db();
        let plan = correlated_exists(&db);
        let (optimized, rep) = optimize(&plan);
        assert_eq!(rep.sublinks_decorrelated, 1);
        fn has_semi(p: &Plan) -> bool {
            if let Plan::Join {
                kind: JoinKind::Semi,
                ..
            } = p
            {
                return true;
            }
            p.children().iter().any(|c| has_semi(c))
        }
        assert!(has_semi(&optimized), "expected a semi join:\n{optimized:?}");
        let exec = Executor::new(&db);
        let reference = exec.execute_unoptimized(&plan).unwrap();
        let got = exec.execute(&optimized).unwrap();
        assert!(bags_equal(rows(&reference), rows(&got)));
    }

    #[test]
    fn decorrelates_not_exists_into_anti_join() {
        let db = db();
        let sub = PlanBuilder::scan(&db, "r2")
            .unwrap()
            .select(eq(qcol("r2", "g"), qcol("r1", "g")))
            .build();
        let plan = PlanBuilder::scan(&db, "r1")
            .unwrap()
            .select(not(exists_sublink(sub)))
            .build();
        let (optimized, rep) = optimize(&plan);
        assert_eq!(rep.sublinks_decorrelated, 1);
        let exec = Executor::new(&db);
        let reference = exec.execute_unoptimized(&plan).unwrap();
        let got = exec.execute(&optimized).unwrap();
        assert!(bags_equal(rows(&reference), rows(&got)));
    }

    #[test]
    fn decorrelates_any_equality_into_semi_join() {
        let db = db();
        let sub = PlanBuilder::scan(&db, "r2")
            .unwrap()
            .select(and(
                eq(qcol("r2", "g"), qcol("r1", "g")),
                between(qcol("r2", "b"), lit(2), lit(15)),
            ))
            .project_columns(&["b"])
            .build();
        let plan = PlanBuilder::scan(&db, "r1")
            .unwrap()
            .select(perm_algebra::builder::any_sublink(
                qcol("r1", "a"),
                CompareOp::Eq,
                sub,
            ))
            .build();
        let (optimized, rep) = optimize(&plan);
        assert_eq!(rep.sublinks_decorrelated, 1);
        let exec = Executor::new(&db);
        let reference = exec.execute_unoptimized(&plan).unwrap();
        let got = exec.execute(&optimized).unwrap();
        assert!(bags_equal(rows(&reference), rows(&got)));
    }

    #[test]
    fn decorrelates_exists_with_star_projection() {
        // The SQL binder wraps `EXISTS (SELECT * ...)` bodies in a
        // multi-item passthrough projection; peeling must drop it.
        let db = db();
        let sub = PlanBuilder::scan(&db, "r2")
            .unwrap()
            .select(eq(qcol("r2", "g"), qcol("r1", "g")))
            .project(vec![
                ProjectItem::new(qcol("r2", "b"), "b"),
                ProjectItem::new(qcol("r2", "g"), "g"),
            ])
            .build();
        let plan = PlanBuilder::scan(&db, "r1")
            .unwrap()
            .select(exists_sublink(sub))
            .build();
        let (optimized, rep) = optimize(&plan);
        assert_eq!(rep.sublinks_decorrelated, 1);
        let exec = Executor::new(&db);
        let reference = exec.execute_unoptimized(&plan).unwrap();
        let got = exec.execute(&optimized).unwrap();
        assert!(bags_equal(rows(&reference), rows(&got)));
    }

    #[test]
    fn falls_back_on_all_sublinks() {
        let db = db();
        let sub = PlanBuilder::scan(&db, "r2")
            .unwrap()
            .project_columns(&["b"])
            .build();
        let plan = PlanBuilder::scan(&db, "r1")
            .unwrap()
            .select(perm_algebra::builder::all_sublink(
                qcol("r1", "a"),
                CompareOp::Lt,
                sub,
            ))
            .build();
        let (optimized, rep) = optimize(&plan);
        assert_eq!(rep.sublinks_decorrelated, 0);
        assert_eq!(optimized, plan);
    }

    #[test]
    fn decorrelation_lowers_operator_count() {
        let db = db();
        let plan = correlated_exists(&db);
        let (optimized, _) = optimize(&plan);
        let exec = Executor::new(&db);
        exec.execute_unoptimized(&plan).unwrap();
        let ops_ref = exec.operators_evaluated();
        let exec2 = Executor::new(&db);
        exec2.execute(&optimized).unwrap();
        let ops_opt = exec2.operators_evaluated();
        assert!(
            ops_opt < ops_ref,
            "decorrelated {ops_opt} ops vs reference {ops_ref}"
        );
    }

    #[test]
    fn fingerprint_is_stable_and_shape_sensitive() {
        let db = db();
        let plan = correlated_exists(&db);
        let (optimized, _) = optimize(&plan);
        assert_eq!(plan_fingerprint(&plan), plan_fingerprint(&plan));
        assert_ne!(plan_fingerprint(&plan), plan_fingerprint(&optimized));
    }

    #[test]
    fn prunes_unused_projection_columns() {
        let db = db();
        let wide = PlanBuilder::scan(&db, "r1")
            .unwrap()
            .project(vec![
                ProjectItem::new(qcol("r1", "a"), "a"),
                ProjectItem::new(qcol("r1", "g"), "g"),
            ])
            .build();
        let plan = Plan::Project {
            input: Box::new(wide),
            items: vec![ProjectItem::new(col("a"), "a")],
            distinct: false,
        };
        let (optimized, rep) = optimize(&plan);
        assert!(rep.projections_pruned >= 1, "{rep:?}");
        let exec = Executor::new(&db);
        let reference = exec.execute_unoptimized(&plan).unwrap();
        let got = exec.execute(&optimized).unwrap();
        assert!(bags_equal(rows(&reference), rows(&got)));
    }

    #[test]
    fn folds_constant_selections() {
        let db = db();
        let plan = PlanBuilder::scan(&db, "r1")
            .unwrap()
            .select(lit(false))
            .build();
        let (optimized, rep) = optimize(&plan);
        assert!(rep.constants_folded >= 1);
        assert!(matches!(optimized, Plan::Values { .. }));
    }
}
