//! Pull-based streaming execution: a [`Rows`] cursor over a compiled plan,
//! pulling **batches** instead of single tuples.
//!
//! [`Executor::open`] walks the *top spine* of a [`CompiledPlan`] and builds
//! a cursor that yields tuples on demand instead of materialising the full
//! result. The spine operators — `LIMIT`, non-distinct projection, selection
//! and base-table scans — stream **batch by batch** (predicates and
//! projection items are evaluated vectorized over each pulled batch, see
//! `Executor::ceval_batch`); every other operator (joins, aggregation,
//! sorting, set operations, `DISTINCT`) is a pipeline breaker and is
//! materialised through the shared [`Executor::execute_compiled`] path the
//! moment the cursor is opened.
//!
//! Batching does not weaken the cursor's laziness guarantee: every pull
//! requests **at most as many rows as its consumer still needs**, so a
//! `LIMIT k` query over a streamable spine evaluates its projection and
//! selection expressions for exactly the input prefix a tuple-at-a-time
//! pull would have touched — the spine stops at the `k`-th surviving row
//! and the tail is never evaluated. (A selection that needs `k` more
//! survivors pulls its input in chunks of `k`: the last chunk fills the
//! quota only if *all* its rows survive, so the evaluated prefix ends at
//! the `k`-th survivor in every case.) The [`Rows`] iterator itself
//! refills geometrically — 1, 2, 4, … up to [`BATCH_ROWS`] rows per pull
//! — so a consumer that abandons the stream early has paid for at most
//! about twice the rows it consumed, while a full drain amortises to
//! batch-sized pulls. Sublinks inside streamed predicates go through the
//! same parameterized sublink memo as materialised execution, so
//! correlated work is still shared across the tuples that *are* pulled.
//!
//! Error positions are preserved too: when a vectorized batch evaluation
//! fails, the failing operator replays the batch per tuple, emits the rows
//! a tuple-at-a-time cursor would have yielded before the error, and
//! surfaces the same error after them ([`Rows`] buffers the prefix and is
//! fused once the error is returned).
//!
//! A cursor captures the executor's bound parameter vector when it is
//! opened and re-asserts it on every batch refill, so interleaved
//! executions on the same executor (with different `$n` bindings) cannot
//! corrupt an open stream.

use crate::batch::{Batch, ColumnBlock, BATCH_ROWS};
use crate::compile::{CompiledExpr, CompiledPlan, Frame};
use crate::executor::Executor;
use crate::profile::{self, OpProbe, ProfNode, ProfileTree, QueryProfile};
use crate::Result;
use perm_storage::{Relation, Schema, Tuple, Value};
use std::rc::Rc;
use std::time::Instant;

/// A pull-based cursor over a query result: `Iterator<Item = Result<Tuple>>`.
///
/// After the first error the cursor is fused and yields `None` forever.
pub struct Rows<'e, 'a> {
    executor: &'e Executor<'a>,
    /// The parameter binding captured at open time, re-asserted per refill.
    params: Rc<[Value]>,
    schema: Schema,
    node: Node<'e>,
    /// The armed profile tree when opened via [`Executor::open_profiled`]
    /// (`None` otherwise — the plain [`Executor::open`] path records
    /// nothing). Re-asserted on the executor per refill, exactly like the
    /// parameter snapshot; disarmed on drop.
    profile: Option<Rc<ProfileTree>>,
    /// Output rows buffered from the last batch refill.
    buffered: std::vec::IntoIter<Tuple>,
    /// An error encountered during the last refill, yielded after the rows
    /// that precede it.
    pending_error: Option<crate::ExecError>,
    /// Rows requested by the next refill: starts at 1 and doubles up to
    /// [`BATCH_ROWS`], so a consumer that stops after a few rows has paid
    /// for at most about twice what it consumed while a full drain still
    /// amortises to batch-sized pulls.
    next_want: usize,
    done: bool,
}

/// One operator of the streaming spine. Each streaming variant carries the
/// profile node mirroring it when the cursor was opened profiled: the spine
/// records rows and refill ticks per [`fill`] call, and its wall time
/// *inclusively* (a pull-based parent's clock necessarily contains its
/// children's — unlike the materialising path's self-time; the breaker
/// below a [`Node::Materialized`] was profiled with self-times at open).
enum Node<'e> {
    /// A pipeline breaker, fully materialised at open time.
    Materialized(std::vec::IntoIter<Tuple>),
    /// Base-table scan, cloned batch by batch as pulled.
    Scan {
        tuples: &'e [Tuple],
        pos: usize,
        prof: Option<Rc<ProfNode>>,
    },
    /// Streaming selection.
    Select {
        input: Box<Node<'e>>,
        predicate: &'e CompiledExpr,
        prof: Option<Rc<ProfNode>>,
    },
    /// Streaming (non-distinct) projection.
    Project {
        input: Box<Node<'e>>,
        items: &'e [CompiledExpr],
        prof: Option<Rc<ProfNode>>,
    },
    /// Streaming truncation: stops pulling its input after `remaining`
    /// tuples.
    Limit {
        input: Box<Node<'e>>,
        remaining: usize,
        prof: Option<Rc<ProfNode>>,
    },
}

impl Node<'_> {
    /// The profile node armed for this spine operator, if any.
    fn prof(&self) -> Option<&Rc<ProfNode>> {
        match self {
            Node::Materialized(_) => None,
            Node::Scan { prof, .. }
            | Node::Select { prof, .. }
            | Node::Project { prof, .. }
            | Node::Limit { prof, .. } => prof.as_ref(),
        }
    }
}

/// `true` when the operator streams lazily in this module's spine (scan,
/// selection, non-distinct projection, limit) — the shapes for which
/// routing a top-level `LIMIT` through the cursor skips real tail work.
/// This predicate and `open_node` below are the two sides of one
/// definition: a shape streams lazily here **iff** `open_node` gives it a
/// streaming node instead of materialising it (pinned by
/// `streams_lazily_agrees_with_open_node`). Keep them in lockstep when
/// adding spine shapes.
pub(crate) fn streams_lazily(plan: &CompiledPlan) -> bool {
    match plan {
        CompiledPlan::Scan { .. } | CompiledPlan::Select { .. } | CompiledPlan::Limit { .. } => {
            true
        }
        CompiledPlan::Project { distinct, .. } => !*distinct,
        _ => false,
    }
}

impl<'a> Executor<'a> {
    /// Opens a streaming cursor over a compiled top-level plan. Streamable
    /// spine operators are counted on [`Executor::operators_evaluated`] once
    /// at open time (one evaluation per operator invocation, exactly like
    /// the materialising path); pipeline breakers below the spine execute
    /// eagerly here.
    pub fn open<'e>(&'e self, plan: &'e CompiledPlan) -> Result<Rows<'e, 'a>> {
        let node = self.open_node(plan, None)?;
        Ok(Rows {
            executor: self,
            params: self.params_rc(),
            schema: plan.schema().clone(),
            node,
            profile: None,
            buffered: Vec::new().into_iter(),
            pending_error: None,
            next_want: 1,
            done: false,
        })
    }

    /// [`Executor::open`] with a fresh [`ProfileTree`] armed for the
    /// cursor's lifetime: the streaming counterpart of
    /// [`Executor::execute_profiled`]. The annotated snapshot is available
    /// at any point through [`Rows::profile`] — including before the stream
    /// is drained, when it reflects only the work pulled so far.
    pub fn open_profiled<'e>(&'e self, plan: &'e CompiledPlan) -> Result<Rows<'e, 'a>> {
        self.open_with_tree(plan, ProfileTree::for_plan(plan))
    }

    /// The shared profiled-open: arms `tree` on the executor (for the
    /// memoized-sublink seam) and threads its nodes through the spine.
    pub(crate) fn open_with_tree<'e>(
        &'e self,
        plan: &'e CompiledPlan,
        tree: Rc<ProfileTree>,
    ) -> Result<Rows<'e, 'a>> {
        self.set_profile(Some(&tree));
        let node = match self.open_node(plan, Some(&tree.root)) {
            Ok(node) => node,
            Err(e) => {
                self.set_profile(None);
                return Err(e);
            }
        };
        Ok(Rows {
            executor: self,
            params: self.params_rc(),
            schema: plan.schema().clone(),
            node,
            profile: Some(tree),
            buffered: Vec::new().into_iter(),
            pending_error: None,
            next_want: 1,
            done: false,
        })
    }

    fn open_node<'e>(
        &'e self,
        plan: &'e CompiledPlan,
        prof: Option<&Rc<ProfNode>>,
    ) -> Result<Node<'e>> {
        // One evaluation per spine operator, counted at open time on the
        // global counter *and* the armed node — the same shared site
        // (`profile::begin`) the materialising operators use, so profiled
        // sums stay equal to `operators_evaluated` across both paths. The
        // timer is dropped immediately: spine wall time is recorded per
        // refill by `fill`, not at open.
        let count = |prof: Option<&Rc<ProfNode>>| {
            let probe = OpProbe::new(&self.ops_evaluated, prof.map(|p| &p.stats));
            drop(profile::begin(&probe));
        };
        Ok(match plan {
            CompiledPlan::Limit { input, limit, .. } => {
                count(prof);
                Node::Limit {
                    input: Box::new(self.open_node(input, prof.map(|p| &p.children[0]))?),
                    remaining: *limit,
                    prof: prof.cloned(),
                }
            }
            CompiledPlan::Project {
                input,
                items,
                distinct: false,
                ..
            } => {
                count(prof);
                Node::Project {
                    input: Box::new(self.open_node(input, prof.map(|p| &p.children[0]))?),
                    items,
                    prof: prof.cloned(),
                }
            }
            CompiledPlan::Select {
                input, predicate, ..
            } => {
                count(prof);
                Node::Select {
                    input: Box::new(self.open_node(input, prof.map(|p| &p.children[0]))?),
                    predicate,
                    prof: prof.cloned(),
                }
            }
            CompiledPlan::Scan { table, .. } => {
                count(prof);
                Node::Scan {
                    tuples: self.database().table(table)?.tuples(),
                    pos: 0,
                    prof: prof.cloned(),
                }
            }
            breaker => Node::Materialized(
                self.execute_compiled_node(breaker, None, prof.map(|p| p.as_ref()))?
                    .into_tuples()
                    .into_iter(),
            ),
        })
    }
}

impl Rows<'_, '_> {
    /// The output schema of the cursor.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// A [`CancelToken`](crate::CancelToken) wired to the executor driving
    /// this cursor. Cancelling it — from any thread — makes the next batch
    /// refill yield [`ExecError::Cancelled`](crate::ExecError::Cancelled)
    /// instead of rows, so a consumer holding only the `Rows` iterator can
    /// still be interrupted mid-stream.
    pub fn cancel_handle(&self) -> crate::CancelToken {
        self.executor.cancel_handle()
    }

    /// Drains the cursor into a materialised relation.
    pub fn into_relation(mut self) -> Result<Relation> {
        let mut out = Relation::empty(self.schema.clone());
        for tuple in &mut self {
            out.push_unchecked(tuple?);
        }
        Ok(out)
    }

    /// The annotated execution profile, when the cursor was opened through
    /// [`Executor::open_profiled`] (`None` otherwise). The snapshot covers
    /// the work pulled *so far* — a partially consumed stream reports
    /// partial actuals, which is exactly the laziness the cursor promises.
    pub fn profile(&self) -> Option<QueryProfile> {
        self.profile.as_ref().map(|tree| tree.snapshot())
    }
}

impl Drop for Rows<'_, '_> {
    fn drop(&mut self) {
        // Disarm the executor's weak profile reference when a profiled
        // cursor goes away, so a later unrelated execution cannot
        // attribute sublink-memo traffic to this tree.
        if self.profile.is_some() {
            self.executor.set_profile(None);
        }
    }
}

impl Iterator for Rows<'_, '_> {
    type Item = Result<Tuple>;

    fn next(&mut self) -> Option<Result<Tuple>> {
        loop {
            if let Some(tuple) = self.buffered.next() {
                return Some(Ok(tuple));
            }
            if let Some(e) = self.pending_error.take() {
                self.done = true;
                return Some(Err(e));
            }
            if self.done {
                return None;
            }
            // A refill is a batch boundary: poll the governor here so a
            // cancelled or past-deadline stream stops within one batch even
            // when the spine below never materialises.
            if let Err(e) = self.executor.governor.checkpoint("cursor") {
                self.done = true;
                return Some(Err(e));
            }
            // Refill a batch. Another execution on the same executor may
            // have re-bound the parameter vector (or re-armed the profile)
            // between pulls; re-assert this cursor's snapshots once per
            // refill.
            self.executor.rebind_params(&self.params);
            if let Some(tree) = &self.profile {
                self.executor.set_profile(Some(tree));
            }
            let want = self.next_want;
            self.next_want = (want * 2).min(BATCH_ROWS);
            let mut batch = Vec::with_capacity(want);
            match fill(&mut self.node, self.executor, want, &mut batch) {
                Ok(more) => {
                    if !more {
                        self.done = true;
                    }
                }
                Err(e) => {
                    // `batch` holds exactly the rows a per-tuple pull would
                    // have yielded before this error.
                    self.pending_error = Some(e);
                }
            }
            self.buffered = batch.into_iter();
        }
    }
}

/// Appends up to `want` output tuples of `node` to `out`. Returns `false`
/// when the node is exhausted (no further pull can produce rows). On `Err`,
/// the tuples already appended to `out` are exactly those a tuple-at-a-time
/// evaluation would have yielded before the error.
///
/// When the node carries a profile node, each call records one refill tick,
/// the rows appended, and the (inclusive) wall time of the pull — armed
/// cursors only; the unprofiled path takes the `prof() == None` branch and
/// never reads the clock.
fn fill(node: &mut Node<'_>, ex: &Executor<'_>, want: usize, out: &mut Vec<Tuple>) -> Result<bool> {
    if want == 0 {
        return Ok(true);
    }
    let prof = node.prof().cloned();
    let start = prof.as_ref().map(|_| Instant::now());
    let before = out.len();
    let result = fill_node(node, ex, want, out);
    if let Some(p) = prof {
        let s = &p.stats;
        s.batches.set(s.batches.get() + 1);
        s.rows_out
            .set(s.rows_out.get() + (out.len() - before) as u64);
        if let Some(start) = start {
            s.wall_nanos
                .set(s.wall_nanos.get() + start.elapsed().as_nanos() as u64);
        }
    }
    result
}

/// The operator bodies behind [`fill`].
fn fill_node(
    node: &mut Node<'_>,
    ex: &Executor<'_>,
    want: usize,
    out: &mut Vec<Tuple>,
) -> Result<bool> {
    match node {
        Node::Materialized(tuples) => {
            for _ in 0..want {
                match tuples.next() {
                    Some(t) => out.push(t),
                    None => return Ok(false),
                }
            }
            Ok(true)
        }
        Node::Scan { tuples, pos, .. } => {
            let n = want.min(tuples.len() - *pos);
            out.extend(tuples[*pos..*pos + n].iter().cloned());
            *pos += n;
            Ok(*pos < tuples.len())
        }
        Node::Select {
            input,
            predicate,
            prof,
        } => {
            // Pull the input in chunks of exactly the number of survivors
            // still needed: the laziness argument in the module docs relies
            // on the last chunk filling the quota only when all its rows
            // survive.
            let mut needed = want;
            let mut in_rows: Vec<Tuple> = Vec::new();
            loop {
                in_rows.clear();
                in_rows.reserve(needed);
                let input_result = fill(input, ex, needed, &mut in_rows);
                if let Some(p) = prof {
                    let s = &p.stats;
                    s.rows_in.set(s.rows_in.get() + in_rows.len() as u64);
                }
                // Survivors of the pulled prefix are emitted before any
                // input error (per-tuple ordering: the upstream error row
                // is only reached after these rows flowed through).
                needed -= select_into(ex, predicate, &mut in_rows, out)?;
                if !input_result? {
                    return Ok(false);
                }
                if needed == 0 {
                    return Ok(true);
                }
            }
        }
        Node::Project { input, items, prof } => {
            let mut in_rows: Vec<Tuple> = Vec::with_capacity(want);
            let input_result = fill(input, ex, want, &mut in_rows);
            if let Some(p) = prof {
                let s = &p.stats;
                s.rows_in.set(s.rows_in.get() + in_rows.len() as u64);
            }
            project_into(ex, items, &in_rows, out)?;
            input_result
        }
        Node::Limit {
            input,
            remaining,
            prof,
        } => {
            if *remaining == 0 {
                return Ok(false);
            }
            let before = out.len();
            let more = fill(input, ex, want.min(*remaining), out)?;
            let pulled = out.len() - before;
            if let Some(p) = prof {
                let s = &p.stats;
                s.rows_in.set(s.rows_in.get() + pulled as u64);
            }
            *remaining -= pulled;
            Ok(more && *remaining > 0)
        }
    }
}

/// Filters `in_rows` through `predicate` (vectorized), moving survivors to
/// `out` in order; returns the survivor count. On a vectorized error the
/// batch is replayed per tuple so the survivors preceding the error are
/// emitted and the error per-tuple evaluation raises first is returned.
/// With batching disabled on the executor, the per-tuple path runs
/// directly — the streamed path honours `Executor::with_batching` exactly
/// like the materialising one.
fn select_into(
    ex: &Executor<'_>,
    predicate: &CompiledExpr,
    in_rows: &mut [Tuple],
    out: &mut Vec<Tuple>,
) -> Result<usize> {
    if ex.batching_enabled() {
        let mut truths = Vec::with_capacity(in_rows.len());
        let arity = in_rows.first().map(|t| t.values().len()).unwrap_or(0);
        let block = ColumnBlock::new(arity);
        if ex
            .predicate_truths_vectorized(
                predicate,
                &Batch::dense_with_block(in_rows, &block),
                None,
                &mut truths,
            )
            .is_ok()
        {
            let mut survivors = 0;
            for (idx, keep) in truths.iter().enumerate() {
                if *keep {
                    out.push(std::mem::take(&mut in_rows[idx]));
                    survivors += 1;
                }
            }
            return Ok(survivors);
        }
        // Fall through: replay per tuple for exact row/error ordering (the
        // error set is identical; only precedence can differ — see
        // `Executor::ceval_batch`).
    }
    let mut survivors = 0;
    for row in in_rows.iter_mut() {
        let frame = Frame::new(None, row);
        if ex.ceval(predicate, Some(&frame))?.as_truth().is_true() {
            out.push(std::mem::take(row));
            survivors += 1;
        }
    }
    Ok(survivors)
}

/// Projects `in_rows` through `items` (vectorized, transposing the value
/// columns into rows), appending one tuple per input row. On a vectorized
/// error the batch is replayed per tuple, appending the rows that precede
/// the error before returning it; with batching disabled the per-tuple
/// path runs directly.
fn project_into(
    ex: &Executor<'_>,
    items: &[CompiledExpr],
    in_rows: &[Tuple],
    out: &mut Vec<Tuple>,
) -> Result<()> {
    if in_rows.is_empty() {
        return Ok(());
    }
    let arity = in_rows.first().map(|t| t.values().len()).unwrap_or(0);
    let block = ColumnBlock::new(arity);
    if ex.batching_enabled()
        && ex
            .project_rows_vectorized(items, &Batch::dense_with_block(in_rows, &block), None, out)
            .is_ok()
    {
        // The shared core appends nothing on error, so falling through to
        // the per-tuple replay below never duplicates output rows.
        return Ok(());
    }
    for tuple in in_rows {
        let frame = Frame::new(None, tuple);
        let mut row = Vec::with_capacity(items.len());
        for item in items {
            row.push(ex.ceval(item, Some(&frame))?);
        }
        out.push(Tuple::new(row));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecError;
    use perm_algebra::builder::{cmp, col, eq, lit, qcol, PlanBuilder};
    use perm_algebra::CompareOp;
    use perm_algebra::{Expr, ProjectItem};
    use perm_storage::{Database, Schema, Value};

    fn db_with_poisoned_tail() -> Database {
        // Row 0 passes the predicate cleanly; row 2 would divide by zero.
        // A lazy LIMIT 1 never reaches it; unlimited execution must fail.
        let mut db = Database::new();
        db.create_table(
            "t",
            Relation::from_rows(
                Schema::from_names(&["x"]).with_qualifier("t"),
                vec![
                    vec![Value::Int(5)],
                    vec![Value::Int(7)],
                    vec![Value::Int(0)],
                ],
            ),
        )
        .unwrap();
        db
    }

    fn limited_query(db: &Database, limit: usize) -> perm_algebra::Plan {
        PlanBuilder::scan(db, "t")
            .unwrap()
            .select(cmp(
                CompareOp::Gt,
                Expr::Binary {
                    op: perm_algebra::BinaryOp::Div,
                    left: Box::new(lit(10)),
                    right: Box::new(col("x")),
                },
                lit(0),
            ))
            .project(vec![ProjectItem::column("x")])
            .limit(limit)
            .build()
    }

    #[test]
    fn cursor_streams_limit_without_evaluating_the_full_input() {
        let db = db_with_poisoned_tail();
        let plan = limited_query(&db, 2);
        let ex = Executor::new(&db);

        // The cursor yields the two requested tuples and stops before the
        // poisoned third row is ever evaluated.
        let compiled = ex.prepare(&plan).unwrap();
        let rows: Vec<Tuple> = ex
            .open(&compiled)
            .unwrap()
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(0), &Value::Int(5));
        assert_eq!(rows[1].get(0), &Value::Int(7));

        // The materialising path routes a top-level LIMIT over a streamable
        // spine through the same machinery, so `execute` matches `Rows` and
        // never evaluates the tail either...
        let eager = Executor::new(&db).execute(&plan).unwrap();
        assert_eq!(eager.len(), 2);

        // ...while the reference interpreter (and any un-limited execution)
        // still evaluates every row and fails on the poisoned one.
        assert!(matches!(
            Executor::new(&db).execute_unoptimized(&plan),
            Err(ExecError::DivisionByZero)
        ));
        let unlimited = PlanBuilder::scan(&db, "t")
            .unwrap()
            .select(cmp(
                CompareOp::Gt,
                Expr::Binary {
                    op: perm_algebra::BinaryOp::Div,
                    left: Box::new(lit(10)),
                    right: Box::new(col("x")),
                },
                lit(0),
            ))
            .project(vec![ProjectItem::column("x")])
            .build();
        assert!(matches!(
            Executor::new(&db).execute(&unlimited),
            Err(ExecError::DivisionByZero)
        ));
    }

    #[test]
    fn streams_lazily_agrees_with_open_node() {
        // The LIMIT-routing predicate and the cursor's spine construction
        // must share one notion of "streams lazily": a shape streams iff
        // `open_node` gives it a non-materialised node. Check every plan
        // shape the compiler can produce.
        let db = db_with_poisoned_tail();
        let scan = PlanBuilder::scan(&db, "t").unwrap().build();
        let shapes: Vec<perm_algebra::Plan> = vec![
            scan.clone(),
            PlanBuilder::from_plan(scan.clone())
                .select(eq(col("x"), lit(5)))
                .build(),
            PlanBuilder::from_plan(scan.clone())
                .project(vec![ProjectItem::column("x")])
                .build(),
            PlanBuilder::from_plan(scan.clone())
                .project_distinct(vec![ProjectItem::column("x")])
                .build(),
            PlanBuilder::from_plan(scan.clone()).limit(2).build(),
            PlanBuilder::from_plan(scan.clone())
                .sort(vec![perm_algebra::SortKey::asc(col("x"))])
                .build(),
            PlanBuilder::from_plan(scan.clone())
                .aggregate(vec![], vec![perm_algebra::builder::count_star("n")])
                .build(),
            PlanBuilder::from_plan(scan.clone())
                .cross(PlanBuilder::scan_as(&db, "t", Some("c")).unwrap().build())
                .build(),
            PlanBuilder::from_plan(scan.clone())
                .join(
                    PlanBuilder::scan_as(&db, "t", Some("o")).unwrap().build(),
                    eq(qcol("t", "x"), qcol("o", "x")),
                )
                .build(),
            PlanBuilder::from_plan(scan.clone())
                .set_op(perm_algebra::SetOpKind::Union, true, scan.clone())
                .build(),
        ];
        let ex = Executor::new(&db);
        for plan in &shapes {
            let compiled = ex.prepare(plan).unwrap();
            let node = ex.open_node(&compiled, None).unwrap();
            let streams = !matches!(node, Node::Materialized(_));
            assert_eq!(
                streams_lazily(&compiled),
                streams,
                "routing predicate and open_node disagree on {compiled:?}"
            );
        }
    }

    #[test]
    fn breaker_nested_limit_stays_eager_and_matches_the_interpreter() {
        // Sort(Limit(Select(poisoned))): the LIMIT is nested under a
        // pipeline breaker, so it must NOT be cursor-routed — the eager
        // path reaches the poisoned row exactly like the reference
        // interpreter, keeping Ok/Err agreement across execution modes.
        let db = db_with_poisoned_tail();
        let plan = perm_algebra::builder::PlanBuilder::from_plan(limited_query(&db, 2))
            .sort(vec![perm_algebra::SortKey::asc(col("x"))])
            .build();
        assert!(matches!(
            Executor::new(&db).execute(&plan),
            Err(ExecError::DivisionByZero)
        ));
        assert!(matches!(
            Executor::new(&db).execute_unoptimized(&plan),
            Err(ExecError::DivisionByZero)
        ));
        // Inside a sublink plan the same rule applies: the correlated-free
        // LIMIT executes eagerly (frame-less, but not top-level).
        let sub = limited_query(&db, 2);
        let outer = PlanBuilder::scan(&db, "t")
            .unwrap()
            .select(perm_algebra::builder::exists_sublink(sub))
            .build();
        let compiled = Executor::new(&db).execute(&outer);
        let interpreted = Executor::new(&db).execute_unoptimized(&outer);
        assert_eq!(compiled.is_err(), interpreted.is_err());
    }

    #[test]
    fn cursor_read_ahead_grows_from_one_row() {
        // No LIMIT in the plan: the cursor's own refill sizing must still
        // start at a single row, so a consumer that stops after the first
        // row never evaluates the poisoned tail.
        let db = db_with_poisoned_tail();
        let plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .select(cmp(
                CompareOp::Gt,
                Expr::Binary {
                    op: perm_algebra::BinaryOp::Div,
                    left: Box::new(lit(10)),
                    right: Box::new(col("x")),
                },
                lit(0),
            ))
            .project(vec![ProjectItem::column("x")])
            .build();
        let ex = Executor::new(&db);
        let compiled = ex.prepare(&plan).unwrap();
        let mut rows = ex.open(&compiled).unwrap();
        let first = rows.next().unwrap().unwrap();
        assert_eq!(
            first.get(0),
            &Value::Int(5),
            "a full-batch speculative refill would have hit the division by zero instead"
        );
    }

    #[test]
    fn streamed_path_honours_the_batching_toggle() {
        let db = db_with_poisoned_tail();
        let plan = limited_query(&db, 2);
        let ex = Executor::new(&db).with_batching(false);
        let compiled = ex.prepare(&plan).unwrap();
        let rows: Vec<Tuple> = ex
            .open(&compiled)
            .unwrap()
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            ex.batches_vectorized(),
            0,
            "with batching disabled the streamed path must dispatch per tuple"
        );
        // And `execute`, which routes this LIMIT through the cursor,
        // respects the toggle the same way.
        let eager = Executor::new(&db).with_batching(false);
        assert_eq!(eager.execute(&plan).unwrap().len(), 2);
        assert_eq!(eager.batches_vectorized(), 0);
    }

    #[test]
    fn cursor_fuses_after_an_error() {
        let db = db_with_poisoned_tail();
        let plan = limited_query(&db, 10);
        let ex = Executor::new(&db);
        let compiled = ex.prepare(&plan).unwrap();
        let mut rows = ex.open(&compiled).unwrap();
        assert!(rows.next().unwrap().is_ok());
        assert!(rows.next().unwrap().is_ok());
        assert!(matches!(rows.next(), Some(Err(ExecError::DivisionByZero))));
        assert!(rows.next().is_none());
        assert!(rows.next().is_none());
    }

    #[test]
    fn cursor_matches_materialised_execution_over_a_breaker() {
        // An aggregate below the spine is a pipeline breaker: the cursor
        // materialises it, and the streamed result must match `execute`.
        let db = db_with_poisoned_tail();
        let plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .aggregate(
                vec![ProjectItem::column("x")],
                vec![perm_algebra::builder::count_star("n")],
            )
            .sort(vec![perm_algebra::SortKey::asc(col("x"))])
            .build();
        let ex = Executor::new(&db);
        let compiled = ex.prepare(&plan).unwrap();
        let streamed = ex.open(&compiled).unwrap().into_relation().unwrap();
        let eager = Executor::new(&db).execute(&plan).unwrap();
        assert!(streamed.bag_eq(&eager));
        assert_eq!(streamed.schema().names(), eager.schema().names());
    }

    #[test]
    fn cursor_snapshot_survives_interleaved_param_rebinding() {
        let db = db_with_poisoned_tail();
        // σ_{x = $1}(t): stream with $1 = 5, then rebind $1 = 7 mid-stream.
        let plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .select(eq(col("x"), Expr::Param(0)))
            .build();
        let ex = Executor::new(&db);
        let compiled = ex.prepare(&plan).unwrap();
        ex.bind_params(vec![Value::Int(5)]);
        let mut rows = ex.open(&compiled).unwrap();
        ex.bind_params(vec![Value::Int(7)]);
        let first = rows.next().unwrap().unwrap();
        assert_eq!(first.get(0), &Value::Int(5), "cursor must keep its binding");
        assert!(rows.next().is_none());
    }
}
