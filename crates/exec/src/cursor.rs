//! Pull-based streaming execution: a [`Rows`] cursor over a compiled plan.
//!
//! [`Executor::open`] walks the *top spine* of a [`CompiledPlan`] and builds
//! a cursor that yields tuples on demand instead of materialising the full
//! result. The spine operators — `LIMIT`, non-distinct projection, selection
//! and base-table scans — stream tuple by tuple; every other operator
//! (joins, aggregation, sorting, set operations, `DISTINCT`) is a pipeline
//! breaker and is materialised through the shared
//! [`Executor::execute_compiled`] path the moment the cursor is opened.
//!
//! The payoff is the classic serving pattern: a `LIMIT k` query over a
//! streamable spine evaluates its projection and selection expressions for
//! only as many input tuples as it takes to produce `k` output tuples,
//! instead of paying for the whole input first. Sublinks inside streamed
//! predicates go through the same parameterized sublink memo as
//! materialised execution, so correlated work is still shared across the
//! tuples that *are* pulled.
//!
//! A cursor captures the executor's bound parameter vector when it is
//! opened and re-asserts it on every pull, so interleaved executions on the
//! same executor (with different `$n` bindings) cannot corrupt an open
//! stream.

use crate::compile::{CompiledExpr, CompiledPlan, Frame};
use crate::executor::Executor;
use crate::Result;
use perm_storage::{Relation, Schema, Tuple, Value};
use std::rc::Rc;

/// A pull-based cursor over a query result: `Iterator<Item = Result<Tuple>>`.
///
/// After the first error the cursor is fused and yields `None` forever.
pub struct Rows<'e, 'a> {
    executor: &'e Executor<'a>,
    /// The parameter binding captured at open time, re-asserted per pull.
    params: Rc<[Value]>,
    schema: Schema,
    node: Node<'e>,
    done: bool,
}

/// One operator of the streaming spine.
enum Node<'e> {
    /// A pipeline breaker, fully materialised at open time.
    Materialized(std::vec::IntoIter<Tuple>),
    /// Base-table scan, cloned tuple by tuple as pulled.
    Scan(std::slice::Iter<'e, Tuple>),
    /// Streaming selection.
    Select {
        input: Box<Node<'e>>,
        predicate: &'e CompiledExpr,
    },
    /// Streaming (non-distinct) projection.
    Project {
        input: Box<Node<'e>>,
        items: &'e [CompiledExpr],
    },
    /// Streaming truncation: stops pulling its input after `remaining`
    /// tuples.
    Limit {
        input: Box<Node<'e>>,
        remaining: usize,
    },
}

impl<'a> Executor<'a> {
    /// Opens a streaming cursor over a compiled top-level plan. Streamable
    /// spine operators are counted on [`Executor::operators_evaluated`] once
    /// at open time (one evaluation per operator invocation, exactly like
    /// the materialising path); pipeline breakers below the spine execute
    /// eagerly here.
    pub fn open<'e>(&'e self, plan: &'e CompiledPlan) -> Result<Rows<'e, 'a>> {
        let node = self.open_node(plan)?;
        Ok(Rows {
            executor: self,
            params: self.params_rc(),
            schema: plan.schema().clone(),
            node,
            done: false,
        })
    }

    fn open_node<'e>(&'e self, plan: &'e CompiledPlan) -> Result<Node<'e>> {
        let count = || self.ops_evaluated.set(self.ops_evaluated.get() + 1);
        Ok(match plan {
            CompiledPlan::Limit { input, limit, .. } => {
                count();
                Node::Limit {
                    input: Box::new(self.open_node(input)?),
                    remaining: *limit,
                }
            }
            CompiledPlan::Project {
                input,
                items,
                distinct: false,
                ..
            } => {
                count();
                Node::Project {
                    input: Box::new(self.open_node(input)?),
                    items,
                }
            }
            CompiledPlan::Select {
                input, predicate, ..
            } => {
                count();
                Node::Select {
                    input: Box::new(self.open_node(input)?),
                    predicate,
                }
            }
            CompiledPlan::Scan { table, .. } => {
                count();
                Node::Scan(self.database().table(table)?.tuples().iter())
            }
            breaker => Node::Materialized(
                self.execute_compiled(breaker, None)?
                    .into_tuples()
                    .into_iter(),
            ),
        })
    }
}

impl Rows<'_, '_> {
    /// The output schema of the cursor.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Drains the cursor into a materialised relation.
    pub fn into_relation(mut self) -> Result<Relation> {
        let mut out = Relation::empty(self.schema.clone());
        for tuple in &mut self {
            out.push_unchecked(tuple?);
        }
        Ok(out)
    }
}

impl Iterator for Rows<'_, '_> {
    type Item = Result<Tuple>;

    fn next(&mut self) -> Option<Result<Tuple>> {
        if self.done {
            return None;
        }
        // Another execution on the same executor may have re-bound the
        // parameter vector between pulls; re-assert this cursor's snapshot.
        self.executor.rebind_params(&self.params);
        match advance(&mut self.node, self.executor) {
            Ok(Some(tuple)) => Some(Ok(tuple)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

fn advance(node: &mut Node<'_>, ex: &Executor<'_>) -> Result<Option<Tuple>> {
    match node {
        Node::Materialized(tuples) => Ok(tuples.next()),
        Node::Scan(tuples) => Ok(tuples.next().cloned()),
        Node::Select { input, predicate } => loop {
            let Some(tuple) = advance(input, ex)? else {
                return Ok(None);
            };
            let frame = Frame::new(None, &tuple);
            if ex.ceval(predicate, Some(&frame))?.as_truth().is_true() {
                return Ok(Some(tuple));
            }
        },
        Node::Project { input, items } => {
            let Some(tuple) = advance(input, ex)? else {
                return Ok(None);
            };
            let frame = Frame::new(None, &tuple);
            let mut row = Vec::with_capacity(items.len());
            for item in items.iter() {
                row.push(ex.ceval(item, Some(&frame))?);
            }
            Ok(Some(Tuple::new(row)))
        }
        Node::Limit { input, remaining } => {
            if *remaining == 0 {
                return Ok(None);
            }
            match advance(input, ex)? {
                Some(tuple) => {
                    *remaining -= 1;
                    Ok(Some(tuple))
                }
                None => {
                    *remaining = 0;
                    Ok(None)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExecError;
    use perm_algebra::builder::{cmp, col, eq, lit, PlanBuilder};
    use perm_algebra::CompareOp;
    use perm_algebra::{Expr, ProjectItem};
    use perm_storage::{Database, Schema, Value};

    fn db_with_poisoned_tail() -> Database {
        // Row 0 passes the predicate cleanly; row 2 would divide by zero.
        // A lazy LIMIT 1 never reaches it; eager execution must fail.
        let mut db = Database::new();
        db.create_table(
            "t",
            Relation::from_rows(
                Schema::from_names(&["x"]).with_qualifier("t"),
                vec![
                    vec![Value::Int(5)],
                    vec![Value::Int(7)],
                    vec![Value::Int(0)],
                ],
            ),
        )
        .unwrap();
        db
    }

    fn limited_query(db: &Database, limit: usize) -> perm_algebra::Plan {
        PlanBuilder::scan(db, "t")
            .unwrap()
            .select(cmp(
                CompareOp::Gt,
                Expr::Binary {
                    op: perm_algebra::BinaryOp::Div,
                    left: Box::new(lit(10)),
                    right: Box::new(col("x")),
                },
                lit(0),
            ))
            .project(vec![ProjectItem::column("x")])
            .limit(limit)
            .build()
    }

    #[test]
    fn cursor_streams_limit_without_evaluating_the_full_input() {
        let db = db_with_poisoned_tail();
        let plan = limited_query(&db, 2);
        let ex = Executor::new(&db);

        // Eager execution reaches the poisoned row and fails...
        assert!(matches!(
            Executor::new(&db).execute(&plan),
            Err(ExecError::DivisionByZero)
        ));

        // ...while the cursor yields the two requested tuples and stops
        // before the poisoned third row is ever evaluated.
        let compiled = ex.prepare(&plan).unwrap();
        let rows: Vec<Tuple> = ex
            .open(&compiled)
            .unwrap()
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get(0), &Value::Int(5));
        assert_eq!(rows[1].get(0), &Value::Int(7));
    }

    #[test]
    fn cursor_fuses_after_an_error() {
        let db = db_with_poisoned_tail();
        let plan = limited_query(&db, 10);
        let ex = Executor::new(&db);
        let compiled = ex.prepare(&plan).unwrap();
        let mut rows = ex.open(&compiled).unwrap();
        assert!(rows.next().unwrap().is_ok());
        assert!(rows.next().unwrap().is_ok());
        assert!(matches!(rows.next(), Some(Err(ExecError::DivisionByZero))));
        assert!(rows.next().is_none());
        assert!(rows.next().is_none());
    }

    #[test]
    fn cursor_matches_materialised_execution_over_a_breaker() {
        // An aggregate below the spine is a pipeline breaker: the cursor
        // materialises it, and the streamed result must match `execute`.
        let db = db_with_poisoned_tail();
        let plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .aggregate(
                vec![ProjectItem::column("x")],
                vec![perm_algebra::builder::count_star("n")],
            )
            .sort(vec![perm_algebra::SortKey::asc(col("x"))])
            .build();
        let ex = Executor::new(&db);
        let compiled = ex.prepare(&plan).unwrap();
        let streamed = ex.open(&compiled).unwrap().into_relation().unwrap();
        let eager = Executor::new(&db).execute(&plan).unwrap();
        assert!(streamed.bag_eq(&eager));
        assert_eq!(streamed.schema().names(), eager.schema().names());
    }

    #[test]
    fn cursor_snapshot_survives_interleaved_param_rebinding() {
        let db = db_with_poisoned_tail();
        // σ_{x = $1}(t): stream with $1 = 5, then rebind $1 = 7 mid-stream.
        let plan = PlanBuilder::scan(&db, "t")
            .unwrap()
            .select(eq(col("x"), Expr::Param(0)))
            .build();
        let ex = Executor::new(&db);
        let compiled = ex.prepare(&plan).unwrap();
        ex.bind_params(vec![Value::Int(5)]);
        let mut rows = ex.open(&compiled).unwrap();
        ex.bind_params(vec![Value::Int(7)]);
        let first = rows.next().unwrap().unwrap();
        assert_eq!(first.get(0), &Value::Int(5), "cursor must keep its binding");
        assert!(rows.next().is_none());
    }
}
