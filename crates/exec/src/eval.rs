//! Expression evaluation, including sublinks and correlated attribute
//! references.

use crate::executor::Executor;
use crate::functions;
use crate::{ExecError, Result};
use perm_algebra::{BinaryOp, CompareOp, Expr, FuncName, SublinkKind, UnaryOp};
use perm_storage::{Relation, Schema, Truth, Tuple, Value};
use std::sync::Arc;

/// An evaluation environment: the current operator's input tuple plus a
/// chain of enclosing scopes. Column references resolve innermost-first,
/// which is exactly the SQL scoping rule that makes correlated sublinks work
/// ("for each tuple t from the algebra expression that is referenced, Tsub is
/// evaluated for the parameter bound to the value of the referenced
/// attribute", Section 2.2).
#[derive(Debug, Clone, Copy)]
pub struct Env<'a> {
    /// The enclosing scope, if any.
    pub parent: Option<&'a Env<'a>>,
    /// Schema of the current scope.
    pub schema: &'a Schema,
    /// Tuple currently bound in this scope.
    pub tuple: &'a Tuple,
}

impl<'a> Env<'a> {
    /// Creates a new innermost scope on top of `parent`.
    pub fn new(parent: Option<&'a Env<'a>>, schema: &'a Schema, tuple: &'a Tuple) -> Env<'a> {
        Env {
            parent,
            schema,
            tuple,
        }
    }

    /// Resolves a column reference, searching this scope first and then the
    /// enclosing scopes.
    pub fn lookup(&self, qualifier: Option<&str>, name: &str) -> Result<Value> {
        match self.schema.try_resolve(qualifier, name)? {
            Some(i) => Ok(self.tuple.get(i).clone()),
            None => match self.parent {
                Some(p) => p.lookup(qualifier, name),
                None => Err(ExecError::Storage(
                    perm_storage::StorageError::UnknownAttribute(name.to_string()),
                )),
            },
        }
    }
}

/// Compares two values with a SQL comparison operator under three-valued
/// logic.
pub fn compare(op: CompareOp, left: &Value, right: &Value) -> Truth {
    if left.is_null() || right.is_null() {
        return Truth::Unknown;
    }
    match op {
        CompareOp::Eq => left.sql_eq(right),
        CompareOp::Neq => left.sql_eq(right).not(),
        _ => match left.sql_cmp(right) {
            None => Truth::Unknown,
            Some(ord) => Truth::from_bool(match op {
                CompareOp::Lt => ord.is_lt(),
                CompareOp::Le => ord.is_le(),
                CompareOp::Gt => ord.is_gt(),
                CompareOp::Ge => ord.is_ge(),
                CompareOp::Eq | CompareOp::Neq => unreachable!(),
            }),
        },
    }
}

impl Executor<'_> {
    /// Evaluates an expression to a value in the given environment.
    pub fn eval_expr(&self, expr: &Expr, env: Option<&Env<'_>>) -> Result<Value> {
        match expr {
            Expr::Column { qualifier, name } => match env {
                Some(e) => e.lookup(qualifier.as_deref(), name),
                None => Err(ExecError::Storage(
                    perm_storage::StorageError::UnknownAttribute(name.clone()),
                )),
            },
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Param(index) => self.param_value(*index),
            Expr::Binary { op, left, right } => self.eval_binary(*op, left, right, env),
            Expr::Unary { op, expr } => {
                let v = self.eval_expr(expr, env)?;
                Ok(match op {
                    UnaryOp::Not => v.as_truth().not().to_value(),
                    UnaryOp::Neg => match v {
                        Value::Null => Value::Null,
                        Value::Int(i) => Value::Int(-i),
                        Value::Float(f) => Value::Float(-f),
                        _ => return Err(ExecError::Type("cannot negate non-number".into())),
                    },
                    UnaryOp::IsNull => Value::Bool(v.is_null()),
                    UnaryOp::IsNotNull => Value::Bool(!v.is_null()),
                })
            }
            Expr::Func { name, args } => self.eval_func(*name, args, env),
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (cond, result) in branches {
                    if self.eval_predicate(cond, env)?.is_true() {
                        return self.eval_expr(result, env);
                    }
                }
                match else_expr {
                    Some(e) => self.eval_expr(e, env),
                    None => Ok(Value::Null),
                }
            }
            Expr::Sublink {
                kind,
                test_expr,
                op,
                plan,
            } => self.eval_sublink(*kind, test_expr.as_deref(), *op, plan, env),
        }
    }

    /// Evaluates an expression as a predicate (three-valued).
    pub fn eval_predicate(&self, expr: &Expr, env: Option<&Env<'_>>) -> Result<Truth> {
        Ok(self.eval_expr(expr, env)?.as_truth())
    }

    fn eval_binary(
        &self,
        op: BinaryOp,
        left: &Expr,
        right: &Expr,
        env: Option<&Env<'_>>,
    ) -> Result<Value> {
        // Boolean connectives get non-strict NULL handling, everything else
        // evaluates both sides first.
        if matches!(op, BinaryOp::And | BinaryOp::Or) {
            let l = self.eval_expr(left, env)?.as_truth();
            // Short-circuit where three-valued logic allows it; this matters
            // because the Gen rewrite guards expensive EXISTS sublinks behind
            // cheap comparisons.
            if op == BinaryOp::And && l == Truth::False {
                return Ok(Truth::False.to_value());
            }
            if op == BinaryOp::Or && l == Truth::True {
                return Ok(Truth::True.to_value());
            }
            let r = self.eval_expr(right, env)?.as_truth();
            return Ok(match op {
                BinaryOp::And => l.and(r),
                BinaryOp::Or => l.or(r),
                _ => unreachable!(),
            }
            .to_value());
        }

        let l = self.eval_expr(left, env)?;
        let r = self.eval_expr(right, env)?;
        match op {
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
                arithmetic(op, &l, &r)
            }
            BinaryOp::Cmp(cmp_op) => Ok(compare(cmp_op, &l, &r).to_value()),
            BinaryOp::NullSafeEq => Ok(Value::Bool(l.null_safe_eq(&r))),
            BinaryOp::Like => Ok(functions::sql_like(&l, &r).to_value()),
            BinaryOp::NotLike => Ok(functions::sql_like(&l, &r).not().to_value()),
            BinaryOp::Concat => match (&l, &r) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                _ => Ok(Value::Str(format!("{l}{r}"))),
            },
            BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
        }
    }

    fn eval_func(&self, name: FuncName, args: &[Expr], env: Option<&Env<'_>>) -> Result<Value> {
        let values: Vec<Value> = args
            .iter()
            .map(|a| self.eval_expr(a, env))
            .collect::<Result<_>>()?;
        apply_func(name, &values)
    }

    fn eval_sublink(
        &self,
        kind: SublinkKind,
        test_expr: Option<&Expr>,
        op: Option<CompareOp>,
        plan: &perm_algebra::Plan,
        env: Option<&Env<'_>>,
    ) -> Result<Value> {
        match kind {
            SublinkKind::Exists => {
                let result = self.execute_sublink(plan, env)?;
                Ok(Value::Bool(!result.is_empty()))
            }
            SublinkKind::Scalar => {
                let result = self.execute_sublink(plan, env)?;
                scalar_sublink_value(&result)
            }
            SublinkKind::Any | SublinkKind::All => {
                let test = test_expr.ok_or_else(|| {
                    ExecError::Unsupported("ANY/ALL sublink without test expression".into())
                })?;
                let op = op.ok_or_else(|| {
                    ExecError::Unsupported("ANY/ALL sublink without comparison operator".into())
                })?;
                let test_value = self.eval_expr(test, env)?;
                let key = self.interp_sublink_key(plan, env);
                let truth = self.quantified_truth(key, kind, op, &test_value, |key| {
                    self.execute_sublink_keyed(plan, env, key)
                })?;
                Ok(truth.to_value())
            }
        }
    }

    /// Folds an `ANY`/`ALL` sublink under three-valued logic, consulting
    /// the verdict memo first. The verdict is a pure function of the
    /// sublink's result (itself determined by the sublink identity and its
    /// binding values, i.e. `result_key`) and the *typed* test value, so a
    /// hit skips both the result lookup and the per-row comparison scan;
    /// `result` is only invoked — executing or fetching the memoized
    /// sublink relation — on a verdict miss, and receives the result-memo
    /// key back. Shared by the interpreter and the compiled evaluator so
    /// the folding (and its memoization) cannot drift apart. Verdict
    /// memoization is skipped when the memo is disabled or `result_key` is
    /// `None`.
    ///
    /// The verdict key is the result key extended in place with the test
    /// value (the prefix is recovered on a miss), so the hot hit path does
    /// not clone any key.
    pub(crate) fn quantified_truth(
        &self,
        result_key: Option<Vec<u8>>,
        kind: SublinkKind,
        op: CompareOp,
        test_value: &Value,
        result: impl FnOnce(Option<Vec<u8>>) -> Result<Arc<Relation>>,
    ) -> Result<Truth> {
        let mut verdict_key = match result_key {
            Some(key) if self.memo_enabled.get() => key,
            other => {
                // No verdict memoization; hand the untouched result key on.
                let relation = result(other)?;
                return Ok(self.fold_quantified(kind, op, test_value, &relation));
            }
        };
        let prefix_len = verdict_key.len();
        verdict_key.extend_from_slice(&perm_storage::encode_key_typed(std::slice::from_ref(
            test_value,
        )));
        // Compiled-path verdicts go to the shared cross-thread memo when one
        // is attached (their keys embed a process-unique sublink id);
        // interpreter-path verdicts are keyed by plan node address and must
        // stay executor-private even then.
        let shared = self
            .shared_memo
            .as_ref()
            .filter(|_| verdict_key.first() == Some(&crate::executor::MEMO_TAG_COMPILED));
        let hit = match shared {
            Some(shared) => shared.get_verdict(&verdict_key),
            None => self.verdict_memo.borrow_mut().get(&verdict_key),
        };
        if let Some(truth) = hit {
            return Ok(truth);
        }
        let relation = result(Some(verdict_key[..prefix_len].to_vec()))?;
        let truth = self.fold_quantified(kind, op, test_value, &relation);
        let cost = verdict_key.len() as u64 + crate::resilience::MemoCost::cost_bytes(&truth);
        if self.governor.memo_insert_event("verdict-memo", cost)? {
            match shared {
                Some(shared) => shared.insert_verdict(verdict_key, truth),
                None => self.verdict_memo.borrow_mut().insert(verdict_key, truth),
            }
        }
        Ok(truth)
    }

    /// Folds an `ANY`/`ALL` sublink result under three-valued logic, with
    /// early exit once the quantifier is decided. Every row comparison is
    /// counted on [`Executor::quantifier_comparisons`].
    fn fold_quantified(
        &self,
        kind: SublinkKind,
        op: CompareOp,
        test_value: &Value,
        result: &Relation,
    ) -> Truth {
        let mut acc = if kind == SublinkKind::Any {
            Truth::False
        } else {
            Truth::True
        };
        for row in result.tuples() {
            self.cmp_evaluated.set(self.cmp_evaluated.get() + 1);
            let t = compare(op, test_value, row.get(0));
            acc = if kind == SublinkKind::Any {
                acc.or(t)
            } else {
                acc.and(t)
            };
            if (kind == SublinkKind::Any && acc == Truth::True)
                || (kind == SublinkKind::All && acc == Truth::False)
            {
                break;
            }
        }
        acc
    }
}

/// Applies a scalar function to already-evaluated argument values. Shared by
/// the interpreter and the compiled evaluator so their dispatch cannot
/// drift apart.
pub(crate) fn apply_func(name: FuncName, values: &[Value]) -> Result<Value> {
    match name {
        FuncName::Substring => {
            if values.len() < 2 {
                return Err(ExecError::Type("substring needs 2 or 3 arguments".into()));
            }
            functions::substring(&values[0], &values[1], values.get(2))
        }
        FuncName::Abs => functions::abs(&values[0]),
        FuncName::Coalesce => Ok(functions::coalesce(values)),
        FuncName::Lower => functions::change_case(&values[0], false),
        FuncName::Upper => functions::change_case(&values[0], true),
        FuncName::Length => functions::length(&values[0]),
        FuncName::Date => functions::to_date(&values[0]),
        FuncName::Year => functions::year(&values[0]),
    }
}

/// Folds a scalar sublink result into its value, enforcing the
/// one-attribute / at-most-one-tuple cardinality rules. Shared by the
/// interpreter and the compiled evaluator.
pub(crate) fn scalar_sublink_value(result: &Relation) -> Result<Value> {
    if result.schema().arity() != 1 {
        return Err(ExecError::ScalarSublinkCardinality(format!(
            "scalar sublink must produce one attribute, got {}",
            result.schema().arity()
        )));
    }
    match result.len() {
        0 => Ok(Value::Null),
        1 => Ok(result.tuples()[0].get(0).clone()),
        n => Err(ExecError::ScalarSublinkCardinality(format!(
            "scalar sublink produced {n} tuples"
        ))),
    }
}

/// Arithmetic with NULL propagation and integer/float coercion.
pub(crate) fn arithmetic(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Same-type integer arithmetic is exact: the f64 route below is lossy
    // above 2⁵³ (`Int(2⁵³) + 1` would round back to 2⁵³, making `a + 1 = a`
    // TRUE under the engine's exact equality). Everything the checked ops
    // decline — overflow, `/` with a fractional quotient, zero divisors —
    // falls through to the float route and its error handling.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        let exact = match op {
            BinaryOp::Add => a.checked_add(*b),
            BinaryOp::Sub => a.checked_sub(*b),
            BinaryOp::Mul => a.checked_mul(*b),
            // Division keeps its fractional float result (`7 / 2` is 3.5 in
            // this engine); only an integral quotient is exact here.
            BinaryOp::Div => match a.checked_rem(*b) {
                Some(0) => a.checked_div(*b),
                _ => None,
            },
            BinaryOp::Mod => a.checked_rem(*b),
            _ => None,
        };
        if let Some(i) = exact {
            return Ok(Value::Int(i));
        }
    }
    let (lf, rf) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(ExecError::Type(format!(
                "arithmetic over non-numeric values `{l}` and `{r}`"
            )))
        }
    };
    // Date + integer days keeps the date type (needed for TPC-H interval
    // predicates like `o_orderdate < date '1995-01-01' + 90`).
    let date_result = matches!((l, r), (Value::Date(_), _) | (_, Value::Date(_)))
        && matches!(op, BinaryOp::Add | BinaryOp::Sub);
    let both_int = matches!(l, Value::Int(_)) && matches!(r, Value::Int(_));
    let result = match op {
        BinaryOp::Add => lf + rf,
        BinaryOp::Sub => lf - rf,
        BinaryOp::Mul => lf * rf,
        BinaryOp::Div => {
            if rf == 0.0 {
                return Err(ExecError::DivisionByZero);
            }
            lf / rf
        }
        BinaryOp::Mod => {
            if rf == 0.0 {
                return Err(ExecError::DivisionByZero);
            }
            lf % rf
        }
        _ => unreachable!(),
    };
    if date_result {
        Ok(Value::Date(result as i32))
    } else if both_int && result.fract() == 0.0 && result.abs() < 9_223_372_036_854_775_808.0 {
        // Int/Int pairs only reach here past the exact path above, i.e. on
        // overflow or an inexact division; the range guard keeps overflowed
        // results as (approximate) floats instead of saturating the cast.
        Ok(Value::Int(result as i64))
    } else {
        Ok(Value::Float(result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_algebra::builder::{col, lit, qcol};
    use perm_storage::{Database, Schema};

    fn executor_fixture() -> Database {
        Database::new()
    }

    #[test]
    fn env_resolves_innermost_first() {
        let outer_schema = Schema::from_names(&["a", "b"]).with_qualifier("r");
        let outer_tuple = Tuple::new(vec![Value::Int(1), Value::Int(2)]);
        let inner_schema = Schema::from_names(&["c"]).with_qualifier("s");
        let inner_tuple = Tuple::new(vec![Value::Int(9)]);
        let outer = Env::new(None, &outer_schema, &outer_tuple);
        let inner = Env::new(Some(&outer), &inner_schema, &inner_tuple);
        assert_eq!(inner.lookup(None, "c").unwrap(), Value::Int(9));
        assert_eq!(inner.lookup(None, "b").unwrap(), Value::Int(2));
        assert_eq!(inner.lookup(Some("r"), "a").unwrap(), Value::Int(1));
        assert!(inner.lookup(None, "zz").is_err());
    }

    #[test]
    fn comparison_three_valued() {
        assert_eq!(
            compare(CompareOp::Lt, &Value::Int(1), &Value::Int(2)),
            Truth::True
        );
        assert_eq!(
            compare(CompareOp::Ge, &Value::Int(1), &Value::Null),
            Truth::Unknown
        );
        assert_eq!(
            compare(CompareOp::Neq, &Value::str("a"), &Value::str("a")),
            Truth::False
        );
    }

    #[test]
    fn arithmetic_and_logic() {
        let db = executor_fixture();
        let ex = Executor::new(&db);
        let v = ex
            .eval_expr(
                &perm_algebra::builder::binary(BinaryOp::Add, lit(1), lit(2)),
                None,
            )
            .unwrap();
        assert_eq!(v, Value::Int(3));
        let v = ex
            .eval_expr(
                &perm_algebra::builder::binary(BinaryOp::Div, lit(7), lit(2.0)),
                None,
            )
            .unwrap();
        assert_eq!(v, Value::Float(3.5));
        assert!(ex
            .eval_expr(
                &perm_algebra::builder::binary(BinaryOp::Div, lit(7), lit(0)),
                None
            )
            .is_err());
        // NULL propagation
        let v = ex
            .eval_expr(
                &perm_algebra::builder::binary(
                    BinaryOp::Mul,
                    lit(7),
                    perm_algebra::builder::null(),
                ),
                None,
            )
            .unwrap();
        assert!(v.is_null());
    }

    #[test]
    fn int_arithmetic_is_exact_above_two_pow_53() {
        const TWO_53: i64 = 1 << 53;
        let assert_int = |op: BinaryOp, a: i64, b: i64, expect: i64| match arithmetic(
            op,
            &Value::Int(a),
            &Value::Int(b),
        )
        .unwrap()
        {
            Value::Int(i) => assert_eq!(i, expect, "{a} {op} {b}"),
            other => panic!("{a} {op} {b}: expected Int, got {other:?}"),
        };
        // The f64 route would round 2⁵³ + 1 back to 2⁵³, making a + 1 = a.
        assert_int(BinaryOp::Add, TWO_53, 1, TWO_53 + 1);
        assert_int(BinaryOp::Sub, TWO_53 + 2, 1, TWO_53 + 1);
        assert_int(BinaryOp::Mul, TWO_53 + 1, 1, TWO_53 + 1);
        assert_int(BinaryOp::Mod, TWO_53 + 1, TWO_53, 1);
        // Integral quotients stay exact integers; fractional ones stay
        // floats.
        assert_int(BinaryOp::Div, 2 * (TWO_53 + 1), 2, TWO_53 + 1);
        assert_eq!(
            arithmetic(BinaryOp::Div, &Value::Int(7), &Value::Int(2)).unwrap(),
            Value::Float(3.5)
        );
        // Overflow falls back to an approximate float instead of saturating
        // an integer cast.
        match arithmetic(BinaryOp::Add, &Value::Int(i64::MAX), &Value::Int(i64::MAX)).unwrap() {
            Value::Float(f) => assert_eq!(f, 2.0 * i64::MAX as f64),
            other => panic!("expected float on overflow, got {other:?}"),
        }
        assert!(matches!(
            arithmetic(BinaryOp::Mod, &Value::Int(1), &Value::Int(0)),
            Err(ExecError::DivisionByZero)
        ));
        // i64::MIN % -1 overflows checked_rem but is mathematically 0.
        assert_int(BinaryOp::Mod, i64::MIN, -1, 0);
    }

    #[test]
    fn and_or_short_circuit_with_three_valued_logic() {
        let db = executor_fixture();
        let ex = Executor::new(&db);
        // FALSE AND <error> would fail if not short-circuited; use a column
        // reference that cannot be resolved as the "error".
        let e = perm_algebra::builder::and(lit(false), col("does_not_exist"));
        assert_eq!(ex.eval_expr(&e, None).unwrap(), Value::Bool(false));
        let e = perm_algebra::builder::or(lit(true), qcol("x", "y"));
        assert_eq!(ex.eval_expr(&e, None).unwrap(), Value::Bool(true));
        // NULL OR TRUE == TRUE, NULL AND TRUE == NULL
        let e = perm_algebra::builder::or(perm_algebra::builder::null(), lit(true));
        assert_eq!(ex.eval_expr(&e, None).unwrap(), Value::Bool(true));
        let e = perm_algebra::builder::and(perm_algebra::builder::null(), lit(true));
        assert!(ex.eval_expr(&e, None).unwrap().is_null());
    }

    #[test]
    fn case_expression() {
        let db = executor_fixture();
        let ex = Executor::new(&db);
        let e = Expr::Case {
            branches: vec![
                (perm_algebra::builder::eq(lit(1), lit(2)), lit("no")),
                (perm_algebra::builder::eq(lit(1), lit(1)), lit("yes")),
            ],
            else_expr: Some(Box::new(lit("else"))),
        };
        assert_eq!(ex.eval_expr(&e, None).unwrap(), Value::str("yes"));
    }

    #[test]
    fn date_interval_arithmetic_keeps_date_type() {
        let db = executor_fixture();
        let ex = Executor::new(&db);
        let d = Expr::Literal(Value::parse_date("1995-01-01").unwrap());
        let e = perm_algebra::builder::binary(BinaryOp::Add, d, lit(90));
        let v = ex.eval_expr(&e, None).unwrap();
        match v {
            Value::Date(days) => assert_eq!(Value::format_date(days), "1995-04-01"),
            other => panic!("expected date, got {other:?}"),
        }
    }
}
