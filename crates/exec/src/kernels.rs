//! Typed columnar kernels: comparison, arithmetic and unary operators over
//! contiguous [`ColumnVec`] lanes.
//!
//! Each kernel runs a tight loop over primitive slices when both operands
//! sit in lanes whose pairing the engine's `Value` semantics handles
//! type-exactly, and otherwise falls back to the shared scalar appliers of
//! `crate::compile` (`apply_binary_scalar` / `apply_unary`) row by row —
//! so a kernel can *never* drift from the per-tuple evaluator: the typed
//! paths are proven equivalences, everything else *is* the scalar path.
//! The `bool` in each return value reports whether that fallback ran (the
//! executor's `columnar_fallback_rows` counter).
//!
//! The load-bearing equivalences (see `perm_storage::value`):
//!
//! * `Int`, `Date` and `Bool` lanes share one **exact-i64 view** for
//!   comparisons: every pairwise comparison among them — whether `sql_cmp`
//!   routes it through exact `i64` ordering or the `as_f64` view — equals
//!   the comparison of the exact integers the values denote, because the
//!   `f64` view is exact for `i32`/`bool` and rounding an `i64` above 2⁵³
//!   cannot carry it across a small value.
//! * (i64-view × `Float`) comparisons are `int_cmp_float`, the exact
//!   mathematical order `sql_cmp` uses for `Int`/`Float` and that the
//!   `as_f64` route equals whenever the integer side converts exactly.
//! * (`Float` × `Float`) is `f64_cmp_sql`; (`Str` × `Str`) is `str` order.
//! * Arithmetic stays scalar unless the output lane is fully determined:
//!   `Int±Int` (checked, with a whole-column scalar retry on overflow —
//!   those ops cannot error, so re-running is safe), and every `Int`/
//!   `Float` mix, whose result is always a `Float` (`both_int` is false)
//!   computed through the same lossy `as_f64` view. `Date` arithmetic
//!   (date-typed results), `Bool` arithmetic, `Div`/`Mod` on integers
//!   (exactness probing), `Like`, `Concat` and mixed-representation
//!   `Values` lanes all take the scalar path.

use std::cmp::Ordering;

use perm_algebra::{BinaryOp, CompareOp, UnaryOp};
use perm_storage::{f64_cmp_sql, int_cmp_float, ColumnVec, Validity};

use crate::compile::{apply_binary_scalar, apply_unary};
use crate::{ExecError, Result};

/// The exact-`i64` view over the three lanes whose values denote exact
/// integers under the engine's numeric coercion.
#[derive(Clone, Copy)]
enum IntView<'a> {
    Int(&'a [i64]),
    Date(&'a [i32]),
    Bool(&'a [bool]),
}

impl IntView<'_> {
    #[inline]
    fn get(&self, i: usize) -> i64 {
        match self {
            IntView::Int(data) => data[i],
            IntView::Date(data) => i64::from(data[i]),
            IntView::Bool(data) => i64::from(data[i]),
        }
    }
}

/// The comparison class of a column: exact-integer lanes, floats, strings,
/// or "handle row-major" (`Values` fallback lanes).
enum View<'a> {
    Ints(IntView<'a>, &'a Validity),
    Floats(&'a [f64], &'a Validity),
    Strs(&'a [String], &'a Validity),
    Other,
}

fn view(col: &ColumnVec) -> View<'_> {
    match col {
        ColumnVec::Int { data, validity } => View::Ints(IntView::Int(data), validity),
        ColumnVec::Date { data, validity } => View::Ints(IntView::Date(data), validity),
        ColumnVec::Bool { data, validity } => View::Ints(IntView::Bool(data), validity),
        ColumnVec::Float { data, validity } => View::Floats(data, validity),
        ColumnVec::Str { data, validity } => View::Strs(data, validity),
        ColumnVec::Values(_) => View::Other,
    }
}

/// Builds a `Bool` lane whose slot `i` is valid when both operands are,
/// with `f(i)` as the payload of valid slots (three-valued comparison:
/// a NULL operand yields Unknown, i.e. an invalid slot).
fn bool_lane(
    n: usize,
    lv: &Validity,
    rv: &Validity,
    mut f: impl FnMut(usize) -> bool,
) -> ColumnVec {
    let mut data = Vec::with_capacity(n);
    if lv.is_all_valid() && rv.is_all_valid() {
        for i in 0..n {
            data.push(f(i));
        }
        return ColumnVec::Bool {
            data,
            validity: Validity::all_valid(n),
        };
    }
    let mut validity = Validity::with_capacity(n);
    for i in 0..n {
        let valid = lv.get(i) && rv.get(i);
        validity.push(valid);
        data.push(valid && f(i));
    }
    ColumnVec::Bool { data, validity }
}

/// The typed comparison kernel for one [`CompareOp`] predicate over the
/// shared ordering, or `None` when the lane pairing has no proven typed
/// equivalence (e.g. `Str` vs numeric, where `Eq` is FALSE but `<` is
/// Unknown — the scalar path handles those).
fn compare_columns(
    pred: impl Fn(Ordering) -> bool + Copy,
    l: &ColumnVec,
    r: &ColumnVec,
) -> Option<ColumnVec> {
    let n = l.len();
    match (view(l), view(r)) {
        (View::Ints(a, lv), View::Ints(b, rv)) => {
            Some(bool_lane(n, lv, rv, |i| pred(a.get(i).cmp(&b.get(i)))))
        }
        (View::Ints(a, lv), View::Floats(b, rv)) => Some(bool_lane(n, lv, rv, |i| {
            pred(int_cmp_float(a.get(i), b[i]))
        })),
        (View::Floats(a, lv), View::Ints(b, rv)) => Some(bool_lane(n, lv, rv, |i| {
            pred(int_cmp_float(b.get(i), a[i]).reverse())
        })),
        (View::Floats(a, lv), View::Floats(b, rv)) => {
            Some(bool_lane(n, lv, rv, |i| pred(f64_cmp_sql(a[i], b[i]))))
        }
        (View::Strs(a, lv), View::Strs(b, rv)) => {
            Some(bool_lane(n, lv, rv, |i| pred(a[i].cmp(&b[i]))))
        }
        _ => None,
    }
}

/// Null-safe equality (`=n`): always a valid boolean — NULL equals NULL
/// and nothing else; non-NULL pairs compare like `Eq`.
fn null_safe_eq_columns(l: &ColumnVec, r: &ColumnVec) -> Option<ColumnVec> {
    fn lane(
        n: usize,
        lv: &Validity,
        rv: &Validity,
        mut eq: impl FnMut(usize) -> bool,
    ) -> ColumnVec {
        let mut data = Vec::with_capacity(n);
        for i in 0..n {
            data.push(match (lv.get(i), rv.get(i)) {
                (true, true) => eq(i),
                (false, false) => true,
                _ => false,
            });
        }
        ColumnVec::Bool {
            data,
            validity: Validity::all_valid(n),
        }
    }
    let n = l.len();
    match (view(l), view(r)) {
        (View::Ints(a, lv), View::Ints(b, rv)) => Some(lane(n, lv, rv, |i| a.get(i) == b.get(i))),
        (View::Ints(a, lv), View::Floats(b, rv)) => Some(lane(n, lv, rv, |i| {
            int_cmp_float(a.get(i), b[i]) == Ordering::Equal
        })),
        (View::Floats(a, lv), View::Ints(b, rv)) => Some(lane(n, lv, rv, |i| {
            int_cmp_float(b.get(i), a[i]) == Ordering::Equal
        })),
        (View::Floats(a, lv), View::Floats(b, rv)) => Some(lane(n, lv, rv, |i| {
            f64_cmp_sql(a[i], b[i]) == Ordering::Equal
        })),
        (View::Strs(a, lv), View::Strs(b, rv)) => Some(lane(n, lv, rv, |i| a[i] == b[i])),
        _ => None,
    }
}

/// The typed arithmetic kernels. `Ok(None)` means "no typed path — use
/// the scalar fallback" (including the `Int` overflow retry, which is
/// safe because `Add`/`Sub`/`Mul` on integers cannot raise an error).
fn arith_columns(op: BinaryOp, l: &ColumnVec, r: &ColumnVec) -> Result<Option<ColumnVec>> {
    let n = l.len();
    match (l, r) {
        (
            ColumnVec::Int {
                data: a,
                validity: lv,
            },
            ColumnVec::Int {
                data: b,
                validity: rv,
            },
        ) => {
            // Exact checked integer arithmetic; Div/Mod probe exactness per
            // row (and can raise), so they stay scalar.
            let checked: fn(i64, i64) -> Option<i64> = match op {
                BinaryOp::Add => i64::checked_add,
                BinaryOp::Sub => i64::checked_sub,
                BinaryOp::Mul => i64::checked_mul,
                _ => return Ok(None),
            };
            let mut data = Vec::with_capacity(n);
            if lv.is_all_valid() && rv.is_all_valid() {
                for i in 0..n {
                    match checked(a[i], b[i]) {
                        Some(v) => data.push(v),
                        None => return Ok(None),
                    }
                }
                return Ok(Some(ColumnVec::Int {
                    data,
                    validity: Validity::all_valid(n),
                }));
            }
            let mut validity = Validity::with_capacity(n);
            for i in 0..n {
                let valid = lv.get(i) && rv.get(i);
                if valid {
                    match checked(a[i], b[i]) {
                        Some(v) => data.push(v),
                        None => return Ok(None),
                    }
                } else {
                    data.push(0);
                }
                validity.push(valid);
            }
            Ok(Some(ColumnVec::Int { data, validity }))
        }
        _ => {
            // Int/Float mixes (pure Int×Int was handled above): the result
            // is always a Float computed over the (lossy above 2⁵³) as_f64
            // views, exactly like the scalar `arithmetic` whose `both_int`
            // is false and `date_result` is false here.
            let (a, lv) = match float_view(l) {
                Some(v) => v,
                None => return Ok(None),
            };
            let (b, rv) = match float_view(r) {
                Some(v) => v,
                None => return Ok(None),
            };
            let mut data = Vec::with_capacity(n);
            let all = lv.is_all_valid() && rv.is_all_valid();
            let mut validity = Validity::with_capacity(if all { 0 } else { n });
            for i in 0..n {
                let valid = all || (lv.get(i) && rv.get(i));
                if !all {
                    validity.push(valid);
                }
                if !valid {
                    data.push(0.0);
                    continue;
                }
                let (x, y) = (a.get(i), b.get(i));
                data.push(match op {
                    BinaryOp::Add => x + y,
                    BinaryOp::Sub => x - y,
                    BinaryOp::Mul => x * y,
                    BinaryOp::Div | BinaryOp::Mod => {
                        if y == 0.0 {
                            return Err(ExecError::DivisionByZero);
                        }
                        if matches!(op, BinaryOp::Div) {
                            x / y
                        } else {
                            x % y
                        }
                    }
                    _ => return Ok(None),
                });
            }
            let validity = if all {
                Validity::all_valid(n)
            } else {
                validity
            };
            Ok(Some(ColumnVec::Float { data, validity }))
        }
    }
}

/// The `as_f64` view of an `Int` or `Float` lane, for mixed arithmetic.
#[derive(Clone, Copy)]
enum FloatView<'a> {
    F(&'a [f64]),
    I(&'a [i64]),
}

impl FloatView<'_> {
    #[inline]
    fn get(&self, i: usize) -> f64 {
        match self {
            FloatView::F(data) => data[i],
            FloatView::I(data) => data[i] as f64,
        }
    }
}

fn float_view(col: &ColumnVec) -> Option<(FloatView<'_>, &Validity)> {
    match col {
        ColumnVec::Float { data, validity } => Some((FloatView::F(data), validity)),
        ColumnVec::Int { data, validity } => Some((FloatView::I(data), validity)),
        _ => None,
    }
}

/// Row-major fallback: both columns rendered to `Value`s, then the shared
/// scalar applier row by row — left column first, then right, then apply
/// in row order, matching the row-major evaluator's error order.
fn scalar_binary(op: BinaryOp, l: ColumnVec, r: ColumnVec) -> Result<ColumnVec> {
    let n = l.len();
    let lvals = l.to_values();
    let rvals = r.to_values();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(apply_binary_scalar(op, &lvals[i], &rvals[i])?);
    }
    Ok(ColumnVec::Values(out))
}

/// Applies a non-logical binary operator over two aligned columns.
/// Returns the result column and whether the row-major scalar fallback ran
/// (`AND`/`OR` short-circuit over sub-selections and never reach here).
pub fn binary_column(op: BinaryOp, l: ColumnVec, r: ColumnVec) -> Result<(ColumnVec, bool)> {
    debug_assert_eq!(l.len(), r.len());
    match op {
        BinaryOp::Cmp(cmp_op) => {
            let typed = match cmp_op {
                CompareOp::Eq => compare_columns(|o| o == Ordering::Equal, &l, &r),
                CompareOp::Neq => compare_columns(|o| o != Ordering::Equal, &l, &r),
                CompareOp::Lt => compare_columns(Ordering::is_lt, &l, &r),
                CompareOp::Le => compare_columns(Ordering::is_le, &l, &r),
                CompareOp::Gt => compare_columns(Ordering::is_gt, &l, &r),
                CompareOp::Ge => compare_columns(Ordering::is_ge, &l, &r),
            };
            if let Some(out) = typed {
                return Ok((out, false));
            }
        }
        BinaryOp::NullSafeEq => {
            if let Some(out) = null_safe_eq_columns(&l, &r) {
                return Ok((out, false));
            }
        }
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
            if let Some(out) = arith_columns(op, &l, &r)? {
                return Ok((out, false));
            }
        }
        BinaryOp::Like | BinaryOp::NotLike | BinaryOp::Concat => {}
        BinaryOp::And | BinaryOp::Or => unreachable!("logical connectives short-circuit"),
    }
    Ok((scalar_binary(op, l, r)?, true))
}

/// Applies a unary operator over a column. Returns the result column and
/// whether the row-major scalar fallback ran.
pub fn unary_column(op: UnaryOp, col: ColumnVec) -> Result<(ColumnVec, bool)> {
    let n = col.len();
    match op {
        UnaryOp::IsNull | UnaryOp::IsNotNull => {
            let want_null = matches!(op, UnaryOp::IsNull);
            let (data, fell_back) = match &col {
                ColumnVec::Values(vals) => (
                    vals.iter().map(|v| v.is_null() == want_null).collect(),
                    true,
                ),
                ColumnVec::Int { validity, .. }
                | ColumnVec::Float { validity, .. }
                | ColumnVec::Date { validity, .. }
                | ColumnVec::Bool { validity, .. }
                | ColumnVec::Str { validity, .. } => (
                    (0..n).map(|i| validity.get(i) != want_null).collect(),
                    false,
                ),
            };
            Ok((
                ColumnVec::Bool {
                    data,
                    validity: Validity::all_valid(n),
                },
                fell_back,
            ))
        }
        UnaryOp::Not => match col {
            ColumnVec::Bool { mut data, validity } => {
                for b in &mut data {
                    *b = !*b;
                }
                Ok((ColumnVec::Bool { data, validity }, false))
            }
            // NOT over any non-boolean value is Unknown (`as_truth`), so a
            // typed non-boolean lane maps to an all-NULL boolean column.
            col @ (ColumnVec::Int { .. }
            | ColumnVec::Float { .. }
            | ColumnVec::Date { .. }
            | ColumnVec::Str { .. }) => {
                let mut validity = Validity::with_capacity(n);
                for _ in 0..col.len() {
                    validity.push(false);
                }
                Ok((
                    ColumnVec::Bool {
                        data: vec![false; n],
                        validity,
                    },
                    false,
                ))
            }
            col @ ColumnVec::Values(_) => Ok((scalar_unary(op, col)?, true)),
        },
        UnaryOp::Neg => match col {
            ColumnVec::Int { mut data, validity } => {
                // Invalid slots hold 0, whose negation is itself, so the
                // whole slice negates unconditionally (matching the scalar
                // `Int(-i)`, including its debug overflow behaviour).
                for x in &mut data {
                    *x = -*x;
                }
                Ok((ColumnVec::Int { data, validity }, false))
            }
            ColumnVec::Float { mut data, validity } => {
                for x in &mut data {
                    *x = -*x;
                }
                Ok((ColumnVec::Float { data, validity }, false))
            }
            col => Ok((scalar_unary(op, col)?, true)),
        },
    }
}

fn scalar_unary(op: UnaryOp, mut col: ColumnVec) -> Result<ColumnVec> {
    let n = col.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(apply_unary(op, col.take_value(i))?);
    }
    Ok(ColumnVec::Values(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_storage::Value;

    fn col(vals: &[Value]) -> ColumnVec {
        let first = vals.iter().find(|v| !v.is_null()).cloned();
        let mut c = match first {
            Some(v) => ColumnVec::typed_for(&v, vals.len()),
            None => ColumnVec::values_with_capacity(vals.len()),
        };
        for v in vals {
            c.push_value(v.clone());
        }
        c
    }

    fn values_col(vals: &[Value]) -> ColumnVec {
        ColumnVec::Values(vals.to_vec())
    }

    /// Every kernel output must equal applying the shared scalar operator
    /// row by row — on typed lanes and on `Values` lanes alike.
    #[test]
    fn binary_kernels_match_scalar_semantics() {
        const TWO_53: i64 = 1 << 53;
        let ints = [
            Value::Int(1),
            Value::Null,
            Value::Int(TWO_53 + 1),
            Value::Int(-5),
            Value::Int(0),
        ];
        let floats = [
            Value::Float(1.0),
            Value::Float(TWO_53 as f64),
            Value::Null,
            Value::Float(f64::NAN),
            Value::Float(-0.0),
        ];
        let dates = [
            Value::Date(1),
            Value::Date(-3),
            Value::Null,
            Value::Date(0),
            Value::Date(7),
        ];
        let bools = [
            Value::Bool(true),
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Bool(false),
        ];
        let strs = [
            Value::str("a"),
            Value::Null,
            Value::str("b"),
            Value::str(""),
            Value::str("a"),
        ];
        let mixed = [
            Value::Int(2),
            Value::Float(2.0),
            Value::Null,
            Value::str("x"),
            Value::Bool(true),
        ];
        let columns = [&ints, &floats, &dates, &bools, &strs, &mixed];
        let ops = [
            BinaryOp::Cmp(CompareOp::Eq),
            BinaryOp::Cmp(CompareOp::Neq),
            BinaryOp::Cmp(CompareOp::Lt),
            BinaryOp::Cmp(CompareOp::Le),
            BinaryOp::Cmp(CompareOp::Gt),
            BinaryOp::Cmp(CompareOp::Ge),
            BinaryOp::NullSafeEq,
            BinaryOp::Add,
            BinaryOp::Sub,
            BinaryOp::Mul,
            BinaryOp::Concat,
        ];
        for lrows in columns {
            for rrows in columns {
                for op in ops {
                    let expected: Result<Vec<Value>> = lrows
                        .iter()
                        .zip(rrows.iter())
                        .map(|(l, r)| apply_binary_scalar(op, l, r))
                        .collect();
                    let got = binary_column(op, col(lrows), col(rrows)).map(|(c, _)| c.to_values());
                    assert_eq!(got, expected, "{op:?} over {lrows:?} vs {rrows:?}");
                    // And identically when the operands arrive in the
                    // mixed-type fallback lane.
                    let got_values = binary_column(op, values_col(lrows), values_col(rrows))
                        .map(|(c, _)| c.to_values());
                    assert_eq!(got_values, expected, "{op:?} (values lane)");
                }
            }
        }
    }

    #[test]
    fn int_overflow_retries_scalar_and_div_errors_in_row_order() {
        let l = col(&[Value::Int(1), Value::Int(i64::MAX)]);
        let r = col(&[Value::Int(1), Value::Int(1)]);
        let (out, fell_back) = binary_column(BinaryOp::Add, l, r).unwrap();
        assert!(fell_back, "overflow must reroute through the scalar path");
        assert_eq!(out.value_at(0), Value::Int(2));
        assert_eq!(out.value_at(1), Value::Float(i64::MAX as f64 + 1.0));

        // A NULL divisor yields NULL without erroring; the first *valid*
        // zero divisor raises, exactly like the row-major order.
        let l = col(&[Value::Float(1.0), Value::Float(2.0), Value::Float(3.0)]);
        let r = col(&[Value::Null, Value::Float(0.0), Value::Float(1.0)]);
        assert_eq!(
            binary_column(BinaryOp::Div, l, r),
            Err(ExecError::DivisionByZero)
        );
        let l = col(&[Value::Float(1.0), Value::Float(3.0)]);
        let r = col(&[Value::Null, Value::Float(2.0)]);
        let (out, fell_back) = binary_column(BinaryOp::Div, l, r).unwrap();
        assert!(!fell_back);
        assert_eq!(out.to_values(), vec![Value::Null, Value::Float(1.5)]);
    }

    #[test]
    fn unary_kernels_match_scalar_semantics() {
        let columns = [
            vec![Value::Int(3), Value::Null, Value::Int(-2)],
            vec![Value::Float(0.5), Value::Null, Value::Float(-0.0)],
            vec![Value::Bool(true), Value::Null, Value::Bool(false)],
            vec![Value::Date(3), Value::Null, Value::Date(0)],
            vec![Value::str("x"), Value::Null, Value::str("")],
            vec![Value::Int(1), Value::str("y"), Value::Null],
        ];
        for rows in &columns {
            for op in [UnaryOp::Not, UnaryOp::IsNull, UnaryOp::IsNotNull] {
                let expected: Result<Vec<Value>> =
                    rows.iter().map(|v| apply_unary(op, v.clone())).collect();
                let got = unary_column(op, col(rows)).map(|(c, _)| c.to_values());
                assert_eq!(got, expected, "{op:?} over {rows:?}");
            }
            // Neg errors on non-numeric lanes; compare results and errors.
            let expected: Result<Vec<Value>> = rows
                .iter()
                .map(|v| apply_unary(UnaryOp::Neg, v.clone()))
                .collect();
            let got = unary_column(UnaryOp::Neg, col(rows)).map(|(c, _)| c.to_values());
            assert_eq!(got, expected, "Neg over {rows:?}");
        }
    }
}
