//! Capacity-bounded memo maps for the executor's sublink/verdict caches.
//!
//! [`MemoMap`] behaves like a plain `HashMap<Vec<u8>, V>` by default. When a
//! capacity is configured ([`MemoMap::set_capacity`]) it becomes an LRU
//! cache: every hit refreshes the entry's recency and an insert that pushes
//! the map over its capacity evicts the least-recently-used entries.
//!
//! The LRU bookkeeping (a recency stamp per entry plus a lazily-invalidated
//! queue of `(stamp, key)` pairs) is only maintained when a capacity is set,
//! so the default unbounded configuration — which preserves the memo
//! behaviour the ROADMAP's Fig. 7 measurements were taken under — pays no
//! overhead for the bound. Queue entries left stale by a later touch of the
//! same key are skipped at eviction time and compacted away when the queue
//! outgrows the map by a constant factor.

use crate::resilience::{MemoBytes, MemoCost};
use perm_storage::{Relation, Truth};
use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::Hasher;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Fixed per-entry bookkeeping estimate (hash-map slot, recency stamp,
/// queue representative) added to each entry's key + value bytes.
const ENTRY_OVERHEAD: u64 = 48;

/// One stored entry: the cached value plus the recency stamp of its last
/// touch (0 while unbounded — stamps only mean something under a capacity).
struct Entry<V> {
    stamp: u64,
    value: V,
}

/// A byte-keyed memo map with an optional LRU capacity bound.
pub(crate) struct MemoMap<V> {
    map: HashMap<Vec<u8>, Entry<V>>,
    /// Recency queue, oldest first; entries whose stamp no longer matches
    /// the map's are stale and skipped. Only maintained under a capacity.
    queue: VecDeque<(u64, Vec<u8>)>,
    /// Monotonic recency clock.
    stamp: u64,
    capacity: Option<usize>,
    /// Approximate live bytes (keys + values + per-entry overhead), kept
    /// exact across insert/evict/clear so the resilience governor can
    /// account memo memory without walking the map.
    bytes: u64,
}

impl<V: Clone + MemoCost> MemoMap<V> {
    pub(crate) fn new() -> MemoMap<V> {
        MemoMap {
            map: HashMap::new(),
            queue: VecDeque::new(),
            stamp: 0,
            capacity: None,
            bytes: 0,
        }
    }

    /// Approximate bytes held by the live entries.
    pub(crate) fn bytes(&self) -> u64 {
        self.bytes
    }

    fn entry_cost(key_len: usize, value: &V) -> u64 {
        key_len as u64 + value.cost_bytes() + ENTRY_OVERHEAD
    }

    /// Bounds the map to at most `capacity` entries with LRU eviction, or
    /// lifts the bound with `None`. Shrinking below the current size evicts
    /// immediately.
    pub(crate) fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
        match capacity {
            Some(_) => {
                // Entries inserted while unbounded all carry stamp 0; rebuild
                // the queue so they are evictable in arbitrary-but-valid
                // order, then trim to the new bound.
                self.rebuild_queue();
                self.evict_over_capacity();
            }
            None => {
                self.queue.clear();
                self.queue.shrink_to_fit();
            }
        }
    }

    /// Looks up a key, refreshing its recency when a capacity is set.
    pub(crate) fn get(&mut self, key: &[u8]) -> Option<V> {
        if self.capacity.is_none() {
            return self.map.get(key).map(|e| e.value.clone());
        }
        let stamp = self.next_stamp();
        let value = {
            let entry = self.map.get_mut(key)?;
            entry.stamp = stamp;
            entry.value.clone()
        };
        self.queue.push_back((stamp, key.to_vec()));
        self.maybe_compact();
        Some(value)
    }

    /// Inserts a key, evicting least-recently-used entries if the configured
    /// capacity is exceeded.
    pub(crate) fn insert(&mut self, key: Vec<u8>, value: V) {
        let key_len = key.len();
        self.bytes += Self::entry_cost(key_len, &value);
        if self.capacity.is_none() {
            if let Some(old) = self.map.insert(key, Entry { stamp: 0, value }) {
                self.bytes -= Self::entry_cost(key_len, &old.value);
            }
            return;
        }
        let stamp = self.next_stamp();
        self.queue.push_back((stamp, key.clone()));
        if let Some(old) = self.map.insert(key, Entry { stamp, value }) {
            self.bytes -= Self::entry_cost(key_len, &old.value);
        }
        self.evict_over_capacity();
        self.maybe_compact();
    }

    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.queue.clear();
        self.bytes = 0;
    }

    /// Empties the map, handing every `(key, value)` pair to the caller —
    /// the spill-reclaim path, which persists the entries it drains.
    pub(crate) fn drain_entries(&mut self) -> Vec<(Vec<u8>, V)> {
        self.queue.clear();
        self.bytes = 0;
        self.map.drain().map(|(k, e)| (k, e.value)).collect()
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    #[cfg(test)]
    pub(crate) fn contains(&self, key: &[u8]) -> bool {
        self.map.contains_key(key)
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    fn evict_over_capacity(&mut self) {
        let Some(capacity) = self.capacity else {
            return;
        };
        while self.map.len() > capacity {
            match self.queue.pop_front() {
                Some((stamp, key)) => {
                    // Stale queue entry: the key was touched again later (or
                    // already evicted); the fresher queue entry represents it.
                    if self.map.get(&key).map(|e| e.stamp) == Some(stamp) {
                        if let Some(old) = self.map.remove(&key) {
                            self.bytes -= Self::entry_cost(key.len(), &old.value);
                        }
                    }
                }
                None => {
                    // Defensive: under a capacity every live entry has a
                    // queue representative, so this is unreachable; rebuild
                    // rather than loop forever if the invariant ever breaks.
                    self.rebuild_queue();
                    if self.queue.is_empty() {
                        break;
                    }
                }
            }
        }
    }

    /// Drops stale queue entries once they dominate the queue, keeping the
    /// queue length proportional to the live entry count.
    fn maybe_compact(&mut self) {
        if self.queue.len() > self.map.len() * 4 + 16 {
            let map = &self.map;
            self.queue
                .retain(|(stamp, key)| map.get(key).map(|e| e.stamp) == Some(*stamp));
        }
    }

    fn rebuild_queue(&mut self) {
        let mut entries: Vec<(u64, Vec<u8>)> =
            self.map.iter().map(|(k, e)| (e.stamp, k.clone())).collect();
        entries.sort_unstable();
        self.queue = entries.into();
    }
}

/// An N-shard, lock-per-shard variant of [`MemoMap`]: the key's hash picks a
/// shard, and only that shard's mutex is taken for the operation — so
/// concurrent executors contend per shard, not on one global lock. The byte
/// keys are the executor's typed memo keys, whose leading namespace tag and
/// sublink identity already make them collision-proof across statements (see
/// `crate::compile::NEXT_SUBLINK_ID`).
pub(crate) struct ShardedMemo<V> {
    shards: Vec<Mutex<MemoMap<V>>>,
}

impl<V: Clone + MemoCost> ShardedMemo<V> {
    fn new(shards: usize, capacity: Option<usize>) -> ShardedMemo<V> {
        let shards = shards.max(1);
        // A per-shard capacity so the total bound is ~`capacity`; rounding up
        // keeps a tiny bound usable rather than zero.
        let per_shard = capacity.map(|c| c.div_ceil(shards).max(1));
        ShardedMemo {
            shards: (0..shards)
                .map(|_| {
                    let mut m = MemoMap::new();
                    m.set_capacity(per_shard);
                    Mutex::new(m)
                })
                .collect(),
        }
    }

    fn shard(&self, key: &[u8]) -> &Mutex<MemoMap<V>> {
        let mut hasher = DefaultHasher::new();
        hasher.write(key);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    // Shard locks recover from poisoning (`PoisonError::into_inner`): a
    // panic while a shard is held cannot leave the map internally
    // inconsistent, because every critical section is a single complete
    // `MemoMap` operation — there is no multi-step write a panic could
    // interrupt halfway. Propagating the poison instead would turn one
    // panicked worker into a permanent failure for every later query whose
    // key hashes to the same shard.
    fn get(&self, key: &[u8]) -> Option<V> {
        self.shard(key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(key)
    }

    fn insert(&self, key: Vec<u8>, value: V) {
        self.shard(&key)
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, value);
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(PoisonError::into_inner).clear();
        }
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).map.len())
            .sum()
    }

    fn bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).bytes())
            .sum()
    }
}

/// The cross-thread sublink memo of the serving subsystem: sharded,
/// lock-per-shard maps for compiled-path sublink *results*
/// (`Arc<Relation>`, shared so hits never deep-copy — across threads too)
/// and `ANY`/`ALL` *verdicts*.
///
/// Attached to an executor via [`crate::Executor::with_shared_memo`], it
/// replaces the executor's private compiled-path memos, so distinct
/// correlated bindings evaluated by *different* worker threads (or by
/// different sessions serving the same prepared statement) populate and hit
/// one memo. Only compiled-path entries participate: their keys embed a
/// process-unique sublink id, so entries from different statements can never
/// collide. Interpreter-path entries are keyed by plan *node address* —
/// meaningless in another executor, whose plans live at other addresses —
/// and therefore always stay executor-private.
///
/// Two threads that race to compute the same key both execute the sublink
/// and both insert; the results are identical (a sublink result is a pure
/// function of the database, the binding and the parameter values), so the
/// last write is indistinguishable from the first. Errors are never cached.
pub struct SharedSublinkMemo {
    results: ShardedMemo<Arc<Relation>>,
    verdicts: ShardedMemo<Truth>,
    /// Result-map lookups that found an entry / came up empty, across all
    /// workers — the serving metrics registry's shared-memo hit rate.
    /// Relaxed atomics: these are monotone diagnostics, not
    /// synchronisation.
    result_hits: AtomicU64,
    result_misses: AtomicU64,
}

/// Default shard count of [`SharedSublinkMemo`]: enough to keep a handful of
/// workers from serialising on one lock, small enough to stay cache-friendly.
const DEFAULT_SHARDS: usize = 16;

impl SharedSublinkMemo {
    /// An unbounded shared memo with the default shard count.
    pub fn new() -> Arc<SharedSublinkMemo> {
        SharedSublinkMemo::with_config(DEFAULT_SHARDS, None)
    }

    /// A shared memo with an explicit shard count and an optional LRU
    /// capacity bound *per map* — the result map and the (much lighter,
    /// `Truth`-valued) verdict map are each bounded to `capacity` entries,
    /// split evenly across their shards, so [`Self::entry_count`] can
    /// reach `2 × capacity`. `None` = unbounded. This mirrors the per-map
    /// semantics of `Executor::with_memo_capacity`.
    pub fn with_config(shards: usize, capacity: Option<usize>) -> Arc<SharedSublinkMemo> {
        Arc::new(SharedSublinkMemo {
            results: ShardedMemo::new(shards, capacity),
            verdicts: ShardedMemo::new(shards, capacity),
            result_hits: AtomicU64::new(0),
            result_misses: AtomicU64::new(0),
        })
    }

    /// Drops every cached result and verdict. The owner calls this when the
    /// underlying database changes; executors never clear a shared memo on
    /// their own.
    pub fn clear(&self) {
        self.results.clear();
        self.verdicts.clear();
    }

    /// Number of live entries across both maps and all shards (diagnostic).
    pub fn entry_count(&self) -> usize {
        self.results.len() + self.verdicts.len()
    }

    /// Approximate bytes held across both maps and all shards — the memo is
    /// byte-aware, not just entry-aware, so a memory budget can account and
    /// reclaim it.
    pub fn byte_size(&self) -> u64 {
        self.results.bytes() + self.verdicts.bytes()
    }

    /// Result-map hits observed so far (across all sharing executors).
    pub fn result_hits(&self) -> u64 {
        self.result_hits.load(Ordering::Relaxed)
    }

    /// Result-map misses observed so far (across all sharing executors).
    pub fn result_misses(&self) -> u64 {
        self.result_misses.load(Ordering::Relaxed)
    }

    pub(crate) fn get_result(&self, key: &[u8]) -> Option<Arc<Relation>> {
        let hit = self.results.get(key);
        match &hit {
            Some(_) => self.result_hits.fetch_add(1, Ordering::Relaxed),
            None => self.result_misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    pub(crate) fn insert_result(&self, key: Vec<u8>, value: Arc<Relation>) {
        self.results.insert(key, value);
    }

    pub(crate) fn get_verdict(&self, key: &[u8]) -> Option<Truth> {
        self.verdicts.get(key)
    }

    pub(crate) fn insert_verdict(&self, key: Vec<u8>, value: Truth) {
        self.verdicts.insert(key, value);
    }
}

// The governor's view of an executor-private memo: byte footprint and
// clear-everything reclaim. The `Rc<RefCell<..>>` handle is what the
// executor itself holds, so reclaiming here is indistinguishable from the
// executor clearing its own memo — a pure speed loss.
impl<V: Clone + MemoCost> MemoBytes for Rc<RefCell<MemoMap<V>>> {
    fn current_bytes(&self) -> u64 {
        self.borrow().bytes()
    }

    fn reclaim(&self) -> u64 {
        let mut memo = self.borrow_mut();
        let freed = memo.bytes();
        memo.clear();
        freed
    }
}

impl MemoBytes for Arc<SharedSublinkMemo> {
    fn current_bytes(&self) -> u64 {
        self.byte_size()
    }

    fn reclaim(&self) -> u64 {
        let freed = self.byte_size();
        self.clear();
        freed
    }
}

/// The compiled-path result memo wrapped for **spill-aware** reclaim: under
/// budget pressure its entries are written to the executor's spill file
/// (keyed by the same collision-proof compiled memo keys) instead of
/// dropped, so a later miss reloads the relation through the buffer pool
/// instead of re-executing the sublink.
///
/// Only the compiled result memo gets this treatment. Interpreter-path keys
/// embed plan *node addresses*, which a later execution may reuse for a
/// different plan — persisting them could alias, so they stay drop-only
/// (the blanket impl above). Verdicts are a `Truth` each and cost nothing to
/// refold from a reloaded result relation.
pub(crate) struct SpillableResultMemo(pub(crate) Rc<RefCell<MemoMap<Arc<Relation>>>>);

impl MemoBytes for SpillableResultMemo {
    fn current_bytes(&self) -> u64 {
        self.0.borrow().bytes()
    }

    fn reclaim(&self) -> u64 {
        let mut memo = self.0.borrow_mut();
        let freed = memo.bytes();
        memo.clear();
        freed
    }

    fn reclaim_to_spill(&self, spill: &crate::spill::SpillManager) -> u64 {
        let mut memo = self.0.borrow_mut();
        let freed = memo.bytes();
        for (key, value) in memo.drain_entries() {
            spill.memo_store(&key, &value);
        }
        freed
    }
}

impl std::fmt::Debug for SharedSublinkMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSublinkMemo")
            .field("shards", &self.results.shards.len())
            .field("entries", &self.entry_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl MemoCost for u32 {
        fn cost_bytes(&self) -> u64 {
            std::mem::size_of::<u32>() as u64
        }
    }

    #[test]
    fn unbounded_map_keeps_everything() {
        let mut m: MemoMap<u32> = MemoMap::new();
        for i in 0..100u32 {
            m.insert(vec![i as u8], i);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&[7]), Some(7));
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut m: MemoMap<u32> = MemoMap::new();
        m.set_capacity(Some(2));
        m.insert(vec![1], 1);
        m.insert(vec![2], 2);
        // Touch key 1 so key 2 becomes the LRU victim.
        assert_eq!(m.get(&[1]), Some(1));
        m.insert(vec![3], 3);
        assert_eq!(m.len(), 2);
        assert!(m.contains(&[1]));
        assert!(!m.contains(&[2]));
        assert!(m.contains(&[3]));
    }

    #[test]
    fn reinserting_a_key_does_not_grow_the_map() {
        let mut m: MemoMap<u32> = MemoMap::new();
        m.set_capacity(Some(2));
        for _ in 0..10 {
            m.insert(vec![1], 1);
            m.insert(vec![2], 2);
        }
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&[1]), Some(1));
        assert_eq!(m.get(&[2]), Some(2));
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let mut m: MemoMap<u32> = MemoMap::new();
        for i in 0..10u8 {
            m.insert(vec![i], i as u32);
        }
        m.set_capacity(Some(3));
        assert_eq!(m.len(), 3);
        m.set_capacity(None);
        m.insert(vec![100], 100);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn sharded_memo_round_trips_across_threads() {
        let memo = SharedSublinkMemo::new();
        let rel = Arc::new(Relation::default());
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let memo = &memo;
                let rel = &rel;
                s.spawn(move || {
                    for i in 0..50u8 {
                        memo.insert_result(vec![t, i], Arc::clone(rel));
                        memo.insert_verdict(vec![t, i], Truth::True);
                    }
                });
            }
        });
        assert_eq!(memo.entry_count(), 2 * 4 * 50);
        let hit = memo.get_result(&[2, 7]).expect("entry written by thread 2");
        assert!(Arc::ptr_eq(&hit, &rel), "hits share the allocation");
        assert_eq!(memo.get_verdict(&[3, 49]), Some(Truth::True));
        assert_eq!(memo.get_result(&[9, 9]), None);
        memo.clear();
        assert_eq!(memo.entry_count(), 0);
    }

    #[test]
    fn sharded_memo_capacity_bounds_every_shard() {
        let memo = SharedSublinkMemo::with_config(4, Some(8));
        for i in 0..100u8 {
            memo.insert_result(vec![i], Arc::new(Relation::default()));
        }
        // Total bound is the per-shard bound × shards: ceil(8 / 4) = 2 each.
        assert!(memo.results.len() <= 8, "got {}", memo.results.len());
        assert!(memo.results.len() >= 4, "every shard keeps its recent keys");
    }

    #[test]
    fn byte_accounting_tracks_insert_replace_evict_and_clear() {
        let mut m: MemoMap<u32> = MemoMap::new();
        assert_eq!(m.bytes(), 0);
        m.insert(vec![1, 2, 3], 7);
        let one = m.bytes();
        assert_eq!(one, 3 + 4 + ENTRY_OVERHEAD);
        // Replacing a key must not double-count.
        m.insert(vec![1, 2, 3], 8);
        assert_eq!(m.bytes(), one);
        m.insert(vec![4], 9);
        assert!(m.bytes() > one);
        // LRU eviction returns the evicted entries' bytes.
        m.set_capacity(Some(1));
        assert_eq!(m.len(), 1);
        assert!(m.bytes() < one + (1 + 4 + ENTRY_OVERHEAD));
        m.clear();
        assert_eq!(m.bytes(), 0);

        let shared = SharedSublinkMemo::new();
        assert_eq!(shared.byte_size(), 0);
        shared.insert_verdict(vec![1], Truth::True);
        shared.insert_result(vec![2], Arc::new(Relation::default()));
        assert!(shared.byte_size() > 0);
        shared.clear();
        assert_eq!(shared.byte_size(), 0);
    }

    #[test]
    fn poisoned_shard_recovers_for_the_next_query() {
        let memo = SharedSublinkMemo::new();
        memo.insert_verdict(vec![1], Truth::True);
        // A worker panics while holding the shard lock of key [1],
        // poisoning the mutex.
        let worker = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = memo.verdicts.shard(&[1]).lock().unwrap();
                panic!("worker dies inside the critical section");
            })
            .join()
        });
        assert!(worker.is_err(), "the worker must actually panic");
        // Every operation on that shard still succeeds: the entries are
        // internally consistent (each write is one complete insert), so the
        // poison is recovered rather than propagated.
        assert_eq!(memo.get_verdict(&[1]), Some(Truth::True));
        memo.insert_verdict(vec![1, 1], Truth::False);
        assert_eq!(memo.get_verdict(&[1, 1]), Some(Truth::False));
        assert!(memo.byte_size() > 0);
        memo.clear();
        assert_eq!(memo.entry_count(), 0);
    }

    #[test]
    fn heavy_hit_traffic_stays_bounded() {
        let mut m: MemoMap<u32> = MemoMap::new();
        m.set_capacity(Some(4));
        for i in 0..4u8 {
            m.insert(vec![i], i as u32);
        }
        // Many hits must not let internal bookkeeping grow without bound.
        for _ in 0..10_000 {
            assert_eq!(m.get(&[2]), Some(2));
        }
        assert!(m.queue.len() <= m.map.len() * 4 + 17);
        m.insert(vec![9], 9);
        assert_eq!(m.len(), 4);
        assert!(m.contains(&[2]), "hot key must survive eviction");
    }
}
