//! Capacity-bounded memo maps for the executor's sublink/verdict caches.
//!
//! [`MemoMap`] behaves like a plain `HashMap<Vec<u8>, V>` by default. When a
//! capacity is configured ([`MemoMap::set_capacity`]) it becomes an LRU
//! cache: every hit refreshes the entry's recency and an insert that pushes
//! the map over its capacity evicts the least-recently-used entries.
//!
//! The LRU bookkeeping (a recency stamp per entry plus a lazily-invalidated
//! queue of `(stamp, key)` pairs) is only maintained when a capacity is set,
//! so the default unbounded configuration — which preserves the memo
//! behaviour the ROADMAP's Fig. 7 measurements were taken under — pays no
//! overhead for the bound. Queue entries left stale by a later touch of the
//! same key are skipped at eviction time and compacted away when the queue
//! outgrows the map by a constant factor.

use std::collections::{HashMap, VecDeque};

/// One stored entry: the cached value plus the recency stamp of its last
/// touch (0 while unbounded — stamps only mean something under a capacity).
struct Entry<V> {
    stamp: u64,
    value: V,
}

/// A byte-keyed memo map with an optional LRU capacity bound.
pub(crate) struct MemoMap<V> {
    map: HashMap<Vec<u8>, Entry<V>>,
    /// Recency queue, oldest first; entries whose stamp no longer matches
    /// the map's are stale and skipped. Only maintained under a capacity.
    queue: VecDeque<(u64, Vec<u8>)>,
    /// Monotonic recency clock.
    stamp: u64,
    capacity: Option<usize>,
}

impl<V: Clone> MemoMap<V> {
    pub(crate) fn new() -> MemoMap<V> {
        MemoMap {
            map: HashMap::new(),
            queue: VecDeque::new(),
            stamp: 0,
            capacity: None,
        }
    }

    /// Bounds the map to at most `capacity` entries with LRU eviction, or
    /// lifts the bound with `None`. Shrinking below the current size evicts
    /// immediately.
    pub(crate) fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
        match capacity {
            Some(_) => {
                // Entries inserted while unbounded all carry stamp 0; rebuild
                // the queue so they are evictable in arbitrary-but-valid
                // order, then trim to the new bound.
                self.rebuild_queue();
                self.evict_over_capacity();
            }
            None => {
                self.queue.clear();
                self.queue.shrink_to_fit();
            }
        }
    }

    /// Looks up a key, refreshing its recency when a capacity is set.
    pub(crate) fn get(&mut self, key: &[u8]) -> Option<V> {
        if self.capacity.is_none() {
            return self.map.get(key).map(|e| e.value.clone());
        }
        let stamp = self.next_stamp();
        let value = {
            let entry = self.map.get_mut(key)?;
            entry.stamp = stamp;
            entry.value.clone()
        };
        self.queue.push_back((stamp, key.to_vec()));
        self.maybe_compact();
        Some(value)
    }

    /// Inserts a key, evicting least-recently-used entries if the configured
    /// capacity is exceeded.
    pub(crate) fn insert(&mut self, key: Vec<u8>, value: V) {
        if self.capacity.is_none() {
            self.map.insert(key, Entry { stamp: 0, value });
            return;
        }
        let stamp = self.next_stamp();
        self.queue.push_back((stamp, key.clone()));
        self.map.insert(key, Entry { stamp, value });
        self.evict_over_capacity();
        self.maybe_compact();
    }

    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.queue.clear();
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    #[cfg(test)]
    pub(crate) fn contains(&self, key: &[u8]) -> bool {
        self.map.contains_key(key)
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    fn evict_over_capacity(&mut self) {
        let Some(capacity) = self.capacity else {
            return;
        };
        while self.map.len() > capacity {
            match self.queue.pop_front() {
                Some((stamp, key)) => {
                    // Stale queue entry: the key was touched again later (or
                    // already evicted); the fresher queue entry represents it.
                    if self.map.get(&key).map(|e| e.stamp) == Some(stamp) {
                        self.map.remove(&key);
                    }
                }
                None => {
                    // Defensive: under a capacity every live entry has a
                    // queue representative, so this is unreachable; rebuild
                    // rather than loop forever if the invariant ever breaks.
                    self.rebuild_queue();
                    if self.queue.is_empty() {
                        break;
                    }
                }
            }
        }
    }

    /// Drops stale queue entries once they dominate the queue, keeping the
    /// queue length proportional to the live entry count.
    fn maybe_compact(&mut self) {
        if self.queue.len() > self.map.len() * 4 + 16 {
            let map = &self.map;
            self.queue
                .retain(|(stamp, key)| map.get(key).map(|e| e.stamp) == Some(*stamp));
        }
    }

    fn rebuild_queue(&mut self) {
        let mut entries: Vec<(u64, Vec<u8>)> =
            self.map.iter().map(|(k, e)| (e.stamp, k.clone())).collect();
        entries.sort_unstable();
        self.queue = entries.into();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_map_keeps_everything() {
        let mut m: MemoMap<u32> = MemoMap::new();
        for i in 0..100u32 {
            m.insert(vec![i as u8], i);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&[7]), Some(7));
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut m: MemoMap<u32> = MemoMap::new();
        m.set_capacity(Some(2));
        m.insert(vec![1], 1);
        m.insert(vec![2], 2);
        // Touch key 1 so key 2 becomes the LRU victim.
        assert_eq!(m.get(&[1]), Some(1));
        m.insert(vec![3], 3);
        assert_eq!(m.len(), 2);
        assert!(m.contains(&[1]));
        assert!(!m.contains(&[2]));
        assert!(m.contains(&[3]));
    }

    #[test]
    fn reinserting_a_key_does_not_grow_the_map() {
        let mut m: MemoMap<u32> = MemoMap::new();
        m.set_capacity(Some(2));
        for _ in 0..10 {
            m.insert(vec![1], 1);
            m.insert(vec![2], 2);
        }
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&[1]), Some(1));
        assert_eq!(m.get(&[2]), Some(2));
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let mut m: MemoMap<u32> = MemoMap::new();
        for i in 0..10u8 {
            m.insert(vec![i], i as u32);
        }
        m.set_capacity(Some(3));
        assert_eq!(m.len(), 3);
        m.set_capacity(None);
        m.insert(vec![100], 100);
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn heavy_hit_traffic_stays_bounded() {
        let mut m: MemoMap<u32> = MemoMap::new();
        m.set_capacity(Some(4));
        for i in 0..4u8 {
            m.insert(vec![i], i as u32);
        }
        // Many hits must not let internal bookkeeping grow without bound.
        for _ in 0..10_000 {
            assert_eq!(m.get(&[2]), Some(2));
        }
        assert!(m.queue.len() <= m.map.len() * 4 + 17);
        m.insert(vec![9], 9);
        assert_eq!(m.len(), 4);
        assert!(m.contains(&[2]), "hot key must survive eviction");
    }
}
