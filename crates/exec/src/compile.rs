//! Plan compilation: the one-time pass that turns a [`Plan`] into a
//! [`CompiledPlan`] whose per-tuple work is integer indexing instead of
//! name lookup.
//!
//! Two things happen per operator:
//!
//! 1. **Slot resolution.** Every [`Expr::Column`] is resolved against the
//!    concrete *schema chain* in scope at its location — the operator's own
//!    input schema innermost, then the scopes of the operators containing
//!    each enclosing sublink, outermost last — into a [`Slot`] of scope
//!    depth and attribute index. Resolution order matches the interpreter's
//!    [`crate::eval::Env::lookup`] exactly: innermost scope first, falling
//!    outwards only when a name is absent. Names that do not resolve (or are
//!    ambiguous within the scope that first knows them) compile to a
//!    deferred error that is raised only if the expression is actually
//!    evaluated, preserving the interpreter's short-circuit behaviour.
//! 2. **Correlation signatures.** For every sublink, the free correlated
//!    columns of its plan ([`free_correlated_columns`]) are resolved against
//!    the outer chain. When they all resolve, the sublink is *memoizable*:
//!    its result is a pure function of the database and those binding
//!    values, so the executor caches it per `(sublink id, encoded binding)`
//!    — *k* distinct bindings mean *k* executions, however large the outer
//!    relation is. An uncorrelated sublink has an empty signature and runs
//!    once per query.
//!
//! Compilation never changes semantics: results (including errors) are
//! identical to [`crate::Executor::execute_unoptimized`]. In particular the
//! memo key is *type-exact* ([`encode_key_typed`]) — `Int(3)` and
//! `Float(3.0)` are distinct bindings even though the engine's equality
//! coerces them — so a memo hit always substitutes the result of a
//! byte-identical binding.

use crate::eval::{arithmetic, compare};
use crate::executor::{encode_key, encode_key_typed, extract_equi_keys, Executor};
use crate::functions;
use crate::{ExecError, Result};
use perm_algebra::visit::free_correlated_columns;
use perm_algebra::{
    AggFunc, BinaryOp, CompareOp, Expr, FuncName, JoinKind, Plan, SetOpKind, SublinkKind, UnaryOp,
};
use perm_storage::{Relation, Schema, StorageError, Truth, Tuple, Value};
use std::cell::Cell;
use std::collections::HashMap;

/// A resolved column reference: how many scopes outwards, and at which
/// attribute position there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Scope distance: 0 is the innermost (current operator input) scope.
    pub depth: usize,
    /// Attribute index within that scope's tuple.
    pub index: usize,
}

/// A compiled scalar expression. Structurally mirrors [`Expr`] with column
/// references replaced by [`Slot`]s and sublinks by [`CompiledSublink`]s.
#[derive(Debug, Clone)]
pub enum CompiledExpr {
    /// A column resolved to a positional slot.
    Slot(Slot),
    /// A column that did not resolve at compile time. Evaluating it raises
    /// the stored error — exactly when the interpreter would have raised it.
    Unresolved {
        /// Name as written, for the error message.
        name: String,
        /// `true` when the name was ambiguous rather than unknown.
        ambiguous: bool,
    },
    /// A constant.
    Literal(Value),
    /// Binary operation.
    Binary {
        op: BinaryOp,
        left: Box<CompiledExpr>,
        right: Box<CompiledExpr>,
    },
    /// Unary operation.
    Unary {
        op: UnaryOp,
        expr: Box<CompiledExpr>,
    },
    /// Scalar function call.
    Func {
        name: FuncName,
        args: Vec<CompiledExpr>,
    },
    /// `CASE WHEN … THEN … ELSE … END`.
    Case {
        branches: Vec<(CompiledExpr, CompiledExpr)>,
        else_expr: Option<Box<CompiledExpr>>,
    },
    /// A sublink with its compiled plan and correlation signature.
    Sublink(Box<CompiledSublink>),
}

/// A compiled sublink expression.
#[derive(Debug, Clone)]
pub struct CompiledSublink {
    /// Unique id (per [`Executor`]) used in memo keys.
    pub id: usize,
    /// The sublink kind (`ANY`, `ALL`, `EXISTS`, scalar).
    pub kind: SublinkKind,
    /// Test expression of `ANY`/`ALL` sublinks, compiled against the outer
    /// scope chain.
    pub test_expr: Option<CompiledExpr>,
    /// Comparison operator of `ANY`/`ALL` sublinks.
    pub op: Option<CompareOp>,
    /// The compiled sublink query.
    pub plan: CompiledPlan,
    /// The correlation signature: outer-scope slots (relative to the
    /// sublink's use site) whose values parameterise the result. `Some` when
    /// every free column of the sublink plan resolved statically — the memo
    /// precondition. Empty means uncorrelated (InitPlan).
    pub params: Option<Vec<Slot>>,
}

/// One compiled hash-join key pair (see
/// [`crate::executor::Executor::execute`]'s equi-join hashing).
#[derive(Debug, Clone)]
pub struct CompiledEquiKey {
    /// Key expression over the left input.
    pub left: CompiledExpr,
    /// Key expression over the right input.
    pub right: CompiledExpr,
    /// `=n` instead of `=`: NULL keys match NULL keys.
    pub null_safe: bool,
}

/// One compiled aggregate computation.
#[derive(Debug, Clone)]
pub struct CompiledAggregate {
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument expression (`None` for `count(*)`).
    pub arg: Option<CompiledExpr>,
    /// Whether duplicates are dropped before aggregating.
    pub distinct: bool,
}

/// One compiled `ORDER BY` key.
#[derive(Debug, Clone)]
pub struct CompiledSortKey {
    /// Sort expression.
    pub expr: CompiledExpr,
    /// Ascending (`true`) or descending.
    pub ascending: bool,
}

/// A compiled plan operator. Every node carries its output schema, computed
/// once at compile time.
#[derive(Debug, Clone)]
pub enum CompiledPlan {
    /// Base relation access.
    Scan { table: String, schema: Schema },
    /// Constant relation.
    Values { schema: Schema, rows: Vec<Tuple> },
    /// Projection.
    Project {
        input: Box<CompiledPlan>,
        items: Vec<CompiledExpr>,
        distinct: bool,
        schema: Schema,
    },
    /// Selection.
    Select {
        input: Box<CompiledPlan>,
        predicate: CompiledExpr,
        schema: Schema,
    },
    /// Cross product.
    CrossProduct {
        left: Box<CompiledPlan>,
        right: Box<CompiledPlan>,
        schema: Schema,
    },
    /// Inner or left-outer join. `equi_keys` is non-empty when the condition
    /// admits hash execution; the full condition is always rechecked.
    Join {
        left: Box<CompiledPlan>,
        right: Box<CompiledPlan>,
        kind: JoinKind,
        condition: CompiledExpr,
        equi_keys: Vec<CompiledEquiKey>,
        /// Arity of the right input, for NULL padding of unmatched rows.
        right_arity: usize,
        schema: Schema,
    },
    /// Grouping and aggregation.
    Aggregate {
        input: Box<CompiledPlan>,
        group_by: Vec<CompiledExpr>,
        aggregates: Vec<CompiledAggregate>,
        schema: Schema,
    },
    /// Set operation.
    SetOp {
        op: SetOpKind,
        all: bool,
        left: Box<CompiledPlan>,
        right: Box<CompiledPlan>,
        schema: Schema,
    },
    /// Sorting.
    Sort {
        input: Box<CompiledPlan>,
        keys: Vec<CompiledSortKey>,
        schema: Schema,
    },
    /// First-`n` truncation.
    Limit {
        input: Box<CompiledPlan>,
        limit: usize,
        schema: Schema,
    },
}

impl CompiledPlan {
    /// The output schema of this operator.
    pub fn schema(&self) -> &Schema {
        match self {
            CompiledPlan::Scan { schema, .. }
            | CompiledPlan::Values { schema, .. }
            | CompiledPlan::Project { schema, .. }
            | CompiledPlan::Select { schema, .. }
            | CompiledPlan::CrossProduct { schema, .. }
            | CompiledPlan::Join { schema, .. }
            | CompiledPlan::Aggregate { schema, .. }
            | CompiledPlan::SetOp { schema, .. }
            | CompiledPlan::Sort { schema, .. }
            | CompiledPlan::Limit { schema, .. } => schema,
        }
    }
}

/// The compile-time scope chain, innermost scope at the head. Parallel to
/// the runtime [`Frame`] chain.
struct Scopes<'a> {
    parent: Option<&'a Scopes<'a>>,
    schema: &'a Schema,
}

impl<'a> Scopes<'a> {
    fn nest(parent: Option<&'a Scopes<'a>>, schema: &'a Schema) -> Scopes<'a> {
        Scopes { parent, schema }
    }

    /// Resolves a name along the chain, innermost first — the compile-time
    /// mirror of [`crate::eval::Env::lookup`].
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> CompiledExpr {
        match self.schema.try_resolve(qualifier, name) {
            Ok(Some(index)) => CompiledExpr::Slot(Slot { depth: 0, index }),
            Ok(None) => match self.parent {
                Some(p) => match p.resolve(qualifier, name) {
                    CompiledExpr::Slot(slot) => CompiledExpr::Slot(Slot {
                        depth: slot.depth + 1,
                        index: slot.index,
                    }),
                    unresolved => unresolved,
                },
                None => CompiledExpr::Unresolved {
                    name: name.to_string(),
                    ambiguous: false,
                },
            },
            // Ambiguity in the innermost scope that knows the name stops the
            // search, exactly like the interpreter.
            Err(_) => CompiledExpr::Unresolved {
                name: name.to_string(),
                ambiguous: true,
            },
        }
    }
}

/// The runtime scope chain: one borrowed tuple per compile-time scope.
#[derive(Debug, Clone, Copy)]
pub struct Frame<'a> {
    parent: Option<&'a Frame<'a>>,
    tuple: &'a Tuple,
}

impl<'a> Frame<'a> {
    /// Pushes a new innermost scope.
    pub fn new(parent: Option<&'a Frame<'a>>, tuple: &'a Tuple) -> Frame<'a> {
        Frame { parent, tuple }
    }

    /// Reads the value at a compiled slot.
    fn get(&self, slot: Slot) -> &Value {
        let mut frame = self;
        for _ in 0..slot.depth {
            frame = frame
                .parent
                .expect("compiled slot depth exceeds runtime scope chain");
        }
        frame.tuple.get(slot.index)
    }
}

/// Compiles a plan with an empty outer scope chain. `next_sublink_id` is
/// shared so sublink ids stay unique across compilations.
pub(crate) fn compile_plan(plan: &Plan, next_sublink_id: &Cell<usize>) -> Result<CompiledPlan> {
    let mut compiler = Compiler { next_sublink_id };
    compiler.plan(plan, None)
}

struct Compiler<'c> {
    next_sublink_id: &'c Cell<usize>,
}

impl Compiler<'_> {
    fn plan(&mut self, plan: &Plan, outer: Option<&Scopes<'_>>) -> Result<CompiledPlan> {
        match plan {
            Plan::Scan { table, schema, .. } => Ok(CompiledPlan::Scan {
                table: table.clone(),
                schema: schema.clone(),
            }),
            Plan::Values { schema, rows } => Ok(CompiledPlan::Values {
                schema: schema.clone(),
                rows: rows.clone(),
            }),
            Plan::Project {
                input,
                items,
                distinct,
            } => {
                let child_schema = input.schema();
                let scope = Scopes::nest(outer, &child_schema);
                let items = items
                    .iter()
                    .map(|item| self.expr(&item.expr, Some(&scope)))
                    .collect::<Result<Vec<_>>>()?;
                Ok(CompiledPlan::Project {
                    input: Box::new(self.plan(input, outer)?),
                    items,
                    distinct: *distinct,
                    schema: plan.schema(),
                })
            }
            Plan::Select { input, predicate } => {
                let child_schema = input.schema();
                let scope = Scopes::nest(outer, &child_schema);
                let predicate = self.expr(predicate, Some(&scope))?;
                Ok(CompiledPlan::Select {
                    input: Box::new(self.plan(input, outer)?),
                    predicate,
                    schema: child_schema,
                })
            }
            Plan::CrossProduct { left, right } => Ok(CompiledPlan::CrossProduct {
                schema: plan.schema(),
                left: Box::new(self.plan(left, outer)?),
                right: Box::new(self.plan(right, outer)?),
            }),
            Plan::Join {
                left,
                right,
                kind,
                condition,
            } => {
                let l_schema = left.schema();
                let r_schema = right.schema();
                let out_schema = l_schema.concat(&r_schema);

                // Hash keys only for sublink-free conditions, as in the
                // interpreter. Each side compiles against its own input
                // scope; the residual condition sees the joined row.
                let mut equi_keys = Vec::new();
                if !condition.has_sublink() {
                    for key in extract_equi_keys(condition, &l_schema, &r_schema) {
                        let l_scope = Scopes::nest(outer, &l_schema);
                        let r_scope = Scopes::nest(outer, &r_schema);
                        equi_keys.push(CompiledEquiKey {
                            left: self.expr(&key.left, Some(&l_scope))?,
                            right: self.expr(&key.right, Some(&r_scope))?,
                            null_safe: key.null_safe,
                        });
                    }
                }
                let scope = Scopes::nest(outer, &out_schema);
                let condition = self.expr(condition, Some(&scope))?;
                Ok(CompiledPlan::Join {
                    left: Box::new(self.plan(left, outer)?),
                    right: Box::new(self.plan(right, outer)?),
                    kind: *kind,
                    condition,
                    equi_keys,
                    right_arity: r_schema.arity(),
                    schema: out_schema,
                })
            }
            Plan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let child_schema = input.schema();
                let scope = Scopes::nest(outer, &child_schema);
                let group_by = group_by
                    .iter()
                    .map(|g| self.expr(&g.expr, Some(&scope)))
                    .collect::<Result<Vec<_>>>()?;
                let aggregates = aggregates
                    .iter()
                    .map(|a| {
                        Ok(CompiledAggregate {
                            func: a.func,
                            arg: a
                                .arg
                                .as_ref()
                                .map(|arg| self.expr(arg, Some(&scope)))
                                .transpose()?,
                            distinct: a.distinct,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(CompiledPlan::Aggregate {
                    input: Box::new(self.plan(input, outer)?),
                    group_by,
                    aggregates,
                    schema: plan.schema(),
                })
            }
            Plan::SetOp {
                op,
                all,
                left,
                right,
            } => Ok(CompiledPlan::SetOp {
                op: *op,
                all: *all,
                schema: left.schema(),
                left: Box::new(self.plan(left, outer)?),
                right: Box::new(self.plan(right, outer)?),
            }),
            Plan::Sort { input, keys } => {
                let child_schema = input.schema();
                let scope = Scopes::nest(outer, &child_schema);
                let keys = keys
                    .iter()
                    .map(|k| {
                        Ok(CompiledSortKey {
                            expr: self.expr(&k.expr, Some(&scope))?,
                            ascending: k.ascending,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(CompiledPlan::Sort {
                    input: Box::new(self.plan(input, outer)?),
                    keys,
                    schema: child_schema,
                })
            }
            Plan::Limit { input, limit } => Ok(CompiledPlan::Limit {
                schema: input.schema(),
                input: Box::new(self.plan(input, outer)?),
                limit: *limit,
            }),
        }
    }

    fn expr(&mut self, expr: &Expr, scopes: Option<&Scopes<'_>>) -> Result<CompiledExpr> {
        Ok(match expr {
            Expr::Column { qualifier, name } => match scopes {
                Some(s) => s.resolve(qualifier.as_deref(), name),
                None => CompiledExpr::Unresolved {
                    name: name.clone(),
                    ambiguous: false,
                },
            },
            Expr::Literal(v) => CompiledExpr::Literal(v.clone()),
            Expr::Binary { op, left, right } => CompiledExpr::Binary {
                op: *op,
                left: Box::new(self.expr(left, scopes)?),
                right: Box::new(self.expr(right, scopes)?),
            },
            Expr::Unary { op, expr } => CompiledExpr::Unary {
                op: *op,
                expr: Box::new(self.expr(expr, scopes)?),
            },
            Expr::Func { name, args } => CompiledExpr::Func {
                name: *name,
                args: args
                    .iter()
                    .map(|a| self.expr(a, scopes))
                    .collect::<Result<Vec<_>>>()?,
            },
            Expr::Case {
                branches,
                else_expr,
            } => CompiledExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| Ok((self.expr(c, scopes)?, self.expr(v, scopes)?)))
                    .collect::<Result<Vec<_>>>()?,
                else_expr: match else_expr {
                    Some(e) => Some(Box::new(self.expr(e, scopes)?)),
                    None => None,
                },
            },
            Expr::Sublink {
                kind,
                test_expr,
                op,
                plan,
            } => {
                let id = self.next_sublink_id.get();
                self.next_sublink_id.set(id + 1);

                // The correlation signature: every free column of the
                // sublink plan, resolved against the chain at the use site.
                // One unresolvable or ambiguous reference disables
                // memoization for this sublink (it may still execute — the
                // reference might sit behind a short circuit).
                let mut params: Option<Vec<Slot>> = Some(Vec::new());
                for (qualifier, name) in free_correlated_columns(plan) {
                    let resolved = match scopes {
                        Some(s) => s.resolve(qualifier.as_deref(), &name),
                        None => CompiledExpr::Unresolved {
                            name,
                            ambiguous: false,
                        },
                    };
                    match resolved {
                        CompiledExpr::Slot(slot) => {
                            if let Some(p) = params.as_mut() {
                                if !p.contains(&slot) {
                                    p.push(slot);
                                }
                            }
                        }
                        _ => params = None,
                    }
                }

                CompiledExpr::Sublink(Box::new(CompiledSublink {
                    id,
                    kind: *kind,
                    test_expr: test_expr
                        .as_deref()
                        .map(|t| self.expr(t, scopes))
                        .transpose()?,
                    op: *op,
                    plan: self.sublink_plan(plan, scopes)?,
                    params,
                }))
            }
        })
    }

    /// Compiles a sublink plan. Its outer chain is the scope chain at the
    /// sublink's use site — operators inside the sublink do *not* see each
    /// other's scopes, matching the interpreter's environment threading.
    fn sublink_plan(&mut self, plan: &Plan, scopes: Option<&Scopes<'_>>) -> Result<CompiledPlan> {
        self.plan(plan, scopes)
    }
}

impl Executor<'_> {
    /// Executes a compiled plan. `frame` is the runtime scope chain for
    /// correlated slot references (present when this plan is a sublink query
    /// of an outer operator).
    pub fn execute_compiled(
        &self,
        plan: &CompiledPlan,
        frame: Option<&Frame<'_>>,
    ) -> Result<Relation> {
        *self.ops_evaluated.borrow_mut() += 1;
        match plan {
            CompiledPlan::Scan { table, schema } => {
                let base = self.database().table(table)?;
                Ok(Relation::new(schema.clone(), base.tuples().to_vec())?)
            }
            CompiledPlan::Values { schema, rows } => {
                Ok(Relation::new(schema.clone(), rows.clone())?)
            }
            CompiledPlan::Project {
                input,
                items,
                distinct,
                schema,
            } => {
                let child = self.execute_compiled(input, frame)?;
                let mut out = Relation::empty(schema.clone());
                for tuple in child.tuples() {
                    let scope = Frame::new(frame, tuple);
                    let mut row = Vec::with_capacity(items.len());
                    for item in items {
                        row.push(self.ceval(item, Some(&scope))?);
                    }
                    out.push_unchecked(Tuple::new(row));
                }
                Ok(if *distinct { out.distinct() } else { out })
            }
            CompiledPlan::Select {
                input, predicate, ..
            } => {
                let child = self.execute_compiled(input, frame)?;
                let mut out = Relation::empty(child.schema().clone());
                for tuple in child.tuples() {
                    let scope = Frame::new(frame, tuple);
                    if self.ceval(predicate, Some(&scope))?.as_truth().is_true() {
                        out.push_unchecked(tuple.clone());
                    }
                }
                Ok(out)
            }
            CompiledPlan::CrossProduct {
                left,
                right,
                schema,
            } => {
                let l = self.execute_compiled(left, frame)?;
                let r = self.execute_compiled(right, frame)?;
                let mut out = Relation::empty(schema.clone());
                for lt in l.tuples() {
                    for rt in r.tuples() {
                        out.push_unchecked(lt.concat(rt));
                    }
                }
                Ok(out)
            }
            CompiledPlan::Join {
                left,
                right,
                kind,
                condition,
                equi_keys,
                right_arity,
                schema,
            } => self.execute_compiled_join(
                left,
                right,
                *kind,
                condition,
                equi_keys,
                *right_arity,
                schema,
                frame,
            ),
            CompiledPlan::Aggregate {
                input,
                group_by,
                aggregates,
                schema,
            } => self.execute_compiled_aggregate(input, group_by, aggregates, schema, frame),
            CompiledPlan::SetOp {
                op,
                all,
                left,
                right,
                ..
            } => {
                let l = self.execute_compiled(left, frame)?;
                let r = self.execute_compiled(right, frame)?;
                // Checked at execution time, not compile time, so a
                // malformed set operation behind a short circuit stays as
                // unreachable as it is in the interpreter.
                if l.schema().arity() != r.schema().arity() {
                    return Err(ExecError::Unsupported(
                        "set operation over inputs of different arity".into(),
                    ));
                }
                Ok(match (op, all) {
                    (SetOpKind::Union, true) => l.bag_union(&r),
                    (SetOpKind::Union, false) => l.set_union(&r),
                    (SetOpKind::Intersect, true) => l.bag_intersect(&r),
                    (SetOpKind::Intersect, false) => l.set_intersect(&r),
                    (SetOpKind::Except, true) => l.bag_difference(&r),
                    (SetOpKind::Except, false) => l.set_difference(&r),
                })
            }
            CompiledPlan::Sort { input, keys, .. } => {
                let child = self.execute_compiled(input, frame)?;
                let schema = child.schema().clone();
                let mut keyed: Vec<(Vec<Value>, Tuple)> = Vec::with_capacity(child.len());
                for tuple in child.tuples() {
                    let scope = Frame::new(frame, tuple);
                    let mut key_values = Vec::with_capacity(keys.len());
                    for key in keys {
                        key_values.push(self.ceval(&key.expr, Some(&scope))?);
                    }
                    keyed.push((key_values, tuple.clone()));
                }
                keyed.sort_by(|(ka, _), (kb, _)| {
                    for (i, key) in keys.iter().enumerate() {
                        let ord = ka[i].sort_key(&kb[i]);
                        let ord = if key.ascending { ord } else { ord.reverse() };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                Ok(Relation::new(
                    schema,
                    keyed.into_iter().map(|(_, t)| t).collect(),
                )?)
            }
            CompiledPlan::Limit { input, limit, .. } => {
                let child = self.execute_compiled(input, frame)?;
                let schema = child.schema().clone();
                let tuples = child.into_tuples().into_iter().take(*limit).collect();
                Ok(Relation::new(schema, tuples)?)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_compiled_join(
        &self,
        left: &CompiledPlan,
        right: &CompiledPlan,
        kind: JoinKind,
        condition: &CompiledExpr,
        equi_keys: &[CompiledEquiKey],
        right_arity: usize,
        out_schema: &Schema,
        frame: Option<&Frame<'_>>,
    ) -> Result<Relation> {
        let l = self.execute_compiled(left, frame)?;
        let r = self.execute_compiled(right, frame)?;
        let mut out = Relation::empty(out_schema.clone());

        if !equi_keys.is_empty() {
            // Hash join: bucket the right side by its key values. Rows with
            // a NULL key under a plain (non-null-safe) equality can never
            // match and are dropped from the hash table / probe.
            let mut buckets: HashMap<Vec<u8>, Vec<&Tuple>> = HashMap::new();
            'right: for rt in r.tuples() {
                let scope = Frame::new(frame, rt);
                let mut key_values = Vec::with_capacity(equi_keys.len());
                for key in equi_keys {
                    let v = self.ceval(&key.right, Some(&scope))?;
                    if v.is_null() && !key.null_safe {
                        continue 'right;
                    }
                    key_values.push(v);
                }
                buckets.entry(encode_key(&key_values)).or_default().push(rt);
            }
            let empty: Vec<&Tuple> = Vec::new();
            for lt in l.tuples() {
                let scope = Frame::new(frame, lt);
                let mut key_values = Vec::with_capacity(equi_keys.len());
                let mut has_null_key = false;
                for key in equi_keys {
                    let v = self.ceval(&key.left, Some(&scope))?;
                    if v.is_null() && !key.null_safe {
                        has_null_key = true;
                        break;
                    }
                    key_values.push(v);
                }
                let candidates = if has_null_key {
                    &empty
                } else {
                    buckets.get(&encode_key(&key_values)).unwrap_or(&empty)
                };
                let mut matched = false;
                for rt in candidates {
                    let joined = lt.concat(rt);
                    let scope = Frame::new(frame, &joined);
                    if self.ceval(condition, Some(&scope))?.as_truth().is_true() {
                        matched = true;
                        out.push_unchecked(joined);
                    }
                }
                if !matched && kind == JoinKind::LeftOuter {
                    out.push_unchecked(lt.concat(&Tuple::new(vec![Value::Null; right_arity])));
                }
            }
            return Ok(out);
        }

        // Nested-loop join (required when the condition carries sublinks,
        // e.g. the Jsub conditions of the Left strategy).
        for lt in l.tuples() {
            let mut matched = false;
            for rt in r.tuples() {
                let joined = lt.concat(rt);
                let scope = Frame::new(frame, &joined);
                if self.ceval(condition, Some(&scope))?.as_truth().is_true() {
                    matched = true;
                    out.push_unchecked(joined);
                }
            }
            if !matched && kind == JoinKind::LeftOuter {
                out.push_unchecked(lt.concat(&Tuple::new(vec![Value::Null; right_arity])));
            }
        }
        Ok(out)
    }

    fn execute_compiled_aggregate(
        &self,
        input: &CompiledPlan,
        group_by: &[CompiledExpr],
        aggregates: &[CompiledAggregate],
        out_schema: &Schema,
        frame: Option<&Frame<'_>>,
    ) -> Result<Relation> {
        use crate::aggregate::Accumulator;

        let child = self.execute_compiled(input, frame)?;
        let mut groups: Vec<(Vec<Value>, Vec<Accumulator>)> = Vec::new();
        let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
        let make_accs = || -> Vec<Accumulator> {
            aggregates
                .iter()
                .map(|a| Accumulator::new(a.func, a.distinct))
                .collect()
        };

        // A global aggregation (no GROUP BY) over an empty input still
        // produces one tuple (e.g. `count(*)` = 0); seed the single group.
        if group_by.is_empty() {
            groups.push((Vec::new(), make_accs()));
            index.insert(Vec::new(), 0);
        }

        for tuple in child.tuples() {
            let scope = Frame::new(frame, tuple);
            let mut key_values = Vec::with_capacity(group_by.len());
            for g in group_by {
                key_values.push(self.ceval(g, Some(&scope))?);
            }
            let key = encode_key(&key_values);
            let group_index = match index.get(&key) {
                Some(&i) => i,
                None => {
                    groups.push((key_values, make_accs()));
                    index.insert(key, groups.len() - 1);
                    groups.len() - 1
                }
            };
            for (acc, agg) in groups[group_index].1.iter_mut().zip(aggregates.iter()) {
                let value = match &agg.arg {
                    Some(arg) => self.ceval(arg, Some(&scope))?,
                    None => Value::Int(1),
                };
                acc.update(&value);
            }
        }

        let mut out = Relation::empty(out_schema.clone());
        for (key_values, accs) in groups {
            let mut row = key_values;
            for acc in &accs {
                row.push(acc.finish());
            }
            out.push_unchecked(Tuple::new(row));
        }
        Ok(out)
    }

    /// Evaluates a compiled expression.
    pub fn ceval(&self, expr: &CompiledExpr, frame: Option<&Frame<'_>>) -> Result<Value> {
        match expr {
            CompiledExpr::Slot(slot) => match frame {
                Some(f) => Ok(f.get(*slot).clone()),
                None => Err(ExecError::Storage(StorageError::UnknownAttribute(
                    "<compiled slot without scope>".into(),
                ))),
            },
            CompiledExpr::Unresolved { name, ambiguous } => {
                Err(ExecError::Storage(if *ambiguous {
                    StorageError::AmbiguousAttribute(name.clone())
                } else {
                    StorageError::UnknownAttribute(name.clone())
                }))
            }
            CompiledExpr::Literal(v) => Ok(v.clone()),
            CompiledExpr::Binary { op, left, right } => self.ceval_binary(*op, left, right, frame),
            CompiledExpr::Unary { op, expr } => {
                let v = self.ceval(expr, frame)?;
                Ok(match op {
                    UnaryOp::Not => v.as_truth().not().to_value(),
                    UnaryOp::Neg => match v {
                        Value::Null => Value::Null,
                        Value::Int(i) => Value::Int(-i),
                        Value::Float(f) => Value::Float(-f),
                        _ => return Err(ExecError::Type("cannot negate non-number".into())),
                    },
                    UnaryOp::IsNull => Value::Bool(v.is_null()),
                    UnaryOp::IsNotNull => Value::Bool(!v.is_null()),
                })
            }
            CompiledExpr::Func { name, args } => {
                let values: Vec<Value> = args
                    .iter()
                    .map(|a| self.ceval(a, frame))
                    .collect::<Result<_>>()?;
                crate::eval::apply_func(*name, &values)
            }
            CompiledExpr::Case {
                branches,
                else_expr,
            } => {
                for (cond, result) in branches {
                    if self.ceval(cond, frame)?.as_truth().is_true() {
                        return self.ceval(result, frame);
                    }
                }
                match else_expr {
                    Some(e) => self.ceval(e, frame),
                    None => Ok(Value::Null),
                }
            }
            CompiledExpr::Sublink(sublink) => self.ceval_sublink(sublink, frame),
        }
    }

    fn ceval_binary(
        &self,
        op: BinaryOp,
        left: &CompiledExpr,
        right: &CompiledExpr,
        frame: Option<&Frame<'_>>,
    ) -> Result<Value> {
        // Boolean connectives get non-strict NULL handling with the same
        // short-circuiting as the interpreter (a FALSE left conjunct must
        // shield an unresolvable right conjunct).
        if matches!(op, BinaryOp::And | BinaryOp::Or) {
            let l = self.ceval(left, frame)?.as_truth();
            if op == BinaryOp::And && l == Truth::False {
                return Ok(Truth::False.to_value());
            }
            if op == BinaryOp::Or && l == Truth::True {
                return Ok(Truth::True.to_value());
            }
            let r = self.ceval(right, frame)?.as_truth();
            return Ok(match op {
                BinaryOp::And => l.and(r),
                BinaryOp::Or => l.or(r),
                _ => unreachable!(),
            }
            .to_value());
        }

        let l = self.ceval(left, frame)?;
        let r = self.ceval(right, frame)?;
        match op {
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
                arithmetic(op, &l, &r)
            }
            BinaryOp::Cmp(cmp_op) => Ok(compare(cmp_op, &l, &r).to_value()),
            BinaryOp::NullSafeEq => Ok(Value::Bool(l.null_safe_eq(&r))),
            BinaryOp::Like => Ok(functions::sql_like(&l, &r).to_value()),
            BinaryOp::NotLike => Ok(functions::sql_like(&l, &r).not().to_value()),
            BinaryOp::Concat => match (&l, &r) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                _ => Ok(Value::Str(format!("{l}{r}"))),
            },
            BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
        }
    }

    fn ceval_sublink(&self, sublink: &CompiledSublink, frame: Option<&Frame<'_>>) -> Result<Value> {
        let result = self.execute_memoized_sublink(sublink, frame)?;
        match sublink.kind {
            SublinkKind::Exists => Ok(Value::Bool(!result.is_empty())),
            SublinkKind::Scalar => crate::eval::scalar_sublink_value(&result),
            SublinkKind::Any | SublinkKind::All => {
                let test = sublink.test_expr.as_ref().ok_or_else(|| {
                    ExecError::Unsupported("ANY/ALL sublink without test expression".into())
                })?;
                let op = sublink.op.ok_or_else(|| {
                    ExecError::Unsupported("ANY/ALL sublink without comparison operator".into())
                })?;
                let test_value = self.ceval(test, frame)?;
                Ok(
                    crate::eval::quantified_sublink_truth(sublink.kind, op, &test_value, &result)
                        .to_value(),
                )
            }
        }
    }

    /// Executes a compiled sublink plan, consulting the parameterized memo
    /// when the sublink has a resolved correlation signature. The memo key
    /// is the sublink id followed by [`encode_key_typed`] over the binding
    /// values: unlike the join/grouping key, the memo key is *type-exact*
    /// (`Int(3)`, `Float(3.0)` and `Date(3)` all differ), so a hit can only
    /// ever substitute the result of a byte-identical binding — coarser
    /// keying would be wrong for type-sensitive expressions such as string
    /// concatenation or date arithmetic over the binding. Errors are never
    /// cached.
    fn execute_memoized_sublink(
        &self,
        sublink: &CompiledSublink,
        frame: Option<&Frame<'_>>,
    ) -> Result<Relation> {
        let key = match &sublink.params {
            Some(slots) if self.memo_enabled.get() => {
                let bindings: Vec<Value> = slots
                    .iter()
                    .map(|&slot| match frame {
                        Some(f) => Ok(f.get(slot).clone()),
                        None => Err(ExecError::Storage(StorageError::UnknownAttribute(
                            "<correlated sublink without outer scope>".into(),
                        ))),
                    })
                    .collect::<Result<_>>()?;
                let mut key = sublink.id.to_le_bytes().to_vec();
                key.extend_from_slice(&encode_key_typed(&bindings));
                Some(key)
            }
            _ => None,
        };
        if let Some(key) = &key {
            if let Some(hit) = self.sublink_memo.borrow().get(key) {
                return Ok(hit.clone());
            }
        }
        let result = self.execute_compiled(&sublink.plan, frame)?;
        if let Some(key) = key {
            self.sublink_memo.borrow_mut().insert(key, result.clone());
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_algebra::builder::{
        self, any_sublink, col, eq, exists_sublink, lit, qcol, scalar_sublink, PlanBuilder,
    };
    use perm_algebra::ProjectItem;
    use perm_storage::{Attribute, DataType, Database};

    fn db_with_groups() -> Database {
        // R(a, g) with a low-cardinality correlation attribute g, and
        // S(c, g) to correlate against.
        let mut db = Database::new();
        let r_rows: Vec<Vec<Value>> = (0..30)
            .map(|i| vec![Value::Int(i), Value::Int(i % 3)])
            .collect();
        let s_rows: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::Int(100 + i), Value::Int(i % 3)])
            .collect();
        db.create_table(
            "r",
            Relation::from_rows(
                Schema::new(vec![
                    Attribute::qualified("r", "a", DataType::Int),
                    Attribute::qualified("r", "g", DataType::Int),
                ]),
                r_rows,
            ),
        )
        .unwrap();
        db.create_table(
            "s",
            Relation::from_rows(
                Schema::new(vec![
                    Attribute::qualified("s", "c", DataType::Int),
                    Attribute::qualified("s", "g", DataType::Int),
                ]),
                s_rows,
            ),
        )
        .unwrap();
        db
    }

    fn correlated_exists_query(db: &Database) -> Plan {
        let sub = PlanBuilder::scan(db, "s")
            .unwrap()
            .select(eq(qcol("s", "g"), qcol("r", "g")))
            .build();
        PlanBuilder::scan(db, "r")
            .unwrap()
            .select(exists_sublink(sub))
            .build()
    }

    #[test]
    fn compiled_execution_matches_interpreter() {
        let db = db_with_groups();
        let q = correlated_exists_query(&db);
        let compiled = Executor::new(&db).execute(&q).unwrap();
        let interpreted = Executor::new(&db).execute_unoptimized(&q).unwrap();
        assert!(compiled.bag_eq(&interpreted));
        assert_eq!(compiled.len(), 30);
    }

    #[test]
    fn correlated_sublink_runs_once_per_distinct_binding() {
        let db = db_with_groups();
        let q = correlated_exists_query(&db);

        let memoized = Executor::new(&db);
        memoized.execute(&q).unwrap();
        // scan r + select + 3 distinct g bindings × (select + scan s).
        assert_eq!(memoized.operators_evaluated(), 2 + 3 * 2);

        let unmemoized = Executor::new(&db).with_sublink_memo(false);
        unmemoized.execute(&q).unwrap();
        // Without the memo the sublink runs once per outer tuple.
        assert_eq!(unmemoized.operators_evaluated(), 2 + 30 * 2);
    }

    #[test]
    fn memoized_and_unmemoized_results_agree() {
        let db = db_with_groups();
        let q = correlated_exists_query(&db);
        let memoized = Executor::new(&db).execute(&q).unwrap();
        let unmemoized = Executor::new(&db)
            .with_sublink_memo(false)
            .execute(&q)
            .unwrap();
        assert!(memoized.bag_eq(&unmemoized));
    }

    #[test]
    fn uncorrelated_sublink_degenerates_to_initplan() {
        let db = db_with_groups();
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .project_columns(&["c"])
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(any_sublink(col("a"), CompareOp::Eq, sub))
            .build();
        let ex = Executor::new(&db);
        ex.execute(&q).unwrap();
        // scan r + select + one sublink execution (project + scan s).
        assert_eq!(ex.operators_evaluated(), 4);
    }

    #[test]
    fn null_bindings_are_memoized_separately_and_correctly() {
        let mut db = Database::new();
        db.create_table(
            "t",
            Relation::from_rows(
                Schema::new(vec![Attribute::qualified("t", "x", DataType::Int)]),
                vec![
                    vec![Value::Int(1)],
                    vec![Value::Null],
                    vec![Value::Null],
                    vec![Value::Int(1)],
                ],
            ),
        )
        .unwrap();
        db.create_table(
            "u",
            Relation::from_rows(
                Schema::new(vec![Attribute::qualified("u", "y", DataType::Int)]),
                vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            ),
        )
        .unwrap();
        // Π_{x, (scalar: count of u rows with y = t.x)}(T) — NULL bindings
        // produce a 0 count (y = NULL is never true), and must not collide
        // with the x = 1 binding in the memo.
        let sub = PlanBuilder::scan(&db, "u")
            .unwrap()
            .select(eq(col("y"), qcol("t", "x")))
            .aggregate(vec![], vec![perm_algebra::builder::count_star("n")])
            .build();
        let q = PlanBuilder::scan(&db, "t")
            .unwrap()
            .project(vec![
                ProjectItem::column("x"),
                ProjectItem::new(scalar_sublink(sub), "n"),
            ])
            .build();
        let ex = Executor::new(&db);
        let result = ex.execute(&q).unwrap();
        let rows: Vec<(Value, Value)> = result
            .tuples()
            .iter()
            .map(|t| (t.get(0).clone(), t.get(1).clone()))
            .collect();
        assert_eq!(
            rows,
            vec![
                (Value::Int(1), Value::Int(1)),
                (Value::Null, Value::Int(0)),
                (Value::Null, Value::Int(0)),
                (Value::Int(1), Value::Int(1)),
            ]
        );
        // 2 distinct bindings (1, NULL) → sublink plan (3 ops) runs twice:
        // scan t + project + 2 × (aggregate + select + scan u).
        assert_eq!(ex.operators_evaluated(), 2 + 2 * 3);
    }

    #[test]
    fn memo_keys_are_type_exact() {
        // t(x) holds Int(3) and Float(3.0): null-safe-equal bindings whose
        // *representations* differ. A correlated sublink that stringifies
        // its binding must not reuse one binding's cached result for the
        // other — this is why memo keys use `encode_key_typed`, not the
        // coarser join/grouping encoding.
        let mut db = Database::new();
        db.create_table(
            "t",
            Relation::from_rows(
                Schema::new(vec![Attribute::qualified("t", "x", DataType::Any)]),
                vec![vec![Value::Int(3)], vec![Value::Float(3.0)]],
            ),
        )
        .unwrap();
        db.create_table(
            "one",
            Relation::from_rows(
                Schema::new(vec![Attribute::qualified("one", "k", DataType::Int)]),
                vec![vec![Value::Int(0)]],
            ),
        )
        .unwrap();
        let sub = PlanBuilder::scan(&db, "one")
            .unwrap()
            .project(vec![ProjectItem::new(
                builder::binary(perm_algebra::BinaryOp::Concat, qcol("t", "x"), lit("!")),
                "s",
            )])
            .build();
        let q = PlanBuilder::scan(&db, "t")
            .unwrap()
            .project(vec![ProjectItem::new(scalar_sublink(sub), "s")])
            .build();
        let compiled = Executor::new(&db).execute(&q).unwrap();
        let interpreted = Executor::new(&db).execute_unoptimized(&q).unwrap();
        assert!(compiled.bag_eq(&interpreted));
        assert_eq!(compiled.tuples()[0].get(0), &Value::str("3!"));
        assert_eq!(compiled.tuples()[1].get(0), &Value::str("3.0!"));
    }

    #[test]
    fn short_circuit_still_shields_unresolvable_columns() {
        let db = db_with_groups();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(perm_algebra::builder::and(
                lit(false),
                eq(col("does_not_exist"), lit(1)),
            ))
            .build();
        let result = Executor::new(&db).execute(&q).unwrap();
        assert!(result.is_empty());
    }

    #[test]
    fn unresolvable_column_errors_when_evaluated() {
        let db = db_with_groups();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(eq(col("does_not_exist"), lit(1)))
            .build();
        let err = Executor::new(&db).execute(&q).unwrap_err();
        assert!(matches!(
            err,
            ExecError::Storage(StorageError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn sublink_ids_from_repeated_compilations_do_not_collide() {
        let db = db_with_groups();
        let q = correlated_exists_query(&db);
        let ex = Executor::new(&db);
        let first = ex.prepare(&q).unwrap();
        let second = ex.prepare(&q).unwrap();
        let id_of = |plan: &CompiledPlan| -> usize {
            match plan {
                CompiledPlan::Select { predicate, .. } => match predicate {
                    CompiledExpr::Sublink(s) => s.id,
                    other => panic!("expected sublink, got {other:?}"),
                },
                other => panic!("expected select, got {other:?}"),
            }
        };
        assert_ne!(id_of(&first), id_of(&second));
    }
}
