//! Plan compilation: the one-time pass that turns a [`Plan`] into a
//! [`CompiledPlan`] whose per-tuple work is integer indexing instead of
//! name lookup.
//!
//! Two things happen per operator:
//!
//! 1. **Slot resolution.** Every [`Expr::Column`] is resolved against the
//!    concrete *schema chain* in scope at its location — the operator's own
//!    input schema innermost, then the scopes of the operators containing
//!    each enclosing sublink, outermost last — into a [`Slot`] of scope
//!    depth and attribute index. Resolution order matches the interpreter's
//!    [`crate::eval::Env::lookup`] exactly: innermost scope first, falling
//!    outwards only when a name is absent. Names that do not resolve (or are
//!    ambiguous within the scope that first knows them) compile to a
//!    deferred error that is raised only if the expression is actually
//!    evaluated, preserving the interpreter's short-circuit behaviour.
//! 2. **Correlation signatures.** For every sublink, the free correlated
//!    columns of its plan ([`free_correlated_columns`]) are resolved against
//!    the outer chain. When they all resolve, the sublink is *memoizable*:
//!    its result is a pure function of the database and those binding
//!    values, so the executor caches it per `(sublink id, encoded binding)`
//!    — *k* distinct bindings mean *k* executions, however large the outer
//!    relation is. An uncorrelated sublink has an empty signature and runs
//!    once per query.
//!
//! Compilation never changes semantics: results (including errors) are
//! identical to [`crate::Executor::execute_unoptimized`]. In particular the
//! memo key is *type-exact* ([`encode_key_typed`]) — `Int(3)` and
//! `Float(3.0)` are distinct bindings even though the engine's equality
//! coerces them — so a memo hit always substitutes the result of a
//! byte-identical binding.

use crate::batch::Batch;
use crate::eval::{arithmetic, compare};
use crate::executor::{extract_equi_keys, Executor};
use crate::functions;
use crate::physical::{self, AggSpec};
use crate::profile::{OpProbe, ProfNode, ProfileTree, QueryProfile};
use crate::{ExecError, Result};
use perm_algebra::visit::{free_correlated_columns, free_params};
use perm_algebra::{
    AggFunc, BinaryOp, CompareOp, Expr, FuncName, JoinKind, Plan, SetOpKind, SublinkKind, UnaryOp,
};
use perm_storage::{
    encode_key_typed, ColumnVec, Relation, Schema, StorageError, Truth, Tuple, Validity, Value,
};
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A resolved column reference: how many scopes outwards, and at which
/// attribute position there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Scope distance: 0 is the innermost (current operator input) scope.
    pub depth: usize,
    /// Attribute index within that scope's tuple.
    pub index: usize,
}

/// A compiled scalar expression. Structurally mirrors [`Expr`] with column
/// references replaced by [`Slot`]s and sublinks by [`CompiledSublink`]s.
#[derive(Debug, Clone)]
pub enum CompiledExpr {
    /// A column resolved to a positional slot.
    Slot(Slot),
    /// A column that did not resolve at compile time. Evaluating it raises
    /// the stored error — exactly when the interpreter would have raised it.
    Unresolved {
        /// Name as written, for the error message.
        name: String,
        /// `true` when the name was ambiguous rather than unknown.
        ambiguous: bool,
    },
    /// A constant.
    Literal(Value),
    /// A query parameter (`$1` is index 0), read from the executor's bound
    /// parameter vector at evaluation time.
    Param(usize),
    /// Binary operation.
    Binary {
        op: BinaryOp,
        left: Box<CompiledExpr>,
        right: Box<CompiledExpr>,
    },
    /// Unary operation.
    Unary {
        op: UnaryOp,
        expr: Box<CompiledExpr>,
    },
    /// Scalar function call.
    Func {
        name: FuncName,
        args: Vec<CompiledExpr>,
    },
    /// `CASE WHEN … THEN … ELSE … END`.
    Case {
        branches: Vec<(CompiledExpr, CompiledExpr)>,
        else_expr: Option<Box<CompiledExpr>>,
    },
    /// A sublink with its compiled plan and correlation signature.
    Sublink(Box<CompiledSublink>),
}

/// A compiled sublink expression.
#[derive(Debug, Clone)]
pub struct CompiledSublink {
    /// Unique id (per [`Executor`]) used in memo keys.
    pub id: usize,
    /// The sublink kind (`ANY`, `ALL`, `EXISTS`, scalar).
    pub kind: SublinkKind,
    /// Test expression of `ANY`/`ALL` sublinks, compiled against the outer
    /// scope chain.
    pub test_expr: Option<CompiledExpr>,
    /// Comparison operator of `ANY`/`ALL` sublinks.
    pub op: Option<CompareOp>,
    /// The compiled sublink query.
    pub plan: CompiledPlan,
    /// The correlation signature: outer-scope slots (relative to the
    /// sublink's use site) whose values parameterise the result. `Some` when
    /// every free column of the sublink plan resolved statically — the memo
    /// precondition. Empty means uncorrelated (InitPlan).
    pub params: Option<Vec<Slot>>,
    /// The query-parameter indices the sublink plan references (transitively,
    /// including nested sublinks), sorted. The bound values of exactly these
    /// indices are folded into the memo key alongside the correlation
    /// bindings, so memoization stays correct across executions of one
    /// prepared plan with different parameter vectors.
    pub param_refs: Vec<usize>,
}

/// One compiled hash-join key pair (see
/// [`crate::executor::Executor::execute`]'s equi-join hashing).
#[derive(Debug, Clone)]
pub struct CompiledEquiKey {
    /// Key expression over the left input.
    pub left: CompiledExpr,
    /// Key expression over the right input.
    pub right: CompiledExpr,
    /// `=n` instead of `=`: NULL keys match NULL keys.
    pub null_safe: bool,
}

/// One compiled aggregate computation.
#[derive(Debug, Clone)]
pub struct CompiledAggregate {
    /// The aggregate function.
    pub func: AggFunc,
    /// Argument expression (`None` for `count(*)`).
    pub arg: Option<CompiledExpr>,
    /// Whether duplicates are dropped before aggregating.
    pub distinct: bool,
}

/// One compiled `ORDER BY` key.
#[derive(Debug, Clone)]
pub struct CompiledSortKey {
    /// Sort expression.
    pub expr: CompiledExpr,
    /// Ascending (`true`) or descending.
    pub ascending: bool,
}

/// A compiled plan operator. Every node carries its output schema, computed
/// once at compile time.
#[derive(Debug, Clone)]
pub enum CompiledPlan {
    /// Base relation access.
    Scan { table: String, schema: Schema },
    /// Constant relation.
    Values { schema: Schema, rows: Vec<Tuple> },
    /// Projection.
    Project {
        input: Box<CompiledPlan>,
        items: Vec<CompiledExpr>,
        distinct: bool,
        schema: Schema,
    },
    /// Selection.
    Select {
        input: Box<CompiledPlan>,
        predicate: CompiledExpr,
        schema: Schema,
    },
    /// Cross product.
    CrossProduct {
        left: Box<CompiledPlan>,
        right: Box<CompiledPlan>,
        schema: Schema,
    },
    /// Inner or left-outer join. `equi_keys` is non-empty when the condition
    /// admits hash execution; the full condition is always rechecked.
    Join {
        left: Box<CompiledPlan>,
        right: Box<CompiledPlan>,
        kind: JoinKind,
        condition: CompiledExpr,
        equi_keys: Vec<CompiledEquiKey>,
        schema: Schema,
    },
    /// Grouping and aggregation.
    Aggregate {
        input: Box<CompiledPlan>,
        group_by: Vec<CompiledExpr>,
        aggregates: Vec<CompiledAggregate>,
        schema: Schema,
    },
    /// Set operation.
    SetOp {
        op: SetOpKind,
        all: bool,
        left: Box<CompiledPlan>,
        right: Box<CompiledPlan>,
        schema: Schema,
    },
    /// Sorting.
    Sort {
        input: Box<CompiledPlan>,
        keys: Vec<CompiledSortKey>,
        schema: Schema,
    },
    /// First-`n` truncation.
    Limit {
        input: Box<CompiledPlan>,
        limit: usize,
        schema: Schema,
    },
}

impl CompiledPlan {
    /// The output schema of this operator.
    pub fn schema(&self) -> &Schema {
        match self {
            CompiledPlan::Scan { schema, .. }
            | CompiledPlan::Values { schema, .. }
            | CompiledPlan::Project { schema, .. }
            | CompiledPlan::Select { schema, .. }
            | CompiledPlan::CrossProduct { schema, .. }
            | CompiledPlan::Join { schema, .. }
            | CompiledPlan::Aggregate { schema, .. }
            | CompiledPlan::SetOp { schema, .. }
            | CompiledPlan::Sort { schema, .. }
            | CompiledPlan::Limit { schema, .. } => schema,
        }
    }
}

/// The compile-time scope chain, innermost scope at the head. Parallel to
/// the runtime [`Frame`] chain.
struct Scopes<'a> {
    parent: Option<&'a Scopes<'a>>,
    schema: &'a Schema,
}

impl<'a> Scopes<'a> {
    fn nest(parent: Option<&'a Scopes<'a>>, schema: &'a Schema) -> Scopes<'a> {
        Scopes { parent, schema }
    }

    /// Resolves a name along the chain, innermost first — the compile-time
    /// mirror of [`crate::eval::Env::lookup`].
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> CompiledExpr {
        match self.schema.try_resolve(qualifier, name) {
            Ok(Some(index)) => CompiledExpr::Slot(Slot { depth: 0, index }),
            Ok(None) => match self.parent {
                Some(p) => match p.resolve(qualifier, name) {
                    CompiledExpr::Slot(slot) => CompiledExpr::Slot(Slot {
                        depth: slot.depth + 1,
                        index: slot.index,
                    }),
                    unresolved => unresolved,
                },
                None => CompiledExpr::Unresolved {
                    name: name.to_string(),
                    ambiguous: false,
                },
            },
            // Ambiguity in the innermost scope that knows the name stops the
            // search, exactly like the interpreter.
            Err(_) => CompiledExpr::Unresolved {
                name: name.to_string(),
                ambiguous: true,
            },
        }
    }
}

/// The runtime scope chain: one borrowed tuple per compile-time scope.
#[derive(Debug, Clone, Copy)]
pub struct Frame<'a> {
    parent: Option<&'a Frame<'a>>,
    tuple: &'a Tuple,
}

impl<'a> Frame<'a> {
    /// Pushes a new innermost scope.
    pub fn new(parent: Option<&'a Frame<'a>>, tuple: &'a Tuple) -> Frame<'a> {
        Frame { parent, tuple }
    }

    /// Reads the value at a compiled slot.
    fn get(&self, slot: Slot) -> &Value {
        let mut frame = self;
        for _ in 0..slot.depth {
            frame = frame
                .parent
                .expect("compiled slot depth exceeds runtime scope chain");
        }
        frame.tuple.get(slot.index)
    }
}

/// Source of compiled-sublink ids: process-wide, so the memo keys of plans
/// prepared by *different* executors (e.g. two sessions sharing one engine,
/// or a prepared statement outliving the session that compiled it) can never
/// collide either — including when those preparations *race* on different
/// threads.
///
/// Memory-ordering contract: `fetch_add(1, Ordering::Relaxed)` is a single
/// atomic read-modify-write, so every call observes a distinct value of the
/// counter — uniqueness needs only the atomicity of the RMW, not any
/// ordering of *other* memory between threads. The id is then embedded in a
/// `CompiledPlan` that reaches other threads only through a synchronising
/// handoff (an `Arc` behind the engine's plan-cache mutex, a scoped-thread
/// join, a channel), and that handoff provides the happens-before edge that
/// publishes the plan's memory. `Relaxed` is therefore sufficient and the
/// cheapest correct choice; `SeqCst` would buy nothing.
///
/// The memo key spaces stay collision-proof on top of unique ids because
/// every key leads with a namespace tag: compiled keys
/// (`MEMO_TAG_COMPILED`) embed this id; interpreter keys
/// (`MEMO_TAG_INTERPRETED`) embed a plan node *address* and are only ever
/// stored in executor-private maps (addresses are not stable or meaningful
/// across executors, so they are excluded from the shared memo by
/// construction — see `crate::memo::SharedSublinkMemo`).
static NEXT_SUBLINK_ID: AtomicUsize = AtomicUsize::new(0);

/// Applies a unary operator to an already-evaluated value. Shared by the
/// per-tuple evaluator and the vectorized batch evaluator so their
/// semantics cannot drift apart.
pub(crate) fn apply_unary(op: UnaryOp, v: Value) -> Result<Value> {
    Ok(match op {
        UnaryOp::Not => v.as_truth().not().to_value(),
        UnaryOp::Neg => match v {
            Value::Null => Value::Null,
            Value::Int(i) => Value::Int(-i),
            Value::Float(f) => Value::Float(-f),
            _ => return Err(ExecError::Type("cannot negate non-number".into())),
        },
        UnaryOp::IsNull => Value::Bool(v.is_null()),
        UnaryOp::IsNotNull => Value::Bool(!v.is_null()),
    })
}

/// Applies a non-logical binary operator to already-evaluated operand
/// values (`AND`/`OR` short-circuit over unevaluated operands and are
/// handled by the callers). Shared by the per-tuple and the vectorized
/// evaluator.
pub(crate) fn apply_binary_scalar(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    match op {
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
            arithmetic(op, l, r)
        }
        BinaryOp::Cmp(cmp_op) => Ok(compare(cmp_op, l, r).to_value()),
        BinaryOp::NullSafeEq => Ok(Value::Bool(l.null_safe_eq(r))),
        BinaryOp::Like => Ok(functions::sql_like(l, r).to_value()),
        BinaryOp::NotLike => Ok(functions::sql_like(l, r).not().to_value()),
        BinaryOp::Concat => match (l, r) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            _ => Ok(Value::Str(format!("{l}{r}"))),
        },
        BinaryOp::And | BinaryOp::Or => unreachable!("logical connectives short-circuit"),
    }
}

/// Classifies one attribute of a batch's live rows into a column: the
/// first non-NULL value picks the lane, mixed representations demote to
/// the `Values` fallback lane (see `perm_storage::column`).
fn classify_rows(batch: &Batch<'_>, index: usize) -> ColumnVec {
    let n = batch.len();
    let first = (0..n)
        .map(|i| batch.row(i).get(index))
        .find(|v| !v.is_null());
    let mut col = match first {
        Some(v) => ColumnVec::typed_for(v, n),
        None => ColumnVec::values_with_capacity(n),
    };
    for i in 0..n {
        col.push_value(batch.row(i).get(index).clone());
    }
    col
}

/// Whether the left operand's truth alone decides a logical connective
/// for a row (FALSE decides `AND`, TRUE decides `OR`).
fn logic_decided(op: BinaryOp, t: Truth) -> bool {
    (op == BinaryOp::And && t == Truth::False) || (op == BinaryOp::Or && t == Truth::True)
}

/// Packs three-valued truths into a `Bool` lane (Unknown ⇒ invalid slot),
/// the columnar image of `Truth::to_value`.
fn truths_to_bool_lane(truths: impl Iterator<Item = Truth>, n: usize) -> ColumnVec {
    let mut data = Vec::with_capacity(n);
    let mut validity = Validity::with_capacity(n);
    for t in truths {
        validity.push(t != Truth::Unknown);
        data.push(t == Truth::True);
    }
    ColumnVec::Bool { data, validity }
}

/// Compiles a plan with an empty outer scope chain.
pub(crate) fn compile_plan(plan: &Plan) -> Result<CompiledPlan> {
    let mut compiler = Compiler;
    compiler.plan(plan, None)
}

struct Compiler;

impl Compiler {
    fn plan(&mut self, plan: &Plan, outer: Option<&Scopes<'_>>) -> Result<CompiledPlan> {
        match plan {
            Plan::Scan { table, schema, .. } => Ok(CompiledPlan::Scan {
                table: table.clone(),
                schema: schema.clone(),
            }),
            Plan::Values { schema, rows } => Ok(CompiledPlan::Values {
                schema: schema.clone(),
                rows: rows.clone(),
            }),
            Plan::Project {
                input,
                items,
                distinct,
            } => {
                let child_schema = input.schema();
                let scope = Scopes::nest(outer, &child_schema);
                let items = items
                    .iter()
                    .map(|item| self.expr(&item.expr, Some(&scope)))
                    .collect::<Result<Vec<_>>>()?;
                Ok(CompiledPlan::Project {
                    input: Box::new(self.plan(input, outer)?),
                    items,
                    distinct: *distinct,
                    schema: plan.schema(),
                })
            }
            Plan::Select { input, predicate } => {
                let child_schema = input.schema();
                let scope = Scopes::nest(outer, &child_schema);
                let predicate = self.expr(predicate, Some(&scope))?;
                Ok(CompiledPlan::Select {
                    input: Box::new(self.plan(input, outer)?),
                    predicate,
                    schema: child_schema,
                })
            }
            Plan::CrossProduct { left, right } => Ok(CompiledPlan::CrossProduct {
                schema: plan.schema(),
                left: Box::new(self.plan(left, outer)?),
                right: Box::new(self.plan(right, outer)?),
            }),
            Plan::Join {
                left,
                right,
                kind,
                condition,
            } => {
                let l_schema = left.schema();
                let r_schema = right.schema();
                // The condition always sees the concatenated candidate row;
                // the stored output schema is left-only for semi/anti joins.
                let cond_schema = l_schema.concat(&r_schema);
                let out_schema = if kind.left_only_output() {
                    l_schema.clone()
                } else {
                    cond_schema.clone()
                };

                // Hash keys only for sublink-free conditions, as in the
                // interpreter. Each side compiles against its own input
                // scope; the residual condition sees the joined row.
                let mut equi_keys = Vec::new();
                if !condition.has_sublink() {
                    for key in extract_equi_keys(condition, &l_schema, &r_schema) {
                        let l_scope = Scopes::nest(outer, &l_schema);
                        let r_scope = Scopes::nest(outer, &r_schema);
                        equi_keys.push(CompiledEquiKey {
                            left: self.expr(&key.left, Some(&l_scope))?,
                            right: self.expr(&key.right, Some(&r_scope))?,
                            null_safe: key.null_safe,
                        });
                    }
                }
                let scope = Scopes::nest(outer, &cond_schema);
                let condition = self.expr(condition, Some(&scope))?;
                Ok(CompiledPlan::Join {
                    left: Box::new(self.plan(left, outer)?),
                    right: Box::new(self.plan(right, outer)?),
                    kind: *kind,
                    condition,
                    equi_keys,
                    schema: out_schema,
                })
            }
            Plan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let child_schema = input.schema();
                let scope = Scopes::nest(outer, &child_schema);
                let group_by = group_by
                    .iter()
                    .map(|g| self.expr(&g.expr, Some(&scope)))
                    .collect::<Result<Vec<_>>>()?;
                let aggregates = aggregates
                    .iter()
                    .map(|a| {
                        Ok(CompiledAggregate {
                            func: a.func,
                            arg: a
                                .arg
                                .as_ref()
                                .map(|arg| self.expr(arg, Some(&scope)))
                                .transpose()?,
                            distinct: a.distinct,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(CompiledPlan::Aggregate {
                    input: Box::new(self.plan(input, outer)?),
                    group_by,
                    aggregates,
                    schema: plan.schema(),
                })
            }
            Plan::SetOp {
                op,
                all,
                left,
                right,
            } => Ok(CompiledPlan::SetOp {
                op: *op,
                all: *all,
                schema: left.schema(),
                left: Box::new(self.plan(left, outer)?),
                right: Box::new(self.plan(right, outer)?),
            }),
            Plan::Sort { input, keys } => {
                let child_schema = input.schema();
                let scope = Scopes::nest(outer, &child_schema);
                let keys = keys
                    .iter()
                    .map(|k| {
                        Ok(CompiledSortKey {
                            expr: self.expr(&k.expr, Some(&scope))?,
                            ascending: k.ascending,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(CompiledPlan::Sort {
                    input: Box::new(self.plan(input, outer)?),
                    keys,
                    schema: child_schema,
                })
            }
            Plan::Limit { input, limit } => Ok(CompiledPlan::Limit {
                schema: input.schema(),
                input: Box::new(self.plan(input, outer)?),
                limit: *limit,
            }),
        }
    }

    fn expr(&mut self, expr: &Expr, scopes: Option<&Scopes<'_>>) -> Result<CompiledExpr> {
        Ok(match expr {
            Expr::Column { qualifier, name } => match scopes {
                Some(s) => s.resolve(qualifier.as_deref(), name),
                None => CompiledExpr::Unresolved {
                    name: name.clone(),
                    ambiguous: false,
                },
            },
            Expr::Literal(v) => CompiledExpr::Literal(v.clone()),
            Expr::Param(index) => CompiledExpr::Param(*index),
            Expr::Binary { op, left, right } => CompiledExpr::Binary {
                op: *op,
                left: Box::new(self.expr(left, scopes)?),
                right: Box::new(self.expr(right, scopes)?),
            },
            Expr::Unary { op, expr } => CompiledExpr::Unary {
                op: *op,
                expr: Box::new(self.expr(expr, scopes)?),
            },
            Expr::Func { name, args } => CompiledExpr::Func {
                name: *name,
                args: args
                    .iter()
                    .map(|a| self.expr(a, scopes))
                    .collect::<Result<Vec<_>>>()?,
            },
            Expr::Case {
                branches,
                else_expr,
            } => CompiledExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| Ok((self.expr(c, scopes)?, self.expr(v, scopes)?)))
                    .collect::<Result<Vec<_>>>()?,
                else_expr: match else_expr {
                    Some(e) => Some(Box::new(self.expr(e, scopes)?)),
                    None => None,
                },
            },
            Expr::Sublink {
                kind,
                test_expr,
                op,
                plan,
            } => {
                let id = NEXT_SUBLINK_ID.fetch_add(1, Ordering::Relaxed);

                // The correlation signature: every free column of the
                // sublink plan, resolved against the chain at the use site.
                // One unresolvable or ambiguous reference disables
                // memoization for this sublink (it may still execute — the
                // reference might sit behind a short circuit).
                let mut params: Option<Vec<Slot>> = Some(Vec::new());
                for (qualifier, name) in free_correlated_columns(plan) {
                    let resolved = match scopes {
                        Some(s) => s.resolve(qualifier.as_deref(), &name),
                        None => CompiledExpr::Unresolved {
                            name,
                            ambiguous: false,
                        },
                    };
                    match resolved {
                        CompiledExpr::Slot(slot) => {
                            if let Some(p) = params.as_mut() {
                                if !p.contains(&slot) {
                                    p.push(slot);
                                }
                            }
                        }
                        _ => params = None,
                    }
                }

                CompiledExpr::Sublink(Box::new(CompiledSublink {
                    id,
                    kind: *kind,
                    test_expr: test_expr
                        .as_deref()
                        .map(|t| self.expr(t, scopes))
                        .transpose()?,
                    op: *op,
                    plan: self.sublink_plan(plan, scopes)?,
                    params,
                    param_refs: free_params(plan),
                }))
            }
        })
    }

    /// Compiles a sublink plan. Its outer chain is the scope chain at the
    /// sublink's use site — operators inside the sublink do *not* see each
    /// other's scopes, matching the interpreter's environment threading.
    fn sublink_plan(&mut self, plan: &Plan, scopes: Option<&Scopes<'_>>) -> Result<CompiledPlan> {
        self.plan(plan, scopes)
    }
}

use crate::cursor::streams_lazily;

impl Executor<'_> {
    /// Recursive compiled-path plan evaluation: executes children, wraps
    /// the vectorized batch evaluator (`Executor::ceval_batch`, or the
    /// per-tuple [`Executor::ceval`] when batching is disabled) into
    /// batch-evaluator closures over a [`Frame`] slot chain, and delegates
    /// every operator body to `crate::physical` — the same bodies the
    /// interpreter drives. `frame` is the runtime scope chain for
    /// correlated slot references (present when this plan is a sublink
    /// query of an outer operator).
    ///
    /// A **top-level** `LIMIT` (this entry point, no enclosing frame) over
    /// a lazily streamable spine is routed through the `crate::cursor`
    /// pull machinery, so the materialising path shares the cursor's
    /// guarantee of never evaluating input beyond what the limit consumes.
    /// The routing happens only here, never in the recursion: a limit
    /// nested under an operator (or inside a sublink plan) executes
    /// eagerly, exactly like the reference interpreter — only the
    /// documented top-level case may diverge from it on an erroring tail.
    pub fn execute_compiled(
        &self,
        plan: &CompiledPlan,
        frame: Option<&Frame<'_>>,
    ) -> Result<Relation> {
        if frame.is_none() {
            if let CompiledPlan::Limit { input, .. } = plan {
                if streams_lazily(input) {
                    return self.open(plan)?.into_relation();
                }
            }
        }
        self.execute_compiled_node(plan, frame, None)
    }

    /// [`Executor::execute_compiled`] with a [`ProfileTree`] armed for the
    /// duration: the `EXPLAIN ANALYZE` entry point. Builds the zeroed
    /// skeleton for `plan`, attaches it to the executor (weakly — see
    /// `Executor::set_profile`) so the memoized-sublink seam can attribute
    /// hits and misses, executes with per-node probes threaded through the
    /// drivers, and returns the result alongside the annotated snapshot.
    /// A *top-level* `LIMIT` over a streamable spine is cursor-routed with
    /// the same profile tree, so the routing decision is identical to the
    /// unprofiled path.
    pub fn execute_profiled(&self, plan: &CompiledPlan) -> Result<(Relation, QueryProfile)> {
        let tree = ProfileTree::for_plan(plan);
        self.set_profile(Some(&tree));
        let result = (|| {
            if let CompiledPlan::Limit { input, .. } = plan {
                if streams_lazily(input) {
                    return self.open_with_tree(plan, Rc::clone(&tree))?.into_relation();
                }
            }
            self.execute_compiled_node(plan, None, Some(&tree.root))
        })();
        self.set_profile(None);
        result.map(|rel| (rel, tree.snapshot()))
    }

    /// Wraps one physical operator call when a profile node is armed:
    /// records input rows (child cardinalities), output rows on success,
    /// and the operator body's *deltas* of the executor's spill and
    /// columnar-fallback counters — children have already executed when
    /// the body runs, so a delta taken around the body alone attributes
    /// the work to the operator that did it (sublinks evaluated inside the
    /// body's expressions included, like nested `EXPLAIN ANALYZE` time).
    fn profiled(
        &self,
        prof: Option<&ProfNode>,
        rows_in: u64,
        body: impl FnOnce() -> Result<Relation>,
    ) -> Result<Relation> {
        let Some(node) = prof else { return body() };
        let spilled0 = self.governor.spilled_bytes();
        let parts0 = self.governor.spill_partitions();
        let colfb0 = self.columnar_fallback_rows();
        let result = body();
        let s = &node.stats;
        s.rows_in.set(s.rows_in.get() + rows_in);
        s.spilled_bytes
            .set(s.spilled_bytes.get() + (self.governor.spilled_bytes() - spilled0));
        s.spill_partitions
            .set(s.spill_partitions.get() + (self.governor.spill_partitions() - parts0));
        s.columnar_fallback_rows
            .set(s.columnar_fallback_rows.get() + (self.columnar_fallback_rows() - colfb0));
        if let Ok(rel) = &result {
            s.rows_out.set(s.rows_out.get() + rel.len() as u64);
        }
        result
    }

    /// The recursive operator evaluation behind [`Executor::execute_compiled`]
    /// (which see): no cursor routing happens at this level. `prof` is the
    /// armed profile node mirroring `plan` (`None` on every unprofiled
    /// path); children recurse positionally into its child nodes, so the
    /// tree stays aligned with the plan by construction.
    pub(crate) fn execute_compiled_node(
        &self,
        plan: &CompiledPlan,
        frame: Option<&Frame<'_>>,
        prof: Option<&ProfNode>,
    ) -> Result<Relation> {
        let gov = &self.governor;
        let probe = OpProbe::new(&self.ops_evaluated, prof.map(|p| &p.stats));
        match plan {
            CompiledPlan::Scan { table, schema } => self.profiled(prof, 0, || {
                physical::scan(probe, gov, self.database(), table, schema)
            }),
            CompiledPlan::Values { schema, rows } => {
                self.profiled(prof, 0, || physical::values(probe, gov, schema, rows))
            }
            CompiledPlan::Project {
                input,
                items,
                distinct,
                schema,
            } => {
                let child = self.execute_compiled_node(input, frame, prof.map(|p| p.child(0)))?;
                self.profiled(prof, child.len() as u64, || {
                    physical::project(
                        probe,
                        gov,
                        &child,
                        schema.clone(),
                        *distinct,
                        |batch, out| self.project_batch(items, batch, frame, out),
                    )
                })
            }
            CompiledPlan::Select {
                input, predicate, ..
            } => {
                let child = self.execute_compiled_node(input, frame, prof.map(|p| p.child(0)))?;
                self.profiled(prof, child.len() as u64, || {
                    physical::select(probe, gov, &child, |batch, out| {
                        self.predicate_batch(predicate, batch, frame, out)
                    })
                })
            }
            CompiledPlan::CrossProduct {
                left,
                right,
                schema,
            } => {
                let l = self.execute_compiled_node(left, frame, prof.map(|p| p.child(0)))?;
                let r = self.execute_compiled_node(right, frame, prof.map(|p| p.child(1)))?;
                self.profiled(prof, (l.len() + r.len()) as u64, || {
                    physical::cross_product(probe, gov, &l, &r, schema.clone())
                })
            }
            CompiledPlan::Join {
                left,
                right,
                kind,
                condition,
                equi_keys,
                schema,
            } => {
                let l = self.execute_compiled_node(left, frame, prof.map(|p| p.child(0)))?;
                if l.is_empty() && kind.left_only_output() {
                    // A decorrelated sublink's inner plan never ran when the
                    // outer input was empty; skipping the build side keeps
                    // the operator count and error surface of the reference
                    // per-binding evaluation.
                    return Ok(Relation::empty(schema.clone()));
                }
                let r = self.execute_compiled_node(right, frame, prof.map(|p| p.child(1)))?;
                let null_safe: Vec<bool> = equi_keys.iter().map(|k| k.null_safe).collect();
                self.profiled(prof, (l.len() + r.len()) as u64, || {
                    physical::join(
                        probe,
                        gov,
                        &l,
                        &r,
                        schema,
                        *kind,
                        &null_safe,
                        |batch, i, col| self.expr_batch(&equi_keys[i].left, batch, frame, col),
                        |batch, i, col| self.expr_batch(&equi_keys[i].right, batch, frame, col),
                        |batch, out| self.predicate_batch(condition, batch, frame, out),
                    )
                })
            }
            CompiledPlan::Aggregate {
                input,
                group_by,
                aggregates,
                schema,
            } => {
                let child = self.execute_compiled_node(input, frame, prof.map(|p| p.child(0)))?;
                let specs: Vec<AggSpec> = aggregates
                    .iter()
                    .map(|a| AggSpec {
                        func: a.func,
                        distinct: a.distinct,
                        has_arg: a.arg.is_some(),
                    })
                    .collect();
                self.profiled(prof, child.len() as u64, || {
                    physical::aggregate(
                        probe,
                        gov,
                        &child,
                        schema.clone(),
                        group_by.len(),
                        &specs,
                        |batch, group_cols, agg_cols| {
                            for (expr, col) in group_by.iter().zip(group_cols.iter_mut()) {
                                self.expr_batch(expr, batch, frame, col)?;
                            }
                            for (a, col) in aggregates.iter().zip(agg_cols.iter_mut()) {
                                if let Some(arg) = &a.arg {
                                    self.expr_values(arg, batch, frame, col)?;
                                }
                            }
                            Ok(())
                        },
                    )
                })
            }
            CompiledPlan::SetOp {
                op,
                all,
                left,
                right,
                ..
            } => {
                let l = self.execute_compiled_node(left, frame, prof.map(|p| p.child(0)))?;
                let r = self.execute_compiled_node(right, frame, prof.map(|p| p.child(1)))?;
                self.profiled(prof, (l.len() + r.len()) as u64, || {
                    physical::set_op(probe, gov, *op, *all, &l, &r)
                })
            }
            CompiledPlan::Sort { input, keys, .. } => {
                let child = self.execute_compiled_node(input, frame, prof.map(|p| p.child(0)))?;
                let ascending: Vec<bool> = keys.iter().map(|k| k.ascending).collect();
                let rows_in = child.len() as u64;
                self.profiled(prof, rows_in, || {
                    physical::sort(probe, gov, child, &ascending, |batch, cols| {
                        for (k, col) in keys.iter().zip(cols.iter_mut()) {
                            self.expr_values(&k.expr, batch, frame, col)?;
                        }
                        Ok(())
                    })
                })
            }
            CompiledPlan::Limit { input, limit, .. } => {
                // Eager truncation: the cursor routing for a *top-level*
                // LIMIT lives in `execute_compiled` alone, so a limit
                // nested under an operator or inside a sublink plan
                // evaluates its whole input exactly like the interpreter.
                let child = self.execute_compiled_node(input, frame, prof.map(|p| p.child(0)))?;
                let rows_in = child.len() as u64;
                self.profiled(prof, rows_in, || physical::limit(probe, gov, child, *limit))
            }
        }
    }

    /// The vectorized projection core, shared by the materialising driver
    /// and the streaming cursor: every item is evaluated vectorized into a
    /// column, and the columns are transposed into output rows
    /// (`with_capacity` + push — fallible `collect` grows by realloc).
    /// Appends nothing on error: all columns are fully evaluated before
    /// the first row is emitted, which is what lets the cursor replay a
    /// failing batch per tuple without deduplicating output.
    pub(crate) fn project_rows_vectorized(
        &self,
        items: &[CompiledExpr],
        batch: &Batch<'_>,
        outer: Option<&Frame<'_>>,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        let n = batch.len();
        let mut columns: Vec<ColumnVec> = Vec::with_capacity(items.len());
        for item in items {
            if let Some(col) = self.bare_slot_column(item, batch) {
                columns.push(col);
                continue;
            }
            columns.push(self.ceval_batch(item, batch, outer)?);
        }
        for i in 0..n {
            let mut row = Vec::with_capacity(items.len());
            for col in columns.iter_mut() {
                // Move, don't clone: each column cell is consumed once.
                row.push(col.take_value(i));
            }
            out.push(Tuple::new(row));
        }
        Ok(())
    }

    /// The bare-column bypass: a depth-0 `Slot` item under columnar
    /// execution gathers its values straight from the rows instead of
    /// round-tripping through the block's lane cache, which would cost one
    /// extra full-column copy (gather-from-lane after classify-into-lane)
    /// for a value that is consumed exactly once. Counts as one vectorized
    /// batch, exactly like the dispatch it replaces.
    fn bare_slot_column(&self, item: &CompiledExpr, batch: &Batch<'_>) -> Option<ColumnVec> {
        if !self.columnar_enabled.get() || batch.is_empty() {
            return None;
        }
        match item {
            CompiledExpr::Slot(slot) if slot.depth == 0 => {
                self.batches_vectorized
                    .set(self.batches_vectorized.get() + 1);
                let n = batch.len();
                let mut col = Vec::with_capacity(n);
                for i in 0..n {
                    col.push(batch.row(i).get(slot.index).clone());
                }
                Some(ColumnVec::Values(col))
            }
            _ => None,
        }
    }

    /// The vectorized predicate core, shared by the materialising driver
    /// and the streaming cursor: one three-valued-TRUE verdict per live
    /// row. Appends nothing on error.
    pub(crate) fn predicate_truths_vectorized(
        &self,
        predicate: &CompiledExpr,
        batch: &Batch<'_>,
        outer: Option<&Frame<'_>>,
        out: &mut Vec<bool>,
    ) -> Result<()> {
        let values = self.ceval_batch(predicate, batch, outer)?;
        match &values {
            // The typed fast path: a comparison kernel's Bool lane turns
            // into verdicts without materialising a `Value` per row.
            ColumnVec::Bool { data, validity } => {
                if validity.is_all_valid() {
                    out.extend_from_slice(data);
                } else {
                    for (i, b) in data.iter().enumerate() {
                        out.push(validity.get(i) && *b);
                    }
                }
            }
            other => {
                for i in 0..other.len() {
                    out.push(other.truth_at(i).is_true());
                }
            }
        }
        Ok(())
    }

    /// Projection over one batch for the compiled driver: vectorized, or
    /// the classic per-tuple loop when batching is disabled.
    fn project_batch(
        &self,
        items: &[CompiledExpr],
        batch: &Batch<'_>,
        outer: Option<&Frame<'_>>,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        if !self.batch_enabled.get() {
            for tuple in batch.iter() {
                let scope = Frame::new(outer, tuple);
                let mut row = Vec::with_capacity(items.len());
                for item in items {
                    row.push(self.ceval(item, Some(&scope))?);
                }
                out.push(Tuple::new(row));
            }
            return Ok(());
        }
        self.project_rows_vectorized(items, batch, outer, out)
    }

    /// Predicate over one batch for the compiled driver: one three-valued
    /// TRUE verdict per live row.
    fn predicate_batch(
        &self,
        predicate: &CompiledExpr,
        batch: &Batch<'_>,
        outer: Option<&Frame<'_>>,
        out: &mut Vec<bool>,
    ) -> Result<()> {
        if !self.batch_enabled.get() {
            for tuple in batch.iter() {
                let scope = Frame::new(outer, tuple);
                out.push(self.ceval(predicate, Some(&scope))?.as_truth().is_true());
            }
            return Ok(());
        }
        self.predicate_truths_vectorized(predicate, batch, outer, out)
    }

    /// A single expression over one batch for the compiled driver (join
    /// keys): one value per live row, in a column. A bare depth-0 slot
    /// classifies straight into a typed lane — the common equi-key shape,
    /// which the column-wise key encoders then consume without a `Value`
    /// match per row — skipping the block's lane cache (keys are read
    /// once; the cache round-trip would cost an extra copy).
    fn expr_batch(
        &self,
        expr: &CompiledExpr,
        batch: &Batch<'_>,
        outer: Option<&Frame<'_>>,
        out: &mut ColumnVec,
    ) -> Result<()> {
        if !self.batch_enabled.get() {
            for tuple in batch.iter() {
                let scope = Frame::new(outer, tuple);
                out.push_value(self.ceval(expr, Some(&scope))?);
            }
            return Ok(());
        }
        if self.columnar_enabled.get() && !batch.is_empty() {
            if let CompiledExpr::Slot(slot) = expr {
                if slot.depth == 0 {
                    self.batches_vectorized
                        .set(self.batches_vectorized.get() + 1);
                    *out = classify_rows(batch, slot.index);
                    return Ok(());
                }
            }
        }
        *out = self.ceval_batch(expr, batch, outer)?;
        Ok(())
    }

    /// A single expression over one batch, appended as row-major values
    /// (sort keys, the interpreter-compatible aggregate inputs).
    fn expr_values(
        &self,
        expr: &CompiledExpr,
        batch: &Batch<'_>,
        outer: Option<&Frame<'_>>,
        out: &mut Vec<Value>,
    ) -> Result<()> {
        if !self.batch_enabled.get() {
            for tuple in batch.iter() {
                let scope = Frame::new(outer, tuple);
                out.push(self.ceval(expr, Some(&scope))?);
            }
            return Ok(());
        }
        if let Some(col) = self.bare_slot_column(expr, batch) {
            col.append_to_values(out);
            return Ok(());
        }
        self.ceval_batch(expr, batch, outer)?.append_to_values(out);
        Ok(())
    }

    /// Evaluates a compiled expression **vectorized** over every live row
    /// of a batch, appending one value per live row in selection order —
    /// one dispatch per expression node per batch instead of per tuple.
    ///
    /// Semantics are identical to evaluating [`Executor::ceval`] row by
    /// row, because evaluation follows the selection:
    ///
    /// * `AND`/`OR` evaluate their right operand only over the sub-selection
    ///   of rows the left operand did not decide, so a FALSE left conjunct
    ///   still shields an unresolvable (or otherwise failing) right conjunct
    ///   for exactly the rows it shields per tuple;
    /// * `CASE` branches narrow the selection the same way — a row that took
    ///   an earlier branch never evaluates a later condition;
    /// * an empty selection evaluates nothing, so deferred errors behind it
    ///   are never raised;
    /// * sublink-bearing subtrees fall back to the per-tuple evaluator row
    ///   by row (see the `Sublink` arm of `ceval_cols`), leaving the
    ///   parameterized sublink memo and the
    ///   [`Executor::execute_memoized_sublink`] seam untouched.
    ///
    /// The only observable difference is *which* of several pending errors
    /// surfaces first (per-tuple evaluation is row-major, vectorized
    /// evaluation is expression-major): the set of evaluated (row,
    /// subexpression) pairs — and hence whether an error occurs at all — is
    /// identical.
    ///
    /// With columnar execution enabled (the default), evaluation runs
    /// through [`Executor::ceval_typed`] over typed [`ColumnVec`] lanes;
    /// with it disabled, through the row-major [`Executor::ceval_cols`]
    /// whose result is wrapped in a `Values` lane. Both produce one value
    /// per live row in selection order.
    pub(crate) fn ceval_batch(
        &self,
        expr: &CompiledExpr,
        batch: &Batch<'_>,
        outer: Option<&Frame<'_>>,
    ) -> Result<ColumnVec> {
        if batch.is_empty() {
            return Ok(ColumnVec::default());
        }
        self.batches_vectorized
            .set(self.batches_vectorized.get() + 1);
        if self.columnar_enabled.get() {
            self.ceval_typed(expr, batch, outer)
        } else {
            let mut out = Vec::with_capacity(batch.len());
            self.ceval_cols(expr, batch, outer, &mut out)?;
            Ok(ColumnVec::Values(out))
        }
    }

    /// The columnar recursive body of [`Executor::ceval_batch`]: returns a
    /// column of exactly `batch.len()` values aligned with the live
    /// selection, evaluated by the typed kernels of [`crate::kernels`]
    /// wherever the lane pairing has a proven scalar equivalence and by
    /// the shared scalar appliers row by row otherwise (counted in
    /// `columnar_fallback_rows`). Sub-selections narrow through
    /// [`Batch::narrow`], keeping the block's lane cache reachable.
    fn ceval_typed(
        &self,
        expr: &CompiledExpr,
        batch: &Batch<'_>,
        outer: Option<&Frame<'_>>,
    ) -> Result<ColumnVec> {
        let n = batch.len();
        if n == 0 {
            // Empty means untouched (batch invariant 4): no lane is
            // classified and no deferred error can surface.
            return Ok(ColumnVec::default());
        }
        match expr {
            CompiledExpr::Slot(slot) => {
                if slot.depth == 0 {
                    Ok(self.slot_column(slot.index, batch))
                } else {
                    match outer {
                        Some(frame) => {
                            let v = frame.get(Slot {
                                depth: slot.depth - 1,
                                index: slot.index,
                            });
                            Ok(ColumnVec::broadcast(v, n))
                        }
                        None => Err(ExecError::Storage(StorageError::UnknownAttribute(
                            "<compiled slot without scope>".into(),
                        ))),
                    }
                }
            }
            CompiledExpr::Unresolved { name, ambiguous } => {
                Err(ExecError::Storage(if *ambiguous {
                    StorageError::AmbiguousAttribute(name.clone())
                } else {
                    StorageError::UnknownAttribute(name.clone())
                }))
            }
            CompiledExpr::Literal(v) => Ok(ColumnVec::broadcast(v, n)),
            CompiledExpr::Param(index) => {
                let v = self.param_value(*index)?;
                Ok(ColumnVec::broadcast(&v, n))
            }
            CompiledExpr::Binary { op, left, right }
                if matches!(op, BinaryOp::And | BinaryOp::Or) =>
            {
                self.ceval_logic_typed(*op, left, right, batch, outer)
            }
            CompiledExpr::Binary { op, left, right } => {
                let l = self.ceval_typed(left, batch, outer)?;
                let r = self.ceval_typed(right, batch, outer)?;
                let (col, fell_back) = crate::kernels::binary_column(*op, l, r)?;
                if fell_back {
                    self.columnar_fallback_rows
                        .set(self.columnar_fallback_rows.get() + n as u64);
                }
                Ok(col)
            }
            CompiledExpr::Unary { op, expr } => {
                let v = self.ceval_typed(expr, batch, outer)?;
                let (col, fell_back) = crate::kernels::unary_column(*op, v)?;
                if fell_back {
                    self.columnar_fallback_rows
                        .set(self.columnar_fallback_rows.get() + n as u64);
                }
                Ok(col)
            }
            CompiledExpr::Func { name, args } => {
                // Function application is row-major by nature in both
                // modes (arguments gathered into a scratch row), so this
                // is not counted as a columnar fallback.
                let mut cols: Vec<ColumnVec> = Vec::with_capacity(args.len());
                for a in args {
                    cols.push(self.ceval_typed(a, batch, outer)?);
                }
                let mut scratch: Vec<Value> = Vec::with_capacity(args.len());
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    scratch.clear();
                    for col in cols.iter_mut() {
                        // Move, don't clone: each cell is consumed once.
                        scratch.push(col.take_value(i));
                    }
                    out.push(crate::eval::apply_func(*name, &scratch)?);
                }
                Ok(ColumnVec::Values(out))
            }
            CompiledExpr::Case {
                branches,
                else_expr,
            } => self.ceval_case_typed(branches, else_expr.as_deref(), batch, outer),
            CompiledExpr::Sublink(sublink) => {
                // Per-tuple fallback: sublink evaluation goes through the
                // parameterized memo (and, for ANY/ALL, the verdict memo)
                // exactly as in tuple-at-a-time execution.
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let scope = Frame::new(outer, batch.row(i));
                    out.push(self.ceval_sublink(sublink, Some(&scope))?);
                }
                self.batch_fallback_rows
                    .set(self.batch_fallback_rows.get() + n as u64);
                self.columnar_fallback_rows
                    .set(self.columnar_fallback_rows.get() + n as u64);
                Ok(ColumnVec::Values(out))
            }
        }
    }

    /// The column for a depth-0 slot: served from the batch's shared
    /// [`crate::batch::ColumnBlock`] lane cache when one is attached
    /// (cloning the cached lane, or gathering the live rows from it under
    /// a selection), classified directly from the live rows otherwise.
    fn slot_column(&self, index: usize, batch: &Batch<'_>) -> ColumnVec {
        if let Some(block) = batch.columns() {
            if block.note_first_use() {
                self.columnar_blocks.set(self.columnar_blocks.get() + 1);
            }
            return match batch.selection() {
                None => block.lane(batch.rows(), index).clone(),
                Some(sel) => match block.cached(index) {
                    Some(lane) => lane.gather(sel),
                    // An uncached lane under a narrow selection: classify
                    // only the live rows rather than transposing the dead
                    // majority of the block.
                    None => classify_rows(batch, index),
                },
            };
        }
        classify_rows(batch, index)
    }

    /// Columnar `AND`/`OR` with fused selection handling: when the left
    /// operand decides no rows, the right operand runs over the *same*
    /// batch — no selection vector is allocated, so a dense block stays
    /// dense and allocation-free; when it decides every row, the right
    /// operand never runs; only the mixed case pays for a sub-selection
    /// (narrowed through [`Batch::narrow`], keeping the lane cache). The
    /// per-row short-circuit semantics are those of `ceval_logic_cols`.
    fn ceval_logic_typed(
        &self,
        op: BinaryOp,
        left: &CompiledExpr,
        right: &CompiledExpr,
        batch: &Batch<'_>,
        outer: Option<&Frame<'_>>,
    ) -> Result<ColumnVec> {
        let n = batch.len();
        let lcol = self.ceval_typed(left, batch, outer)?;
        let mut ltruths: Vec<Truth> = Vec::with_capacity(n);
        let mut undecided = 0usize;
        for i in 0..n {
            let t = lcol.truth_at(i);
            if !logic_decided(op, t) {
                undecided += 1;
            }
            ltruths.push(t);
        }
        let combine = |l: Truth, r: Truth| {
            if op == BinaryOp::And {
                l.and(r)
            } else {
                l.or(r)
            }
        };
        if undecided == n {
            let rcol = self.ceval_typed(right, batch, outer)?;
            return Ok(truths_to_bool_lane(
                (0..n).map(|i| combine(ltruths[i], rcol.truth_at(i))),
                n,
            ));
        }
        if undecided == 0 {
            return Ok(truths_to_bool_lane(ltruths.into_iter(), n));
        }
        let mut need_rows = Vec::with_capacity(undecided);
        let mut need_pos = Vec::with_capacity(undecided);
        for (i, t) in ltruths.iter().enumerate() {
            if !logic_decided(op, *t) {
                need_rows.push(batch.row_index(i));
                need_pos.push(i);
            }
        }
        let rcol = self.ceval_typed(right, &batch.narrow(&need_rows), outer)?;
        let mut k = 0usize;
        Ok(truths_to_bool_lane(
            ltruths.iter().enumerate().map(|(i, &l)| {
                if k < need_pos.len() && need_pos[k] == i {
                    let r = rcol.truth_at(k);
                    k += 1;
                    combine(l, r)
                } else {
                    l
                }
            }),
            n,
        ))
    }

    /// Columnar `CASE`: identical branch-narrowing discipline to the
    /// row-major `Case` arm of `ceval_cols` (a row that took an earlier
    /// branch never evaluates a later condition; an exhausted selection
    /// stops evaluating branches entirely), with sub-batches narrowed
    /// through [`Batch::narrow`] so the lane cache stays reachable.
    fn ceval_case_typed(
        &self,
        branches: &[(CompiledExpr, CompiledExpr)],
        else_expr: Option<&CompiledExpr>,
        batch: &Batch<'_>,
        outer: Option<&Frame<'_>>,
    ) -> Result<ColumnVec> {
        let n = batch.len();
        let mut result: Vec<Option<Value>> = vec![None; n];
        let mut remaining_rows: Vec<usize> = (0..n).map(|i| batch.row_index(i)).collect();
        let mut remaining_pos: Vec<usize> = (0..n).collect();
        for (cond, branch_value) in branches {
            if remaining_rows.is_empty() {
                break;
            }
            let cvals = self.ceval_typed(cond, &batch.narrow(&remaining_rows), outer)?;
            let mut take_rows = Vec::new();
            let mut take_pos = Vec::new();
            let mut keep_rows = Vec::new();
            let mut keep_pos = Vec::new();
            for k in 0..remaining_rows.len() {
                if cvals.truth_at(k).is_true() {
                    take_rows.push(remaining_rows[k]);
                    take_pos.push(remaining_pos[k]);
                } else {
                    keep_rows.push(remaining_rows[k]);
                    keep_pos.push(remaining_pos[k]);
                }
            }
            let mut tvals = self.ceval_typed(branch_value, &batch.narrow(&take_rows), outer)?;
            for (k, p) in take_pos.into_iter().enumerate() {
                result[p] = Some(tvals.take_value(k));
            }
            remaining_rows = keep_rows;
            remaining_pos = keep_pos;
        }
        if !remaining_rows.is_empty() {
            match else_expr {
                Some(e) => {
                    let mut evals = self.ceval_typed(e, &batch.narrow(&remaining_rows), outer)?;
                    for (k, p) in remaining_pos.into_iter().enumerate() {
                        result[p] = Some(evals.take_value(k));
                    }
                }
                None => {
                    for p in remaining_pos {
                        result[p] = Some(Value::Null);
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(n);
        for v in result {
            out.push(v.expect("every live row took a branch or the else"));
        }
        Ok(ColumnVec::Values(out))
    }

    /// The recursive body of [`Executor::ceval_batch`]: exactly
    /// `batch.len()` values are appended to `out`, aligned with the live
    /// selection. Sub-selections (undecided `AND`/`OR` rows, `CASE` branch
    /// takers) recurse through [`Batch::with_selection`] over the same row
    /// block.
    fn ceval_cols(
        &self,
        expr: &CompiledExpr,
        batch: &Batch<'_>,
        outer: Option<&Frame<'_>>,
        out: &mut Vec<Value>,
    ) -> Result<()> {
        let n = batch.len();
        if n == 0 {
            return Ok(());
        }
        match expr {
            CompiledExpr::Slot(slot) => {
                if slot.depth == 0 {
                    for i in 0..n {
                        out.push(batch.row(i).get(slot.index).clone());
                    }
                } else {
                    // An outer-scope slot is constant across the batch: the
                    // evaluation scope of row `t` is `Frame::new(outer, t)`,
                    // so depth `d > 0` resolves in the outer chain at
                    // `d - 1` regardless of `t`.
                    match outer {
                        Some(frame) => {
                            let v = frame.get(Slot {
                                depth: slot.depth - 1,
                                index: slot.index,
                            });
                            for _ in 0..n {
                                out.push(v.clone());
                            }
                        }
                        None => {
                            return Err(ExecError::Storage(StorageError::UnknownAttribute(
                                "<compiled slot without scope>".into(),
                            )))
                        }
                    }
                }
            }
            CompiledExpr::Unresolved { name, ambiguous } => {
                return Err(ExecError::Storage(if *ambiguous {
                    StorageError::AmbiguousAttribute(name.clone())
                } else {
                    StorageError::UnknownAttribute(name.clone())
                }))
            }
            CompiledExpr::Literal(v) => {
                for _ in 0..n {
                    out.push(v.clone());
                }
            }
            CompiledExpr::Param(index) => {
                let v = self.param_value(*index)?;
                for _ in 0..n {
                    out.push(v.clone());
                }
            }
            CompiledExpr::Binary { op, left, right }
                if matches!(op, BinaryOp::And | BinaryOp::Or) =>
            {
                self.ceval_logic_cols(*op, left, right, batch, outer, out)?;
            }
            CompiledExpr::Binary { op, left, right } => {
                let mut lvals = Vec::with_capacity(n);
                self.ceval_cols(left, batch, outer, &mut lvals)?;
                let mut rvals = Vec::with_capacity(n);
                self.ceval_cols(right, batch, outer, &mut rvals)?;
                for (l, r) in lvals.iter().zip(&rvals) {
                    out.push(apply_binary_scalar(*op, l, r)?);
                }
            }
            CompiledExpr::Unary { op, expr } => {
                let mut vals = Vec::with_capacity(n);
                self.ceval_cols(expr, batch, outer, &mut vals)?;
                for v in vals {
                    out.push(apply_unary(*op, v)?);
                }
            }
            CompiledExpr::Func { name, args } => {
                let mut cols: Vec<Vec<Value>> = Vec::with_capacity(args.len());
                for a in args {
                    let mut col = Vec::with_capacity(n);
                    self.ceval_cols(a, batch, outer, &mut col)?;
                    cols.push(col);
                }
                let mut scratch: Vec<Value> = Vec::with_capacity(args.len());
                for i in 0..n {
                    scratch.clear();
                    for col in cols.iter_mut() {
                        // Move, don't clone: each column cell is consumed
                        // exactly once.
                        scratch.push(std::mem::replace(&mut col[i], Value::Null));
                    }
                    out.push(crate::eval::apply_func(*name, &scratch)?);
                }
            }
            CompiledExpr::Case {
                branches,
                else_expr,
            } => {
                let mut result: Vec<Option<Value>> = vec![None; n];
                let mut remaining_rows: Vec<usize> = (0..n).map(|i| batch.row_index(i)).collect();
                let mut remaining_pos: Vec<usize> = (0..n).collect();
                for (cond, branch_value) in branches {
                    if remaining_rows.is_empty() {
                        break;
                    }
                    let mut cvals = Vec::with_capacity(remaining_rows.len());
                    self.ceval_cols(
                        cond,
                        &Batch::with_selection(batch.rows(), &remaining_rows),
                        outer,
                        &mut cvals,
                    )?;
                    let mut take_rows = Vec::new();
                    let mut take_pos = Vec::new();
                    let mut keep_rows = Vec::new();
                    let mut keep_pos = Vec::new();
                    for (k, c) in cvals.iter().enumerate() {
                        if c.as_truth().is_true() {
                            take_rows.push(remaining_rows[k]);
                            take_pos.push(remaining_pos[k]);
                        } else {
                            keep_rows.push(remaining_rows[k]);
                            keep_pos.push(remaining_pos[k]);
                        }
                    }
                    let mut tvals = Vec::with_capacity(take_rows.len());
                    self.ceval_cols(
                        branch_value,
                        &Batch::with_selection(batch.rows(), &take_rows),
                        outer,
                        &mut tvals,
                    )?;
                    for (p, v) in take_pos.into_iter().zip(tvals) {
                        result[p] = Some(v);
                    }
                    remaining_rows = keep_rows;
                    remaining_pos = keep_pos;
                }
                if !remaining_rows.is_empty() {
                    match else_expr {
                        Some(e) => {
                            let mut evals = Vec::with_capacity(remaining_rows.len());
                            self.ceval_cols(
                                e,
                                &Batch::with_selection(batch.rows(), &remaining_rows),
                                outer,
                                &mut evals,
                            )?;
                            for (p, v) in remaining_pos.into_iter().zip(evals) {
                                result[p] = Some(v);
                            }
                        }
                        None => {
                            for p in remaining_pos {
                                result[p] = Some(Value::Null);
                            }
                        }
                    }
                }
                for v in result {
                    out.push(v.expect("every live row took a branch or the else"));
                }
            }
            CompiledExpr::Sublink(sublink) => {
                // Per-tuple fallback: sublink evaluation goes through the
                // parameterized memo (and, for ANY/ALL, the verdict memo)
                // exactly as in tuple-at-a-time execution.
                for i in 0..n {
                    let scope = Frame::new(outer, batch.row(i));
                    out.push(self.ceval_sublink(sublink, Some(&scope))?);
                }
                self.batch_fallback_rows
                    .set(self.batch_fallback_rows.get() + n as u64);
            }
        }
        Ok(())
    }

    /// Vectorized `AND`/`OR`: the right operand is evaluated only over the
    /// sub-selection of rows the left operand left undecided, preserving
    /// per-row short-circuit semantics (a FALSE left conjunct shields a
    /// failing right conjunct for its rows and no others).
    fn ceval_logic_cols(
        &self,
        op: BinaryOp,
        left: &CompiledExpr,
        right: &CompiledExpr,
        batch: &Batch<'_>,
        outer: Option<&Frame<'_>>,
        out: &mut Vec<Value>,
    ) -> Result<()> {
        let n = batch.len();
        let mut lvals = Vec::with_capacity(n);
        self.ceval_cols(left, batch, outer, &mut lvals)?;
        let mut ltruths: Vec<Truth> = Vec::with_capacity(n);
        let mut need_rows: Vec<usize> = Vec::new();
        let mut need_pos: Vec<usize> = Vec::new();
        for (i, l) in lvals.iter().enumerate() {
            let t = l.as_truth();
            let decided = (op == BinaryOp::And && t == Truth::False)
                || (op == BinaryOp::Or && t == Truth::True);
            if !decided {
                need_rows.push(batch.row_index(i));
                need_pos.push(i);
            }
            ltruths.push(t);
        }
        let mut rvals = Vec::with_capacity(need_rows.len());
        self.ceval_cols(
            right,
            &Batch::with_selection(batch.rows(), &need_rows),
            outer,
            &mut rvals,
        )?;
        let mut right_iter = rvals.into_iter();
        let mut pos_iter = need_pos.into_iter().peekable();
        for (i, l) in ltruths.into_iter().enumerate() {
            let truth = if pos_iter.peek() == Some(&i) {
                pos_iter.next();
                let r = right_iter
                    .next()
                    .expect("one right value per undecided row")
                    .as_truth();
                if op == BinaryOp::And {
                    l.and(r)
                } else {
                    l.or(r)
                }
            } else {
                l
            };
            out.push(truth.to_value());
        }
        Ok(())
    }

    /// Evaluates a compiled expression.
    pub fn ceval(&self, expr: &CompiledExpr, frame: Option<&Frame<'_>>) -> Result<Value> {
        match expr {
            CompiledExpr::Slot(slot) => match frame {
                Some(f) => Ok(f.get(*slot).clone()),
                None => Err(ExecError::Storage(StorageError::UnknownAttribute(
                    "<compiled slot without scope>".into(),
                ))),
            },
            CompiledExpr::Unresolved { name, ambiguous } => {
                Err(ExecError::Storage(if *ambiguous {
                    StorageError::AmbiguousAttribute(name.clone())
                } else {
                    StorageError::UnknownAttribute(name.clone())
                }))
            }
            CompiledExpr::Literal(v) => Ok(v.clone()),
            CompiledExpr::Param(index) => self.param_value(*index),
            CompiledExpr::Binary { op, left, right } => self.ceval_binary(*op, left, right, frame),
            CompiledExpr::Unary { op, expr } => {
                let v = self.ceval(expr, frame)?;
                apply_unary(*op, v)
            }
            CompiledExpr::Func { name, args } => {
                let values: Vec<Value> = args
                    .iter()
                    .map(|a| self.ceval(a, frame))
                    .collect::<Result<_>>()?;
                crate::eval::apply_func(*name, &values)
            }
            CompiledExpr::Case {
                branches,
                else_expr,
            } => {
                for (cond, result) in branches {
                    if self.ceval(cond, frame)?.as_truth().is_true() {
                        return self.ceval(result, frame);
                    }
                }
                match else_expr {
                    Some(e) => self.ceval(e, frame),
                    None => Ok(Value::Null),
                }
            }
            CompiledExpr::Sublink(sublink) => self.ceval_sublink(sublink, frame),
        }
    }

    fn ceval_binary(
        &self,
        op: BinaryOp,
        left: &CompiledExpr,
        right: &CompiledExpr,
        frame: Option<&Frame<'_>>,
    ) -> Result<Value> {
        // Boolean connectives get non-strict NULL handling with the same
        // short-circuiting as the interpreter (a FALSE left conjunct must
        // shield an unresolvable right conjunct).
        if matches!(op, BinaryOp::And | BinaryOp::Or) {
            let l = self.ceval(left, frame)?.as_truth();
            if op == BinaryOp::And && l == Truth::False {
                return Ok(Truth::False.to_value());
            }
            if op == BinaryOp::Or && l == Truth::True {
                return Ok(Truth::True.to_value());
            }
            let r = self.ceval(right, frame)?.as_truth();
            return Ok(match op {
                BinaryOp::And => l.and(r),
                BinaryOp::Or => l.or(r),
                _ => unreachable!(),
            }
            .to_value());
        }

        let l = self.ceval(left, frame)?;
        let r = self.ceval(right, frame)?;
        apply_binary_scalar(op, &l, &r)
    }

    fn ceval_sublink(&self, sublink: &CompiledSublink, frame: Option<&Frame<'_>>) -> Result<Value> {
        match sublink.kind {
            SublinkKind::Exists => {
                let result = self.execute_memoized_sublink(sublink, frame)?;
                Ok(Value::Bool(!result.is_empty()))
            }
            SublinkKind::Scalar => {
                let result = self.execute_memoized_sublink(sublink, frame)?;
                crate::eval::scalar_sublink_value(&result)
            }
            SublinkKind::Any | SublinkKind::All => {
                let test = sublink.test_expr.as_ref().ok_or_else(|| {
                    ExecError::Unsupported("ANY/ALL sublink without test expression".into())
                })?;
                let op = sublink.op.ok_or_else(|| {
                    ExecError::Unsupported("ANY/ALL sublink without comparison operator".into())
                })?;
                let test_value = self.ceval(test, frame)?;
                let key = self.compiled_sublink_key(sublink, frame)?;
                let truth = self.quantified_truth(key, sublink.kind, op, &test_value, |key| {
                    self.execute_compiled_sublink_keyed(sublink, frame, key)
                })?;
                Ok(truth.to_value())
            }
        }
    }

    /// The parameterized memo key of a compiled sublink: its id followed by
    /// [`encode_key_typed`] over the query-parameter values of its
    /// `param_refs` and the binding values read from `frame` at the slots of
    /// its correlation signature (both counts are fixed per sublink, so the
    /// two groups concatenate unambiguously). Unlike the join/grouping key,
    /// the memo key is *type-exact* (`Int(3)`, `Float(3.0)` and `Date(3)`
    /// all differ), so a hit can only ever substitute the result of a
    /// byte-identical binding — coarser keying would be wrong for
    /// type-sensitive expressions such as string concatenation or date
    /// arithmetic over the binding. `None` when the sublink has no resolved
    /// signature, a referenced parameter is unbound (the reference might
    /// still sit behind a short circuit), or the memo is disabled and the
    /// sublink is correlated — an *uncorrelated* sublink (empty signature)
    /// keeps its per-query InitPlan caching even in the memo-off baseline,
    /// exactly like the interpreter path
    /// ([`Executor::interp_sublink_key`]) and the PostgreSQL engine
    /// underneath the original Perm system.
    fn compiled_sublink_key(
        &self,
        sublink: &CompiledSublink,
        frame: Option<&Frame<'_>>,
    ) -> Result<Option<Vec<u8>>> {
        match &sublink.params {
            Some(slots) if self.memo_enabled.get() || slots.is_empty() => {
                let params = self.params_rc();
                let mut values: Vec<Value> =
                    Vec::with_capacity(sublink.param_refs.len() + slots.len());
                for &index in &sublink.param_refs {
                    match params.get(index) {
                        Some(v) => values.push(v.clone()),
                        None => return Ok(None),
                    }
                }
                for &slot in slots {
                    match frame {
                        Some(f) => values.push(f.get(slot).clone()),
                        None => {
                            return Err(ExecError::Storage(StorageError::UnknownAttribute(
                                "<correlated sublink without outer scope>".into(),
                            )))
                        }
                    }
                }
                let mut key = vec![crate::executor::MEMO_TAG_COMPILED];
                key.extend_from_slice(&sublink.id.to_le_bytes());
                key.extend_from_slice(&encode_key_typed(&values));
                Ok(Some(key))
            }
            _ => Ok(None),
        }
    }

    /// `true` when the sublink's result for the binding carried by `frame`
    /// is already memoized (in the shared memo when one is attached,
    /// otherwise in this executor's private memo). A cheap key-compute +
    /// lookup with no execution — the serving layer's warm-probe, so a
    /// parallel warming pass can skip bindings (and whole thread scopes)
    /// that earlier executions already paid for.
    pub fn sublink_is_memoized(
        &self,
        sublink: &CompiledSublink,
        frame: Option<&Frame<'_>>,
    ) -> bool {
        match self.compiled_sublink_key(sublink, frame) {
            Ok(Some(key)) => match &self.shared_memo {
                Some(shared) => shared.get_result(&key).is_some(),
                None => self.sublink_memo.borrow_mut().get(&key).is_some(),
            },
            _ => false,
        }
    }

    /// Executes a compiled sublink plan, consulting the parameterized memo
    /// when the sublink has a resolved correlation signature (the memo-key
    /// contract is documented on the private `compiled_sublink_key`).
    /// Results are shared as `Arc<Relation>`s: a hit clones the pointer,
    /// never the tuples. Errors are never cached.
    ///
    /// Public because it is the *parallel-evaluation seam*: the serving
    /// subsystem partitions the distinct correlated bindings of a sublink
    /// across worker threads, and each worker drives exactly this method —
    /// with a synthetic outer [`Frame`] carrying one binding — against an
    /// executor that shares a [`crate::memo::SharedSublinkMemo`], so the
    /// warmed entries are the very entries the final (serial) pass will hit.
    pub fn execute_memoized_sublink(
        &self,
        sublink: &CompiledSublink,
        frame: Option<&Frame<'_>>,
    ) -> Result<Arc<Relation>> {
        let key = self.compiled_sublink_key(sublink, frame)?;
        self.execute_compiled_sublink_keyed(sublink, frame, key)
    }

    /// [`Executor::execute_memoized_sublink`] with a precomputed memo key
    /// (so the `ANY`/`ALL` verdict path computes the key once for both
    /// memos).
    fn execute_compiled_sublink_keyed(
        &self,
        sublink: &CompiledSublink,
        frame: Option<&Frame<'_>>,
        key: Option<Vec<u8>>,
    ) -> Result<Arc<Relation>> {
        self.governor.checkpoint("sublink")?;
        // The armed profile tree, if any, holds this sublink's subtree by
        // id — ids are process-unique, so when a *foreign* plan executes
        // while a tree is armed, the lookup simply misses and nothing is
        // misattributed. The upgrade fails (and profiling is off) once the
        // owning `execute_profiled`/`Rows` has dropped the tree.
        let tree = self.profile.borrow().upgrade();
        let sub_prof = tree.as_ref().and_then(|t| t.sublink(sublink.id));
        // With a shared memo attached, compiled-path entries live there —
        // the keys are process-unique, so cross-executor hits are safe and
        // are the point. Without one, the executor-private memo serves.
        if let Some(k) = &key {
            let hit = match &self.shared_memo {
                Some(shared) => shared.get_result(k),
                None => self.sublink_memo.borrow_mut().get(k),
            };
            if let Some(hit) = hit {
                if let Some(p) = sub_prof {
                    p.stats.memo_hits.set(p.stats.memo_hits.get() + 1);
                }
                self.governor.trace_memo_hit("sublink-memo");
                return Ok(hit);
            }
            // Resident miss: the entry may have been reclaimed to the spill
            // file under budget pressure — reload it instead of
            // re-executing the sublink (pure I/O, no recomputation).
            if let Some(spilled) = self.governor.spill_fetch_result(k) {
                if let Some(p) = sub_prof {
                    p.stats.memo_hits.set(p.stats.memo_hits.get() + 1);
                }
                self.governor.trace_memo_hit("sublink-memo-spilled");
                return Ok(spilled);
            }
        }
        if let Some(p) = sub_prof {
            p.stats.memo_misses.set(p.stats.memo_misses.get() + 1);
        }
        let result = Arc::new(self.execute_compiled_node(
            &sublink.plan,
            frame,
            sub_prof.map(|p| p.as_ref()),
        )?);
        if let Some(k) = key {
            let cost = k.len() as u64 + crate::resilience::MemoCost::cost_bytes(&result);
            if self.governor.memo_insert_event("sublink-memo", cost)? {
                match &self.shared_memo {
                    Some(shared) => shared.insert_result(k, Arc::clone(&result)),
                    None => self
                        .sublink_memo
                        .borrow_mut()
                        .insert(k, Arc::clone(&result)),
                }
            } else {
                // The entry cannot stay resident; persist it so the next
                // miss on this key reloads instead of re-executing.
                self.governor.spill_store_result(&k, &result);
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_algebra::builder::{
        self, any_sublink, cmp, col, eq, exists_sublink, lit, qcol, scalar_sublink, PlanBuilder,
    };
    use perm_algebra::{CompareOp, ProjectItem};
    use perm_storage::{Attribute, DataType, Database};

    fn db_with_groups() -> Database {
        // R(a, g) with a low-cardinality correlation attribute g, and
        // S(c, g) to correlate against.
        let mut db = Database::new();
        let r_rows: Vec<Vec<Value>> = (0..30)
            .map(|i| vec![Value::Int(i), Value::Int(i % 3)])
            .collect();
        let s_rows: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::Int(100 + i), Value::Int(i % 3)])
            .collect();
        db.create_table(
            "r",
            Relation::from_rows(
                Schema::new(vec![
                    Attribute::qualified("r", "a", DataType::Int),
                    Attribute::qualified("r", "g", DataType::Int),
                ]),
                r_rows,
            ),
        )
        .unwrap();
        db.create_table(
            "s",
            Relation::from_rows(
                Schema::new(vec![
                    Attribute::qualified("s", "c", DataType::Int),
                    Attribute::qualified("s", "g", DataType::Int),
                ]),
                s_rows,
            ),
        )
        .unwrap();
        db
    }

    fn correlated_exists_query(db: &Database) -> Plan {
        let sub = PlanBuilder::scan(db, "s")
            .unwrap()
            .select(eq(qcol("s", "g"), qcol("r", "g")))
            .build();
        PlanBuilder::scan(db, "r")
            .unwrap()
            .select(exists_sublink(sub))
            .build()
    }

    #[test]
    fn compiled_execution_matches_interpreter() {
        let db = db_with_groups();
        let q = correlated_exists_query(&db);
        let compiled = Executor::new(&db).execute(&q).unwrap();
        let interpreted = Executor::new(&db).execute_unoptimized(&q).unwrap();
        assert!(compiled.bag_eq(&interpreted));
        assert_eq!(compiled.len(), 30);
    }

    #[test]
    fn correlated_sublink_runs_once_per_distinct_binding() {
        let db = db_with_groups();
        let q = correlated_exists_query(&db);

        let memoized = Executor::new(&db);
        memoized.execute(&q).unwrap();
        // scan r + select + 3 distinct g bindings × (select + scan s).
        assert_eq!(memoized.operators_evaluated(), 2 + 3 * 2);

        let unmemoized = Executor::new(&db).with_sublink_memo(false);
        unmemoized.execute(&q).unwrap();
        // Without the memo the sublink runs once per outer tuple.
        assert_eq!(unmemoized.operators_evaluated(), 2 + 30 * 2);
    }

    #[test]
    fn memoized_and_unmemoized_results_agree() {
        let db = db_with_groups();
        let q = correlated_exists_query(&db);
        let memoized = Executor::new(&db).execute(&q).unwrap();
        let unmemoized = Executor::new(&db)
            .with_sublink_memo(false)
            .execute(&q)
            .unwrap();
        assert!(memoized.bag_eq(&unmemoized));
    }

    #[test]
    fn uncorrelated_sublink_degenerates_to_initplan() {
        let db = db_with_groups();
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .project_columns(&["c"])
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(any_sublink(col("a"), CompareOp::Eq, sub))
            .build();
        let ex = Executor::new(&db);
        ex.execute(&q).unwrap();
        // scan r + select + one sublink execution (project + scan s).
        assert_eq!(ex.operators_evaluated(), 4);
    }

    #[test]
    fn null_bindings_are_memoized_separately_and_correctly() {
        let mut db = Database::new();
        db.create_table(
            "t",
            Relation::from_rows(
                Schema::new(vec![Attribute::qualified("t", "x", DataType::Int)]),
                vec![
                    vec![Value::Int(1)],
                    vec![Value::Null],
                    vec![Value::Null],
                    vec![Value::Int(1)],
                ],
            ),
        )
        .unwrap();
        db.create_table(
            "u",
            Relation::from_rows(
                Schema::new(vec![Attribute::qualified("u", "y", DataType::Int)]),
                vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            ),
        )
        .unwrap();
        // Π_{x, (scalar: count of u rows with y = t.x)}(T) — NULL bindings
        // produce a 0 count (y = NULL is never true), and must not collide
        // with the x = 1 binding in the memo.
        let sub = PlanBuilder::scan(&db, "u")
            .unwrap()
            .select(eq(col("y"), qcol("t", "x")))
            .aggregate(vec![], vec![perm_algebra::builder::count_star("n")])
            .build();
        let q = PlanBuilder::scan(&db, "t")
            .unwrap()
            .project(vec![
                ProjectItem::column("x"),
                ProjectItem::new(scalar_sublink(sub), "n"),
            ])
            .build();
        let ex = Executor::new(&db);
        let result = ex.execute(&q).unwrap();
        let rows: Vec<(Value, Value)> = result
            .tuples()
            .iter()
            .map(|t| (t.get(0).clone(), t.get(1).clone()))
            .collect();
        assert_eq!(
            rows,
            vec![
                (Value::Int(1), Value::Int(1)),
                (Value::Null, Value::Int(0)),
                (Value::Null, Value::Int(0)),
                (Value::Int(1), Value::Int(1)),
            ]
        );
        // 2 distinct bindings (1, NULL) → sublink plan (3 ops) runs twice:
        // scan t + project + 2 × (aggregate + select + scan u).
        assert_eq!(ex.operators_evaluated(), 2 + 2 * 3);
    }

    #[test]
    fn memo_keys_are_type_exact() {
        // t(x) holds Int(3) and Float(3.0): null-safe-equal bindings whose
        // *representations* differ. A correlated sublink that stringifies
        // its binding must not reuse one binding's cached result for the
        // other — this is why memo keys use `encode_key_typed`, not the
        // coarser join/grouping encoding.
        let mut db = Database::new();
        db.create_table(
            "t",
            Relation::from_rows(
                Schema::new(vec![Attribute::qualified("t", "x", DataType::Any)]),
                vec![vec![Value::Int(3)], vec![Value::Float(3.0)]],
            ),
        )
        .unwrap();
        db.create_table(
            "one",
            Relation::from_rows(
                Schema::new(vec![Attribute::qualified("one", "k", DataType::Int)]),
                vec![vec![Value::Int(0)]],
            ),
        )
        .unwrap();
        let sub = PlanBuilder::scan(&db, "one")
            .unwrap()
            .project(vec![ProjectItem::new(
                builder::binary(perm_algebra::BinaryOp::Concat, qcol("t", "x"), lit("!")),
                "s",
            )])
            .build();
        let q = PlanBuilder::scan(&db, "t")
            .unwrap()
            .project(vec![ProjectItem::new(scalar_sublink(sub), "s")])
            .build();
        let compiled = Executor::new(&db).execute(&q).unwrap();
        let interpreted = Executor::new(&db).execute_unoptimized(&q).unwrap();
        assert!(compiled.bag_eq(&interpreted));
        assert_eq!(compiled.tuples()[0].get(0), &Value::str("3!"));
        assert_eq!(compiled.tuples()[1].get(0), &Value::str("3.0!"));
    }

    #[test]
    fn short_circuit_still_shields_unresolvable_columns() {
        let db = db_with_groups();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(perm_algebra::builder::and(
                lit(false),
                eq(col("does_not_exist"), lit(1)),
            ))
            .build();
        let result = Executor::new(&db).execute(&q).unwrap();
        assert!(result.is_empty());
    }

    #[test]
    fn unresolvable_column_errors_when_evaluated() {
        let db = db_with_groups();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(eq(col("does_not_exist"), lit(1)))
            .build();
        let err = Executor::new(&db).execute(&q).unwrap_err();
        assert!(matches!(
            err,
            ExecError::Storage(StorageError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn typed_lane_short_circuit_shields_deferred_errors() {
        // The left conjunct is a typed Int-lane comparison that is FALSE
        // for every row, so the right conjunct — a deferred unresolvable
        // column — must never be evaluated: an all-false typed truth lane
        // yields an empty undecided selection and the fused columnar AND
        // skips the right side entirely.
        let db = db_with_groups();
        let shielded = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(perm_algebra::builder::and(
                cmp(CompareOp::Lt, qcol("r", "a"), lit(-1)),
                eq(col("does_not_exist"), lit(1)),
            ))
            .build();
        let result = Executor::new(&db).execute(&shielded).unwrap();
        assert!(result.is_empty());

        // Same shape, but some rows pass the typed left conjunct: those
        // rows *do* reach the right side and the deferred error surfaces,
        // exactly as in the per-tuple modes.
        let surfaced = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(perm_algebra::builder::and(
                cmp(CompareOp::Lt, qcol("r", "a"), lit(5)),
                eq(col("does_not_exist"), lit(1)),
            ))
            .build();
        for ex in [
            Executor::new(&db),
            Executor::new(&db).with_columnar(false),
            Executor::new(&db).with_batching(false),
        ] {
            let err = ex.execute(&surfaced).unwrap_err();
            assert!(matches!(
                err,
                ExecError::Storage(StorageError::UnknownAttribute(_))
            ));
        }
    }

    /// Digs the single sublink out of a compiled `σ_{…sublink…}(scan)` plan.
    fn select_sublink(plan: &CompiledPlan) -> &CompiledSublink {
        match plan {
            CompiledPlan::Select { predicate, .. } => match predicate {
                CompiledExpr::Sublink(s) => s,
                other => panic!("expected sublink, got {other:?}"),
            },
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn memo_hits_share_the_relation_allocation() {
        // A memo hit must return the cached `Arc<Relation>` itself — the
        // same allocation, not a deep copy of the tuples. Drive the memoized
        // sublink executor directly with the same binding twice and compare
        // pointers.
        let db = db_with_groups();
        let q = correlated_exists_query(&db);
        let ex = Executor::new(&db);
        let compiled = ex.prepare(&q).unwrap();
        let sublink = select_sublink(&compiled);
        let outer = Tuple::new(vec![Value::Int(0), Value::Int(1)]);
        let frame = Frame::new(None, &outer);
        let first = ex.execute_memoized_sublink(sublink, Some(&frame)).unwrap();
        let second = ex.execute_memoized_sublink(sublink, Some(&frame)).unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "memo hit must share the cached allocation"
        );
        // A different binding gets its own entry.
        let other_outer = Tuple::new(vec![Value::Int(1), Value::Int(2)]);
        let other_frame = Frame::new(None, &other_outer);
        let third = ex
            .execute_memoized_sublink(sublink, Some(&other_frame))
            .unwrap();
        assert!(!Arc::ptr_eq(&first, &third));
        // With the memo off every execution materialises afresh.
        let off = Executor::new(&db).with_sublink_memo(false);
        let compiled = off.prepare(&q).unwrap();
        let sublink = select_sublink(&compiled);
        let a = off.execute_memoized_sublink(sublink, Some(&frame)).unwrap();
        let b = off.execute_memoized_sublink(sublink, Some(&frame)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn verdict_memo_cuts_quantifier_comparisons_on_a_correlated_any_sweep() {
        // R(a, g) with heavily repeated (a, g) pairs: the correlated ANY
        // sublink σ_{s.g = r.g}(S) has 3 distinct bindings and each binding
        // sees only 4 distinct test values, so of the 60 outer rows only 12
        // (binding, test value) pairs are distinct. The verdict memo must
        // fold each distinct pair once; without it every outer row rescans
        // its (memoized) sublink result.
        let mut db = Database::new();
        let r_rows: Vec<Vec<Value>> = (0..60)
            .map(|i| vec![Value::Int(i % 4), Value::Int(i % 3)])
            .collect();
        let s_rows: Vec<Vec<Value>> = (0..12)
            .map(|i| vec![Value::Int(i), Value::Int(i % 3)])
            .collect();
        db.create_table(
            "r",
            Relation::from_rows(
                Schema::new(vec![
                    Attribute::qualified("r", "a", DataType::Int),
                    Attribute::qualified("r", "g", DataType::Int),
                ]),
                r_rows,
            ),
        )
        .unwrap();
        db.create_table(
            "s",
            Relation::from_rows(
                Schema::new(vec![
                    Attribute::qualified("s", "c", DataType::Int),
                    Attribute::qualified("s", "g", DataType::Int),
                ]),
                s_rows,
            ),
        )
        .unwrap();
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .select(eq(qcol("s", "g"), qcol("r", "g")))
            .project_columns(&["c"])
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(any_sublink(col("a"), CompareOp::Eq, sub))
            .build();

        let memoized = Executor::new(&db);
        let with_memo = memoized.execute(&q).unwrap();
        let cmp_on = memoized.quantifier_comparisons();

        let unmemoized = Executor::new(&db).with_sublink_memo(false);
        let without_memo = unmemoized.execute(&q).unwrap();
        let cmp_off = unmemoized.quantifier_comparisons();

        assert!(with_memo.bag_eq(&without_memo));
        assert!(
            cmp_on * 4 <= cmp_off,
            "verdict memo must cut fold comparisons ≥4×: {cmp_on} on vs {cmp_off} off"
        );

        // The interpreter path shares the verdict memo.
        let interp = Executor::new(&db);
        let interp_result = interp.execute_unoptimized(&q).unwrap();
        assert!(interp_result.bag_eq(&with_memo));
        assert!(
            interp.quantifier_comparisons() * 4 <= cmp_off,
            "interpreter verdicts must be memoized too: {} on vs {cmp_off} off",
            interp.quantifier_comparisons()
        );
    }

    #[test]
    fn param_values_participate_in_sublink_memo_keys_on_both_paths() {
        // A sublink correlated on r.g AND filtered by $1: the memo key must
        // include the parameter value, or a retained memo would serve stale
        // results after rebinding. Checked on the compiled and the
        // interpreter path.
        let db = db_with_groups();
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .select(builder::and(
                eq(qcol("s", "g"), qcol("r", "g")),
                builder::cmp(CompareOp::Gt, qcol("s", "c"), perm_algebra::Expr::Param(0)),
            ))
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(exists_sublink(sub))
            .build();

        let ex = Executor::new(&db);
        let compiled = ex.prepare(&q).unwrap();
        ex.bind_params(vec![Value::Int(108)]);
        let strict = ex.execute_compiled(&compiled, None).unwrap();
        let after_first = ex.operators_evaluated();
        // Same binding again: every (g, $1) pair is a memo hit.
        let strict_again = ex.execute_compiled(&compiled, None).unwrap();
        let after_second = ex.operators_evaluated();
        assert_eq!(after_second - after_first, 2, "outer scan + select only");
        assert!(strict.bag_eq(&strict_again));
        // New binding: the sublink must re-run per distinct g, and the
        // result must change (more s rows qualify).
        ex.bind_params(vec![Value::Int(-1)]);
        let loose = ex.execute_compiled(&compiled, None).unwrap();
        assert!(ex.operators_evaluated() - after_second > 2);
        assert!(loose.len() > strict.len());

        // Interpreter path: same contract, per execution.
        let interp = Executor::new(&db);
        interp.bind_params(vec![Value::Int(108)]);
        let i_strict = interp.execute_unoptimized(&q).unwrap();
        interp.bind_params(vec![Value::Int(-1)]);
        let i_loose = interp.execute_unoptimized(&q).unwrap();
        assert!(i_strict.bag_eq(&strict));
        assert!(i_loose.bag_eq(&loose));
    }

    #[test]
    fn memo_capacity_keeps_results_correct_under_thrashing() {
        let db = db_with_groups();
        let q = correlated_exists_query(&db);
        let bounded = Executor::new(&db).with_memo_capacity(Some(1));
        let unbounded = Executor::new(&db);
        let a = bounded.execute(&q).unwrap();
        let b = unbounded.execute(&q).unwrap();
        assert!(a.bag_eq(&b));
        // 3 correlated groups vs capacity 1: evictions force re-execution.
        assert!(bounded.operators_evaluated() >= unbounded.operators_evaluated());
    }

    #[test]
    fn racing_preparations_never_collide_on_sublink_ids() {
        // The satellite fix of the concurrent serving subsystem: the
        // process-wide sublink-id counter must hand out distinct ids under
        // concurrent `prepare` (`fetch_add` is an atomic RMW; `Relaxed`
        // ordering suffices for uniqueness — see `NEXT_SUBLINK_ID`). Race 8
        // threads × 16 preparations of a nested two-sublink plan and check
        // every id is globally unique.
        let db = db_with_groups();
        let inner = PlanBuilder::scan(&db, "s")
            .unwrap()
            .select(eq(qcol("s", "g"), qcol("r", "g")))
            .project_columns(&["c"])
            .build();
        let sub = PlanBuilder::scan(&db, "s")
            .unwrap()
            .select(any_sublink(col("c"), CompareOp::Eq, inner))
            .build();
        let q = PlanBuilder::scan(&db, "r")
            .unwrap()
            .select(exists_sublink(sub))
            .build();

        fn collect_ids(plan: &CompiledPlan, out: &mut Vec<usize>) {
            fn expr_ids(expr: &CompiledExpr, out: &mut Vec<usize>) {
                match expr {
                    CompiledExpr::Sublink(s) => {
                        out.push(s.id);
                        if let Some(t) = &s.test_expr {
                            expr_ids(t, out);
                        }
                        collect_ids(&s.plan, out);
                    }
                    CompiledExpr::Binary { left, right, .. } => {
                        expr_ids(left, out);
                        expr_ids(right, out);
                    }
                    CompiledExpr::Unary { expr, .. } => expr_ids(expr, out),
                    _ => {}
                }
            }
            match plan {
                CompiledPlan::Select {
                    input, predicate, ..
                } => {
                    expr_ids(predicate, out);
                    collect_ids(input, out);
                }
                CompiledPlan::Project { input, items, .. } => {
                    for item in items {
                        expr_ids(item, out);
                    }
                    collect_ids(input, out);
                }
                CompiledPlan::Scan { .. } | CompiledPlan::Values { .. } => {}
                other => panic!("unexpected operator in test plan: {other:?}"),
            }
        }

        let all_ids = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let ex = Executor::new(&db);
                    let mut ids = Vec::new();
                    for _ in 0..16 {
                        let compiled = ex.prepare(&q).unwrap();
                        collect_ids(&compiled, &mut ids);
                    }
                    all_ids.lock().unwrap().extend(ids);
                });
            }
        });
        let mut ids = all_ids.into_inner().unwrap();
        assert_eq!(ids.len(), 8 * 16 * 2, "two sublinks per preparation");
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(
            ids.len(),
            before,
            "racing preparations produced duplicate sublink ids"
        );
    }

    #[test]
    fn shared_memo_serves_hits_across_executors() {
        // Two executors (think: two worker threads) attached to one shared
        // memo: a binding warmed by the first is a hit — the same
        // allocation — for the second, and the second's operator counter
        // shows it did no sublink work of its own.
        let db = db_with_groups();
        let q = correlated_exists_query(&db);
        let shared = crate::memo::SharedSublinkMemo::new();

        let warmer = Executor::new(&db).with_shared_memo(Arc::clone(&shared));
        let compiled = warmer.prepare(&q).unwrap();
        let sublink = select_sublink(&compiled);
        let outer = Tuple::new(vec![Value::Int(0), Value::Int(1)]);
        let frame = Frame::new(None, &outer);
        let first = warmer
            .execute_memoized_sublink(sublink, Some(&frame))
            .unwrap();
        assert!(
            shared.entry_count() > 0,
            "warming populated the shared memo"
        );

        let server = Executor::new(&db).with_shared_memo(Arc::clone(&shared));
        let before = server.operators_evaluated();
        let second = server
            .execute_memoized_sublink(sublink, Some(&frame))
            .unwrap();
        assert!(
            Arc::ptr_eq(&first, &second),
            "cross-executor hit must share the cached allocation"
        );
        assert_eq!(
            server.operators_evaluated(),
            before,
            "a shared-memo hit does no operator work"
        );
        // Full-query check: an executor serving the same prepared plan over
        // the warm memo produces the same result as a cold private one.
        let warm_result = server.execute_compiled(&compiled, None).unwrap();
        let cold_result = Executor::new(&db).execute(&q).unwrap();
        assert!(warm_result.bag_eq(&cold_result));
    }

    #[test]
    fn sublink_ids_from_repeated_compilations_do_not_collide() {
        let db = db_with_groups();
        let q = correlated_exists_query(&db);
        let ex = Executor::new(&db);
        let first = ex.prepare(&q).unwrap();
        let second = ex.prepare(&q).unwrap();
        let id_of = |plan: &CompiledPlan| -> usize {
            match plan {
                CompiledPlan::Select { predicate, .. } => match predicate {
                    CompiledExpr::Sublink(s) => s.id,
                    other => panic!("expected sublink, got {other:?}"),
                },
                other => panic!("expected select, got {other:?}"),
            }
        };
        assert_ne!(id_of(&first), id_of(&second));
    }
}
