//! # perm-exec
//!
//! A bag-semantics executor for the `perm-algebra` plans, playing the role of
//! the (unmodified) PostgreSQL execution engine in the original Perm system:
//! the provenance rewrite rules of `perm-core` produce ordinary algebra plans
//! which this crate evaluates against an in-memory [`perm_storage::Database`].
//!
//! Correlated sublinks are supported by evaluating the sublink plan once per
//! binding of the correlated attributes (an environment stack of outer
//! tuples, innermost scope first), exactly as Section 2.2 of the paper
//! describes the parameterisation of `Tsub`.
//!
//! ## Architecture: one batch-at-a-time physical layer, two drivers
//!
//! Every operator loop — hash and nested-loop joins (with left-outer NULL
//! padding), aggregate grouping, sorting, set operations, projection and
//! selection — is implemented exactly once, in the `physical` module, and
//! operates **batch-at-a-time**: inputs are processed in [`Batch`]es of up
//! to [`BATCH_ROWS`] tuples carrying a selection vector (see [`batch`] for
//! the invariants), so filters mark survivors instead of copying rows and
//! every expression is dispatched once per batch instead of once per
//! tuple. The loops are parameterized over *batch-evaluator closures*; two
//! thin drivers share the bodies:
//!
//! * the default path ([`Executor::execute`]) first *compiles* the plan
//!   ([`compile`]): column references become positional slots and every
//!   sublink carries its resolved correlation signature. Its closures
//!   evaluate each compiled expression **vectorized** over the whole batch
//!   (one recursive descent per expression per batch, with `AND`/`OR` and
//!   `CASE` narrowing the selection so per-row short-circuit semantics are
//!   preserved exactly), falling back to per-tuple evaluation for
//!   sublink-bearing subtrees so the memo seam is untouched;
//!
//!   On top of the batches the compiled path runs **column-major**: every
//!   batch is backed by a [`ColumnBlock`] whose typed lanes (i64, f64,
//!   date, bool and string vectors, each with a packed validity bitmap,
//!   plus a `Value`-vector fallback lane for mixed-type columns) are
//!   materialised lazily, one column at a time, on first access. Slot
//!   references load a lane once per batch, the [`kernels`] module
//!   evaluates comparisons and arithmetic as tight loops over the typed
//!   lanes (whole-column fast paths with a per-column scalar retry on
//!   overflow or type mixing — never a silent wrong answer), and hash-join
//!   build/probe and aggregate grouping encode their keys **column-wise**
//!   (`encode_key_column` in `perm-storage`, byte-identical to the
//!   row-major encoding). Tuples are only re-materialised at pipeline
//!   breakers, the memo seam and the [`Rows`] boundary. The layer is
//!   observable ([`Executor::columnar_blocks`],
//!   [`Executor::columnar_fallback_rows`]) and can be switched off
//!   ([`Executor::with_columnar`]) — the measurement baseline of
//!   `harness batch`, which gates columnar against row-major batches;
//! * the name-resolving interpreter ([`Executor::execute_unoptimized`]),
//!   the reference semantics of the equivalence tests and the substrate of
//!   the tracer in `perm-core`; its closures loop over each batch **row by
//!   row**, resolving names through an [`Env`] chain — the unchanged
//!   per-tuple semantics batching is differential-tested against — and it
//!   recovers correlation signatures at runtime.
//!
//! Pipeline breakers (aggregation, sorting, set operations, the join build
//! side) consume batches at their input boundary; the streamable spine
//! (`scan → select → project → limit`) additionally streams batches lazily
//! through the [`cursor`] pull path, which a top-level `LIMIT` also uses on
//! the materialising path so the tail beyond the limit is never evaluated.
//!
//! Both drivers feed the same **parameterized sublink memo** — a correlated
//! sublink runs once per *distinct* binding instead of once per outer
//! tuple, and an uncorrelated sublink runs once per query (PostgreSQL's
//! InitPlan behaviour). Memoized results are shared as `Arc<Relation>`s
//! (hits never deep-copy), and `ANY`/`ALL` *verdicts* are memoized per
//! `(sublink, binding, test value)` on top. Since the operator bodies are
//! shared, a semantics fix lands in one place, and the
//! `operators_evaluated` accounting lives in the physical layer alone —
//! counted once per logical operator invocation, never per batch, so the
//! counter is comparable across batch sizes and execution modes.
//!
//! Ahead of compilation sits the **optimizer layer** ([`mod@optimize`]) — a
//! fixpoint of cost-free logical rewrites over the bound algebra: correlated
//! `EXISTS`/`NOT EXISTS`/`IN`-equality sublinks in top-scope selections are
//! *decorrelated* into hash semi/anti joins (the static counterpart of the
//! runtime memo above — shapes the rules cannot prove safe simply keep the
//! memo path), selections push toward the scans, projection columns nobody
//! reads are pruned, and constant subexpressions fold. Every rule preserves
//! result bags, the error set *and* the `operators_evaluated` bound; the
//! module documentation spells out the three observables. The `Session`
//! facade runs the phase between the provenance rewrite and [`compile`]
//! (so witness columns are ordinary columns by then); executor-direct
//! callers opt in with [`Executor::with_optimizer`], and `harness opt
//! --check` gates the decorrelated plans against the memo-only baseline.
//!
//! An [`Executor`] is deliberately `!Sync` (its counters and private memos
//! use `Cell`/`RefCell`) — concurrency happens *above* it, one executor per
//! worker thread. What crosses threads is the read-only data: the database,
//! compiled plans, and optionally a [`SharedSublinkMemo`]
//! ([`Executor::with_shared_memo`]) — a sharded, lock-per-shard memo through
//! which worker executors share compiled-path sublink results and verdicts,
//! the substrate of the `perm-serve` crate's parallel correlated-sublink
//! evaluation.
//!
//! The [`resilience`] module threads serving-grade governance through the
//! same physical layer: cooperative cancellation and deadlines (polled at
//! batch boundaries via a [`CancelToken`], surfacing as
//! [`ExecError::Cancelled`]), a per-executor memory budget with byte-aware
//! memo accounting and a spill-before-reclaim-before-fail degradation
//! ladder (surfaced as [`Degradation`]; only its last rung is
//! [`ExecError::ResourceExhausted`]), and a deterministic [`FaultPlan`]
//! injector for crash-consistency testing. With spilling enabled
//! (`Executor::with_spill`) the growing operators go **out of core**
//! instead of failing: the hash join partitions its build side to disk
//! (grace hash join), the sort writes sorted runs and k-way-merges them,
//! the aggregate partitions partial group states, and reclaimed
//! compiled-memo entries are persisted and reloaded on later misses — all
//! through the slotted-page heap files and pinning buffer pool of
//! `perm-storage`.

pub mod aggregate;
pub mod batch;
pub mod compile;
pub mod cursor;
pub mod eval;
pub mod executor;
pub mod functions;
pub mod kernels;
pub(crate) mod memo;
pub mod optimize;
pub(crate) mod physical;
pub mod profile;
pub mod resilience;
pub(crate) mod spill;

pub use batch::{Batch, ColumnBlock, BATCH_ROWS};
pub use compile::{CompiledExpr, CompiledPlan, CompiledSublink, Frame, Slot};
pub use cursor::Rows;
pub use eval::Env;
pub use executor::Executor;
pub use memo::SharedSublinkMemo;
pub use optimize::{optimize, plan_fingerprint, OptimizerReport};
pub use profile::{ProfileNode, QueryProfile};
pub use resilience::{CancelToken, Degradation, FaultKind, FaultPlan, FaultSite, TraceSignal};

use perm_storage::StorageError;

/// Errors raised during query execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Schema/name resolution or catalog failure.
    Storage(StorageError),
    /// A value had the wrong type for an operation.
    Type(String),
    /// A scalar sublink produced more than one tuple or more than one
    /// attribute.
    ScalarSublinkCardinality(String),
    /// Division by zero.
    DivisionByZero,
    /// A `$n` query parameter was referenced but not bound.
    Param(String),
    /// The plan is invalid or uses a feature the executor does not support.
    Unsupported(String),
    /// The query was cancelled cooperatively — by an explicit
    /// [`CancelToken::cancel`], an expired deadline, or an injected fault.
    /// Raised at a batch-boundary checkpoint, so no partial result escapes.
    Cancelled {
        /// Why the query was cancelled (e.g. `"deadline exceeded"`).
        reason: String,
    },
    /// The memory budget was exhausted and reclaiming memos did not free
    /// enough; names the physical operator whose state hit the limit.
    ResourceExhausted {
        /// The physical operator that could not grow its state.
        operator: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Storage(e) => write!(f, "{e}"),
            ExecError::Type(msg) => write!(f, "type error: {msg}"),
            ExecError::ScalarSublinkCardinality(msg) => {
                write!(f, "scalar sublink cardinality violation: {msg}")
            }
            ExecError::DivisionByZero => write!(f, "division by zero"),
            ExecError::Param(msg) => write!(f, "parameter error: {msg}"),
            ExecError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            ExecError::Cancelled { reason } => write!(f, "query cancelled: {reason}"),
            ExecError::ResourceExhausted { operator } => {
                write!(f, "memory budget exhausted in operator `{operator}`")
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

impl From<perm_algebra::AlgebraError> for ExecError {
    fn from(e: perm_algebra::AlgebraError) -> Self {
        match e {
            perm_algebra::AlgebraError::Storage(s) => ExecError::Storage(s),
            other => ExecError::Unsupported(other.to_string()),
        }
    }
}

/// Result alias for execution.
pub type Result<T> = std::result::Result<T, ExecError>;
