//! # perm-exec
//!
//! A bag-semantics executor for the `perm-algebra` plans, playing the role of
//! the (unmodified) PostgreSQL execution engine in the original Perm system:
//! the provenance rewrite rules of `perm-core` produce ordinary algebra plans
//! which this crate evaluates against an in-memory [`perm_storage::Database`].
//!
//! Correlated sublinks are supported by evaluating the sublink plan once per
//! binding of the correlated attributes (an environment stack of outer
//! tuples, innermost scope first), exactly as Section 2.2 of the paper
//! describes the parameterisation of `Tsub`.
//!
//! ## Architecture: one physical-operator layer, two drivers
//!
//! Every operator loop — hash and nested-loop joins (with left-outer NULL
//! padding), aggregate grouping, sorting, set operations, projection and
//! selection — is implemented exactly once, in the `physical` module,
//! parameterized over *tuple-evaluator closures*. Two thin drivers share
//! those bodies:
//!
//! * the default path ([`Executor::execute`]) first *compiles* the plan
//!   ([`compile`]): column references become positional slots and every
//!   sublink carries its resolved correlation signature; its closures index
//!   slots through a [`compile::Frame`] chain;
//! * the name-resolving interpreter ([`Executor::execute_unoptimized`]),
//!   the reference semantics of the equivalence tests and the substrate of
//!   the tracer in `perm-core`; its closures resolve names through an
//!   [`Env`] chain, and it recovers correlation signatures at runtime.
//!
//! Both drivers feed the same **parameterized sublink memo** — a correlated
//! sublink runs once per *distinct* binding instead of once per outer
//! tuple, and an uncorrelated sublink runs once per query (PostgreSQL's
//! InitPlan behaviour). Memoized results are shared as `Arc<Relation>`s
//! (hits never deep-copy), and `ANY`/`ALL` *verdicts* are memoized per
//! `(sublink, binding, test value)` on top. Since the operator bodies are
//! shared, a semantics fix lands in one place, and the
//! `operators_evaluated` accounting lives in the physical layer alone.
//!
//! An [`Executor`] is deliberately `!Sync` (its counters and private memos
//! use `Cell`/`RefCell`) — concurrency happens *above* it, one executor per
//! worker thread. What crosses threads is the read-only data: the database,
//! compiled plans, and optionally a [`SharedSublinkMemo`]
//! ([`Executor::with_shared_memo`]) — a sharded, lock-per-shard memo through
//! which worker executors share compiled-path sublink results and verdicts,
//! the substrate of the `perm-serve` crate's parallel correlated-sublink
//! evaluation.

pub mod aggregate;
pub mod compile;
pub mod cursor;
pub mod eval;
pub mod executor;
pub mod functions;
pub(crate) mod memo;
pub(crate) mod physical;

pub use compile::{CompiledExpr, CompiledPlan, CompiledSublink, Frame, Slot};
pub use cursor::Rows;
pub use eval::Env;
pub use executor::Executor;
pub use memo::SharedSublinkMemo;

use perm_storage::StorageError;

/// Errors raised during query execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Schema/name resolution or catalog failure.
    Storage(StorageError),
    /// A value had the wrong type for an operation.
    Type(String),
    /// A scalar sublink produced more than one tuple or more than one
    /// attribute.
    ScalarSublinkCardinality(String),
    /// Division by zero.
    DivisionByZero,
    /// A `$n` query parameter was referenced but not bound.
    Param(String),
    /// The plan is invalid or uses a feature the executor does not support.
    Unsupported(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Storage(e) => write!(f, "{e}"),
            ExecError::Type(msg) => write!(f, "type error: {msg}"),
            ExecError::ScalarSublinkCardinality(msg) => {
                write!(f, "scalar sublink cardinality violation: {msg}")
            }
            ExecError::DivisionByZero => write!(f, "division by zero"),
            ExecError::Param(msg) => write!(f, "parameter error: {msg}"),
            ExecError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

impl From<perm_algebra::AlgebraError> for ExecError {
    fn from(e: perm_algebra::AlgebraError) -> Self {
        match e {
            perm_algebra::AlgebraError::Storage(s) => ExecError::Storage(s),
            other => ExecError::Unsupported(other.to_string()),
        }
    }
}

/// Result alias for execution.
pub type Result<T> = std::result::Result<T, ExecError>;
