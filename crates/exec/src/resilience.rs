//! Serving-grade resilience: cooperative cancellation, deadlines, memory
//! budgets, and deterministic fault injection.
//!
//! A production engine must be able to *stop* a query: a runaway correlated
//! sublink (the exact workload the provenance rewrites amplify — Figure 7 of
//! the paper scales operator counts superlinearly) would otherwise run to
//! completion or exhaust memory. This module supplies the substrate that the
//! executor threads through every physical-operator loop:
//!
//! * [`CancelToken`] — a cheaply clonable, thread-safe handle combining an
//!   explicit cancel flag with an optional deadline. The executor polls it
//!   at **batch boundaries** (every [`crate::BATCH_ROWS`] rows of operator
//!   work), at streaming-cursor refills, and on entry to a memoized sublink
//!   execution, so a cancelled query returns within one batch worth of work
//!   as `ExecError::Cancelled` rather than running to completion.
//! * A memory **budget** (installed via `Executor::with_memory_budget`):
//!   a per-executor byte accountant charged by the operator state that can
//!   actually grow without bound — hash-join build tables and candidate
//!   buffers, aggregation group state, sort buffers — and by every sublink
//!   memo insertion (both the executor-private memos and a shared
//!   [`crate::SharedSublinkMemo`] have byte-aware accounting, not just entry
//!   counts). On pressure the executor walks a **degradation ladder**, each
//!   rung recorded on [`Degradation`] so the session can surface how far it
//!   had to go:
//!
//!   1. *Spill to disk* (when enabled via `Executor::with_spill`): reclaimed
//!      compiled sublink-memo entries are written to a spill file instead of
//!      dropped — a later miss reloads the relation instead of re-executing
//!      the sublink — and the growing operators move their state out of core
//!      (grace hash join, external merge sort, partitioned aggregation in
//!      `crate::physical`). Costs only I/O, never recomputation.
//!   2. *Reclaim memos*: the memos that cannot be spilled (interpreter-path
//!      entries are keyed by plan node addresses, verdicts are cheap to
//!      refold) are cleared — losing only speed, never correctness, since a
//!      memo miss simply re-executes the sublink.
//!   3. *Fail*: only when neither spilling nor reclaiming frees enough does
//!      the query fail with `ExecError::ResourceExhausted`, naming the
//!      operator.
//! * [`FaultPlan`] — a deterministic fault injector for crash-consistency
//!   testing: it fires a cancellation, a budget exhaustion, or an injected
//!   panic at the *N*-th checkpoint / memo-insert / operator event.
//!   Triggers are count-based — no wall clock, no randomness — so a fault
//!   sweep over the differential corpus is exactly reproducible.
//!
//! All polling is **cooperative**: nothing is interrupted mid-batch, so an
//! aborted query never leaves a shared memo or a worker in a partial state —
//! the fault-injection sweep in `tests/differential.rs` pins this down by
//! demanding either the exact reference bag or a single clean typed error.

use crate::spill::SpillManager;
use crate::{ExecError, Result};
use perm_storage::{Relation, Truth, Tuple, Value};
use std::cell::{Cell, RefCell};
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// CancelToken
// ---------------------------------------------------------------------------

/// How many checkpoints pass between deadline clock probes. Explicit
/// cancellation (the atomic flag) is honoured at every checkpoint; only the
/// `Instant::now()` comparison is strided, because on checkpoint-dense plans
/// (a correlated sublink per outer row) the clock read alone would dominate
/// the checkpoint's cost. A deadline therefore trips at most 63 checkpoints
/// late — microseconds of extra work, far below batch granularity.
const DEADLINE_STRIDE: u64 = 64;

#[derive(Debug)]
struct TokenInner {
    flag: AtomicBool,
    deadline: Option<Instant>,
    reason: OnceLock<String>,
}

/// A cooperative cancellation handle: a shared flag plus an optional
/// deadline.
///
/// Cloning is cheap (an `Arc` bump) and the token is `Send + Sync`, so the
/// handle returned by `Rows::cancel_handle` or minted for a
/// `SessionConfig` deadline can be cancelled from another thread while the
/// executor polls it between batches. Once cancelled (explicitly or by the
/// deadline passing) a token stays cancelled; sessions mint a fresh token
/// per execution so a stale cancel never leaks into the next query.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A token with no deadline; cancels only via [`CancelToken::cancel`].
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                flag: AtomicBool::new(false),
                deadline: None,
                reason: OnceLock::new(),
            }),
        }
    }

    /// A token that additionally cancels itself once `deadline` has passed
    /// (checked at every executor checkpoint).
    pub fn with_deadline(deadline: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                flag: AtomicBool::new(false),
                deadline: Some(Instant::now() + deadline),
                reason: OnceLock::new(),
            }),
        }
    }

    /// Requests cancellation with a human-readable reason. The first reason
    /// wins; later calls only re-assert the flag.
    pub fn cancel(&self, reason: &str) {
        let _ = self.inner.reason.set(reason.to_string());
        self.inner.flag.store(true, Ordering::Release);
    }

    /// `true` once the token is cancelled or its deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// Returns `Err(ExecError::Cancelled)` once cancelled, `Ok(())` before.
    pub fn check(&self) -> Result<()> {
        self.check_inner(true)
    }

    /// The flag-only variant the executor uses between clock strides:
    /// reading the clock costs more than the entire rest of a checkpoint,
    /// so the deadline is probed only every [`DEADLINE_STRIDE`]-th
    /// checkpoint while explicit [`CancelToken::cancel`] calls (an atomic
    /// flag) are still honoured at every single one.
    pub(crate) fn check_flag(&self) -> Result<()> {
        self.check_inner(false)
    }

    fn check_inner(&self, probe_clock: bool) -> Result<()> {
        if self.inner.flag.load(Ordering::Acquire) {
            return Err(ExecError::Cancelled {
                reason: self
                    .inner
                    .reason
                    .get()
                    .cloned()
                    .unwrap_or_else(|| "cancelled".to_string()),
            });
        }
        if probe_clock {
            if let Some(d) = self.inner.deadline {
                if Instant::now() >= d {
                    return Err(ExecError::Cancelled {
                        reason: "deadline exceeded".to_string(),
                    });
                }
            }
        }
        Ok(())
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The event returns `ExecError::Cancelled`, as if a token fired.
    Cancel,
    /// The event returns `ExecError::ResourceExhausted`, as if the budget
    /// ran dry at that point.
    Exhaust,
    /// The event panics — the poisoned-query case `catch_unwind` isolation
    /// and lock-poison recovery are tested against.
    Panic,
}

/// Which executor event stream the fault counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Batch-boundary cancellation checkpoints (including cursor refills).
    Checkpoint,
    /// Sublink-memo insertions (private or shared).
    MemoInsert,
    /// Physical-operator invocations (one event per logical operator).
    Operator,
}

#[derive(Debug)]
struct FaultInner {
    kind: FaultKind,
    site: FaultSite,
    /// The 1-based event ordinal the fault fires at.
    at: u64,
    /// Events observed at the fault's site so far.
    seen: AtomicU64,
    fired: AtomicBool,
}

/// A deterministic, count-based fault injector.
///
/// `FaultPlan::new(kind, site, n)` fires `kind` at the `n`-th event of
/// `site` (1-based). Triggers are pure event counts — no wall clock, no
/// randomness — so an injected fault lands at exactly the same point on
/// every run of the same plan. The handle is cheaply clonable and
/// thread-safe; after a run, [`FaultPlan::fired`] and
/// [`FaultPlan::events_seen`] let a test assert not only *that* the fault
/// fired but that the executor stopped doing work immediately afterwards
/// (no further events at the site).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<FaultInner>,
}

impl FaultPlan {
    /// A fault of `kind` firing at the `n`-th event of `site` (1-based;
    /// `n = 0` never fires).
    pub fn new(kind: FaultKind, site: FaultSite, n: u64) -> FaultPlan {
        FaultPlan {
            inner: Arc::new(FaultInner {
                kind,
                site,
                at: n,
                seen: AtomicU64::new(0),
                fired: AtomicBool::new(false),
            }),
        }
    }

    /// `true` once the fault has fired.
    pub fn fired(&self) -> bool {
        self.inner.fired.load(Ordering::Acquire)
    }

    /// Number of events observed at the fault's site so far.
    pub fn events_seen(&self) -> u64 {
        self.inner.seen.load(Ordering::Acquire)
    }

    /// Records one event at `site`; fires if this is the `n`-th.
    fn observe(&self, site: FaultSite, operator: &str) -> Result<()> {
        if site != self.inner.site || self.inner.at == 0 {
            return Ok(());
        }
        let seen = self.inner.seen.fetch_add(1, Ordering::AcqRel) + 1;
        if seen != self.inner.at {
            return Ok(());
        }
        self.inner.fired.store(true, Ordering::Release);
        match self.inner.kind {
            FaultKind::Cancel => Err(ExecError::Cancelled {
                reason: format!("injected cancellation at {site:?} #{seen}"),
            }),
            FaultKind::Exhaust => Err(ExecError::ResourceExhausted {
                operator: operator.to_string(),
            }),
            FaultKind::Panic => panic!("injected panic at {site:?} #{seen} ({operator})"),
        }
    }
}

// ---------------------------------------------------------------------------
// Byte estimators
// ---------------------------------------------------------------------------

/// Approximate heap footprint of one value, in bytes.
pub(crate) fn value_bytes(v: &Value) -> u64 {
    let base = std::mem::size_of::<Value>() as u64;
    match v {
        Value::Str(s) => base + s.capacity() as u64,
        _ => base,
    }
}

/// Approximate heap footprint of one tuple. Counts the value vector's
/// *capacity*, not just its length — rows assembled by repeated pushes keep
/// spare slots allocated, exactly like `Value::Str` keeps spare string
/// capacity in [`value_bytes`].
pub(crate) fn tuple_bytes(t: &Tuple) -> u64 {
    let spare = (t.capacity() - t.arity()) * std::mem::size_of::<Value>();
    std::mem::size_of::<Tuple>() as u64
        + spare as u64
        + t.values().iter().map(value_bytes).sum::<u64>()
}

/// Approximate heap footprint of a materialised relation.
pub(crate) fn relation_bytes(r: &Relation) -> u64 {
    std::mem::size_of::<Relation>() as u64
        + r.tuples().iter().map(tuple_bytes).sum::<u64>()
        + r.schema().arity() as u64 * 16
}

/// Per-entry byte cost of a memoized value — implemented by the value types
/// the sublink memos store, so `MemoMap` / `SharedSublinkMemo` can account
/// bytes rather than just entries.
pub(crate) trait MemoCost {
    /// Approximate heap footprint of this memoized value.
    fn cost_bytes(&self) -> u64;
}

impl MemoCost for Arc<Relation> {
    fn cost_bytes(&self) -> u64 {
        relation_bytes(self)
    }
}

impl MemoCost for Truth {
    fn cost_bytes(&self) -> u64 {
        std::mem::size_of::<Truth>() as u64
    }
}

// ---------------------------------------------------------------------------
// Trace signals
// ---------------------------------------------------------------------------

/// One structured execution event emitted by the governor (and the memo
/// seams through it) when a trace hook is installed. This is the
/// executor-side half of the tracing seam: `perm-exec` cannot depend on
/// `perm-core`, so the session facade bridges these signals into
/// `perm_core::trace::TraceEvent`s for the configured sink. With no hook
/// installed nothing is allocated or emitted — the constructors below run
/// only inside the governor's hook-present emission branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceSignal {
    /// A sublink-memo insertion of an entry costing `bytes`.
    MemoInsert {
        /// The memo site label (e.g. `"sublink-memo"`).
        label: String,
        /// Estimated heap cost of the inserted entry.
        bytes: u64,
    },
    /// A sublink-memo hit: a result served without re-executing the plan.
    MemoHit {
        /// The memo site label.
        label: String,
    },
    /// Spill-file write of `bytes` payload.
    Spill {
        /// What was spilled (e.g. `"memo-entry"`).
        label: String,
        /// Payload bytes written.
        bytes: u64,
    },
    /// The degradation ladder moved to a worse rung.
    Rung {
        /// The rung just reached.
        rung: Degradation,
    },
    /// A cancellation checkpoint fired (explicit cancel, deadline, or an
    /// injected fault) inside `operator`.
    CancelFired {
        /// The operator whose checkpoint observed the cancellation.
        operator: String,
    },
}

// ---------------------------------------------------------------------------
// Governor
// ---------------------------------------------------------------------------

/// How far the executor has degraded under memory pressure, ordered from
/// best to worst. The governor records the worst rung reached, and the
/// session surfaces it (`SessionStats::degradation`) so callers can tell a
/// query that merely ran slower from one that shed cached work or died.
///
/// The ordering encodes the ladder's cost model: spilling to disk preserves
/// every computed result (pure I/O cost), reclaiming memos forfeits cached
/// sublink results (recomputation cost), and exhaustion fails the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Degradation {
    /// The budget (if any) was never exceeded.
    #[default]
    None,
    /// Operator state or reclaimed memo entries moved to spill files; every
    /// result stayed available, only I/O was paid.
    SpilledToDisk,
    /// Registered memos were cleared (dropped, not spilled) under pressure —
    /// later sublink misses re-execute.
    ReclaimedMemos,
    /// Spilling and reclaiming did not free enough; a query failed with
    /// `ExecError::ResourceExhausted`.
    Exhausted,
}

/// Byte accounting + reclaim interface a memo exposes to the governor:
/// current footprint, and "drop everything, report what was freed".
pub(crate) trait MemoBytes {
    fn current_bytes(&self) -> u64;
    fn reclaim(&self) -> u64;

    /// Reclaim with a live spill manager available: implementations that can
    /// persist their entries (the compiled result memo, whose keys are
    /// process-unique) write them out before dropping; the default just
    /// drops, like [`MemoBytes::reclaim`].
    fn reclaim_to_spill(&self, _spill: &SpillManager) -> u64 {
        self.reclaim()
    }
}

/// The executor's resilience state: the installed cancel token, fault plan
/// and memory budget, plus the counters the session surfaces
/// (`cancel_checks`, `peak_bytes`).
///
/// The governor is owned by the executor and polled from the shared
/// physical-operator layer; it is deliberately `!Sync` (like the executor)
/// — what crosses threads are the [`CancelToken`] / [`FaultPlan`] handles,
/// not the governor itself.
pub(crate) struct Governor {
    cancel: RefCell<Option<CancelToken>>,
    fault: RefCell<Option<FaultPlan>>,
    budget: Cell<Option<u64>>,
    /// Transient operator bytes currently charged (join/aggregate/sort
    /// state); memo bytes are queried from the registered memos instead of
    /// charged, so memo-internal eviction is always reflected exactly.
    transient: Cell<u64>,
    peak: Cell<u64>,
    checks: Cell<u64>,
    /// Checkpoints until the next deadline clock probe; reset whenever a
    /// token is installed, so every execution probes at its first
    /// checkpoint (an already-expired deadline cancels before any work).
    until_probe: Cell<u64>,
    memos: RefCell<Vec<Box<dyn MemoBytes>>>,
    /// Whether spill-to-disk degradation is enabled (`Executor::with_spill`).
    spill_enabled: Cell<bool>,
    /// Base directory for spill files (`None` = system temp dir).
    spill_dir: RefCell<Option<PathBuf>>,
    /// The live spill manager, created lazily at the first pressure point
    /// that needs it — an executor that never hits its budget never touches
    /// the filesystem.
    spill: RefCell<Option<Rc<SpillManager>>>,
    /// Set when creating the spill directory failed once; the governor then
    /// degrades as if spilling were disabled instead of retrying every
    /// charge.
    spill_failed: Cell<bool>,
    /// Worst [`Degradation`] rung reached so far.
    rung: Cell<Degradation>,
    /// The installed trace hook, if any — the bridge through which the
    /// session facade forwards [`TraceSignal`]s into its configured
    /// `TraceSink`. `Rc`, not `Arc`: the governor is `!Sync` like its
    /// executor, and hooks are installed per executor.
    trace: RefCell<Option<TraceHook>>,
}

/// The installed form of a trace hook: a shared closure the emission sites
/// call with each [`TraceSignal`].
pub type TraceHook = Rc<dyn Fn(TraceSignal)>;

impl Governor {
    pub(crate) fn new() -> Governor {
        Governor {
            cancel: RefCell::new(None),
            fault: RefCell::new(None),
            budget: Cell::new(None),
            transient: Cell::new(0),
            peak: Cell::new(0),
            checks: Cell::new(0),
            until_probe: Cell::new(0),
            memos: RefCell::new(Vec::new()),
            spill_enabled: Cell::new(false),
            spill_dir: RefCell::new(None),
            spill: RefCell::new(None),
            spill_failed: Cell::new(false),
            rung: Cell::new(Degradation::None),
            trace: RefCell::new(None),
        }
    }

    /// Installs (or clears) the trace hook the governor and memo seams emit
    /// [`TraceSignal`]s through.
    pub(crate) fn set_trace_hook(&self, hook: Option<TraceHook>) {
        *self.trace.borrow_mut() = hook;
    }

    /// Emits a trace signal when (and only when) a hook is installed — the
    /// closure defers any allocation the signal needs to the hook-present
    /// branch, so unhooked executions pay one `Option` check.
    pub(crate) fn emit(&self, signal: impl FnOnce() -> TraceSignal) {
        if let Some(hook) = self.trace.borrow().as_ref() {
            hook(signal());
        }
    }

    pub(crate) fn set_cancel_token(&self, token: Option<CancelToken>) {
        self.until_probe.set(0);
        *self.cancel.borrow_mut() = token;
    }

    /// Returns the installed token, installing a fresh one if none is set —
    /// the lazy path behind `Rows::cancel_handle`.
    pub(crate) fn ensure_cancel_token(&self) -> CancelToken {
        let mut slot = self.cancel.borrow_mut();
        slot.get_or_insert_with(CancelToken::new).clone()
    }

    pub(crate) fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *self.fault.borrow_mut() = plan;
    }

    pub(crate) fn set_budget(&self, bytes: Option<u64>) {
        self.budget.set(bytes);
    }

    pub(crate) fn budget(&self) -> Option<u64> {
        self.budget.get()
    }

    pub(crate) fn set_spill_enabled(&self, enabled: bool) {
        self.spill_enabled.set(enabled);
    }

    pub(crate) fn set_spill_dir(&self, dir: Option<PathBuf>) {
        *self.spill_dir.borrow_mut() = dir;
    }

    /// The live spill manager, creating it on first use. `None` when
    /// spilling is disabled or the spill directory could not be created
    /// (the latter is remembered, so a broken directory degrades to the
    /// no-spill ladder instead of retrying on every charge).
    pub(crate) fn spill(&self) -> Option<Rc<SpillManager>> {
        if !self.spill_enabled.get() || self.spill_failed.get() {
            return None;
        }
        if let Some(mgr) = self.spill.borrow().as_ref() {
            return Some(Rc::clone(mgr));
        }
        match SpillManager::create(self.spill_dir.borrow().as_deref()) {
            Ok(mgr) => {
                let mgr = Rc::new(mgr);
                *self.spill.borrow_mut() = Some(Rc::clone(&mgr));
                Some(mgr)
            }
            Err(_) => {
                self.spill_failed.set(true);
                None
            }
        }
    }

    /// Records a degradation rung, keeping the worst one seen; a transition
    /// to a worse rung is traced.
    pub(crate) fn note_rung(&self, rung: Degradation) {
        if rung > self.rung.get() {
            self.rung.set(rung);
            self.emit(|| TraceSignal::Rung { rung });
        }
    }

    /// Worst degradation rung reached so far.
    pub(crate) fn degradation(&self) -> Degradation {
        self.rung.get()
    }

    /// Total payload bytes written to spill files so far.
    pub(crate) fn spilled_bytes(&self) -> u64 {
        self.spill
            .borrow()
            .as_ref()
            .map_or(0, |m| m.spilled_bytes())
    }

    /// Spill partitions (grace-join, aggregate) and sort runs created.
    pub(crate) fn spill_partitions(&self) -> u64 {
        self.spill.borrow().as_ref().map_or(0, |m| m.partitions())
    }

    /// Buffer-pool hits of the spill manager's pool.
    pub(crate) fn buffer_pool_hits(&self) -> u64 {
        self.spill.borrow().as_ref().map_or(0, |m| m.pool_hits())
    }

    /// Buffer-pool misses of the spill manager's pool.
    pub(crate) fn buffer_pool_misses(&self) -> u64 {
        self.spill.borrow().as_ref().map_or(0, |m| m.pool_misses())
    }

    /// Frames evicted from the spill manager's buffer pool.
    pub(crate) fn buffer_pool_evictions(&self) -> u64 {
        self.spill
            .borrow()
            .as_ref()
            .map_or(0, |m| m.pool_evictions())
    }

    /// Configured frame capacity of the spill manager's buffer pool (0
    /// until a spill manager exists — no pool has been sized yet).
    pub(crate) fn buffer_pool_capacity(&self) -> u64 {
        self.spill
            .borrow()
            .as_ref()
            .map_or(0, |m| m.pool_capacity())
    }

    /// Traces a sublink-memo hit — called from the memo seams, which see
    /// the hit; the governor only carries the hook.
    pub(crate) fn trace_memo_hit(&self, label: &'static str) {
        self.emit(|| TraceSignal::MemoHit {
            label: label.to_string(),
        });
    }

    /// Looks up a previously spilled compiled-memo entry.
    pub(crate) fn spill_fetch_result(&self, key: &[u8]) -> Option<Arc<Relation>> {
        self.spill.borrow().as_ref()?.memo_fetch(key)
    }

    /// Writes a memo entry that could not stay resident to the spill file,
    /// so future misses reload it instead of re-executing the sublink.
    /// A no-op when spilling is off; I/O failures silently fall back to the
    /// recompute-on-miss behaviour.
    pub(crate) fn spill_store_result(&self, key: &[u8], value: &Relation) {
        if let Some(mgr) = self.spill() {
            mgr.memo_store(key, value);
            self.note_rung(Degradation::SpilledToDisk);
            self.emit(|| TraceSignal::Spill {
                label: "memo-entry".to_string(),
                bytes: relation_bytes(value),
            });
        }
    }

    /// Registers a memo for byte accounting and budget-pressure reclaim.
    pub(crate) fn register_memo(&self, memo: Box<dyn MemoBytes>) {
        self.memos.borrow_mut().push(memo);
    }

    pub(crate) fn cancel_checks(&self) -> u64 {
        self.checks.get()
    }

    pub(crate) fn peak_bytes(&self) -> u64 {
        self.peak.get()
    }

    fn memo_bytes(&self) -> u64 {
        self.memos.borrow().iter().map(|m| m.current_bytes()).sum()
    }

    fn note_peak(&self) -> u64 {
        let used = self.transient.get() + self.memo_bytes();
        if used > self.peak.get() {
            self.peak.set(used);
        }
        used
    }

    /// A batch-boundary cancellation checkpoint: counts the check, gives an
    /// injected fault its chance to fire, then polls the token/deadline.
    /// A checkpoint that *fires* (returns `Err`) is traced — the trace
    /// records where a cancellation actually landed, not every poll.
    pub(crate) fn checkpoint(&self, operator: &str) -> Result<()> {
        let result = self.checkpoint_inner(operator);
        if result.is_err() {
            self.emit(|| TraceSignal::CancelFired {
                operator: operator.to_string(),
            });
        }
        result
    }

    fn checkpoint_inner(&self, operator: &str) -> Result<()> {
        let n = self.checks.get() + 1;
        self.checks.set(n);
        if let Some(fault) = self.fault.borrow().as_ref() {
            fault.observe(FaultSite::Checkpoint, operator)?;
        }
        if let Some(token) = self.cancel.borrow().as_ref() {
            // The first checkpoint after a token is installed probes the
            // clock (so an already-expired deadline cancels before any
            // work), then only every stride-th one does; the cancel flag
            // is read every time.
            match self.until_probe.get() {
                0 => {
                    self.until_probe.set(DEADLINE_STRIDE - 1);
                    token.check()?;
                }
                left => {
                    self.until_probe.set(left - 1);
                    token.check_flag()?;
                }
            }
        }
        Ok(())
    }

    /// A physical-operator invocation event (fault injection only — the
    /// `operators_evaluated` diagnostic counter is untouched).
    pub(crate) fn operator_event(&self, operator: &str) -> Result<()> {
        if let Some(fault) = self.fault.borrow().as_ref() {
            fault.observe(FaultSite::Operator, operator)?;
        }
        Ok(())
    }

    /// Reclaims every registered memo — writing entries to the spill file
    /// when a spill manager is live (or can be created), dropping them
    /// otherwise — and records the matching degradation rung.
    fn reclaim_memos(&self) {
        let spill = self.spill();
        let mut freed = 0;
        for memo in self.memos.borrow().iter() {
            freed += match &spill {
                Some(mgr) => memo.reclaim_to_spill(mgr),
                None => memo.reclaim(),
            };
        }
        if freed > 0 {
            self.note_rung(Degradation::ReclaimedMemos);
        }
    }

    /// Charges `bytes` of transient operator state against the budget.
    /// On pressure, reclaims the registered memos first (losing speed, not
    /// correctness) and fails with `ExecError::ResourceExhausted` only if
    /// that does not free enough.
    pub(crate) fn charge(&self, operator: &str, bytes: u64) -> Result<()> {
        self.charge_inner(operator, bytes, false).map(|_| ())
    }

    /// Spill-aware charge: like [`Governor::charge`], but when the charge
    /// cannot fit even after memo reclaim *and* spilling is available, the
    /// bytes are backed out and `Ok(false)` tells the operator to move its
    /// state to disk instead of failing. `Ok(false)` guarantees
    /// [`Governor::spill`] returns a live manager.
    pub(crate) fn try_charge(&self, operator: &str, bytes: u64) -> Result<bool> {
        self.charge_inner(operator, bytes, true)
    }

    fn charge_inner(&self, operator: &str, bytes: u64, spillable: bool) -> Result<bool> {
        self.transient.set(self.transient.get() + bytes);
        let used = self.note_peak();
        if let Some(budget) = self.budget.get() {
            if used > budget {
                self.reclaim_memos();
                if self.transient.get() + self.memo_bytes() > budget {
                    // Back the charge out either way: on `Ok(false)` the
                    // caller's state moves to disk instead of growing, and
                    // on error it never grew — leaking the bytes here would
                    // poison every later charge of the session.
                    self.credit(bytes);
                    if spillable && self.spill().is_some() {
                        self.note_rung(Degradation::SpilledToDisk);
                        return Ok(false);
                    }
                    self.note_rung(Degradation::Exhausted);
                    return Err(ExecError::ResourceExhausted {
                        operator: operator.to_string(),
                    });
                }
            }
        }
        Ok(true)
    }

    /// Returns transient bytes previously charged (operator state that was
    /// dropped or handed off as the operator's output).
    pub(crate) fn credit(&self, bytes: u64) {
        self.transient
            .set(self.transient.get().saturating_sub(bytes));
    }

    /// Returns a transient-state charge for `operator` when a budget is
    /// installed, `None` otherwise — so operators skip byte estimation
    /// entirely when nobody is accounting.
    pub(crate) fn transient(&self, operator: &'static str) -> Option<TransientCharge<'_>> {
        self.budget
            .get()
            .map(|_| TransientCharge::new(self, operator))
    }

    /// A memo-insertion event: gives an injected fault its chance to fire,
    /// then checks the budget for `cost` incoming bytes — reclaiming memos
    /// on pressure before giving up. Returns `Ok(true)` when the insert may
    /// proceed, `Ok(false)` when the entry alone cannot fit (the caller
    /// skips memoization — a pure speed loss).
    pub(crate) fn memo_insert_event(&self, operator: &str, cost: u64) -> Result<bool> {
        if let Some(fault) = self.fault.borrow().as_ref() {
            fault.observe(FaultSite::MemoInsert, operator)?;
        }
        self.emit(|| TraceSignal::MemoInsert {
            label: operator.to_string(),
            bytes: cost,
        });
        let budget = match self.budget.get() {
            Some(b) => b,
            None => {
                self.note_peak();
                return Ok(true);
            }
        };
        if self.note_peak() + cost > budget {
            self.reclaim_memos();
            if self.transient.get() + self.memo_bytes() + cost > budget {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// RAII charge for one operator's transient state: grows against the budget
/// during execution and credits everything back when the operator returns
/// (its buffers having been dropped or moved into the output relation).
pub(crate) struct TransientCharge<'g> {
    gov: &'g Governor,
    operator: &'static str,
    charged: u64,
}

impl<'g> TransientCharge<'g> {
    pub(crate) fn new(gov: &'g Governor, operator: &'static str) -> TransientCharge<'g> {
        TransientCharge {
            gov,
            operator,
            charged: 0,
        }
    }

    /// Charges `bytes` more of state growth.
    pub(crate) fn grow(&mut self, bytes: u64) -> Result<()> {
        self.gov.charge(self.operator, bytes)?;
        self.charged += bytes;
        Ok(())
    }

    /// Spill-aware growth: `Ok(true)` records the bytes like
    /// [`TransientCharge::grow`]; `Ok(false)` means the state cannot stay
    /// in memory and the operator should spill it (a live spill manager is
    /// guaranteed); the error is the no-spill exhaustion.
    pub(crate) fn try_grow(&mut self, bytes: u64) -> Result<bool> {
        if self.gov.try_charge(self.operator, bytes)? {
            self.charged += bytes;
            return Ok(true);
        }
        Ok(false)
    }

    /// Credits everything recorded so far — called when the operator's
    /// in-memory state has just moved to disk (or been flushed to its
    /// output), so the budget reflects the now-empty buffers immediately
    /// instead of at operator exit.
    pub(crate) fn release(&mut self) {
        self.gov.credit(self.charged);
        self.charged = 0;
    }
}

impl Drop for TransientCharge<'_> {
    fn drop(&mut self) {
        self.gov.credit(self.charged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_trips_once_and_keeps_its_reason() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert!(token.check().is_ok());
        token.cancel("operator asked");
        assert!(token.is_cancelled());
        match token.check() {
            Err(ExecError::Cancelled { reason }) => assert_eq!(reason, "operator asked"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // A second cancel does not overwrite the first reason.
        token.cancel("later");
        match token.check() {
            Err(ExecError::Cancelled { reason }) => assert_eq!(reason, "operator asked"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_cancels_without_an_explicit_cancel() {
        let token = CancelToken::with_deadline(Duration::from_secs(0));
        assert!(token.is_cancelled());
        assert!(matches!(token.check(), Err(ExecError::Cancelled { .. })));
    }

    #[test]
    fn fault_plan_fires_exactly_at_the_nth_event_of_its_site() {
        let plan = FaultPlan::new(FaultKind::Cancel, FaultSite::Checkpoint, 3);
        // Events at other sites never count.
        assert!(plan.observe(FaultSite::Operator, "join").is_ok());
        assert!(plan.observe(FaultSite::Checkpoint, "scan").is_ok());
        assert!(plan.observe(FaultSite::Checkpoint, "scan").is_ok());
        assert!(!plan.fired());
        assert!(matches!(
            plan.observe(FaultSite::Checkpoint, "scan"),
            Err(ExecError::Cancelled { .. })
        ));
        assert!(plan.fired());
        assert_eq!(plan.events_seen(), 3);
    }

    #[test]
    fn governor_reclaims_memos_before_failing_a_charge() {
        use std::rc::Rc;
        struct FakeMemo {
            bytes: Cell<u64>,
        }
        impl MemoBytes for Rc<FakeMemo> {
            fn current_bytes(&self) -> u64 {
                self.bytes.get()
            }
            fn reclaim(&self) -> u64 {
                let freed = self.bytes.get();
                self.bytes.set(0);
                freed
            }
        }
        let gov = Governor::new();
        gov.set_budget(Some(1000));
        let memo = Rc::new(FakeMemo {
            bytes: Cell::new(900),
        });
        gov.register_memo(Box::new(Rc::clone(&memo)));
        // 200 transient + 900 memo > 1000 → the memo is evicted, after
        // which 200 fits comfortably.
        assert!(gov.charge("join", 200).is_ok());
        assert_eq!(memo.bytes.get(), 0, "memo reclaimed under pressure");
        assert!(gov.peak_bytes() >= 1100, "peak saw the pressure point");
        // A charge that cannot fit even after reclaim names the operator.
        match gov.charge("join", 2000) {
            Err(ExecError::ResourceExhausted { operator }) => assert_eq!(operator, "join"),
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
    }

    #[test]
    fn transient_charge_credits_back_on_drop() {
        let gov = Governor::new();
        {
            let mut charge = TransientCharge::new(&gov, "sort");
            charge.grow(512).unwrap();
            assert_eq!(gov.transient.get(), 512);
        }
        assert_eq!(gov.transient.get(), 0);
        assert_eq!(gov.peak_bytes(), 512);
    }

    #[test]
    fn failed_charge_backs_its_bytes_out() {
        let gov = Governor::new();
        gov.set_budget(Some(1000));
        assert!(gov.charge("join", 400).is_ok());
        assert!(matches!(
            gov.charge("join", 5000),
            Err(ExecError::ResourceExhausted { .. })
        ));
        // The rejected charge must not stay accounted: a 500-byte charge
        // still fits under the 1000-byte budget.
        assert_eq!(gov.transient.get(), 400);
        assert!(gov.charge("join", 500).is_ok());
        assert_eq!(gov.degradation(), Degradation::Exhausted);
    }

    #[test]
    fn try_grow_reports_spill_and_release_credits_immediately() {
        let gov = Governor::new();
        gov.set_budget(Some(1000));
        let dir = std::env::temp_dir();
        gov.set_spill_enabled(true);
        gov.set_spill_dir(Some(dir));
        let mut charge = TransientCharge::new(&gov, "sort");
        assert!(charge.try_grow(600).unwrap(), "fits under the budget");
        // Over budget with spilling on: the growth is refused (not an
        // error), the refused bytes are backed out, and a manager is live.
        assert!(!charge.try_grow(600).unwrap());
        assert_eq!(gov.transient.get(), 600);
        assert!(gov.spill().is_some());
        assert_eq!(gov.degradation(), Degradation::SpilledToDisk);
        // The operator moved its state to disk: release frees the budget
        // now, and the charge's drop has nothing left to credit.
        charge.release();
        assert_eq!(gov.transient.get(), 0);
        assert!(charge.try_grow(600).unwrap());
        drop(charge);
        assert_eq!(gov.transient.get(), 0);
    }

    #[test]
    fn try_grow_without_spill_matches_plain_charge() {
        let gov = Governor::new();
        gov.set_budget(Some(100));
        let mut charge = TransientCharge::new(&gov, "aggregate");
        match charge.try_grow(500) {
            Err(ExecError::ResourceExhausted { operator }) => assert_eq!(operator, "aggregate"),
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
        assert_eq!(gov.degradation(), Degradation::Exhausted);
    }

    #[test]
    fn tuple_bytes_counts_spare_vector_and_string_capacity() {
        let value_size = std::mem::size_of::<Value>() as u64;
        // Spare Vec capacity is charged like live slots.
        let mut values = Vec::with_capacity(10);
        values.push(Value::Int(1));
        values.push(Value::Int(2));
        let roomy = Tuple::new(values);
        let tight = Tuple::new(vec![Value::Int(1), Value::Int(2)]);
        assert!(roomy.capacity() >= 10);
        assert_eq!(
            tuple_bytes(&roomy) - tuple_bytes(&tight),
            (roomy.capacity() - tight.capacity()) as u64 * value_size
        );
        // Spare String capacity is charged, not just the live length.
        let mut s = String::with_capacity(100);
        s.push_str("ab");
        assert_eq!(value_bytes(&Value::Str(s)), value_size + 100);
    }
}
