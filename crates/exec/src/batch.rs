//! Batch-at-a-time execution: the tuple-block representation the physical
//! operators and the vectorized expression evaluator share, plus the
//! columnar [`ColumnBlock`] view the typed kernels run over.
//!
//! A [`Batch`] is a view over up to [`BATCH_ROWS`] consecutive tuples of a
//! materialised input (or of an operator-owned candidate buffer, e.g. the
//! joined rows a join is about to filter) together with an optional
//! **selection vector**: the indices of the rows that are still *live*.
//! Filters shrink the selection instead of copying survivors, and every
//! evaluator produces exactly one value per live row, in selection order —
//! so one expression is dispatched once per *batch* instead of once per
//! *tuple* (see `crate::physical`).
//!
//! On top of the row view sits the columnar layer: a batch may carry a
//! [`ColumnBlock`], a per-attribute cache of typed
//! [`ColumnVec`] lanes transposed lazily from the
//! tuple block on first access. The typed kernels of `crate::kernels` then
//! run over contiguous primitive slices (`i64`/`f64`/`i32`/`bool`/`String`
//! plus a packed validity bitmap) instead of matching a `Value` enum per
//! row; columns that mix representations fall back to a `Value`-vector
//! lane with unchanged row-at-a-time semantics. Rows are only
//! re-materialised at pipeline breakers, the sublink memo seam (which
//! still exchanges `Arc<Relation>`), and the `Rows` output boundary.
//!
//! ## Selection-vector invariants
//!
//! Every selection vector handled by this crate obeys, and may rely on:
//!
//! 1. **Ascending and duplicate-free** — indices are strictly increasing,
//!    so iterating a batch visits rows in their input order (operator
//!    output order is part of the engine's semantics: a stable sort above
//!    must see both drivers produce identical tie order).
//! 2. **In bounds** — every index is `< rows.len()`.
//! 3. **Alignment** — an evaluator called on a batch with `n` live rows
//!    appends exactly `n` values, the `i`-th belonging to the `i`-th live
//!    row.
//! 4. **Empty means untouched** — no live rows ⇒ no expression is
//!    evaluated, so a deferred error (unresolved column, unbound
//!    parameter) behind an empty selection is never raised, exactly like
//!    the per-tuple evaluator that never reached those rows. The typed
//!    kernels inherit this: an empty batch short-circuits before any lane
//!    is touched.
//!
//! ## Column-block invariants
//!
//! 1. **Validity ⇔ `Value::Null`** — slot `i` of a typed lane is invalid
//!    exactly when row `i`'s value is `Value::Null`; invalid payloads are
//!    never observable.
//! 2. **Lanes are dense** — a cached lane always covers *all* rows of the
//!    block, in row order; a selection is applied by gathering from the
//!    cached lane (or by classifying only the live rows when no lane is
//!    cached). Kernel outputs are in selection order, per invariant 3
//!    above.
//! 3. **Representation-preserving** — a lane never coerces (`Date(3)`
//!    stays distinct from `Int(3)`); a column mixing variants demotes to
//!    the `Values` fallback lane, which the fallback-row counters report.
//!
//! Pipeline breakers (aggregation, sorting, set operations, the join build
//! side) consume batches at their input boundary and materialise; the
//! streamable spine (`scan → select → project → limit`) passes batches
//! through — eagerly inside one operator invocation on the materialising
//! path, lazily between pulls in the `crate::cursor` streaming path.

use std::cell::{Cell, OnceCell};

use perm_storage::{ColumnVec, Tuple};

/// Target number of rows per batch. Large enough to amortise one dispatch
/// per expression per batch down to noise, small enough that a batch of
/// wide provenance tuples stays cache-resident.
pub const BATCH_ROWS: usize = 1024;

/// A lazily transposed columnar view of one tuple block: one
/// [`ColumnVec`] lane per attribute, each materialised at most once on
/// first access and shared by every expression evaluated over the block
/// (all the predicates and projections of one operator invocation, and —
/// through [`Batch::narrow`] — their sub-selections).
#[derive(Debug, Default)]
pub struct ColumnBlock {
    lanes: Vec<OnceCell<ColumnVec>>,
    used: Cell<bool>,
}

impl ColumnBlock {
    /// An empty block with one (unmaterialised) lane per attribute.
    pub fn new(arity: usize) -> ColumnBlock {
        ColumnBlock {
            lanes: (0..arity).map(|_| OnceCell::new()).collect(),
            used: Cell::new(false),
        }
    }

    /// The lane for attribute `index`, transposing it from `rows` on first
    /// access. `rows` must be the same tuple block on every call.
    pub fn lane(&self, rows: &[Tuple], index: usize) -> &ColumnVec {
        self.lanes[index].get_or_init(|| {
            let first = rows
                .iter()
                .map(|t| t.get(index))
                .find(|v| !v.is_null())
                .cloned()
                .unwrap_or(perm_storage::Value::Null);
            let mut col = ColumnVec::typed_for(&first, rows.len());
            for t in rows {
                col.push_value(t.get(index).clone());
            }
            col
        })
    }

    /// The lane for attribute `index` if it has already been materialised.
    pub fn cached(&self, index: usize) -> Option<&ColumnVec> {
        self.lanes.get(index).and_then(|cell| cell.get())
    }

    /// Records that the block served a columnar access; `true` on the
    /// first call only (the executor's `columnar_blocks` counter counts
    /// blocks touched, not accesses).
    pub fn note_first_use(&self) -> bool {
        !self.used.replace(true)
    }
}

/// A block of tuples with an optional selection vector and an optional
/// columnar view. `sel: None` means all rows are live (the dense fast
/// path — no selection allocation); `cols: None` means expressions run
/// row-major.
#[derive(Debug, Clone, Copy)]
pub struct Batch<'a> {
    rows: &'a [Tuple],
    sel: Option<&'a [usize]>,
    cols: Option<&'a ColumnBlock>,
}

impl<'a> Batch<'a> {
    /// A batch over `rows` with every row live and no columnar view.
    pub fn dense(rows: &'a [Tuple]) -> Batch<'a> {
        Batch {
            rows,
            sel: None,
            cols: None,
        }
    }

    /// A dense batch backed by a [`ColumnBlock`] over the same rows, so
    /// every expression evaluated on it shares one lazily transposed
    /// columnar view.
    pub fn dense_with_block(rows: &'a [Tuple], cols: &'a ColumnBlock) -> Batch<'a> {
        Batch {
            rows,
            sel: None,
            cols: Some(cols),
        }
    }

    /// A batch restricted to the rows named by `sel` (must satisfy the
    /// module-level selection-vector invariants).
    pub fn with_selection(rows: &'a [Tuple], sel: &'a [usize]) -> Batch<'a> {
        debug_assert!(
            sel.windows(2).all(|w| w[0] < w[1]),
            "selection not ascending"
        );
        debug_assert!(
            sel.iter().all(|&i| i < rows.len()),
            "selection out of bounds"
        );
        Batch {
            rows,
            sel: Some(sel),
            cols: None,
        }
    }

    /// This batch narrowed to the rows named by `sel` (indices into
    /// [`Batch::rows`], same invariants as [`Batch::with_selection`]),
    /// keeping the columnar view so sub-selections — CASE arms, the
    /// undecided rows of AND/OR — still gather from cached lanes.
    pub fn narrow<'b>(&self, sel: &'b [usize]) -> Batch<'b>
    where
        'a: 'b,
    {
        debug_assert!(
            sel.windows(2).all(|w| w[0] < w[1]),
            "selection not ascending"
        );
        debug_assert!(
            sel.iter().all(|&i| i < self.rows.len()),
            "selection out of bounds"
        );
        Batch {
            rows: self.rows,
            sel: Some(sel),
            cols: self.cols,
        }
    }

    /// The underlying row block (live and dead rows alike).
    pub fn rows(&self) -> &'a [Tuple] {
        self.rows
    }

    /// The selection vector, if the batch is not dense.
    pub fn selection(&self) -> Option<&'a [usize]> {
        self.sel
    }

    /// The shared columnar view, if the batch carries one.
    pub fn columns(&self) -> Option<&'a ColumnBlock> {
        self.cols
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        match self.sel {
            Some(sel) => sel.len(),
            None => self.rows.len(),
        }
    }

    /// `true` when no rows are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th live row (0-based over the selection).
    pub fn row(&self, i: usize) -> &'a Tuple {
        match self.sel {
            Some(sel) => &self.rows[sel[i]],
            None => &self.rows[i],
        }
    }

    /// Iterates over the live rows in selection order.
    pub fn iter(&self) -> impl Iterator<Item = &'a Tuple> + '_ {
        (0..self.len()).map(move |i| self.row(i))
    }

    /// The index (into [`Batch::rows`]) of the `i`-th live row.
    pub fn row_index(&self, i: usize) -> usize {
        match self.sel {
            Some(sel) => sel[i],
            None => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_storage::Value;

    fn rows(n: i64) -> Vec<Tuple> {
        (0..n).map(|i| Tuple::new(vec![Value::Int(i)])).collect()
    }

    #[test]
    fn dense_batches_expose_every_row() {
        let r = rows(4);
        let b = Batch::dense(&r);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        assert_eq!(b.row(2).get(0), &Value::Int(2));
        assert_eq!(b.row_index(2), 2);
        let collected: Vec<i64> = b
            .iter()
            .map(|t| match t.get(0) {
                Value::Int(i) => *i,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(collected, vec![0, 1, 2, 3]);
    }

    #[test]
    fn selection_restricts_and_preserves_order() {
        let r = rows(5);
        let sel = [1usize, 3, 4];
        let b = Batch::with_selection(&r, &sel);
        assert_eq!(b.len(), 3);
        assert_eq!(b.row(0).get(0), &Value::Int(1));
        assert_eq!(b.row_index(1), 3);
        let empty: [usize; 0] = [];
        assert!(Batch::with_selection(&r, &empty).is_empty());
    }

    #[test]
    fn column_block_lanes_are_lazy_shared_and_typed() {
        let r: Vec<Tuple> = (0..5)
            .map(|i| {
                Tuple::new(vec![
                    if i % 2 == 0 {
                        Value::Int(i)
                    } else {
                        Value::Null
                    },
                    Value::str(format!("s{i}")),
                ])
            })
            .collect();
        let block = ColumnBlock::new(2);
        assert!(block.cached(0).is_none());
        assert!(block.note_first_use());
        assert!(!block.note_first_use(), "only the first use reports");

        let lane = block.lane(&r, 0);
        assert!(lane.is_typed());
        assert_eq!(lane.value_at(0), Value::Int(0));
        assert_eq!(lane.value_at(1), Value::Null);
        // Second access returns the same materialised lane.
        let again = block.cached(0).expect("lane cached after first access");
        assert!(std::ptr::eq(lane, again));
    }

    #[test]
    fn narrow_keeps_rows_and_columns() {
        let r = rows(6);
        let block = ColumnBlock::new(1);
        let b = Batch::dense_with_block(&r, &block);
        assert!(b.columns().is_some());
        let sel = [0usize, 2, 5];
        let n = b.narrow(&sel);
        assert_eq!(n.len(), 3);
        assert_eq!(n.row(2).get(0), &Value::Int(5));
        assert!(
            n.columns().is_some(),
            "narrowing must keep the columnar view"
        );
        // with_selection (the row-major constructor) deliberately drops it.
        assert!(Batch::with_selection(&r, &sel).columns().is_none());
    }
}
