//! Batch-at-a-time execution: the tuple-block representation the physical
//! operators and the vectorized expression evaluator share.
//!
//! A [`Batch`] is a view over up to [`BATCH_ROWS`] consecutive tuples of a
//! materialised input (or of an operator-owned candidate buffer, e.g. the
//! joined rows a join is about to filter) together with an optional
//! **selection vector**: the indices of the rows that are still *live*.
//! Filters shrink the selection instead of copying survivors, and every
//! evaluator produces exactly one value per live row, in selection order —
//! so one expression is dispatched once per *batch* instead of once per
//! *tuple*, which is the whole point of the layer (see `crate::physical`).
//!
//! ## Selection-vector invariants
//!
//! Every selection vector handled by this crate obeys, and may rely on:
//!
//! 1. **Ascending and duplicate-free** — indices are strictly increasing,
//!    so iterating a batch visits rows in their input order (operator
//!    output order is part of the engine's semantics: a stable sort above
//!    must see both drivers produce identical tie order).
//! 2. **In bounds** — every index is `< rows.len()`.
//! 3. **Alignment** — an evaluator called on a batch with `n` live rows
//!    appends exactly `n` values, the `i`-th belonging to the `i`-th live
//!    row.
//! 4. **Empty means untouched** — no live rows ⇒ no expression is
//!    evaluated, so a deferred error (unresolved column, unbound
//!    parameter) behind an empty selection is never raised, exactly like
//!    the per-tuple evaluator that never reached those rows.
//!
//! Pipeline breakers (aggregation, sorting, set operations, the join build
//! side) consume batches at their input boundary and materialise; the
//! streamable spine (`scan → select → project → limit`) passes batches
//! through — eagerly inside one operator invocation on the materialising
//! path, lazily between pulls in the `crate::cursor` streaming path.

use perm_storage::Tuple;

/// Target number of rows per batch. Large enough to amortise one dispatch
/// per expression per batch down to noise, small enough that a batch of
/// wide provenance tuples stays cache-resident.
pub const BATCH_ROWS: usize = 1024;

/// A block of tuples with an optional selection vector. `None` means all
/// rows are live (the dense fast path — no selection allocation).
#[derive(Debug, Clone, Copy)]
pub struct Batch<'a> {
    rows: &'a [Tuple],
    sel: Option<&'a [usize]>,
}

impl<'a> Batch<'a> {
    /// A batch over `rows` with every row live.
    pub fn dense(rows: &'a [Tuple]) -> Batch<'a> {
        Batch { rows, sel: None }
    }

    /// A batch restricted to the rows named by `sel` (must satisfy the
    /// module-level selection-vector invariants).
    pub fn with_selection(rows: &'a [Tuple], sel: &'a [usize]) -> Batch<'a> {
        debug_assert!(
            sel.windows(2).all(|w| w[0] < w[1]),
            "selection not ascending"
        );
        debug_assert!(
            sel.iter().all(|&i| i < rows.len()),
            "selection out of bounds"
        );
        Batch {
            rows,
            sel: Some(sel),
        }
    }

    /// The underlying row block (live and dead rows alike).
    pub fn rows(&self) -> &'a [Tuple] {
        self.rows
    }

    /// The selection vector, if the batch is not dense.
    pub fn selection(&self) -> Option<&'a [usize]> {
        self.sel
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        match self.sel {
            Some(sel) => sel.len(),
            None => self.rows.len(),
        }
    }

    /// `true` when no rows are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th live row (0-based over the selection).
    pub fn row(&self, i: usize) -> &'a Tuple {
        match self.sel {
            Some(sel) => &self.rows[sel[i]],
            None => &self.rows[i],
        }
    }

    /// Iterates over the live rows in selection order.
    pub fn iter(&self) -> impl Iterator<Item = &'a Tuple> + '_ {
        (0..self.len()).map(move |i| self.row(i))
    }

    /// The index (into [`Batch::rows`]) of the `i`-th live row.
    pub fn row_index(&self, i: usize) -> usize {
        match self.sel {
            Some(sel) => sel[i],
            None => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_storage::Value;

    fn rows(n: i64) -> Vec<Tuple> {
        (0..n).map(|i| Tuple::new(vec![Value::Int(i)])).collect()
    }

    #[test]
    fn dense_batches_expose_every_row() {
        let r = rows(4);
        let b = Batch::dense(&r);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        assert_eq!(b.row(2).get(0), &Value::Int(2));
        assert_eq!(b.row_index(2), 2);
        let collected: Vec<i64> = b
            .iter()
            .map(|t| match t.get(0) {
                Value::Int(i) => *i,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(collected, vec![0, 1, 2, 3]);
    }

    #[test]
    fn selection_restricts_and_preserves_order() {
        let r = rows(5);
        let sel = [1usize, 3, 4];
        let b = Batch::with_selection(&r, &sel);
        assert_eq!(b.len(), 3);
        assert_eq!(b.row(0).get(0), &Value::Int(1));
        assert_eq!(b.row_index(1), 3);
        let empty: [usize; 0] = [];
        assert!(Batch::with_selection(&r, &empty).is_empty());
    }
}
