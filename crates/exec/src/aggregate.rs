//! Aggregate function accumulators used by the `Aggregate` operator.
//!
//! Besides incremental [`Accumulator::update`], accumulators support
//! [`Accumulator::merge`] (combining two partial states over disjoint input
//! slices) and an exact binary state codec ([`Accumulator::encode_state`] /
//! [`Accumulator::decode_state`]) — together the substrate of the
//! partitioned out-of-core aggregation in `crate::physical`, which flushes
//! partial group states to spill files under memory pressure and merges
//! them per partition afterwards.

use crate::Result;
use perm_algebra::AggFunc;
use perm_storage::{decode_row, encode_row, StorageError, Value};

/// An incremental accumulator for one aggregate function.
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggFunc,
    distinct: bool,
    /// Values seen so far when `distinct` is set (kept to drop duplicates).
    seen: Vec<Value>,
    count: i64,
    sum: f64,
    /// `true` when every summed input so far was an integer, so `sum`/`min`/
    /// `max` can be reported as integers.
    integral: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl Accumulator {
    /// Creates an accumulator for the given function.
    pub fn new(func: AggFunc, distinct: bool) -> Accumulator {
        Accumulator {
            func,
            distinct,
            seen: Vec::new(),
            count: 0,
            sum: 0.0,
            integral: true,
            min: None,
            max: None,
        }
    }

    /// Feeds one input value. For `count(*)` the value is ignored except for
    /// counting; for all other functions SQL semantics skip NULLs.
    pub fn update(&mut self, value: &Value) {
        if self.func == AggFunc::CountStar {
            self.count += 1;
            return;
        }
        if value.is_null() {
            return;
        }
        if self.distinct {
            if self.seen.iter().any(|v| v.null_safe_eq(value)) {
                return;
            }
            self.seen.push(value.clone());
        }
        self.count += 1;
        if let Some(n) = value.as_f64() {
            self.sum += n;
            if !matches!(value, Value::Int(_)) {
                self.integral = false;
            }
        } else {
            self.integral = false;
        }
        let replace_min = match &self.min {
            None => true,
            Some(m) => value.sql_cmp(m).map(|o| o.is_lt()).unwrap_or(false),
        };
        if replace_min {
            self.min = Some(value.clone());
        }
        let replace_max = match &self.max {
            None => true,
            Some(m) => value.sql_cmp(m).map(|o| o.is_gt()).unwrap_or(false),
        };
        if replace_max {
            self.max = Some(value.clone());
        }
    }

    /// Folds another accumulator's partial state (over a disjoint slice of
    /// the same group's input) into this one. Merging is order-insensitive
    /// for every function: counts and sums add, min/max compare, and a
    /// DISTINCT state replays the other side's `seen` values through
    /// [`Accumulator::update`], whose dedup check makes the union exact.
    pub fn merge(&mut self, other: &Accumulator) {
        debug_assert_eq!(self.func, other.func);
        debug_assert_eq!(self.distinct, other.distinct);
        if self.func == AggFunc::CountStar {
            self.count += other.count;
            return;
        }
        if self.distinct {
            for v in &other.seen {
                self.update(v);
            }
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.integral &= other.integral;
        if let Some(v) = &other.min {
            let replace = match &self.min {
                None => true,
                Some(m) => v.sql_cmp(m).map(|o| o.is_lt()).unwrap_or(false),
            };
            if replace {
                self.min = Some(v.clone());
            }
        }
        if let Some(v) = &other.max {
            let replace = match &self.max {
                None => true,
                Some(m) => v.sql_cmp(m).map(|o| o.is_gt()).unwrap_or(false),
            };
            if replace {
                self.max = Some(v.clone());
            }
        }
    }

    /// Appends this accumulator's exact binary state to `buf` (the spill
    /// codec; values go through the bit-exact `perm_storage::page` codec).
    pub fn encode_state(&self, buf: &mut Vec<u8>) {
        buf.push(func_tag(self.func));
        buf.push(self.distinct as u8);
        buf.push(self.integral as u8);
        buf.extend_from_slice(&self.count.to_le_bytes());
        buf.extend_from_slice(&self.sum.to_bits().to_le_bytes());
        encode_row(&self.seen, buf);
        // `Option<Value>` as a 0- or 1-element row.
        encode_row(self.min.as_slice(), buf);
        encode_row(self.max.as_slice(), buf);
    }

    /// Decodes a state written by [`Accumulator::encode_state`], advancing
    /// `pos`.
    pub fn decode_state(record: &[u8], pos: &mut usize) -> Result<Accumulator> {
        let corrupt = || StorageError::Corrupt("truncated accumulator state".into());
        let header = record.get(*pos..*pos + 3).ok_or_else(corrupt)?;
        let func = func_from_tag(header[0])
            .ok_or_else(|| StorageError::Corrupt(format!("bad aggregate tag {}", header[0])))?;
        let (distinct, integral) = (header[1] != 0, header[2] != 0);
        *pos += 3;
        let count = i64::from_le_bytes(
            record
                .get(*pos..*pos + 8)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(corrupt)?,
        );
        *pos += 8;
        let sum = f64::from_bits(u64::from_le_bytes(
            record
                .get(*pos..*pos + 8)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(corrupt)?,
        ));
        *pos += 8;
        let seen = decode_row(record, pos)?;
        let min = decode_row(record, pos)?.pop();
        let max = decode_row(record, pos)?.pop();
        Ok(Accumulator {
            func,
            distinct,
            seen,
            count,
            sum,
            integral,
            min,
            max,
        })
    }

    /// Produces the aggregate result. Empty inputs yield NULL for every
    /// function except the counts, which yield `0` (SQL semantics).
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count | AggFunc::CountStar => Value::Int(self.count),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.integral {
                    Value::Int(self.sum as i64)
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// Stable one-byte tags of the state codec — part of the spill-file layout,
/// never renumbered.
fn func_tag(func: AggFunc) -> u8 {
    match func {
        AggFunc::Count => 0,
        AggFunc::CountStar => 1,
        AggFunc::Sum => 2,
        AggFunc::Avg => 3,
        AggFunc::Min => 4,
        AggFunc::Max => 5,
    }
}

fn func_from_tag(tag: u8) -> Option<AggFunc> {
    Some(match tag {
        0 => AggFunc::Count,
        1 => AggFunc::CountStar,
        2 => AggFunc::Sum,
        3 => AggFunc::Avg,
        4 => AggFunc::Min,
        5 => AggFunc::Max,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, distinct: bool, values: &[Value]) -> Value {
        let mut acc = Accumulator::new(func, distinct);
        for v in values {
            acc.update(v);
        }
        acc.finish()
    }

    #[test]
    fn sum_and_avg_skip_nulls() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(3)];
        assert_eq!(run(AggFunc::Sum, false, &vals), Value::Int(4));
        assert_eq!(run(AggFunc::Avg, false, &vals), Value::Float(2.0));
        assert_eq!(run(AggFunc::Count, false, &vals), Value::Int(2));
        assert_eq!(run(AggFunc::CountStar, false, &vals), Value::Int(3));
    }

    #[test]
    fn empty_input_yields_null_or_zero() {
        assert_eq!(run(AggFunc::Sum, false, &[]), Value::Null);
        assert_eq!(run(AggFunc::Avg, false, &[]), Value::Null);
        assert_eq!(run(AggFunc::Min, false, &[]), Value::Null);
        assert_eq!(run(AggFunc::Count, false, &[]), Value::Int(0));
        assert_eq!(run(AggFunc::CountStar, false, &[]), Value::Int(0));
    }

    #[test]
    fn min_max_over_mixed_numeric() {
        let vals = vec![Value::Int(5), Value::Float(2.5), Value::Int(9)];
        assert_eq!(run(AggFunc::Min, false, &vals), Value::Float(2.5));
        assert_eq!(run(AggFunc::Max, false, &vals), Value::Int(9));
    }

    #[test]
    fn min_max_over_strings() {
        let vals = vec![Value::str("pear"), Value::str("apple"), Value::str("fig")];
        assert_eq!(run(AggFunc::Min, false, &vals), Value::str("apple"));
        assert_eq!(run(AggFunc::Max, false, &vals), Value::str("pear"));
    }

    #[test]
    fn distinct_drops_duplicates() {
        let vals = vec![Value::Int(2), Value::Int(2), Value::Int(3)];
        assert_eq!(run(AggFunc::Count, true, &vals), Value::Int(2));
        assert_eq!(run(AggFunc::Sum, true, &vals), Value::Int(5));
    }

    #[test]
    fn sum_switches_to_float_when_needed() {
        let vals = vec![Value::Int(1), Value::Float(0.5)];
        assert_eq!(run(AggFunc::Sum, false, &vals), Value::Float(1.5));
    }

    /// Splitting any input across two accumulators and merging must equal
    /// feeding one accumulator everything.
    #[test]
    fn merge_equals_single_pass_for_every_function_and_split() {
        let funcs = [
            AggFunc::Count,
            AggFunc::CountStar,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
        ];
        let vals = vec![
            Value::Int(5),
            Value::Null,
            Value::Float(2.5),
            Value::Int(5),
            Value::Int(-3),
            Value::Float(2.5),
        ];
        for func in funcs {
            for distinct in [false, true] {
                if distinct && func == AggFunc::CountStar {
                    continue; // COUNT(*) never carries DISTINCT
                }
                for split in 0..=vals.len() {
                    let mut whole = Accumulator::new(func, distinct);
                    for v in &vals {
                        whole.update(v);
                    }
                    let mut a = Accumulator::new(func, distinct);
                    let mut b = Accumulator::new(func, distinct);
                    for v in &vals[..split] {
                        a.update(v);
                    }
                    for v in &vals[split..] {
                        b.update(v);
                    }
                    a.merge(&b);
                    assert_eq!(
                        a.finish(),
                        whole.finish(),
                        "{func:?} distinct={distinct} split={split}"
                    );
                }
            }
        }
    }

    #[test]
    fn state_codec_round_trips_exactly() {
        let mut acc = Accumulator::new(AggFunc::Sum, true);
        for v in [
            Value::Int(7),
            Value::Float(f64::NAN),
            Value::Str("x".into()),
            Value::Int(7),
        ] {
            acc.update(&v);
        }
        let mut buf = Vec::new();
        acc.encode_state(&mut buf);
        // A second state in the same buffer: `pos` must advance exactly.
        let empty = Accumulator::new(AggFunc::Min, false);
        empty.encode_state(&mut buf);
        let mut pos = 0;
        let back = Accumulator::decode_state(&buf, &mut pos).unwrap();
        assert_eq!(back.func, AggFunc::Sum);
        assert!(back.distinct);
        assert_eq!(back.count, acc.count);
        assert_eq!(back.sum.to_bits(), acc.sum.to_bits());
        assert_eq!(back.seen.len(), acc.seen.len());
        let back2 = Accumulator::decode_state(&buf, &mut pos).unwrap();
        assert_eq!(back2.func, AggFunc::Min);
        assert_eq!(back2.min, None);
        assert_eq!(pos, buf.len());
        assert!(Accumulator::decode_state(&buf[..5], &mut 0).is_err());
    }
}
