//! Aggregate function accumulators used by the `Aggregate` operator.

use perm_algebra::AggFunc;
use perm_storage::Value;

/// An incremental accumulator for one aggregate function.
#[derive(Debug, Clone)]
pub struct Accumulator {
    func: AggFunc,
    distinct: bool,
    /// Values seen so far when `distinct` is set (kept to drop duplicates).
    seen: Vec<Value>,
    count: i64,
    sum: f64,
    /// `true` when every summed input so far was an integer, so `sum`/`min`/
    /// `max` can be reported as integers.
    integral: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl Accumulator {
    /// Creates an accumulator for the given function.
    pub fn new(func: AggFunc, distinct: bool) -> Accumulator {
        Accumulator {
            func,
            distinct,
            seen: Vec::new(),
            count: 0,
            sum: 0.0,
            integral: true,
            min: None,
            max: None,
        }
    }

    /// Feeds one input value. For `count(*)` the value is ignored except for
    /// counting; for all other functions SQL semantics skip NULLs.
    pub fn update(&mut self, value: &Value) {
        if self.func == AggFunc::CountStar {
            self.count += 1;
            return;
        }
        if value.is_null() {
            return;
        }
        if self.distinct {
            if self.seen.iter().any(|v| v.null_safe_eq(value)) {
                return;
            }
            self.seen.push(value.clone());
        }
        self.count += 1;
        if let Some(n) = value.as_f64() {
            self.sum += n;
            if !matches!(value, Value::Int(_)) {
                self.integral = false;
            }
        } else {
            self.integral = false;
        }
        let replace_min = match &self.min {
            None => true,
            Some(m) => value.sql_cmp(m).map(|o| o.is_lt()).unwrap_or(false),
        };
        if replace_min {
            self.min = Some(value.clone());
        }
        let replace_max = match &self.max {
            None => true,
            Some(m) => value.sql_cmp(m).map(|o| o.is_gt()).unwrap_or(false),
        };
        if replace_max {
            self.max = Some(value.clone());
        }
    }

    /// Produces the aggregate result. Empty inputs yield NULL for every
    /// function except the counts, which yield `0` (SQL semantics).
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count | AggFunc::CountStar => Value::Int(self.count),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.integral {
                    Value::Int(self.sum as i64)
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, distinct: bool, values: &[Value]) -> Value {
        let mut acc = Accumulator::new(func, distinct);
        for v in values {
            acc.update(v);
        }
        acc.finish()
    }

    #[test]
    fn sum_and_avg_skip_nulls() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(3)];
        assert_eq!(run(AggFunc::Sum, false, &vals), Value::Int(4));
        assert_eq!(run(AggFunc::Avg, false, &vals), Value::Float(2.0));
        assert_eq!(run(AggFunc::Count, false, &vals), Value::Int(2));
        assert_eq!(run(AggFunc::CountStar, false, &vals), Value::Int(3));
    }

    #[test]
    fn empty_input_yields_null_or_zero() {
        assert_eq!(run(AggFunc::Sum, false, &[]), Value::Null);
        assert_eq!(run(AggFunc::Avg, false, &[]), Value::Null);
        assert_eq!(run(AggFunc::Min, false, &[]), Value::Null);
        assert_eq!(run(AggFunc::Count, false, &[]), Value::Int(0));
        assert_eq!(run(AggFunc::CountStar, false, &[]), Value::Int(0));
    }

    #[test]
    fn min_max_over_mixed_numeric() {
        let vals = vec![Value::Int(5), Value::Float(2.5), Value::Int(9)];
        assert_eq!(run(AggFunc::Min, false, &vals), Value::Float(2.5));
        assert_eq!(run(AggFunc::Max, false, &vals), Value::Int(9));
    }

    #[test]
    fn min_max_over_strings() {
        let vals = vec![Value::str("pear"), Value::str("apple"), Value::str("fig")];
        assert_eq!(run(AggFunc::Min, false, &vals), Value::str("apple"));
        assert_eq!(run(AggFunc::Max, false, &vals), Value::str("pear"));
    }

    #[test]
    fn distinct_drops_duplicates() {
        let vals = vec![Value::Int(2), Value::Int(2), Value::Int(3)];
        assert_eq!(run(AggFunc::Count, true, &vals), Value::Int(2));
        assert_eq!(run(AggFunc::Sum, true, &vals), Value::Int(5));
    }

    #[test]
    fn sum_switches_to_float_when_needed() {
        let vals = vec![Value::Int(1), Value::Float(0.5)];
        assert_eq!(run(AggFunc::Sum, false, &vals), Value::Float(1.5));
    }
}
