//! The executor's spill-to-disk substrate: one per-executor [`SpillManager`]
//! owning the spill directory, the heap files the out-of-core operators
//! write, and the spilled-memo index.
//!
//! Everything here is *execution state*, never durable data: the manager
//! wraps a [`perm_storage::StorageManager`], whose directory is removed when
//! the executor drops. Three consumers share it:
//!
//! * the **grace hash join** and **partitioned aggregation** in
//!   `crate::physical`, which hash-partition their state across heap files
//!   ([`fnv1a`] over the encoded key, so partition assignment is
//!   deterministic across runs and processes);
//! * the **external merge sort**, which writes sorted runs;
//! * the **governor's memo spill** (`crate::resilience`): compiled
//!   sublink-memo entries reclaimed under budget pressure are appended to a
//!   dedicated heap file and indexed by their (process-unique) memo key, so
//!   a later miss reloads the relation through the buffer pool instead of
//!   re-executing the sublink.
//!
//! The record codecs bundled here frame the operator payloads — `(key,
//! tuple)` build rows, `(ordinal, key)` probe rows, `(keys, tuple)` sort
//! rows and `(ordinal, key, values, accumulators)` aggregate groups — on
//! top of the exact value codec of `perm_storage::page`, so every `Value`
//! round-trips bit-exactly (NaN spellings, `±0.0`, full-range integers).

use crate::aggregate::Accumulator;
use crate::Result;
use perm_storage::{
    decode_relation, decode_row, encode_relation, encode_row, BufferPool, HeapFile, RecordId,
    Relation, StorageManager, Tuple, Value, DEFAULT_POOL_PAGES,
};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::path::Path;
use std::rc::Rc;
use std::sync::Arc;

/// FNV-1a over a byte string: the deterministic partitioning hash of the
/// spill paths. Deliberately *not* `DefaultHasher` — partition assignment is
/// part of the on-disk layout and must not depend on `std` internals.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Owner of the executor's spill directory, files and counters.
pub(crate) struct SpillManager {
    store: StorageManager,
    /// Heap file holding reclaimed memo entries, created on first store.
    memo_file: RefCell<Option<Rc<HeapFile>>>,
    /// Memo key → record address inside `memo_file`. A key stored twice
    /// keeps the newest record (identical content — sublink results are
    /// pure functions of the database, binding and parameters).
    memo_index: RefCell<HashMap<Vec<u8>, RecordId>>,
    /// Total payload bytes written across all spill files.
    spilled_bytes: Cell<u64>,
    /// Partition files and sort runs created.
    partitions: Cell<u64>,
}

impl SpillManager {
    /// Creates a manager over a fresh spill directory under `base` (the
    /// system temp dir when `None`).
    pub(crate) fn create(base: Option<&Path>) -> perm_storage::Result<SpillManager> {
        Ok(SpillManager {
            store: StorageManager::create(base, DEFAULT_POOL_PAGES)?,
            memo_file: RefCell::new(None),
            memo_index: RefCell::new(HashMap::new()),
            spilled_bytes: Cell::new(0),
            partitions: Cell::new(0),
        })
    }

    /// The buffer pool every read of this manager's files goes through.
    pub(crate) fn pool(&self) -> &BufferPool {
        self.store.pool()
    }

    pub(crate) fn pool_hits(&self) -> u64 {
        self.store.pool().hits()
    }

    pub(crate) fn pool_misses(&self) -> u64 {
        self.store.pool().misses()
    }

    pub(crate) fn pool_evictions(&self) -> u64 {
        self.store.pool().evictions()
    }

    pub(crate) fn pool_capacity(&self) -> u64 {
        self.store.pool().capacity() as u64
    }

    /// Creates a fresh heap file for a partition or run.
    pub(crate) fn create_file(&self, label: &str) -> Result<Rc<HeapFile>> {
        Ok(self.store.create_file(label)?)
    }

    pub(crate) fn note_spilled(&self, bytes: u64) {
        self.spilled_bytes.set(self.spilled_bytes.get() + bytes);
    }

    pub(crate) fn note_partitions(&self, n: u64) {
        self.partitions.set(self.partitions.get() + n);
    }

    pub(crate) fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes.get()
    }

    pub(crate) fn partitions(&self) -> u64 {
        self.partitions.get()
    }

    /// Writes one reclaimed memo entry and indexes it by key. I/O failures
    /// are swallowed: the entry is simply not spilled, and a later miss
    /// falls back to re-executing the sublink — the pre-spill behaviour.
    pub(crate) fn memo_store(&self, key: &[u8], value: &Relation) {
        let file = {
            let mut slot = self.memo_file.borrow_mut();
            match &*slot {
                Some(f) => Rc::clone(f),
                None => match self.create_file("memo") {
                    Ok(f) => {
                        *slot = Some(Rc::clone(&f));
                        f
                    }
                    Err(_) => return,
                },
            }
        };
        let mut buf = Vec::new();
        encode_relation(value, &mut buf);
        let Ok(rid) = file.append_record(&buf) else {
            return;
        };
        // Seal per store: the entry must be readable before the next fetch,
        // and the memo file has no batching writer to defer to.
        if file.seal().is_err() {
            return;
        }
        self.note_spilled(buf.len() as u64);
        self.memo_index.borrow_mut().insert(key.to_vec(), rid);
    }

    /// Reloads a spilled memo entry through the buffer pool. `None` on any
    /// failure — a reload problem degrades to recomputation, never to an
    /// error.
    pub(crate) fn memo_fetch(&self, key: &[u8]) -> Option<Arc<Relation>> {
        let rid = *self.memo_index.borrow().get(key)?;
        let file = Rc::clone(self.memo_file.borrow().as_ref()?);
        let record = self.pool().read_record(&file, rid).ok()?;
        let mut pos = 0;
        decode_relation(&record, &mut pos).ok().map(Arc::new)
    }

    /// Number of live spilled-memo entries (diagnostic).
    #[cfg(test)]
    pub(crate) fn memo_entries(&self) -> usize {
        self.memo_index.borrow().len()
    }
}

impl std::fmt::Debug for SpillManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillManager")
            .field("dir", &self.store.dir())
            .field("spilled_bytes", &self.spilled_bytes.get())
            .field("partitions", &self.partitions.get())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Record codecs for the spill paths
// ---------------------------------------------------------------------------

fn read_u32(record: &[u8], pos: &mut usize) -> Result<u32> {
    let bytes: [u8; 4] = record
        .get(*pos..*pos + 4)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| perm_storage::StorageError::Corrupt("truncated spill record".into()))?;
    *pos += 4;
    Ok(u32::from_le_bytes(bytes))
}

fn read_u64(record: &[u8], pos: &mut usize) -> Result<u64> {
    let bytes: [u8; 8] = record
        .get(*pos..*pos + 8)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| perm_storage::StorageError::Corrupt("truncated spill record".into()))?;
    *pos += 8;
    Ok(u64::from_le_bytes(bytes))
}

fn read_bytes<'r>(record: &'r [u8], pos: &mut usize) -> Result<&'r [u8]> {
    let len = read_u32(record, pos)? as usize;
    let slice = record
        .get(*pos..*pos + len)
        .ok_or_else(|| perm_storage::StorageError::Corrupt("truncated spill record".into()))?;
    *pos += len;
    Ok(slice)
}

fn write_bytes(bytes: &[u8], buf: &mut Vec<u8>) {
    buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    buf.extend_from_slice(bytes);
}

/// Grace-join build record: the encoded hash key plus the right tuple.
pub(crate) fn encode_keyed_tuple(key: &[u8], tuple: &Tuple, buf: &mut Vec<u8>) {
    buf.clear();
    write_bytes(key, buf);
    encode_row(tuple.values(), buf);
}

pub(crate) fn decode_keyed_tuple(record: &[u8]) -> Result<(Vec<u8>, Tuple)> {
    let mut pos = 0;
    let key = read_bytes(record, &mut pos)?.to_vec();
    let values = decode_row(record, &mut pos)?;
    Ok((key, Tuple::new(values)))
}

/// Grace-join probe record: the left row's global ordinal plus its key (the
/// left tuples themselves stay resident, addressed by ordinal).
pub(crate) fn encode_probe(ordinal: u64, key: &[u8], buf: &mut Vec<u8>) {
    buf.clear();
    buf.extend_from_slice(&ordinal.to_le_bytes());
    write_bytes(key, buf);
}

pub(crate) fn decode_probe(record: &[u8]) -> Result<(u64, Vec<u8>)> {
    let mut pos = 0;
    let ordinal = read_u64(record, &mut pos)?;
    let key = read_bytes(record, &mut pos)?.to_vec();
    Ok((ordinal, key))
}

/// External-sort run record: the extracted sort-key values plus the tuple.
pub(crate) fn encode_run_row(keys: &[Value], tuple: &Tuple, buf: &mut Vec<u8>) {
    buf.clear();
    encode_row(keys, buf);
    encode_row(tuple.values(), buf);
}

pub(crate) fn decode_run_row(record: &[u8]) -> Result<(Vec<Value>, Tuple)> {
    let mut pos = 0;
    let keys = decode_row(record, &mut pos)?;
    let values = decode_row(record, &mut pos)?;
    Ok((keys, Tuple::new(values)))
}

/// Partitioned-aggregation group record: the group's creation ordinal (for
/// first-encounter output order), its encoded grouping key, the
/// representative key values, and one partial accumulator state per
/// aggregate.
pub(crate) fn encode_agg_group(
    ordinal: u64,
    key: &[u8],
    key_values: &[Value],
    accs: &[Accumulator],
    buf: &mut Vec<u8>,
) {
    buf.clear();
    buf.extend_from_slice(&ordinal.to_le_bytes());
    write_bytes(key, buf);
    encode_row(key_values, buf);
    buf.extend_from_slice(&(accs.len() as u32).to_le_bytes());
    for acc in accs {
        acc.encode_state(buf);
    }
}

#[allow(clippy::type_complexity)]
pub(crate) fn decode_agg_group(
    record: &[u8],
) -> Result<(u64, Vec<u8>, Vec<Value>, Vec<Accumulator>)> {
    let mut pos = 0;
    let ordinal = read_u64(record, &mut pos)?;
    let key = read_bytes(record, &mut pos)?.to_vec();
    let key_values = decode_row(record, &mut pos)?;
    let n = read_u32(record, &mut pos)? as usize;
    let mut accs = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        accs.push(Accumulator::decode_state(record, &mut pos)?);
    }
    Ok((ordinal, key, key_values, accs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use perm_storage::Schema;

    #[test]
    fn fnv1a_is_stable_and_spreads() {
        // Pinned values: partition assignment is on-disk layout.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn keyed_tuple_and_probe_records_round_trip() {
        let tuple = Tuple::new(vec![
            Value::Int(i64::MIN),
            Value::Float(f64::from_bits(0x7ff8_0000_0000_0001)),
            Value::Str("käse".into()),
            Value::Null,
        ]);
        let mut buf = Vec::new();
        encode_keyed_tuple(b"key-bytes", &tuple, &mut buf);
        let (key, back) = decode_keyed_tuple(&buf).unwrap();
        assert_eq!(key, b"key-bytes");
        assert_eq!(back.arity(), 4);
        match (back.get(1), tuple.get(1)) {
            (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
            other => panic!("expected floats, got {other:?}"),
        }

        encode_probe(u64::MAX - 1, b"k", &mut buf);
        assert_eq!(decode_probe(&buf).unwrap(), (u64::MAX - 1, b"k".to_vec()));

        encode_run_row(&[Value::Int(3)], &tuple, &mut buf);
        let (keys, t) = decode_run_row(&buf).unwrap();
        assert_eq!(keys, vec![Value::Int(3)]);
        assert_eq!(t.get(2), &Value::str("käse"));

        assert!(decode_probe(&buf[..3]).is_err(), "truncation is an error");
    }

    #[test]
    fn agg_group_records_round_trip() {
        use perm_algebra::AggFunc;
        let mut a = Accumulator::new(AggFunc::Sum, false);
        a.update(&Value::Int(4));
        a.update(&Value::Float(-0.0));
        let b = Accumulator::new(AggFunc::CountStar, false);
        let key_values = vec![Value::str("grp"), Value::Null];
        let mut buf = Vec::new();
        encode_agg_group(7, b"kb", &key_values, &[a, b], &mut buf);
        let (ord, key, kv, accs) = decode_agg_group(&buf).unwrap();
        assert_eq!(ord, 7);
        assert_eq!(key, b"kb");
        assert_eq!(kv, key_values);
        assert_eq!(accs.len(), 2);
        assert_eq!(accs[0].finish(), Value::Float(4.0));
        assert_eq!(accs[1].finish(), Value::Int(0));
        assert!(decode_agg_group(&buf[..9]).is_err());
    }

    #[test]
    fn memo_store_and_fetch_round_trip_through_the_pool() {
        let mgr = SpillManager::create(None).unwrap();
        let rel = Relation::from_rows(
            Schema::from_names(&["a"]),
            (0..50).map(|i| vec![Value::Int(i)]).collect(),
        );
        assert!(mgr.memo_fetch(b"k1").is_none());
        mgr.memo_store(b"k1", &rel);
        mgr.memo_store(b"k2", &Relation::empty(Schema::from_names(&["x"])));
        assert_eq!(mgr.memo_entries(), 2);
        assert!(mgr.spilled_bytes() > 0);
        let back = mgr.memo_fetch(b"k1").expect("stored entry is fetchable");
        assert_eq!(*back, rel);
        assert!(mgr.memo_fetch(b"k2").unwrap().is_empty());
        assert!(mgr.memo_fetch(b"k3").is_none());
        // Re-storing a key keeps exactly one index entry.
        mgr.memo_store(b"k1", &rel);
        assert_eq!(mgr.memo_entries(), 2);
        assert_eq!(*mgr.memo_fetch(b"k1").unwrap(), rel);
    }
}
