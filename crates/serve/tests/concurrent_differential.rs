//! Concurrent differential testing of the serving subsystem: N worker
//! threads × the seeded query corpus (the same generator the facade's
//! single-threaded `tests/session_differential.rs` uses,
//! `perm_synthetic::sqlgen`) must produce bag-identical results — and, for
//! provenance statements, identical witnesses — to single-threaded
//! execution, whether the workers share sessions hand-rolled over one
//! engine or go through the [`ConcurrentEngine::serve`] queue.

use perm::{Engine, Relation, Session, Value};
use perm_serve::{ConcurrentEngine, Request};
use perm_synthetic::sqlgen::{corpus_case, corpus_database};
use std::thread;

const SEEDS: u64 = 80;
const WORKERS: usize = 4;

/// Single-threaded reference results over a private database and session.
fn reference_results() -> Vec<(String, Vec<Value>, Relation)> {
    let db = corpus_database();
    let session = Session::new(&db);
    (0..SEEDS)
        .map(|seed| {
            let case = corpus_case(seed);
            let prepared = session
                .prepare(&case.sql)
                .unwrap_or_else(|e| panic!("seed {seed}: failed to prepare `{}`: {e}", case.sql));
            let params = case.params(prepared.param_count());
            let result = session
                .execute(&prepared, &params)
                .unwrap_or_else(|e| panic!("seed {seed}: `{}` failed: {e}", case.sql));
            (case.sql, params, result)
        })
        .collect()
}

#[test]
fn worker_threads_match_single_threaded_results_on_the_corpus() {
    let expected = reference_results();
    let engine = ConcurrentEngine::new(Engine::new(corpus_database())).with_workers(WORKERS);
    // Every worker runs the *whole* corpus concurrently with its siblings:
    // all of them hammer the same plan cache and shared sublink memo, in
    // interleavings that differ run to run — any cross-session leakage
    // (colliding memo keys, a stale cached plan) shows up as a divergence.
    thread::scope(|scope| {
        for worker in 0..WORKERS {
            let engine = &engine;
            let expected = &expected;
            scope.spawn(move || {
                let session = engine.session();
                for (seed, (sql, params, reference)) in expected.iter().enumerate() {
                    let prepared = session.prepare(sql).unwrap();
                    let result = session.execute(&prepared, params).unwrap();
                    assert!(
                        result.bag_eq(reference),
                        "worker {worker} seed {seed}: `{sql}` with {params:?} diverged \
                         from single-threaded execution:\n{result}\nvs\n{reference}"
                    );
                }
            });
        }
    });
    let stats = engine.engine().plan_cache_stats();
    assert!(
        stats.hits > 0,
        "the corpus repeats across workers; the plan cache must see hits: {stats:?}"
    );
}

#[test]
fn the_serve_queue_matches_single_threaded_results_on_the_corpus() {
    let expected = reference_results();
    let engine = ConcurrentEngine::new(Engine::new(corpus_database())).with_workers(WORKERS);
    let requests: Vec<Request> = expected
        .iter()
        .map(|(sql, params, _)| Request::sql(sql.clone(), params.clone()))
        .collect();
    let results = engine.serve(&requests);
    assert_eq!(results.len(), expected.len());
    for (seed, (result, (sql, params, reference))) in
        results.iter().zip(expected.iter()).enumerate()
    {
        let result = result
            .as_ref()
            .unwrap_or_else(|e| panic!("seed {seed}: `{sql}` failed on the pool: {e}"));
        assert!(
            result.bag_eq(reference),
            "seed {seed}: `{sql}` with {params:?} diverged on the serve queue"
        );
    }
}

/// Renders the structured witness view of a provenance result as a sorted
/// list of lines, one per row: the output tuple plus every witness (table,
/// occurrence, tuple-or-none). Two executions agree on provenance iff these
/// renderings are equal as multisets — sorting makes that comparable.
fn witness_fingerprint(rows: &perm::ProvenanceRows) -> Vec<String> {
    let mut lines: Vec<String> = rows
        .iter()
        .map(|row| {
            let witnesses: Vec<String> = row
                .witnesses()
                .map(|w| format!("{}#{}:{:?}", w.table, w.occurrence, w.tuple()))
                .collect();
            format!("{:?} <- {}", row.output(), witnesses.join(" | "))
        })
        .collect();
    lines.sort();
    lines
}

#[test]
fn concurrent_provenance_witnesses_match_single_threaded_execution() {
    // The parameter-free subset of the corpus, forced through the
    // provenance rewrite: witnesses computed by concurrent workers must be
    // exactly the single-threaded ones.
    let db = corpus_database();
    let reference = Session::new(&db);
    let cases: Vec<String> = (0..SEEDS)
        .map(|seed| corpus_case(seed).sql)
        .filter(|sql| !sql.contains('$'))
        .collect();
    assert!(
        cases.len() >= 10,
        "corpus must keep a parameter-free subset"
    );
    let expected: Vec<Vec<String>> = cases
        .iter()
        .map(|sql| {
            let prepared = reference.prepare_provenance(sql).unwrap();
            witness_fingerprint(&reference.provenance_rows(&prepared, &[]).unwrap())
        })
        .collect();

    let engine = ConcurrentEngine::new(Engine::new(corpus_database())).with_workers(WORKERS);
    thread::scope(|scope| {
        for worker in 0..WORKERS {
            let engine = &engine;
            let cases = &cases;
            let expected = &expected;
            scope.spawn(move || {
                let session = engine.session();
                for (i, sql) in cases.iter().enumerate() {
                    let prepared = session.prepare_provenance(sql).unwrap();
                    let rows = session.provenance_rows(&prepared, &[]).unwrap();
                    assert_eq!(
                        witness_fingerprint(&rows),
                        expected[i],
                        "worker {worker}: witnesses of `{sql}` diverged from \
                         single-threaded execution"
                    );
                }
            });
        }
    });
}
